"""Tests for technology mapping (BOG -> netlist)."""

import pytest

from repro.bog.builder import build_sog
from repro.sta import ClockConstraint, VertexKind, analyze
from repro.synth import map_to_netlist


@pytest.fixture(scope="module")
def sog(simple_design):
    return build_sog(simple_design)


@pytest.fixture(scope="module")
def netlist(sog):
    return map_to_netlist(sog, seed=5)


def test_mapping_preserves_register_endpoints(sog, netlist):
    rtl_endpoints = {e.name for e in sog.endpoints if e.kind == "register"}
    mapped = {e.name for e in netlist.endpoints if e.kind == "register"}
    assert mapped == rtl_endpoints


def test_registers_become_dffs(netlist):
    registers = [v for v in netlist.vertices if v.kind is VertexKind.REGISTER]
    assert registers
    assert all(v.cell is not None and v.cell.function == "DFF" for v in registers)


def test_gates_use_library_cells(netlist):
    library = netlist.library
    for vertex in netlist.vertices:
        if vertex.kind is VertexKind.GATE:
            assert vertex.cell.name in library.cells


def test_mapping_is_deterministic_per_seed(sog):
    first = map_to_netlist(sog, seed=9)
    second = map_to_netlist(sog, seed=9)
    assert first.cell_histogram() == second.cell_histogram()
    assert [v.derate for v in first.vertices] == [v.derate for v in second.vertices]


def test_different_seeds_change_mapping(sog):
    first = map_to_netlist(sog, seed=1, alt_mapping_probability=0.5)
    second = map_to_netlist(sog, seed=2, alt_mapping_probability=0.5)
    assert first.cell_histogram() != second.cell_histogram()


def test_alt_probability_controls_nand_usage(sog):
    never = map_to_netlist(sog, seed=3, alt_mapping_probability=0.0)
    always = map_to_netlist(sog, seed=3, alt_mapping_probability=1.0)
    assert never.cell_histogram().get("NAND2", 0) == 0
    assert always.cell_histogram().get("AND2", 0) == 0


def test_tree_balancing_reduces_depth():
    """A long reduction chain maps to a shallower balanced tree."""
    from repro.bog.graph import BOG

    chain = BOG("chain", variant="sog")
    inputs = [chain.add_input(f"i{k}") for k in range(16)]
    node = inputs[0]
    for nxt in inputs[1:]:
        node = chain.OR(node, nxt)
    reg = chain.add_register("R[0]")
    chain.add_endpoint("R[0]", "R", 0, node, reg_node=reg)

    balanced = map_to_netlist(chain, seed=0, balance_trees=True, alt_mapping_probability=0.0)
    linear = map_to_netlist(chain, seed=0, balance_trees=False, alt_mapping_probability=0.0)

    def depth(netlist):
        levels = [0] * len(netlist.vertices)
        for vid in netlist.topological_order():
            vertex = netlist.vertices[vid]
            if vertex.fanins:
                levels[vid] = 1 + max(levels[f] for f in vertex.fanins)
        return max(levels)

    assert depth(balanced) < depth(linear)


def test_cone_effort_derates_in_range(netlist):
    for vertex in netlist.vertices:
        assert 0.3 <= vertex.derate <= 1.0


def test_netlist_analyzes_cleanly(netlist):
    report = analyze(netlist, ClockConstraint(period=800.0))
    assert report.summary()["max_arrival"] > 0.0


def test_qor_accounting(netlist):
    report = analyze(netlist, ClockConstraint(period=800.0))
    qor = netlist.qor(report)
    assert qor.area > 0 and qor.total_power > 0
    assert qor.n_registers == netlist.register_count()
    assert set(qor.as_dict()) >= {"wns", "tns", "area", "total_power"}
