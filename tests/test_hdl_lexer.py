"""Unit tests for the Verilog lexer."""

import pytest

from repro.hdl.lexer import LexerError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def test_keywords_are_classified():
    tokens = tokenize("module endmodule input output wire reg assign always")
    assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])


def test_identifiers_and_numbers():
    tokens = tokenize("foo bar_1 42 8'hFF 4'b1010 12'd7")
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[1].kind is TokenKind.IDENT
    assert tokens[2].kind is TokenKind.NUMBER and tokens[2].value == 42
    assert tokens[3].kind is TokenKind.SIZED_NUMBER
    assert tokens[3].value == 0xFF and tokens[3].width == 8
    assert tokens[4].value == 0b1010 and tokens[4].width == 4
    assert tokens[5].value == 7 and tokens[5].width == 12


def test_sized_number_with_x_and_z_digits_treated_as_zero():
    token = tokenize("4'b1x0z")[0]
    assert token.kind is TokenKind.SIZED_NUMBER
    assert token.value == 0b1000


def test_operators_longest_match_first():
    tokens = tokenize("a <= b << 2")
    ops = [t.text for t in tokens if t.kind is TokenKind.OPERATOR]
    assert ops == ["<=", "<<"]


def test_line_comments_are_stripped():
    tokens = tokenize("a // comment with module keyword\nb")
    texts = [t.text for t in tokens if t.kind is TokenKind.IDENT]
    assert texts == ["a", "b"]


def test_block_comments_preserve_line_numbers():
    tokens = tokenize("a /* multi\nline\ncomment */ b")
    a, b = [t for t in tokens if t.kind is TokenKind.IDENT]
    assert a.line == 1
    assert b.line == 3


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexerError) as excinfo:
        tokenize("a ` b")
    assert excinfo.value.line == 1


def test_punctuation_tokens():
    tokens = tokenize("( ) [ ] { } , ; : @")
    assert all(t.kind is TokenKind.PUNCT for t in tokens[:-1])


def test_escaped_identifier():
    tokens = tokenize(r"\weird$name rest")
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].text == "weird$name"


def test_eof_token_always_present():
    assert tokenize("")[-1].kind is TokenKind.EOF
    assert tokenize("module")[-1].kind is TokenKind.EOF


def test_underscores_in_numbers():
    token = tokenize("16'hAB_CD")[0]
    assert token.value == 0xABCD
