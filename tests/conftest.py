"""Shared fixtures: small designs and dataset records reused across tests.

Also registers the Hypothesis profiles: the default ``ci`` profile is
derandomized (fixed seed, reproducible failures), has no deadline (CI
machines are noisy), and draws a uniform example budget that the
``REPRO_HYPOTHESIS_SCALE`` environment knob scales across *all* property
tests at once (e.g. ``REPRO_HYPOTHESIS_SCALE=4`` for a deeper local run).
Select the randomized profile with ``HYPOTHESIS_PROFILE=dev``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.dataset import DatasetConfig, DesignRecord, build_design_record
from repro.hdl.design import analyze
from repro.hdl.generate import DesignSpec
from repro.hdl.parser import parse_source

#: Per-test example budget before scaling (uniform across the suite).
BASE_MAX_EXAMPLES = 25


def _scaled_max_examples() -> int:
    try:
        scale = float(os.environ.get("REPRO_HYPOTHESIS_SCALE", "1"))
    except ValueError:
        scale = 1.0
    return max(1, int(round(BASE_MAX_EXAMPLES * scale)))


hypothesis_settings.register_profile(
    "ci", derandomize=True, deadline=None, max_examples=_scaled_max_examples()
)
hypothesis_settings.register_profile(
    "dev", deadline=None, max_examples=_scaled_max_examples()
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


SIMPLE_VERILOG = """
module simple (clk, a, b, sel, q, y);
  input clk;
  input [3:0] a;
  input [3:0] b;
  input sel;
  output [3:0] y;
  output q;
  reg [3:0] acc;
  reg flag;
  wire [3:0] sum;
  wire [3:0] muxed;

  assign sum = a + b;
  assign muxed = sel ? sum : (a & b);
  assign y = acc;
  assign q = flag;

  always @(posedge clk) begin
    acc <= muxed ^ acc;
    if (sel) flag <= ^a;
    else flag <= |b;
  end
endmodule
"""


#: Small specs used for fast end-to-end fixtures.
TINY_SPECS = (
    DesignSpec("tiny_alpha", "vexriscv", "Verilog", 11, 6, 2, 3, 3, 2),
    DesignSpec("tiny_beta", "itc99", "Verilog", 12, 6, 2, 3, 4, 2),
    DesignSpec("tiny_gamma", "opencores", "Verilog", 13, 8, 2, 3, 3, 2),
    DesignSpec("tiny_delta", "chipyard", "Verilog", 14, 8, 3, 3, 4, 2),
    DesignSpec("tiny_eps", "vexriscv", "Verilog", 15, 8, 3, 4, 4, 2),
)


@pytest.fixture(scope="session")
def simple_source() -> str:
    return SIMPLE_VERILOG


@pytest.fixture(scope="session")
def simple_module():
    return parse_source(SIMPLE_VERILOG)


@pytest.fixture(scope="session")
def simple_design(simple_module):
    return analyze(simple_module, source=SIMPLE_VERILOG)


@pytest.fixture(scope="session")
def tiny_specs():
    return TINY_SPECS


@pytest.fixture(scope="session")
def tiny_records(tiny_specs) -> list:
    """Dataset records for the tiny benchmark designs (built once per session)."""
    config = DatasetConfig()
    return [build_design_record(spec, config) for spec in tiny_specs]


@pytest.fixture(scope="session")
def tiny_record(tiny_records) -> DesignRecord:
    return tiny_records[0]


@pytest.fixture(scope="session")
def simple_record(simple_source) -> DesignRecord:
    return build_design_record(simple_source, name="simple")
