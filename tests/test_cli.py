"""The unified ``python -m repro`` CLI: help smoke + end-to-end workflow."""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

SUBCOMMANDS = (
    "train",
    "predict",
    "whatif",
    "serve",
    "retrain",
    "promote",
    "rollback",
    "optimize",
    "dataset",
    "fuzz",
)


def _cli_env(tmp_path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_MODEL_DIR"] = str(tmp_path / "models")
    return env


# ---------------------------------------------------------------------------
# Help / parsing smoke
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("subcommand", SUBCOMMANDS)
def test_subcommand_help_smoke(subcommand, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([subcommand, "--help"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out  # help text actually printed


def test_top_level_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for subcommand in SUBCOMMANDS:
        assert subcommand in out


def test_no_command_prints_help_and_fails(capsys):
    assert main([]) == 2
    assert "COMMAND" in capsys.readouterr().out


def test_parser_covers_documented_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--model", "m@2", "--port", "0", "--max-batch", "4", "--batch-window-ms", "2"]
    )
    assert args.model == "m@2" and args.port == 0 and args.max_batch == 4


def test_fuzz_passthrough_validates_arguments(capsys):
    # The fuzz runner owns its CLI; an unknown oracle errors without running.
    assert main(["fuzz", "--checks", "not-an-oracle"]) == 2
    assert "unknown checks" in capsys.readouterr().out


@pytest.mark.parametrize("subcommand", ["train", "retrain"])
@pytest.mark.parametrize("value", ["0", "-5", "x"])
def test_nonpositive_estimators_rejected_at_parse_time(subcommand, value, capsys):
    """``--estimators 0`` must be an argparse error, never a silent default."""
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args([subcommand, "--estimators", value])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "positive integer" in err or "not an integer" in err


def test_estimators_boundary_accepted():
    args = build_parser().parse_args(["train", "--estimators", "1"])
    assert args.estimators == 1
    args = build_parser().parse_args(["train"])
    assert args.estimators is None  # preset, resolved by `is None` not truthiness


def test_retrain_parser_knobs():
    args = build_parser().parse_args(
        ["retrain", "--fast", "--fuzz-seeds", "3,5,8", "--extra-designs", "2", "--holdout", "2"]
    )
    assert args.fuzz_seeds == [3, 5, 8]
    assert args.extra_designs == 2 and args.holdout == 2
    with pytest.raises(SystemExit):
        build_parser().parse_args(["retrain", "--fuzz-seeds", "3,oops"])


def test_promote_and_rollback_error_cleanly(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_MODEL_DIR", str(tmp_path / "models"))
    assert main(["promote", "--model", "ghost", "deadbeef"]) == 1
    assert "error:" in capsys.readouterr().err
    assert main(["rollback", "--model", "ghost"]) == 1
    assert "no promotion" in capsys.readouterr().err


def test_retrain_exit_code_reflects_verdict(tmp_path, capsys, monkeypatch):
    """Promotion exits 0; an eval-gate rejection exits 3 (not argparse's 2)."""
    import repro.lifecycle.retrain as retrain_mod
    from repro.cli import EXIT_EVAL_REJECTED

    monkeypatch.setenv("REPRO_MODEL_DIR", str(tmp_path / "models"))

    def fake_run(verdict):
        def run(config, registry=None, report=None):
            return {
                "name": config.name,
                "promoted": verdict == "promote",
                "verdict": verdict,
                "reasons": ["stubbed"],
                "candidate": {"bundle_id": "c" * 64},
                "promotion": None,
                "eval_report": {"digest": "d" * 64},
                "report_path": str(tmp_path / "report.json"),
            }

        return run

    monkeypatch.setattr(retrain_mod, "run_retrain", fake_run("promote"))
    assert main(["retrain", "--fast"]) == 0
    assert json.loads(capsys.readouterr().out)["verdict"] == "promote"

    monkeypatch.setattr(retrain_mod, "run_retrain", fake_run("reject"))
    assert main(["retrain", "--fast"]) == EXIT_EVAL_REJECTED
    assert json.loads(capsys.readouterr().out)["promoted"] is False


# ---------------------------------------------------------------------------
# End-to-end: train once, predict + serve many (the acceptance path)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trained_cli_registry(tmp_path_factory):
    """``python -m repro train`` into a scratch registry (runs once)."""
    tmp_path = tmp_path_factory.mktemp("cli")
    env = _cli_env(tmp_path)
    result = subprocess.run(
        [sys.executable, "-m", "repro", "train", "--designs", "3", "--fast", "--name", "cli-test"],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    summary = json.loads(result.stdout)
    assert summary["name"] == "cli-test" and len(summary["bundle_id"]) == 64
    return tmp_path, env, summary


@pytest.fixture(scope="module")
def design_file(tmp_path_factory):
    from tests.conftest import SIMPLE_VERILOG

    path = tmp_path_factory.mktemp("cli-designs") / "simple.v"
    path.write_text(SIMPLE_VERILOG)
    return path


def test_cli_train_then_predict(trained_cli_registry, design_file):
    tmp_path, env, _ = trained_cli_registry
    result = subprocess.run(
        [sys.executable, "-m", "repro", "predict", "--model", "cli-test", str(design_file)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    prediction = json.loads(result.stdout)
    assert prediction["design"] == "simple"
    assert set(prediction["overall"]) == {"wns", "tns"}
    assert prediction["ranked_signals"]

    # The model was loaded, not re-trained: predicting twice is identical
    # (up to the wall-clock runtime_seconds field).
    again = subprocess.run(
        [sys.executable, "-m", "repro", "predict", "--model", "cli-test", str(design_file)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    second = json.loads(again.stdout)
    second.pop("runtime_seconds"), prediction.pop("runtime_seconds")
    assert second == prediction


def test_cli_whatif(trained_cli_registry, design_file):
    _, env, _ = trained_cli_registry
    result = subprocess.run(
        [sys.executable, "-m", "repro", "whatif", "--model", "cli-test", "--k", "3", str(design_file)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)
    assert payload["design"] == "simple"
    assert payload["candidates"], "no what-if candidates came back"
    assert {"wns", "tns", "n_patches"} <= set(payload["candidates"][0])


def test_cli_serve_answers_http(trained_cli_registry, design_file):
    """train -> serve -> HTTP /predict must match the CLI's own predict."""
    tmp_path, env, _ = trained_cli_registry
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    reference = subprocess.run(
        [sys.executable, "-m", "repro", "predict", "--model", "cli-test", str(design_file)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    expected = json.loads(reference.stdout)

    bench_out = tmp_path / "BENCH_serve.json"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--model", "cli-test", "--port", str(port),
            "--bench-out", str(bench_out),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        payload = json.dumps({"source": design_file.read_text(), "name": "simple"}).encode()
        response = None
        deadline = time.time() + 120
        while time.time() < deadline:
            try:
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/predict",
                    data=payload,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=60) as raw:
                    response = json.loads(raw.read())
                break
            except (ConnectionError, urllib.error.URLError):
                time.sleep(0.5)
        assert response is not None, "server never came up"
        # Served predictions are bit-identical to the in-process CLI predict.
        for key in ("overall", "signal_slack", "signal_ranking", "rank_group"):
            assert response[key] == expected[key]

        with urllib.request.urlopen(f"http://127.0.0.1:{port}/health", timeout=30) as raw:
            health = json.loads(raw.read())
        assert health["status"] == "ok"
        assert health["model"]["name"] == "cli-test"
    finally:
        import signal

        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait(timeout=30)

    # Shutdown wrote the serve-stage runtime report.
    report = json.loads(bench_out.read_text())
    assert report["counters"]["serve_requests"] >= 1
    assert "serve.predict_batch" in report["stages"]
    assert "serve.predict_p50" in report["stages"]
