"""Tests for regression trees and gradient boosting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    GroupedMaxSquaredError,
    HuberObjective,
    NewtonTreeRegressor,
    bin_feature_matrix,
    group_max,
    resolve_max_bins,
)
from repro.ml.tree import BINS_ENV_VAR


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(600, 6))
    y = 2.0 * X[:, 0] - 1.5 * X[:, 1] + np.sin(X[:, 2]) + 0.1 * rng.normal(size=600)
    return X, y


class TestDecisionTree:
    def test_fits_constant_data(self):
        X = np.zeros((20, 3))
        y = np.full(20, 5.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), 5.0)

    def test_perfect_split_on_single_feature(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]] * 5)
        y = np.array([0.0, 0.0, 1.0, 1.0] * 5)
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=1, min_samples_split=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_max_depth_zero_gives_single_leaf(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert tree.n_leaves() == 1
        assert tree.depth() == 0

    def test_depth_respected(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=50).fit(X, y)
        assert tree.n_leaves() <= len(y) // 50 + 1

    def test_improves_over_mean_prediction(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=6).fit(X[:400], y[:400])
        pred = tree.predict(X[400:])
        mse_tree = np.mean((pred - y[400:]) ** 2)
        mse_mean = np.mean((y[:400].mean() - y[400:]) ** 2)
        assert mse_tree < mse_mean

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((2, 2)))


class TestNewtonTree:
    def test_newton_leaf_value_matches_mean_for_squared_loss(self):
        X = np.zeros((10, 1))
        y = np.arange(10, dtype=float)
        tree = NewtonTreeRegressor(max_depth=0, reg_lambda=0.0).fit(X, y)
        assert tree.predict(X[:1])[0] == pytest.approx(y.mean())

    def test_regularization_shrinks_leaves(self):
        X = np.zeros((10, 1))
        y = np.full(10, 4.0)
        tree = NewtonTreeRegressor(max_depth=0, reg_lambda=10.0).fit(X, y)
        assert 0 < tree.predict(X[:1])[0] < 4.0


class TestGradientBoosting:
    def test_beats_single_tree(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=3).fit(X[:400], y[:400])
        gbm = GradientBoostingRegressor(n_estimators=50, max_depth=3).fit(X[:400], y[:400])
        mse_tree = np.mean((tree.predict(X[400:]) - y[400:]) ** 2)
        mse_gbm = np.mean((gbm.predict(X[400:]) - y[400:]) ** 2)
        assert mse_gbm < mse_tree

    def test_training_loss_decreases(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=30).fit(X, y)
        assert gbm.train_losses_[-1] < gbm.train_losses_[0]

    def test_early_stopping_limits_trees(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(
            n_estimators=200, learning_rate=0.5, early_stopping_rounds=3
        ).fit(X[:100], y[:100])
        assert len(gbm.trees_) <= 200

    def test_feature_importances_sum_to_one(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=20).fit(X, y)
        importances = gbm.feature_importances()
        assert importances.shape == (X.shape[1],)
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > importances[-1]  # x0 is the dominant feature

    def test_huber_objective_robust_to_outliers(self, regression_data):
        X, y = regression_data
        y_out = y.copy()
        y_out[::25] += 50.0
        huber = GradientBoostingRegressor(n_estimators=40, objective=HuberObjective(1.0))
        huber.fit(X[:400], y_out[:400])
        pred = huber.predict(X[400:])
        assert np.corrcoef(pred, y[400:])[0, 1] > 0.8

    def test_subsample_and_colsample(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=20, subsample=0.5, colsample=0.5).fit(X, y)
        assert np.corrcoef(gbm.predict(X), y)[0, 1] > 0.7

    def test_staged_predict_shape(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=10).fit(X[:100], y[:100])
        stages = gbm.staged_predict(X[:20])
        assert stages.shape == (10, 20)


class TestGroupedMaxObjective:
    def test_recovers_max_structure(self):
        rng = np.random.default_rng(2)
        groups = np.repeat(np.arange(150), 3)
        X = rng.normal(size=(450, 4))
        path_value = X @ np.array([2.0, -1.0, 0.5, 0.0])
        labels = np.array([path_value[groups == g].max() for g in range(150)])
        objective = GroupedMaxSquaredError(groups, labels)
        gbm = GradientBoostingRegressor(n_estimators=60, max_depth=3, objective=objective)
        gbm.fit(X, objective.row_targets())
        predicted = group_max(gbm.predict(X), groups, 150)
        assert np.corrcoef(predicted, labels)[0, 1] > 0.95

    def test_invalid_group_ids_rejected(self):
        with pytest.raises(ValueError):
            GroupedMaxSquaredError(np.array([0, 1, 5]), np.array([1.0, 2.0]))


def _variance_split_gain(X, y, weights, feature, threshold):
    """Reference weighted variance-reduction gain of one split."""

    def half_score(mask):
        w = weights[mask]
        return float(np.dot(y[mask], w)) ** 2 / max(float(w.sum()), 1e-12)

    mask = X[:, feature] <= threshold
    parent = float(np.dot(y, weights)) ** 2 / max(float(weights.sum()), 1e-12)
    return half_score(mask) + half_score(~mask) - parent


class TestBinning:
    def test_low_cardinality_gets_one_bin_per_value(self):
        X = np.array([[0.0], [2.0], [2.0], [5.0], [9.0]])
        binned = bin_feature_matrix(X, max_bins=256)
        assert len(binned.cuts[0]) == 3  # 4 distinct values -> 3 cut points
        assert list(binned.codes[:, 0]) == [0, 1, 1, 2, 3]

    def test_codes_are_monotone_in_value(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(3000, 2))
        binned = bin_feature_matrix(X, max_bins=16)
        for feature in range(2):
            order = np.argsort(X[:, feature])
            codes = binned.codes[order, feature].astype(int)
            assert np.all(np.diff(codes) >= 0)
            assert codes.max() <= 15

    def test_cut_points_partition_like_thresholds(self):
        rng = np.random.default_rng(1)
        column = rng.normal(size=(500, 1))
        binned = bin_feature_matrix(column, max_bins=8)
        for index, cut in enumerate(binned.cuts[0]):
            assert np.array_equal(
                binned.codes[:, 0] <= index, column[:, 0] <= cut
            )

    def test_env_knob_overrides_budget(self, monkeypatch):
        monkeypatch.setenv(BINS_ENV_VAR, "32")
        assert resolve_max_bins() == 32
        assert resolve_max_bins(8) == 8  # explicit argument wins
        monkeypatch.setenv(BINS_ENV_VAR, "100000")
        assert resolve_max_bins() == 256  # uint8 ceiling
        monkeypatch.setenv(BINS_ENV_VAR, "garbage")
        assert resolve_max_bins() == 256


class TestSplitterEquivalence:
    """Histogram vs exact split finding on bin-exact (low-cardinality) data."""

    def _data(self, seed=3, rows=400):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 25, size=(rows, 5)).astype(float)
        y = X @ np.array([1.0, -2.0, 0.5, 0.0, 3.0]) + rng.normal(size=rows)
        return X, y

    def test_identical_predictions_with_tied_values(self):
        X, y = self._data()
        exact = DecisionTreeRegressor(splitter="exact", max_depth=6).fit(X, y)
        hist = DecisionTreeRegressor(splitter="hist", max_depth=6).fit(X, y)
        assert np.array_equal(exact.predict(X), hist.predict(X))
        assert exact.n_leaves() == hist.n_leaves()

    def test_constant_column_never_split(self):
        X, y = self._data()
        X[:, 3] = 7.0
        for splitter in ("exact", "hist"):
            tree = DecisionTreeRegressor(splitter=splitter, max_depth=6).fit(X, y)
            stack = [tree.root_]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    continue
                assert node.feature != 3
                stack.extend([node.left, node.right])

    def test_all_constant_features_give_single_leaf(self):
        X = np.full((30, 3), 2.0)
        y = np.arange(30, dtype=float)
        for splitter in ("exact", "hist"):
            tree = DecisionTreeRegressor(
                splitter=splitter, max_depth=5, min_samples_split=2
            ).fit(X, y)
            assert tree.n_leaves() == 1

    def test_root_split_gains_match_with_weights(self):
        X, y = self._data(seed=11)
        rng = np.random.default_rng(4)
        weights = rng.uniform(0.1, 3.0, size=len(y))
        exact = DecisionTreeRegressor(splitter="exact", max_depth=1, min_samples_leaf=1)
        hist = DecisionTreeRegressor(splitter="hist", max_depth=1, min_samples_leaf=1)
        exact.fit(X, y, sample_weight=weights)
        hist.fit(X, y, sample_weight=weights)
        assert not exact.root_.is_leaf and not hist.root_.is_leaf
        gain_exact = _variance_split_gain(
            X, y, weights, exact.root_.feature, exact.root_.threshold
        )
        gain_hist = _variance_split_gain(
            X, y, weights, hist.root_.feature, hist.root_.threshold
        )
        assert gain_hist == pytest.approx(gain_exact, rel=1e-9)
        # The chosen partitions are identical, not just equally good.
        assert exact.root_.feature == hist.root_.feature
        assert np.array_equal(
            X[:, exact.root_.feature] <= exact.root_.threshold,
            X[:, hist.root_.feature] <= hist.root_.threshold,
        )

    def test_weighted_fit_predictions_match(self):
        X, y = self._data(seed=5)
        rng = np.random.default_rng(6)
        weights = rng.uniform(0.1, 4.0, size=len(y))
        exact = DecisionTreeRegressor(splitter="exact", max_depth=5).fit(
            X, y, sample_weight=weights
        )
        hist = DecisionTreeRegressor(splitter="hist", max_depth=5).fit(
            X, y, sample_weight=weights
        )
        assert np.allclose(exact.predict(X), hist.predict(X))

    def test_newton_trees_identical_on_binned_data(self):
        X, y = self._data(seed=7)
        rng = np.random.default_rng(8)
        grad = y - rng.normal(size=len(y))
        hess = rng.uniform(0.5, 2.0, size=len(y))
        exact = NewtonTreeRegressor(splitter="exact", max_depth=5)
        hist = NewtonTreeRegressor(splitter="hist", max_depth=5)
        exact.fit_gradients(X, grad, hess)
        hist.fit_gradients(X, grad, hess)
        assert np.array_equal(exact.predict(X), hist.predict(X))

    def test_gbm_metrics_close_on_continuous_data(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(800, 6))
        y = 2.0 * X[:, 0] - X[:, 1] + np.sin(X[:, 2]) + 0.1 * rng.normal(size=800)
        exact = GradientBoostingRegressor(n_estimators=30, splitter="exact").fit(
            X[:600], y[:600]
        )
        hist = GradientBoostingRegressor(n_estimators=30, splitter="hist").fit(
            X[:600], y[:600]
        )
        mse_exact = np.mean((exact.predict(X[600:]) - y[600:]) ** 2)
        mse_hist = np.mean((hist.predict(X[600:]) - y[600:]) ** 2)
        assert mse_hist <= mse_exact * 1.25
        assert np.corrcoef(exact.predict(X[600:]), hist.predict(X[600:]))[0, 1] > 0.98

    def test_unknown_splitter_rejected(self):
        X = np.zeros((10, 2))
        y = np.arange(10, dtype=float)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(splitter="bogus").fit(X, y)
        with pytest.raises(ValueError):
            NewtonTreeRegressor(splitter="bogus").fit(X, y)

    def test_small_bin_budget_still_learns(self):
        rng = np.random.default_rng(10)
        X = rng.normal(size=(600, 4))
        y = 3.0 * X[:, 0] + X[:, 1]
        tree = DecisionTreeRegressor(splitter="hist", max_bins=8, max_depth=6).fit(X, y)
        assert np.corrcoef(tree.predict(X), y)[0, 1] > 0.9


class TestFlatPredict:
    def test_flat_matches_recursive_on_randomized_trees(self):
        rng = np.random.default_rng(12)
        for seed in range(8):
            X = rng.normal(size=(300, 4))
            y = rng.normal(size=300) + X[:, seed % 4]
            splitter = "hist" if seed % 2 == 0 else "exact"
            tree = DecisionTreeRegressor(
                splitter=splitter,
                max_depth=int(rng.integers(1, 9)),
                min_samples_leaf=int(rng.integers(1, 6)),
                seed=seed,
            ).fit(X, y)
            fresh = rng.normal(size=(200, 4))
            assert np.array_equal(tree.predict(X), tree.predict_recursive(X))
            assert np.array_equal(tree.predict(fresh), tree.predict_recursive(fresh))

    def test_flat_tree_arrays_consistent(self):
        rng = np.random.default_rng(13)
        X = rng.normal(size=(200, 3))
        y = X[:, 0] * 2.0 + rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        flat = tree.flat_
        leaves = flat.feature < 0
        assert leaves.sum() == tree.n_leaves()
        interior = ~leaves
        # Children of interior nodes point strictly forward (preorder layout).
        assert np.all(flat.left[interior] > np.nonzero(interior)[0])
        assert np.all(flat.right[interior] > np.nonzero(interior)[0])

    def test_training_predictions_match_predict(self):
        rng = np.random.default_rng(14)
        X = rng.normal(size=(250, 4))
        y = X[:, 1] - X[:, 2] + rng.normal(size=250)
        tree = DecisionTreeRegressor(splitter="hist", max_depth=5).fit(X, y)
        assert np.array_equal(tree.training_predictions_, tree.predict(X))
        newton = NewtonTreeRegressor(splitter="hist", max_depth=5).fit(X, y)
        assert np.array_equal(newton.training_predictions_, newton.predict(X))

    def test_single_leaf_tree_predicts_constant(self):
        X = np.zeros((10, 2))
        y = np.full(10, 3.5)
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(np.random.default_rng(0).normal(size=(5, 2))), 3.5)

    @pytest.mark.parametrize("splitter", ["hist", "exact"])
    def test_single_leaf_flat_matches_recursive(self, splitter):
        """A one-node FlatTree routes nothing and still mirrors the reference."""
        X = np.arange(12, dtype=float).reshape(-1, 2)
        y = np.full(6, -2.25)
        tree = DecisionTreeRegressor(splitter=splitter, max_depth=4).fit(X, y)
        assert tree.flat_.n_nodes == 1
        fresh = np.random.default_rng(1).normal(size=(7, 2))
        assert np.array_equal(tree.predict(fresh), tree.predict_recursive(fresh))

    @pytest.mark.parametrize("splitter", ["hist", "exact"])
    def test_empty_predict_matrix(self, splitter, regression_data):
        """Predicting zero rows returns an empty vector, bit-identical paths."""
        X, y = regression_data
        tree = DecisionTreeRegressor(splitter=splitter, max_depth=4).fit(X, y)
        empty = np.empty((0, X.shape[1]))
        flat = tree.predict(empty)
        recursive = tree.predict_recursive(empty)
        assert flat.shape == recursive.shape == (0,)
        assert np.array_equal(flat, recursive)

    @pytest.mark.parametrize("splitter", ["hist", "exact"])
    def test_all_constant_feature_column_never_split(self, splitter):
        """A constant column offers no cut; both predict paths still agree."""
        rng = np.random.default_rng(21)
        X = np.column_stack([np.full(120, 7.5), rng.normal(size=120)])
        y = 3.0 * X[:, 1] + rng.normal(size=120) * 0.1
        tree = DecisionTreeRegressor(splitter=splitter, max_depth=5).fit(X, y)
        assert not np.any(tree.flat_.feature == 0), "constant column must never split"
        assert np.array_equal(tree.predict(X), tree.predict_recursive(X))

    @pytest.mark.parametrize("splitter", ["hist", "exact"])
    @pytest.mark.parametrize("max_depth", [1, 2])
    def test_depth_limit_boundary(self, splitter, max_depth, regression_data):
        """At the depth cap the deepest interior node still flattens correctly."""
        X, y = regression_data
        tree = DecisionTreeRegressor(
            splitter=splitter, max_depth=max_depth, min_samples_leaf=1
        ).fit(X, y)
        assert tree.depth() == max_depth
        assert tree.flat_.n_nodes <= 2 ** (max_depth + 1) - 1
        fresh = np.random.default_rng(22).normal(size=(150, X.shape[1]))
        assert np.array_equal(tree.predict(X), tree.predict_recursive(X))
        assert np.array_equal(tree.predict(fresh), tree.predict_recursive(fresh))
@given(
    st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)), min_size=10, max_size=40
    )
)
def test_tree_predictions_within_target_range(pairs):
    """A regression tree never extrapolates beyond the observed target range."""
    X = np.array([[a] for a, _ in pairs])
    y = np.array([b for _, b in pairs])
    tree = DecisionTreeRegressor(max_depth=4, min_samples_leaf=1, min_samples_split=2).fit(X, y)
    predictions = tree.predict(X)
    assert predictions.min() >= y.min() - 1e-6
    assert predictions.max() <= y.max() + 1e-6
