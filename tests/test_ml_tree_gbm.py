"""Tests for regression trees and gradient boosting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    GroupedMaxSquaredError,
    HuberObjective,
    NewtonTreeRegressor,
    group_max,
)


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(600, 6))
    y = 2.0 * X[:, 0] - 1.5 * X[:, 1] + np.sin(X[:, 2]) + 0.1 * rng.normal(size=600)
    return X, y


class TestDecisionTree:
    def test_fits_constant_data(self):
        X = np.zeros((20, 3))
        y = np.full(20, 5.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), 5.0)

    def test_perfect_split_on_single_feature(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]] * 5)
        y = np.array([0.0, 0.0, 1.0, 1.0] * 5)
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=1, min_samples_split=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_max_depth_zero_gives_single_leaf(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert tree.n_leaves() == 1
        assert tree.depth() == 0

    def test_depth_respected(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=50).fit(X, y)
        assert tree.n_leaves() <= len(y) // 50 + 1

    def test_improves_over_mean_prediction(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=6).fit(X[:400], y[:400])
        pred = tree.predict(X[400:])
        mse_tree = np.mean((pred - y[400:]) ** 2)
        mse_mean = np.mean((y[:400].mean() - y[400:]) ** 2)
        assert mse_tree < mse_mean

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((2, 2)))


class TestNewtonTree:
    def test_newton_leaf_value_matches_mean_for_squared_loss(self):
        X = np.zeros((10, 1))
        y = np.arange(10, dtype=float)
        tree = NewtonTreeRegressor(max_depth=0, reg_lambda=0.0).fit(X, y)
        assert tree.predict(X[:1])[0] == pytest.approx(y.mean())

    def test_regularization_shrinks_leaves(self):
        X = np.zeros((10, 1))
        y = np.full(10, 4.0)
        tree = NewtonTreeRegressor(max_depth=0, reg_lambda=10.0).fit(X, y)
        assert 0 < tree.predict(X[:1])[0] < 4.0


class TestGradientBoosting:
    def test_beats_single_tree(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=3).fit(X[:400], y[:400])
        gbm = GradientBoostingRegressor(n_estimators=50, max_depth=3).fit(X[:400], y[:400])
        mse_tree = np.mean((tree.predict(X[400:]) - y[400:]) ** 2)
        mse_gbm = np.mean((gbm.predict(X[400:]) - y[400:]) ** 2)
        assert mse_gbm < mse_tree

    def test_training_loss_decreases(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=30).fit(X, y)
        assert gbm.train_losses_[-1] < gbm.train_losses_[0]

    def test_early_stopping_limits_trees(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(
            n_estimators=200, learning_rate=0.5, early_stopping_rounds=3
        ).fit(X[:100], y[:100])
        assert len(gbm.trees_) <= 200

    def test_feature_importances_sum_to_one(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=20).fit(X, y)
        importances = gbm.feature_importances()
        assert importances.shape == (X.shape[1],)
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > importances[-1]  # x0 is the dominant feature

    def test_huber_objective_robust_to_outliers(self, regression_data):
        X, y = regression_data
        y_out = y.copy()
        y_out[::25] += 50.0
        huber = GradientBoostingRegressor(n_estimators=40, objective=HuberObjective(1.0))
        huber.fit(X[:400], y_out[:400])
        pred = huber.predict(X[400:])
        assert np.corrcoef(pred, y[400:])[0, 1] > 0.8

    def test_subsample_and_colsample(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=20, subsample=0.5, colsample=0.5).fit(X, y)
        assert np.corrcoef(gbm.predict(X), y)[0, 1] > 0.7

    def test_staged_predict_shape(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=10).fit(X[:100], y[:100])
        stages = gbm.staged_predict(X[:20])
        assert stages.shape == (10, 20)


class TestGroupedMaxObjective:
    def test_recovers_max_structure(self):
        rng = np.random.default_rng(2)
        groups = np.repeat(np.arange(150), 3)
        X = rng.normal(size=(450, 4))
        path_value = X @ np.array([2.0, -1.0, 0.5, 0.0])
        labels = np.array([path_value[groups == g].max() for g in range(150)])
        objective = GroupedMaxSquaredError(groups, labels)
        gbm = GradientBoostingRegressor(n_estimators=60, max_depth=3, objective=objective)
        gbm.fit(X, objective.row_targets())
        predicted = group_max(gbm.predict(X), groups, 150)
        assert np.corrcoef(predicted, labels)[0, 1] > 0.95

    def test_invalid_group_ids_rejected(self):
        with pytest.raises(ValueError):
            GroupedMaxSquaredError(np.array([0, 1, 5]), np.array([1.0, 2.0]))


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)), min_size=10, max_size=40
    )
)
def test_tree_predictions_within_target_range(pairs):
    """A regression tree never extrapolates beyond the observed target range."""
    X = np.array([[a] for a, _ in pairs])
    y = np.array([b for _, b in pairs])
    tree = DecisionTreeRegressor(max_depth=4, min_samples_leaf=1, min_samples_split=2).fit(X, y)
    predictions = tree.predict(X)
    assert predictions.min() >= y.min() - 1e-6
    assert predictions.max() <= y.max() + 1e-6
