"""Tests for the fold-aware path-feature cache."""

import numpy as np
import pytest

from repro.core.feature_cache import (
    CACHE_HIT_STAGE,
    FEATURE_CACHE_DISK_ENV_VAR,
    FEATURE_CACHE_ENV_VAR,
    PathFeatureCache,
    path_feature_cache,
    path_dataset_key,
    record_fingerprint_cached,
    reset_feature_cache,
)
from repro.core.features import extract_path_dataset
from repro.core.sampling import SamplingConfig
from repro.runtime import RuntimeReport, activate
from repro.runtime.cache import record_fingerprint

EXTRACT_STAGE = "features.extract_path_dataset"


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Fresh cache per test, with the disk layer pointed at a temp directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_feature_cache()
    yield
    reset_feature_cache()


def _datasets_equal(a, b):
    assert np.array_equal(a.features, b.features)
    assert np.array_equal(a.groups, b.groups)
    assert np.array_equal(a.endpoint_labels, b.endpoint_labels)
    assert a.endpoint_names == b.endpoint_names
    assert a.endpoint_signals == b.endpoint_signals
    assert len(a.tokens) == len(b.tokens)
    for ta, tb in zip(a.tokens, b.tokens):
        assert np.array_equal(ta, tb)


class TestCacheHits:
    def test_hit_returns_identical_arrays(self, tiny_record):
        report = RuntimeReport()
        with activate(report):
            miss = extract_path_dataset(tiny_record, "sog", SamplingConfig())
            hit = extract_path_dataset(tiny_record, "sog", SamplingConfig())
        _datasets_equal(miss, hit)
        assert report.stage_calls[EXTRACT_STAGE] == 1
        assert report.stage_calls[CACHE_HIT_STAGE] == 1
        assert report.counters["feature_cache_misses"] == 1
        assert report.counters["feature_cache_hits"] == 1

    def test_hit_matches_uncached_extraction(self, tiny_record, monkeypatch):
        cached = extract_path_dataset(tiny_record, "sog", SamplingConfig())
        monkeypatch.setenv(FEATURE_CACHE_ENV_VAR, "0")
        reset_feature_cache()
        uncached = extract_path_dataset(tiny_record, "sog", SamplingConfig())
        _datasets_equal(cached, uncached)

    def test_disk_layer_survives_memory_clear(self, tiny_record):
        report = RuntimeReport()
        with activate(report):
            first = extract_path_dataset(tiny_record, "sog", SamplingConfig())
            path_feature_cache().clear()
            second = extract_path_dataset(tiny_record, "sog", SamplingConfig())
        _datasets_equal(first, second)
        assert report.stage_calls[EXTRACT_STAGE] == 1  # the disk layer answered
        assert report.counters["feature_disk_hits"] == 1

    def test_memory_only_mode_reextracts_after_clear(self, tiny_record, monkeypatch):
        monkeypatch.setenv(FEATURE_CACHE_DISK_ENV_VAR, "0")
        reset_feature_cache()
        report = RuntimeReport()
        with activate(report):
            extract_path_dataset(tiny_record, "sog", SamplingConfig())
            path_feature_cache().clear()
            extract_path_dataset(tiny_record, "sog", SamplingConfig())
        assert report.stage_calls[EXTRACT_STAGE] == 2
        assert "feature_disk_stores" not in report.counters

    def test_disabled_cache_always_extracts(self, tiny_record, monkeypatch):
        monkeypatch.setenv(FEATURE_CACHE_ENV_VAR, "0")
        reset_feature_cache()
        assert path_feature_cache() is None
        report = RuntimeReport()
        with activate(report):
            extract_path_dataset(tiny_record, "sog", SamplingConfig())
            extract_path_dataset(tiny_record, "sog", SamplingConfig())
        assert report.stage_calls[EXTRACT_STAGE] == 2
        assert CACHE_HIT_STAGE not in report.stage_calls


class TestKeys:
    def test_key_depends_on_variant_sampling_and_endpoints(self, tiny_record):
        base = path_dataset_key(tiny_record, "sog", SamplingConfig(), None)
        assert path_dataset_key(tiny_record, "aig", SamplingConfig(), None) != base
        assert (
            path_dataset_key(tiny_record, "sog", SamplingConfig(seed=5), None) != base
        )
        assert (
            path_dataset_key(tiny_record, "sog", SamplingConfig(use_sampling=False), None)
            != base
        )
        subset = tiny_record.endpoint_names[:2]
        assert path_dataset_key(tiny_record, "sog", SamplingConfig(), subset) != base

    def test_key_differs_across_records(self, tiny_records):
        keys = {
            path_dataset_key(record, "sog", SamplingConfig(), None)
            for record in tiny_records
        }
        assert len(keys) == len(tiny_records)

    def test_fingerprint_memoized_on_record(self, tiny_record):
        value = record_fingerprint_cached(tiny_record)
        assert value == f"fp:{record_fingerprint(tiny_record)}"
        assert tiny_record.__dict__["_feature_fingerprint"] == value
        assert record_fingerprint_cached(tiny_record) == value

    def test_engine_built_records_reuse_content_key(self, tiny_record):
        import copy

        record = copy.copy(tiny_record)
        record.__dict__.pop("_feature_fingerprint", None)
        record.__dict__["_content_key"] = "abc123"
        assert record_fingerprint_cached(record) == "key:abc123"


class TestFoldCollapse:
    def test_cv_reextraction_collapses_to_one_call_per_design_variant(self, tiny_records):
        """The satellite guarantee: folds share one extraction per (design, variant)."""
        variants = ("sog", "aig")
        sampling = SamplingConfig()
        report = RuntimeReport()
        with activate(report):
            for fold in range(3):
                train = [r for i, r in enumerate(tiny_records) if i % 3 != fold]
                for record in train:
                    for variant in variants:
                        extract_path_dataset(record, variant, sampling)
        # Every record sits in exactly 2 of the 3 training folds.
        total_calls = 2 * len(tiny_records) * len(variants)
        unique = len(tiny_records) * len(variants)
        assert report.stage_calls[EXTRACT_STAGE] == unique
        assert report.stage_calls[CACHE_HIT_STAGE] == total_calls - unique
        assert report.counters["feature_cache_hits"] == total_calls - unique


class TestFailurePaths:
    def test_corrupted_disk_entry_recomputes_and_repairs(self, tiny_record):
        """A torn on-disk entry must fall back to extraction and be rewritten."""
        sampling = SamplingConfig()
        first = extract_path_dataset(tiny_record, "sog", sampling)
        cache = path_feature_cache()
        key = path_dataset_key(tiny_record, "sog", sampling, None)
        entry = cache.disk.path_for(key)
        assert entry.exists()
        entry.write_bytes(b"\x80\x04 definitely not a pickle")
        cache.clear()  # force the lookup through the (corrupt) disk layer
        report = RuntimeReport()
        with activate(report):
            second = extract_path_dataset(tiny_record, "sog", sampling)
        _datasets_equal(first, second)
        assert report.stage_calls[EXTRACT_STAGE] == 1  # recomputed, not served
        assert report.counters["feature_disk_corrupt"] == 1
        # The entry was repaired in place: a fresh cold lookup hits disk again.
        cache.clear()
        report = RuntimeReport()
        with activate(report):
            third = extract_path_dataset(tiny_record, "sog", sampling)
        _datasets_equal(first, third)
        assert EXTRACT_STAGE not in report.stage_calls
        assert report.counters["feature_disk_hits"] == 1

    def test_lru_eviction_order_under_interleaved_fold_access(self):
        """Fold-style interleaved reuse keeps hot entries, evicts stale folds."""
        cache = PathFeatureCache(max_entries=3, disk=False)
        extractions = []

        def extractor(key):
            def run():
                extractions.append(key)
                return f"dataset-{key}"

            return run

        # Fold 1 touches a,b,c; fold 2 re-touches a,c (b now coldest), then
        # brings in d, which must evict exactly b.
        for key in ("a", "b", "c", "a", "c"):
            cache.get_or_extract(key, extractor(key))
        cache.get_or_extract("d", extractor("d"))
        assert extractions == ["a", "b", "c", "d"]
        assert cache.get_or_extract("a", extractor("a")) == "dataset-a"
        assert cache.get_or_extract("c", extractor("c")) == "dataset-c"
        assert extractions == ["a", "b", "c", "d"]  # a and c were retained
        assert cache.get_or_extract("b", extractor("b")) == "dataset-b"
        assert extractions == ["a", "b", "c", "d", "b"]  # b was the eviction

    def test_unwritable_disk_layer_degrades_to_memory(self, tiny_record, tmp_path):
        """A read-only cache directory must not break extraction."""
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = PathFeatureCache(directory=blocked / "features", disk=True)
        value = cache.get_or_extract("key", lambda: "computed")
        assert value == "computed"
        assert cache.get_or_extract("key", lambda: "recomputed") == "computed"


class TestEviction:
    def test_memory_layer_bounded(self, tiny_records):
        cache = PathFeatureCache(max_entries=2, disk=False)
        for index, record in enumerate(tiny_records[:4]):
            cache.get_or_extract(str(index), lambda r=record: r.name)
        assert cache.n_memory_entries == 2

    def test_lru_keeps_recently_used(self):
        cache = PathFeatureCache(max_entries=2, disk=False)
        cache.get_or_extract("a", lambda: 1)
        cache.get_or_extract("b", lambda: 2)
        cache.get_or_extract("a", lambda: None)  # refresh "a"
        cache.get_or_extract("c", lambda: 3)  # evicts "b"
        assert cache.get_or_extract("a", lambda: "rebuilt") == 1
        assert cache.get_or_extract("b", lambda: "rebuilt") == "rebuilt"
