"""Tests for the liberty-like cell library."""

import pytest

from repro.liberty import nangate45_like, pseudo_library


@pytest.fixture(scope="module")
def lib():
    return nangate45_like()


def test_library_contains_core_functions(lib):
    for function in ["INV", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "MUX2", "DFF"]:
        assert function in lib
        assert lib.variants(function)


def test_drive_strengths_ordered(lib):
    variants = lib.variants("NAND2")
    drives = [cell.drive for cell in variants]
    assert drives == sorted(drives)


def test_upsize_and_downsize(lib):
    weakest = lib.variants("INV")[0]
    stronger = lib.upsize(weakest)
    assert stronger is not None and stronger.drive > weakest.drive
    assert lib.downsize(weakest) is None
    strongest = lib.variants("INV")[-1]
    assert lib.upsize(strongest) is None


def test_stronger_cells_drive_loads_faster(lib):
    weak = lib.pick("NAND2", drive=1)
    strong = lib.pick("NAND2", drive=4)
    load = 30.0
    assert strong.delay(20.0, load) < weak.delay(20.0, load)
    assert strong.area > weak.area
    assert strong.leakage > weak.leakage


def test_delay_monotone_in_load_and_slew(lib):
    cell = lib.pick("XOR2")
    assert cell.delay(20.0, 10.0) < cell.delay(20.0, 20.0)
    assert cell.delay(10.0, 10.0) < cell.delay(40.0, 10.0)
    assert cell.output_slew(5.0) < cell.output_slew(50.0)


def test_sequential_cell_attributes(lib):
    dff = lib.pick("DFF")
    assert dff.is_sequential
    assert dff.clk_to_q > 0
    assert dff.setup_time > 0


def test_unknown_function_raises(lib):
    with pytest.raises(KeyError):
        lib.variants("NAND17")


def test_pick_closest_drive(lib):
    assert lib.pick("INV", drive=3).drive in (2, 4)


def test_pseudo_library_covers_bog_operators():
    pseudo = pseudo_library()
    for function in ["AND", "OR", "XOR", "NOT", "MUX", "REG"]:
        assert function in pseudo
    assert pseudo.pick("REG").is_sequential


def test_decomposition_delay_gap(lib):
    """AND2 is noticeably slower than NAND2+INV (the mapping noise source)."""
    and2 = lib.pick("AND2")
    nand = lib.pick("NAND2")
    inv = lib.pick("INV")
    load, slew = 5.0, 20.0
    direct = and2.delay(slew, load)
    decomposed = nand.delay(slew, inv.input_cap) + inv.delay(nand.output_slew(inv.input_cap), load)
    assert abs(direct - decomposed) > 1.0


def test_dynamic_energy_positive(lib):
    assert lib.pick("BUF").dynamic_energy(10.0) > 0.0
