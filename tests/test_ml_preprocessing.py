"""Tests for scalers and cross-validation utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import MinMaxScaler, StandardScaler, TargetScaler, group_kfold, leave_one_group_out, train_test_split


def test_standard_scaler_zero_mean_unit_variance():
    rng = np.random.default_rng(0)
    X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
    scaled = StandardScaler().fit_transform(X)
    assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)


def test_standard_scaler_roundtrip():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(50, 3))
    scaler = StandardScaler().fit(X)
    assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)


def test_standard_scaler_constant_column():
    X = np.column_stack([np.ones(10), np.arange(10.0)])
    scaled = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(scaled))


def test_minmax_scaler_range():
    rng = np.random.default_rng(2)
    X = rng.uniform(-10, 10, size=(100, 2))
    scaled = MinMaxScaler().fit_transform(X)
    assert scaled.min() >= 0.0 and scaled.max() <= 1.0


def test_target_scaler_roundtrip():
    y = np.array([10.0, 20.0, 30.0])
    scaler = TargetScaler().fit(y)
    assert np.allclose(scaler.inverse_transform(scaler.transform(y)), y)


def test_train_test_split_sizes_and_disjoint():
    X = np.arange(100).reshape(-1, 1).astype(float)
    y = np.arange(100).astype(float)
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.3, seed=1)
    assert len(X_te) == 30 and len(X_tr) == 70
    assert set(y_tr.tolist()).isdisjoint(y_te.tolist())


def test_group_kfold_never_splits_a_group():
    groups = np.repeat([f"d{i}" for i in range(9)], 7)
    for train_idx, test_idx in group_kfold(groups, n_splits=3, seed=0):
        train_groups = set(groups[train_idx])
        test_groups = set(groups[test_idx])
        assert train_groups.isdisjoint(test_groups)
        assert len(train_idx) + len(test_idx) == len(groups)


def test_group_kfold_covers_every_group_exactly_once():
    groups = np.repeat([f"d{i}" for i in range(10)], 3)
    seen = []
    for _, test_idx in group_kfold(groups, n_splits=5, seed=3):
        seen.extend(sorted(set(groups[test_idx])))
    assert sorted(seen) == sorted(set(groups))


def test_group_kfold_requires_two_splits():
    with pytest.raises(ValueError):
        list(group_kfold(["a", "b"], n_splits=1))


def test_leave_one_group_out():
    groups = ["a"] * 3 + ["b"] * 2 + ["c"] * 4
    folds = list(leave_one_group_out(groups))
    assert len(folds) == 3
    for train_idx, test_idx, group in folds:
        assert all(groups[i] == group for i in test_idx)
        assert all(groups[i] != group for i in train_idx)
@given(st.lists(st.floats(-1e3, 1e3), min_size=5, max_size=40, unique=True))
def test_standard_scaler_is_monotone(values):
    X = np.array(values).reshape(-1, 1)
    scaled = StandardScaler().fit_transform(X).ravel()
    order = np.argsort(np.array(values), kind="stable")
    assert np.all(np.diff(scaled[order]) >= -1e-12)
