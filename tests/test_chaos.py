"""Chaos campaigns: invariants under injected faults, seed replayability."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.core import RTLTimer
from repro.runtime.report import RuntimeReport
from repro.serve.chaos import (
    DEFAULT_FAULTS,
    FAULT_EVIDENCE,
    ChaosConfig,
    ChaosResult,
    run_campaign,
    write_bundle,
)
from tests.test_registry import TINY_TIMER_CONFIG

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos campaigns need the fork start method",
)


@pytest.fixture(scope="module")
def chaos_timer(tiny_records):
    return RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:4])


def _campaign(**overrides) -> ChaosConfig:
    defaults = dict(
        seed=3,
        requests=18,
        concurrency=3,
        workers=2,
        designs=3,
        deadline_s=30.0,
        recovery_timeout_s=30.0,
        hang_timeout_s=1.0,
        heartbeat_timeout_s=2.0,
        backoff_max_s=0.2,
    )
    defaults.update(overrides)
    return ChaosConfig(**defaults)


def test_baseline_campaign_is_clean(chaos_timer, tiny_records):
    """No faults: every request correct, nothing shed, instant recovery."""
    result = run_campaign(
        _campaign(faults={}), records=tiny_records, timer=chaos_timer
    )
    assert result.ok, result.violations
    assert result.wrong == 0 and result.failed == 0
    assert result.correct == result.accepted == result.requests
    assert result.availability == 1.0


def test_faulted_campaign_holds_invariants(chaos_timer, tiny_records):
    """The full fault mix: zero wrong answers, zero lost accepted requests,
    availability at the floor, recovery in bound, every ladder step hit."""
    report = RuntimeReport()
    result = run_campaign(
        _campaign(faults=dict(DEFAULT_FAULTS)),
        records=tiny_records,
        timer=chaos_timer,
        report=report,
    )
    assert result.ok, result.violations
    assert result.wrong == 0 and result.failed == 0
    assert result.availability >= 0.99
    assert result.recovery_s <= 30.0
    # Every configured fault left its ladder evidence (directed sweep
    # guarantees this even for seeds where the probabilistic phase missed).
    for fault in DEFAULT_FAULTS:
        evidence = FAULT_EVIDENCE[fault]
        assert any(report.counters.get(name, 0) > 0 for name in evidence), fault
    # Stages the CI trend gate consumes.
    for stage in (
        "serve.chaos_campaign",
        "serve.chaos_p99",
        "serve.chaos_recovery",
        "serve.availability",
    ):
        assert stage in report.stages


def test_campaign_is_seed_replayable(chaos_timer, tiny_records):
    """Two runs of the same seed draw the same worker-fault pattern."""
    faults = {"worker.crash": 0.2}
    runs = []
    for _ in range(2):
        report = RuntimeReport()
        result = run_campaign(
            _campaign(seed=5, requests=12, concurrency=1, faults=faults),
            records=tiny_records,
            timer=chaos_timer,
            report=report,
        )
        assert result.ok, result.violations
        runs.append(report.counters.get("serve_worker_deaths", 0))
    # Serialized traffic (concurrency=1) makes request ids, and therefore
    # crash draws, line up between runs.
    assert runs[0] == runs[1] > 0


def test_violated_campaign_writes_replayable_bundle(tmp_path):
    result = ChaosResult(config=_campaign(faults={"worker.crash": 1.0}))
    result.violations.append("synthetic violation")
    path = write_bundle(result, tmp_path)
    bundle = json.loads(path.read_text())
    assert bundle["schema"] == "repro-chaos-bundle/1"
    assert bundle["replay"]["seed"] == result.config.seed
    assert bundle["replay"]["faults"] == {"worker.crash": 1.0}
    assert bundle["result"]["ok"] is False
