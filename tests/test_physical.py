"""Tests for the placement and post-placement optimization substrate."""

import pytest

from repro.bog.builder import build_sog
from repro.physical import (
    WIRE_CAP_PER_UM,
    apply_wire_loads,
    clear_wire_loads,
    place,
    place_and_optimize,
)
from repro.sta import ClockConstraint, analyze
from repro.synth import map_to_netlist


@pytest.fixture()
def netlist(simple_design):
    return map_to_netlist(build_sog(simple_design), seed=11)


@pytest.fixture()
def placement(netlist):
    return place(netlist, seed=1)


def test_all_vertices_placed_inside_die(netlist, placement):
    assert len(placement.positions) == len(netlist.vertices)
    for x, y in placement.positions.values():
        assert 0.0 <= x <= placement.die_width
        assert 0.0 <= y <= placement.die_height


def test_placement_is_deterministic(netlist):
    first = place(netlist, seed=3)
    second = place(netlist, seed=3)
    assert first.positions == second.positions


def test_wirelength_positive_and_utilization_sane(netlist, placement):
    assert placement.total_wirelength(netlist) > 0.0
    assert 0.0 < placement.utilization(netlist) <= 1.0


def test_refinement_reduces_wirelength(netlist):
    rough = place(netlist, seed=2, sweeps=0)
    refined = place(netlist, seed=2, sweeps=6)
    assert refined.total_wirelength(netlist) < rough.total_wirelength(netlist)


def test_wire_loads_degrade_timing(netlist):
    clock = ClockConstraint(period=600.0)
    before = analyze(netlist, clock)
    placement = place(netlist, seed=1)
    apply_wire_loads(netlist, placement)
    after = analyze(netlist, clock)
    assert after.summary()["max_arrival"] > before.summary()["max_arrival"]
    clear_wire_loads(netlist)
    restored = analyze(netlist, clock)
    assert restored.summary()["max_arrival"] == pytest.approx(
        before.summary()["max_arrival"]
    )


def test_wire_load_proportional_to_length(netlist, placement):
    apply_wire_loads(netlist, placement)
    for vertex in netlist.vertices:
        expected = WIRE_CAP_PER_UM * placement.wirelength(netlist, vertex.id)
        assert vertex.extra_load == pytest.approx(expected)


def test_place_and_optimize_flow(netlist):
    clock = ClockConstraint(period=500.0)
    result = place_and_optimize(netlist, clock, seed=4)
    # Placement adds wire load, post-placement optimization recovers some of it.
    assert result.post_placement.wns <= result.pre_placement.wns + 1e-9
    assert result.post_optimization.wns >= result.post_placement.wns - 1e-9
    assert result.placement.total_wirelength(netlist) > 0.0
