"""Tests for HDL slack annotation and prediction-driven optimization."""

import re

import pytest

from repro.core.annotate import annotate_design, ranking_groups
from repro.core.metrics import DEFAULT_GROUP_FRACTIONS, criticality_groups, group_boundaries
from repro.core.optimize import (
    generate_candidates,
    options_from_ranking,
    ranking_from_labels,
    run_optimization_experiment,
    run_optimization_sweep,
    summarize_outcomes,
)
from repro.hdl.parser import parse_source


class TestRankingGroups:
    def test_four_groups_assigned(self):
        scores = {f"s{i}": float(100 - i) for i in range(40)}
        groups = ranking_groups(scores)
        assert set(groups.values()) <= {1, 2, 3, 4}
        assert groups["s0"] == 1  # highest score = most critical
        assert groups["s39"] == 4

    def test_all_signals_assigned(self):
        scores = {f"s{i}": float(i) for i in range(10)}
        groups = ranking_groups(scores)
        assert set(groups) == set(scores)

    def test_tiny_rankings_start_at_group_one(self):
        """The most critical signal always lands in g1, even for tiny n."""
        for n in (1, 2, 3):
            scores = {f"s{i}": float(100 - i) for i in range(n)}
            groups = ranking_groups(scores)
            assert groups["s0"] == 1
            assert sorted(set(groups.values())) == list(range(1, len(set(groups.values())) + 1))


class TestAnnotationFallbackGroup:
    def test_unranked_signal_gets_least_critical_group(self, tiny_record):
        """Regression: a signal missing from the ranking must fall back to the
        least-critical group in use, not to the group *count* (which collides
        with a real group when fewer than four groups exist)."""
        signals = sorted(tiny_record.signal_slack_labels())
        assert len(signals) >= 3
        hot, cold, unranked = signals[0], signals[1], signals[2]
        ranking = {hot: 10.0, cold: 1.0}  # two groups: hot=g1, cold=g2
        slacks = {hot: -5.0, cold: 3.0, unranked: 1.0}
        annotated = annotate_design(
            tiny_record, slacks, ranking, {"wns": 0.0, "tns": 0.0}
        )
        ranks = dict(re.findall(r"\((\w+)\) Slack@\S+ rank@g(\d+)", annotated))
        assert ranks[hot] == "1"
        # The fallback matches the least-critical ranked signal's group...
        assert ranks[unranked] == ranks[cold]
        # ...and never collides with a more-critical group.
        assert ranks[unranked] != ranks[hot]

    def test_empty_ranking_falls_back_to_group_four(self, tiny_record):
        signal = sorted(tiny_record.signal_slack_labels())[0]
        annotated = annotate_design(
            tiny_record, {signal: 1.0}, {}, {"wns": 0.0, "tns": 0.0}
        )
        assert "rank@g4" in annotated


class TestAnnotation:
    def test_annotation_contains_header_and_signal_comments(self, tiny_record):
        signal_labels = tiny_record.signal_slack_labels()
        ranking = {s: -v for s, v in signal_labels.items()}  # worse slack = more critical
        annotated = annotate_design(
            tiny_record,
            signal_labels,
            ranking,
            {"wns": tiny_record.wns_label, "tns": tiny_record.tns_label},
        )
        assert annotated.startswith("// Tech:")
        assert "Predicted WNS" in annotated
        some_signal = next(iter(signal_labels))
        assert f"({some_signal}) Slack@" in annotated
        assert "rank@g" in annotated

    def test_annotated_source_still_parses(self, tiny_record):
        signal_labels = tiny_record.signal_slack_labels()
        ranking = {s: -v for s, v in signal_labels.items()}
        annotated = annotate_design(tiny_record, signal_labels, ranking, {"wns": 0, "tns": 0})
        module = parse_source(annotated)
        assert module.name == tiny_record.design.name

    def test_annotation_preserves_line_count(self, tiny_record):
        signal_labels = tiny_record.signal_slack_labels()
        ranking = {s: -v for s, v in signal_labels.items()}
        annotated = annotate_design(tiny_record, signal_labels, ranking, {"wns": 0, "tns": 0})
        original_lines = tiny_record.source.splitlines()
        annotated_lines = annotated.splitlines()
        assert len(annotated_lines) == len(original_lines) + 3  # three header lines


class TestOptimizationOptions:
    def test_options_from_ranking_builds_four_groups(self):
        signals = [f"sig{i}" for i in range(40)]
        options = options_from_ranking(signals)
        assert options.uses_grouping and options.uses_retiming
        assert len(options.path_groups) == 4
        grouped = [s for group in options.path_groups for s in group.signals]
        assert sorted(grouped) == sorted(signals)
        assert options.retime_signals == signals[:2]

    def test_empty_ranking_gives_default_options(self):
        options = options_from_ranking([])
        assert not options.uses_grouping and not options.uses_retiming

    @pytest.mark.parametrize("n", [1, 2, 3, 25])
    def test_group_split_matches_metric_grouping(self, n):
        """Regression: annotation grouping and synthesis options must split a
        ranking identically — both now share ``group_boundaries``."""
        signals = [f"sig{i:02d}" for i in range(n)]
        scores = [float(n - i) for i in range(n)]
        metric_sizes = [len(g) for g in criticality_groups(scores) if len(g)]
        options = options_from_ranking(signals)
        option_sizes = [len(g.signals) for g in options.path_groups]
        assert option_sizes == metric_sizes
        # Boundaries are the shared helper's output in both cases.
        boundaries = group_boundaries(n, DEFAULT_GROUP_FRACTIONS)
        assert boundaries == sorted(set(boundaries))
        assert all(1 <= b <= n for b in boundaries)
        # Every signal lands in exactly one group, most critical first.
        flattened = [s for g in options.path_groups for s in g.signals]
        assert flattened == signals

    def test_group_boundaries_tiny_and_regular(self):
        assert group_boundaries(0) == []
        assert group_boundaries(1) == [1]
        assert group_boundaries(2) == [1]
        assert group_boundaries(3) == [1, 2]
        assert group_boundaries(100) == [5, 40, 70]

    def test_ranking_from_labels_orders_by_arrival(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        labels = tiny_record.signal_labels()
        values = [labels[s] for s in ranked]
        assert values == sorted(values, reverse=True)


class TestOptimizationExperiment:
    def test_experiment_produces_comparable_runs(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        outcome = run_optimization_experiment(tiny_record, ranked, ranking_source="real")
        assert outcome.design == tiny_record.name
        assert outcome.default.qor.area > 0
        assert outcome.optimized.qor.area > 0
        row = outcome.as_row()
        assert {"wns_pct", "tns_pct", "power_pct", "area_pct"} <= set(row)

    def test_summary_avg1_avg2(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        outcome = run_optimization_experiment(tiny_record, ranked)
        summary = summarize_outcomes([outcome])
        assert "avg1_tns_pct" in summary and "avg2_tns_pct" in summary
        if outcome.improved:
            assert summary["avg1_tns_pct"] == pytest.approx(summary["avg2_tns_pct"])
        else:
            assert summary["avg2_tns_pct"] == 0.0

    def test_ranking_ties_break_on_name(self):
        class FakeRecord:
            @staticmethod
            def signal_labels():
                return {"zed": 5.0, "abe": 5.0, "mid": 7.0}

        assert ranking_from_labels(FakeRecord()) == ["mid", "abe", "zed"]


class TestOptimizationSweep:
    def test_sweep_evaluates_candidates_and_synthesizes_best(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        outcome = run_optimization_sweep(tiny_record, ranked, k=6)
        # Tiny rankings collapse some grid points; every candidate kept is a
        # genuinely distinct option set.
        assert 1 < outcome.n_candidates <= 6
        assert 0 <= outcome.chosen_index < outcome.n_candidates
        chosen = outcome.candidates[outcome.chosen_index]
        # The chosen candidate has the best projected timing of the sweep.
        assert all(
            (chosen.tns, chosen.wns) >= (other.tns, other.wns)
            for other in outcome.candidates
        )
        assert outcome.options is chosen.options
        row = outcome.as_row()
        assert row["n_candidates"] == float(outcome.n_candidates)
        assert row["estimated_tns"] == chosen.tns

    def test_sweep_with_k1_matches_experiment(self, tiny_record):
        """k=1 degenerates to the paper's two-synthesis protocol."""
        ranked = ranking_from_labels(tiny_record)
        sweep = run_optimization_sweep(tiny_record, ranked, k=1)
        experiment = run_optimization_experiment(tiny_record, ranked)
        assert sweep.n_candidates == 0  # what-if projection skipped entirely
        assert sweep.wns_change_pct == experiment.wns_change_pct
        assert sweep.tns_change_pct == experiment.tns_change_pct
        assert sweep.area_change_pct == experiment.area_change_pct

    def test_sweep_synthesis_goes_through_artifact_cache(self, tiny_record, tmp_path):
        from repro.runtime import ArtifactCache

        cache = ArtifactCache(directory=tmp_path / "cache", enabled=True)
        ranked = ranking_from_labels(tiny_record)
        first = run_optimization_sweep(tiny_record, ranked, k=2, cache=cache)
        assert cache.stats.stores == 2  # default + chosen candidate
        second = run_optimization_sweep(tiny_record, ranked, k=2, cache=cache)
        assert cache.stats.hits == 2  # both syntheses served from cache
        assert second.wns_change_pct == first.wns_change_pct
        assert second.tns_change_pct == first.tns_change_pct

    def test_generate_candidates_deterministic_and_distinct(self):
        signals = [f"sig{i}" for i in range(60)]
        first = generate_candidates(signals, k=16)
        second = generate_candidates(signals, k=16)
        assert len(first) == 16
        for a, b in zip(first, second):
            assert a.retime_signals == b.retime_signals
            assert [g.signals for g in a.path_groups] == [g.signals for g in b.path_groups]
        # Candidate 0 is the paper's configuration.
        classic = options_from_ranking(signals)
        assert first[0].retime_signals == classic.retime_signals
        assert [g.signals for g in first[0].path_groups] == [
            g.signals for g in classic.path_groups
        ]
        # Every candidate is a distinct option set (duplicates are skipped).
        distinct = {
            (
                tuple(c.retime_signals or ()),
                tuple(tuple(g.signals) for g in c.path_groups or ()),
            )
            for c in first
        }
        assert len(distinct) == len(first)
        # Tiny rankings collapse the grid instead of emitting duplicates.
        tiny = generate_candidates(["a", "b", "c"], k=32)
        assert 1 <= len(tiny) < 32
        tiny_keys = {
            (
                tuple(c.retime_signals or ()),
                tuple(tuple(g.signals) for g in c.path_groups or ()),
            )
            for c in tiny
        }
        assert len(tiny_keys) == len(tiny)

    def test_percentage_sign_convention(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        outcome = run_optimization_experiment(tiny_record, ranked)
        # A negative WNS/TNS percentage means the violation magnitude shrank.
        if abs(outcome.optimized.tns) < abs(outcome.default.tns):
            assert outcome.tns_change_pct < 0
        else:
            assert outcome.tns_change_pct >= 0


class TestSummaryAndDedupeRegressions:
    """Regressions for satellite fixes: canonical-key dedupe in
    ``generate_candidates`` and empty-safe ``summarize_outcomes``."""

    def test_generate_candidates_dedupe_uses_canonical_keys(self):
        from repro.core.optimize import canonical_option_key

        ranking = [f"sig{i}" for i in range(40)]
        candidates = generate_candidates(ranking, k=24)
        keys = [canonical_option_key(options) for options in candidates]
        assert len(keys) == len(set(keys))
        # The canonical key is the same dedupe notion the search memoizes
        # on, so a grid candidate can never double-spend search budget.
        tiny = generate_candidates(["a", "b"], k=32)
        tiny_keys = [canonical_option_key(options) for options in tiny]
        assert len(tiny_keys) == len(set(tiny_keys))

    def test_summarize_outcomes_empty_is_well_defined(self):
        from repro.core.optimize import SUMMARY_KEYS

        summary = summarize_outcomes([])
        assert summary["n_designs"] == 0.0
        for key in SUMMARY_KEYS:
            assert summary[key] == 0.0
        # Same schema as the non-empty aggregation.
        assert set(summary) == set(SUMMARY_KEYS) | {"n_designs"}
