"""Tests for HDL slack annotation and prediction-driven optimization."""

import pytest

from repro.core.annotate import annotate_design, ranking_groups
from repro.core.optimize import (
    options_from_ranking,
    ranking_from_labels,
    run_optimization_experiment,
    summarize_outcomes,
)
from repro.hdl.parser import parse_source


class TestRankingGroups:
    def test_four_groups_assigned(self):
        scores = {f"s{i}": float(100 - i) for i in range(40)}
        groups = ranking_groups(scores)
        assert set(groups.values()) <= {1, 2, 3, 4}
        assert groups["s0"] == 1  # highest score = most critical
        assert groups["s39"] == 4

    def test_all_signals_assigned(self):
        scores = {f"s{i}": float(i) for i in range(10)}
        groups = ranking_groups(scores)
        assert set(groups) == set(scores)


class TestAnnotation:
    def test_annotation_contains_header_and_signal_comments(self, tiny_record):
        signal_labels = tiny_record.signal_slack_labels()
        ranking = {s: -v for s, v in signal_labels.items()}  # worse slack = more critical
        annotated = annotate_design(
            tiny_record,
            signal_labels,
            ranking,
            {"wns": tiny_record.wns_label, "tns": tiny_record.tns_label},
        )
        assert annotated.startswith("// Tech:")
        assert "Predicted WNS" in annotated
        some_signal = next(iter(signal_labels))
        assert f"({some_signal}) Slack@" in annotated
        assert "rank@g" in annotated

    def test_annotated_source_still_parses(self, tiny_record):
        signal_labels = tiny_record.signal_slack_labels()
        ranking = {s: -v for s, v in signal_labels.items()}
        annotated = annotate_design(tiny_record, signal_labels, ranking, {"wns": 0, "tns": 0})
        module = parse_source(annotated)
        assert module.name == tiny_record.design.name

    def test_annotation_preserves_line_count(self, tiny_record):
        signal_labels = tiny_record.signal_slack_labels()
        ranking = {s: -v for s, v in signal_labels.items()}
        annotated = annotate_design(tiny_record, signal_labels, ranking, {"wns": 0, "tns": 0})
        original_lines = tiny_record.source.splitlines()
        annotated_lines = annotated.splitlines()
        assert len(annotated_lines) == len(original_lines) + 3  # three header lines


class TestOptimizationOptions:
    def test_options_from_ranking_builds_four_groups(self):
        signals = [f"sig{i}" for i in range(40)]
        options = options_from_ranking(signals)
        assert options.uses_grouping and options.uses_retiming
        assert len(options.path_groups) == 4
        grouped = [s for group in options.path_groups for s in group.signals]
        assert sorted(grouped) == sorted(signals)
        assert options.retime_signals == signals[:2]

    def test_empty_ranking_gives_default_options(self):
        options = options_from_ranking([])
        assert not options.uses_grouping and not options.uses_retiming

    def test_ranking_from_labels_orders_by_arrival(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        labels = tiny_record.signal_labels()
        values = [labels[s] for s in ranked]
        assert values == sorted(values, reverse=True)


class TestOptimizationExperiment:
    def test_experiment_produces_comparable_runs(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        outcome = run_optimization_experiment(tiny_record, ranked, ranking_source="real")
        assert outcome.design == tiny_record.name
        assert outcome.default.qor.area > 0
        assert outcome.optimized.qor.area > 0
        row = outcome.as_row()
        assert {"wns_pct", "tns_pct", "power_pct", "area_pct"} <= set(row)

    def test_summary_avg1_avg2(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        outcome = run_optimization_experiment(tiny_record, ranked)
        summary = summarize_outcomes([outcome])
        assert "avg1_tns_pct" in summary and "avg2_tns_pct" in summary
        if outcome.improved:
            assert summary["avg1_tns_pct"] == pytest.approx(summary["avg2_tns_pct"])
        else:
            assert summary["avg2_tns_pct"] == 0.0

    def test_percentage_sign_convention(self, tiny_record):
        ranked = ranking_from_labels(tiny_record)
        outcome = run_optimization_experiment(tiny_record, ranked)
        # A negative WNS/TNS percentage means the violation magnitude shrank.
        if abs(outcome.optimized.tns) < abs(outcome.default.tns):
            assert outcome.tns_change_pct < 0
        else:
            assert outcome.tns_change_pct >= 0
