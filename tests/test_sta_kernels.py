"""Tests for the compiled CSR timing graph and the array STA kernel.

The contract under test: the ``array`` kernel (levelized numpy sweeps over
``repro.sta.csr.CSRTimingGraph``) is *bit-identical* to the ``reference``
kernel (the per-vertex ``propagate_vertex`` loop) on every network, and the
compiled structural views (``topological_order``, ``fanouts``, levels) are
deterministic pure functions of the graph structure.
"""

import numpy as np
import pytest

from repro.bog.builder import build_sog
from repro.bog.transforms import build_variants
from repro.incremental import AddExtraLoad, IncrementalSTA, SetDerate, SwapCell
from repro.liberty import pseudo_library
from repro.sta import (
    ClockConstraint,
    STA_KERNEL_ENV_VAR,
    TimingNetwork,
    VertexKind,
    analyze,
    from_bog,
    resolve_kernel,
)

CLOCK = ClockConstraint(period=700.0)

LIBRARY = pseudo_library()


def _assert_reports_identical(array, reference):
    assert np.array_equal(array.loads, reference.loads)
    assert np.array_equal(array.arrivals, reference.arrivals)
    assert np.array_equal(array.slews, reference.slews)
    assert array.wns == reference.wns
    assert array.tns == reference.tns
    assert [e.slack for e in array.endpoints] == [e.slack for e in reference.endpoints]


def _both_kernels(network, clock=CLOCK):
    return analyze(network, clock, kernel="array"), analyze(
        network, clock, kernel="reference"
    )


class TestKernelSelection:
    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv(STA_KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel() == "array"

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "reference")
        assert resolve_kernel() == "reference"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "reference")
        assert resolve_kernel("array") == "array"

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "")
        assert resolve_kernel() == "array"

    def test_unknown_kernel_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown STA kernel"):
            resolve_kernel("vector")
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "simd")
        with pytest.raises(ValueError, match="simd"):
            resolve_kernel()

    def test_analyze_respects_env_var(self, simple_design, monkeypatch):
        network = from_bog(build_sog(simple_design))
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "reference")
        reference = analyze(network, CLOCK)
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "array")
        array = analyze(network, CLOCK)
        _assert_reports_identical(array, reference)


class TestBitIdentity:
    def test_all_bog_variants_bit_identical(self, simple_design):
        for variant, bog in build_variants(simple_design).items():
            array, reference = _both_kernels(from_bog(bog))
            _assert_reports_identical(array, reference)

    def test_identical_after_attribute_edits_without_invalidate(self, simple_design):
        network = from_bog(build_sog(simple_design))
        analyze(network, CLOCK)  # compile once
        rng = np.random.default_rng(5)
        for vertex_id in rng.choice(len(network.vertices), size=10, replace=False):
            vertex = network.vertices[int(vertex_id)]
            vertex.derate = float(rng.uniform(0.3, 1.7))
            vertex.extra_load = float(rng.uniform(0.0, 5.0))
        array, reference = _both_kernels(network)
        _assert_reports_identical(array, reference)

    def test_identical_after_cell_swap(self, simple_design):
        # The pseudo library has one drive per function, so "swap" means a
        # different function's cell — the timing engine only reads the cell's
        # parameters, and a changed cell exercises the column cell table.
        network = from_bog(build_sog(simple_design), library=LIBRARY)
        analyze(network, CLOCK)
        replacement = LIBRARY.pick("XOR")
        swapped = 0
        for vertex in network.vertices:
            if vertex.kind is VertexKind.GATE and vertex.cell is not replacement:
                vertex.cell = replacement
                swapped += 1
                if swapped == 5:
                    break
        assert swapped
        array, reference = _both_kernels(network)
        _assert_reports_identical(array, reference)

    def test_explicit_loads_argument(self, simple_design):
        network = from_bog(build_sog(simple_design))
        loads = analyze(network, CLOCK, kernel="reference").loads + 1.25
        array = analyze(network, CLOCK, loads=loads.copy(), kernel="array")
        reference = analyze(network, CLOCK, loads=loads.copy(), kernel="reference")
        _assert_reports_identical(array, reference)


class TestGraphEdgeCases:
    def test_empty_network(self):
        network = TimingNetwork("empty")
        array, reference = _both_kernels(network)
        _assert_reports_identical(array, reference)
        assert array.wns == 0.0 and array.tns == 0.0
        assert network.topological_order() == []
        assert network.compiled().n_levels == 0

    def test_single_const_vertex(self):
        network = TimingNetwork("const-only")
        network.add_vertex(VertexKind.CONST)
        array, reference = _both_kernels(network)
        _assert_reports_identical(array, reference)
        assert array.arrivals[0] == 0.0
        assert array.slews[0] == CLOCK.input_slew
        assert network.levels() == [0]

    def test_deep_chain_has_one_level_per_vertex(self):
        network = TimingNetwork("chain")
        cell = LIBRARY.pick("NOT")
        previous = network.add_vertex(VertexKind.INPUT, name="a")
        for _ in range(200):
            previous = network.add_vertex(VertexKind.GATE, fanins=[previous], cell=cell)
        compiled = network.compiled()
        assert compiled.n_levels == len(network.vertices)
        assert network.levels() == list(range(len(network.vertices)))
        array, reference = _both_kernels(network)
        _assert_reports_identical(array, reference)

    def test_wide_fanout_one_to_1000(self):
        network = TimingNetwork("wide")
        cell = LIBRARY.pick("NOT")
        driver = network.add_vertex(VertexKind.INPUT, name="a")
        consumers = [
            network.add_vertex(VertexKind.GATE, fanins=[driver], cell=cell)
            for _ in range(1000)
        ]
        assert network.fanouts()[driver] == consumers
        assert network.compiled().n_levels == 2
        array, reference = _both_kernels(network)
        _assert_reports_identical(array, reference)

    def test_combinational_cycle_raises_on_both_kernels(self):
        cell = LIBRARY.pick("AND")
        for kernel in ("array", "reference"):
            network = TimingNetwork("looped")
            a = network.add_vertex(VertexKind.INPUT, name="a")
            g1 = network.add_vertex(VertexKind.GATE, fanins=[a], cell=cell)
            g2 = network.add_vertex(VertexKind.GATE, fanins=[g1], cell=cell)
            network.vertices[g1].fanins.append(g2)
            network.invalidate()
            with pytest.raises(ValueError, match="combinational cycle"):
                analyze(network, CLOCK, kernel=kernel)


class TestTopologicalOrderDeterminism:
    def test_level_major_ascending_within_level(self, simple_design):
        network = from_bog(build_sog(simple_design))
        order = network.topological_order()
        levels = network.levels()
        keys = [(levels[v], v) for v in order]
        assert keys == sorted(keys)
        assert sorted(order) == list(range(len(network.vertices)))

    def test_stable_across_invalidate_cycles(self, simple_design):
        network = from_bog(build_sog(simple_design))
        first = list(network.topological_order())
        first_fanouts = [list(f) for f in network.fanouts()]
        for _ in range(3):
            network.invalidate()
            assert network.topological_order() == first
            assert [list(f) for f in network.fanouts()] == first_fanouts

    def test_recompilation_is_lazy(self, simple_design):
        network = from_bog(build_sog(simple_design))
        compiled = network.compiled()
        assert network.compiled() is compiled  # cached
        network.invalidate()
        recompiled = network.compiled()
        assert recompiled is not compiled
        assert recompiled.topological_list() == compiled.topological_list()


class TestIncrementalKernelParity:
    @pytest.mark.parametrize("kernel", ["array", "reference"])
    def test_incremental_matches_full_under_both_kernels(
        self, simple_design, monkeypatch, kernel
    ):
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, kernel)
        network = from_bog(build_sog(simple_design), library=LIBRARY)
        engine = IncrementalSTA(network, CLOCK)
        gates = [v.id for v in network.vertices if v.kind is VertexKind.GATE]
        patches = [
            SetDerate(gates[0], 1.4),
            AddExtraLoad(gates[len(gates) // 2], 3.0),
        ]
        stronger = LIBRARY.upsize(network.vertices[gates[-1]].cell)
        if stronger is not None:
            patches.append(SwapCell(gates[-1], stronger))
        with engine.what_if(patches) as incremental:
            full = analyze(network, CLOCK, kernel=kernel)
            assert np.array_equal(incremental.arrivals, full.arrivals)
            assert np.array_equal(incremental.slews, full.slews)
            assert incremental.wns == full.wns
            assert incremental.tns == full.tns

    def test_incremental_stats_agree_between_kernels(self, simple_design, monkeypatch):
        results = {}
        for kernel in ("array", "reference"):
            monkeypatch.setenv(STA_KERNEL_ENV_VAR, kernel)
            network = from_bog(build_sog(simple_design))
            engine = IncrementalSTA(network, CLOCK)
            gates = [v.id for v in network.vertices if v.kind is VertexKind.GATE]
            with engine.what_if([SetDerate(gates[2], 1.3)]) as incremental:
                results[kernel] = (
                    incremental.arrivals.copy(),
                    incremental.wns,
                    engine.last_stats.n_recomputed,
                )
        array_result, reference_result = results["array"], results["reference"]
        assert np.array_equal(array_result[0], reference_result[0])
        assert array_result[1] == reference_result[1]
        assert array_result[2] == reference_result[2]


class TestFaultInjection:
    def test_array_delay_fault_breaks_identity(self, simple_design, monkeypatch):
        network = from_bog(build_sog(simple_design))
        monkeypatch.setenv("REPRO_FAULT_INJECT", "sta.array_delay")
        array, reference = _both_kernels(network)
        assert not np.array_equal(array.arrivals, reference.arrivals)

    def test_fault_off_by_default(self, simple_design):
        network = from_bog(build_sog(simple_design))
        array, reference = _both_kernels(network)
        _assert_reports_identical(array, reference)
