"""Incremental what-if timing engine: equivalence and safety properties.

The load-bearing property: after any supported patch sequence, the
dirty-cone re-propagation of :class:`IncrementalSTA` must match a full
``sta.engine.analyze`` re-run of the patched network to 1e-9 on arrivals,
slews, loads and endpoint slacks (in practice they agree bit for bit,
because both paths share :func:`repro.sta.engine.propagate_vertex`).
"""

from __future__ import annotations

import copy
import random

import numpy as np
import pytest

from repro.incremental import (
    AddExtraLoad,
    IncrementalSTA,
    RewireFanins,
    SetDerate,
    SwapCell,
)
from repro.incremental.whatif import evaluate_candidates, patches_for_options
from repro.core.optimize import generate_candidates, ranking_from_labels
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import analyze
from repro.sta.network import VertexKind

TOLERANCE = 1e-9


def _random_patches(network, rng, count):
    """A random mix of every supported patch kind, guaranteed acyclic."""
    gates = [v.id for v in network.vertices if v.kind is VertexKind.GATE]
    position = {v: i for i, v in enumerate(network.topological_order())}
    patches = []
    while len(patches) < count:
        kind = rng.choice(("derate", "swap", "load", "rewire"))
        vertex = rng.choice(gates)
        if kind == "derate":
            patches.append(SetDerate(vertex, rng.uniform(0.4, 1.6)))
        elif kind == "swap":
            cell = network.vertices[vertex].cell
            alternative = network.library.upsize(cell) or network.library.downsize(cell)
            if alternative is not None:
                patches.append(SwapCell(vertex, alternative))
        elif kind == "load":
            patches.append(AddExtraLoad(vertex, rng.uniform(0.1, 8.0)))
        else:
            fanins = network.vertices[vertex].fanins
            upstream = [u for u in position if position[u] < position[vertex] and u not in fanins]
            if fanins and upstream:
                rewired = list(fanins)
                rewired[rng.randrange(len(rewired))] = rng.choice(upstream)
                patches.append(RewireFanins(vertex, rewired))
    return patches


def _network_state(network):
    """Full observable state of a netlist, for revert checks."""
    return (
        [(v.cell.name if v.cell else None, v.derate, v.extra_load, tuple(v.fanins))
         for v in network.vertices],
        [(e.name, e.driver) for e in network.endpoints],
    )


def _assert_matches_full(incremental, network, clock):
    full = analyze(network, clock)
    np.testing.assert_allclose(incremental.arrivals, full.arrivals, atol=TOLERANCE, rtol=0)
    np.testing.assert_allclose(incremental.slews, full.slews, atol=TOLERANCE, rtol=0)
    np.testing.assert_allclose(incremental.loads, full.loads, atol=TOLERANCE, rtol=0)
    assert len(incremental.endpoints) == len(full.endpoints)
    for inc_ep, full_ep in zip(incremental.endpoints, full.endpoints):
        assert inc_ep.name == full_ep.name
        assert abs(inc_ep.slack - full_ep.slack) <= TOLERANCE
        assert abs(inc_ep.arrival - full_ep.arrival) <= TOLERANCE
    assert abs(incremental.wns - full.wns) <= TOLERANCE
    assert abs(incremental.tns - full.tns) <= TOLERANCE


class TestWhatIfEquivalence:
    def test_random_patches_match_full_reanalysis(self, tiny_records):
        """Property test: 1-12 random patches, what-if vs from-scratch STA."""
        record = tiny_records[0]
        network = record.synthesis.netlist
        engine = IncrementalSTA(network, record.clock, baseline=record.synthesis.report)
        rng = random.Random(1234)
        for _ in range(25):
            patches = _random_patches(network, rng, rng.randint(1, 12))
            before = _network_state(network)
            with engine.what_if(patches) as report:
                _assert_matches_full(report, network, record.clock)
            assert _network_state(network) == before  # patches fully reverted

    def test_pseudo_bog_network_patches_match_full(self, tiny_records):
        """The engine serves BOG pseudo netlists, not just mapped netlists:
        derate/load/rewire patches on a pseudo-STA network re-time exactly."""
        from repro.sta.constraints import ClockConstraint as Clock

        record = tiny_records[0]
        network = record.pseudo_networks["sog"]
        clock = Clock(period=1000.0)
        engine = IncrementalSTA(network, clock, baseline=record.pseudo_reports["sog"])
        rng = random.Random(99)
        gates = [v.id for v in network.vertices if v.kind is VertexKind.GATE]
        position = {v: i for i, v in enumerate(network.topological_order())}
        for _ in range(10):
            patches = []
            for _ in range(rng.randint(1, 6)):
                vertex = rng.choice(gates)
                kind = rng.choice(("derate", "load", "rewire"))
                if kind == "derate":
                    patches.append(SetDerate(vertex, rng.uniform(0.4, 1.6)))
                elif kind == "load":
                    patches.append(AddExtraLoad(vertex, rng.uniform(0.1, 8.0)))
                else:
                    fanins = network.vertices[vertex].fanins
                    upstream = [
                        u for u in position
                        if position[u] < position[vertex] and u not in fanins
                    ]
                    if fanins and upstream:
                        rewired = list(fanins)
                        rewired[rng.randrange(len(rewired))] = rng.choice(upstream)
                        patches.append(RewireFanins(vertex, rewired))
            if not patches:
                continue
            with engine.what_if(patches) as report:
                _assert_matches_full(report, network, clock)

    def test_what_if_keeps_committed_report(self, tiny_records):
        record = tiny_records[1]
        network = record.synthesis.netlist
        engine = IncrementalSTA(network, record.clock, baseline=record.synthesis.report)
        committed = engine.report()
        gate = next(v.id for v in network.vertices if v.kind is VertexKind.GATE)
        with engine.what_if([SetDerate(gate, 0.5)]):
            pass
        assert engine.report() is committed
        _assert_matches_full(engine.report(), network, record.clock)

    def test_sequential_apply_matches_full(self, tiny_records):
        """apply() commits patches; state stays consistent run over run."""
        record = tiny_records[0]
        network = copy.deepcopy(record.synthesis.netlist)
        engine = IncrementalSTA(network, record.clock)
        rng = random.Random(7)
        for _ in range(10):
            report = engine.apply(_random_patches(network, rng, rng.randint(1, 6)))
            assert report is engine.report()
            _assert_matches_full(report, network, record.clock)

    def test_structural_rewire_matches_full(self, tiny_records):
        record = tiny_records[2]
        network = record.synthesis.netlist
        engine = IncrementalSTA(network, record.clock, baseline=record.synthesis.report)
        position = {v: i for i, v in enumerate(network.topological_order())}
        gate = max(
            (v for v in network.vertices if v.kind is VertexKind.GATE and len(v.fanins) >= 2),
            key=lambda v: position[v.id],
        )
        upstream = min(position, key=position.get)
        rewired = [upstream] + list(gate.fanins[1:])
        before = _network_state(network)
        with engine.what_if([RewireFanins(gate.id, rewired)]) as report:
            _assert_matches_full(report, network, record.clock)
        assert _network_state(network) == before


class TestEngineBehaviour:
    def test_dirty_cone_is_local(self, tiny_records):
        """A single late-cone patch must not re-propagate the whole graph."""
        record = tiny_records[0]
        network = record.synthesis.netlist
        engine = IncrementalSTA(network, record.clock, baseline=record.synthesis.report)
        position = {v: i for i, v in enumerate(network.topological_order())}
        late_gate = max(
            (v.id for v in network.vertices if network.vertices[v.id].kind is VertexKind.GATE),
            key=lambda v: position[v],
        )
        with engine.what_if([SetDerate(late_gate, 0.5)]):
            pass
        stats = engine.last_stats
        assert stats is not None
        assert 0 < stats.n_recomputed < len(network.vertices)
        assert stats.cone_fraction < 1.0

    def test_stale_baseline_is_recomputed(self, tiny_records):
        record = tiny_records[0]
        network = record.synthesis.netlist
        other_clock = ClockConstraint(period=record.clock.period * 2.0)
        engine = IncrementalSTA(network, other_clock, baseline=record.synthesis.report)
        _assert_matches_full(engine.report(), network, other_clock)

    def test_size_change_is_rejected(self, tiny_records):
        record = tiny_records[1]
        network = copy.deepcopy(record.synthesis.netlist)
        engine = IncrementalSTA(network, record.clock)
        network.add_vertex(VertexKind.INPUT, name="late_arrival")
        gate = next(v.id for v in network.vertices if v.kind is VertexKind.GATE)
        with pytest.raises(ValueError, match="refresh"):
            engine.apply([SetDerate(gate, 0.9)])

    def test_swap_cell_requires_cell(self, tiny_records):
        record = tiny_records[0]
        network = record.synthesis.netlist
        vertex = next(v for v in network.vertices if v.cell is None)
        any_cell = next(v.cell for v in network.vertices if v.cell is not None)
        with pytest.raises(ValueError, match="no cell"):
            SwapCell(vertex.id, any_cell).apply(network)


class TestWhatIfProjection:
    def test_candidate_patches_are_nonempty_and_revertible(self, tiny_records):
        record = tiny_records[0]
        ranked = ranking_from_labels(record)
        candidates = generate_candidates(ranked, k=4)
        netlist = record.synthesis.netlist
        report = record.synthesis.report
        before = _network_state(netlist)
        patch_sets = [patches_for_options(netlist, report, c) for c in candidates]
        assert all(patch_sets), "every candidate should project at least one patch"
        assert _network_state(netlist) == before  # projection itself is read-only

    def test_evaluate_candidates_is_pure(self, tiny_records):
        """Evaluation never mutates the record and is run-to-run stable."""
        record = tiny_records[1]
        ranked = ranking_from_labels(record)
        candidates = generate_candidates(ranked, k=6)
        before = _network_state(record.synthesis.netlist)
        first = evaluate_candidates(record, candidates)
        second = evaluate_candidates(record, candidates)
        assert _network_state(record.synthesis.netlist) == before
        assert [(e.wns, e.tns, e.n_patches) for e in first] == [
            (e.wns, e.tns, e.n_patches) for e in second
        ]
        assert len(first) == len(candidates)
