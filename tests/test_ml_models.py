"""Tests for MLP, transformer, LambdaMART, GNN and the loss functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import (
    GNNRegressor,
    GraphData,
    LambdaMARTRanker,
    MLPRegressor,
    TransformerPathRegressor,
    dcg_at_k,
    group_argmax,
    group_max,
    grouped_max_loss_and_gradient,
    grouped_softmax_loss_and_gradient,
    ndcg,
    pad_sequences,
)


class TestLosses:
    def test_group_max_basic(self):
        values = np.array([1.0, 5.0, 2.0, 7.0, 3.0])
        groups = np.array([0, 0, 1, 1, 1])
        assert np.allclose(group_max(values, groups), [5.0, 7.0])
        assert list(group_argmax(values, groups)) == [1, 3]

    def test_grouped_max_gradient_routes_to_winner(self):
        predictions = np.array([1.0, 3.0, 2.0, 0.5])
        groups = np.array([0, 0, 1, 1])
        targets = np.array([2.0, 5.0])
        loss, gradient = grouped_max_loss_and_gradient(predictions, groups, targets)
        assert loss > 0
        assert gradient[0] == 0.0 and gradient[3] == 0.0
        assert gradient[1] != 0.0 and gradient[2] != 0.0

    def test_zero_loss_when_max_matches_target(self):
        predictions = np.array([1.0, 4.0])
        groups = np.array([0, 0])
        loss, gradient = grouped_max_loss_and_gradient(predictions, groups, np.array([4.0]))
        assert loss == pytest.approx(0.0)
        assert np.allclose(gradient, 0.0)

    def test_softmax_loss_approaches_hard_max_at_low_temperature(self):
        predictions = np.array([1.0, 6.0, 2.0])
        groups = np.array([0, 0, 0])
        targets = np.array([6.0])
        hard, _ = grouped_max_loss_and_gradient(predictions, groups, targets)
        soft, _ = grouped_softmax_loss_and_gradient(predictions, groups, targets, temperature=0.05)
        assert soft == pytest.approx(hard, abs=1e-3)

    def test_softmax_gradient_spreads_over_paths(self):
        predictions = np.array([3.0, 3.0])
        groups = np.array([0, 0])
        _, gradient = grouped_softmax_loss_and_gradient(predictions, groups, np.array([1.0]))
        assert gradient[0] != 0.0 and gradient[1] != 0.0

    def test_group_argmax_first_winner_tie_breaking(self):
        values = np.array([2.0, 5.0, 5.0, 5.0, 1.0, 1.0])
        groups = np.array([0, 0, 0, 1, 1, 2])
        # Group 0 ties at 5.0 on rows 1 and 2: the first row in input order wins.
        assert list(group_argmax(values, groups)) == [1, 3, 5]

    def test_group_argmax_empty_group_reports_minus_one(self):
        values = np.array([1.0, 2.0])
        groups = np.array([0, 0])
        assert list(group_argmax(values, groups, n_groups=3)) == [1, -1, -1]
    @given(
        values=st.lists(st.floats(-50, 50), min_size=1, max_size=30),
        n_groups=st.integers(min_value=1, max_value=5),
    )
    def test_group_argmax_matches_scalar_reference(self, values, n_groups):
        values = np.array(values)
        groups = (np.arange(len(values)) * 7) % n_groups
        best_value = np.full(n_groups, -np.inf)
        expected = np.full(n_groups, -1, dtype=int)
        for row, (value, group) in enumerate(zip(values, groups)):
            if value > best_value[group]:
                best_value[group] = value
                expected[group] = row
        assert list(group_argmax(values, groups, n_groups)) == list(expected)
    @given(
        values=st.lists(st.floats(-50, 50), min_size=3, max_size=12),
        n_groups=st.integers(min_value=1, max_value=3),
    )
    def test_group_max_is_upper_bound_of_members(self, values, n_groups):
        values = np.array(values)
        groups = np.arange(len(values)) % n_groups
        maxima = group_max(values, groups, n_groups)
        for value, group in zip(values, groups):
            assert maxima[group] >= value


class TestMLP:
    def test_learns_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 5))
        y = X @ np.array([1.0, -2.0, 0.5, 0.0, 3.0])
        mlp = MLPRegressor(hidden_sizes=(32,), epochs=80, seed=0).fit(X[:300], y[:300])
        assert np.corrcoef(mlp.predict(X[300:]), y[300:])[0, 1] > 0.95

    def test_training_loss_decreases(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        y = X[:, 0] ** 2
        mlp = MLPRegressor(hidden_sizes=(16,), epochs=40, seed=1).fit(X, y)
        assert mlp.train_losses_[-1] < mlp.train_losses_[0]

    def test_grouped_max_training(self):
        rng = np.random.default_rng(2)
        groups = np.repeat(np.arange(100), 3)
        X = rng.normal(size=(300, 4))
        path_value = X @ np.array([1.5, 1.0, 0.0, 0.0])
        targets = np.array([path_value[groups == g].max() for g in range(100)])
        mlp = MLPRegressor(hidden_sizes=(24,), epochs=120, seed=2)
        mlp.fit_grouped_max(X, groups, targets)
        predicted = group_max(mlp.predict(X), groups, 100)
        assert np.corrcoef(predicted, targets)[0, 1] > 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.zeros((3, 2)))


class TestTransformer:
    def test_pad_sequences_shapes_and_mask(self):
        seqs = [np.ones((2, 3)), np.ones((5, 3))]
        tokens, mask = pad_sequences(seqs)
        assert tokens.shape == (2, 5, 3)
        assert mask[0].sum() == 2 and mask[1].sum() == 5

    def test_pad_sequences_truncates_to_max_length(self):
        seqs = [np.arange(12).reshape(6, 2)]
        tokens, mask = pad_sequences(seqs, max_length=4)
        assert tokens.shape == (1, 4, 2)
        # The most recent (last) tokens are kept.
        assert tokens[0, -1, 1] == 11

    def test_learns_sequence_sum(self):
        rng = np.random.default_rng(3)
        seqs = [rng.normal(size=(rng.integers(3, 8), 4)) for _ in range(150)]
        gfeat = rng.normal(size=(150, 2))
        y = np.array([s[:, 0].sum() for s in seqs]) + gfeat[:, 1]
        model = TransformerPathRegressor(
            d_model=10, d_ff=20, head_hidden=16, epochs=50, max_length=10, seed=0
        )
        model.fit(seqs[:120], gfeat[:120], y[:120])
        pred = model.predict(seqs[120:], gfeat[120:])
        assert np.corrcoef(pred, y[120:])[0, 1] > 0.7

    def test_loss_decreases(self):
        rng = np.random.default_rng(4)
        seqs = [rng.normal(size=(4, 3)) for _ in range(60)]
        gfeat = rng.normal(size=(60, 2))
        y = np.array([s.sum() for s in seqs])
        model = TransformerPathRegressor(d_model=8, d_ff=16, epochs=25, seed=1)
        model.fit(seqs, gfeat, y)
        assert model.train_losses_[-1] < model.train_losses_[0]


class TestLambdaMART:
    def _ranking_data(self, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(240, 5))
        score = X @ np.array([2.0, 1.0, 0.0, 0.0, -0.5])
        relevance = np.digitize(score, np.quantile(score, [0.3, 0.6, 0.9]))
        queries = np.repeat(np.arange(8), 30)
        return X, relevance, queries

    def test_ndcg_perfect_and_reverse(self):
        relevance = np.array([3, 2, 1, 0])
        assert ndcg(np.array([4.0, 3.0, 2.0, 1.0]), relevance) == pytest.approx(1.0)
        assert ndcg(np.array([1.0, 2.0, 3.0, 4.0]), relevance) < 1.0

    def test_dcg_zero_for_empty(self):
        assert dcg_at_k(np.array([])) == 0.0

    def test_ranker_improves_ndcg_over_training(self):
        X, relevance, queries = self._ranking_data()
        ranker = LambdaMARTRanker(n_estimators=30, max_depth=3).fit(X, relevance, queries)
        assert ranker.train_ndcg_[-1] > ranker.train_ndcg_[0]

    def test_ranker_orders_holdout_query_well(self):
        X, relevance, queries = self._ranking_data()
        train = queries < 6
        ranker = LambdaMARTRanker(n_estimators=40, max_depth=3).fit(
            X[train], relevance[train], queries[train]
        )
        holdout = queries == 7
        assert ndcg(ranker.predict(X[holdout]), relevance[holdout]) > 0.8

    def test_rank_returns_permutation(self):
        X, relevance, queries = self._ranking_data()
        ranker = LambdaMARTRanker(n_estimators=5).fit(X, relevance, queries)
        ranks = ranker.rank(X[:50])
        assert sorted(ranks.tolist()) == list(range(50))


class TestGNN:
    def _chain_graph(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n, 5))
        edge_src = np.arange(n - 1)
        edge_dst = np.arange(1, n)
        endpoints = np.arange(n - 10, n)
        targets = features[endpoints, 0] + features[endpoints - 1, 1]
        return GraphData("chain", features, edge_src, edge_dst, endpoints, targets)

    def test_learns_neighbour_dependent_target(self):
        graph = self._chain_graph()
        gnn = GNNRegressor(hidden_size=24, n_layers=2, epochs=150, seed=0).fit_graphs([graph])
        pred = gnn.predict_graph(graph)
        assert np.corrcoef(pred, graph.endpoint_targets)[0, 1] > 0.9

    def test_multiple_graphs(self):
        graphs = [self._chain_graph(seed=s) for s in range(3)]
        gnn = GNNRegressor(hidden_size=16, n_layers=2, epochs=60, seed=1).fit_graphs(graphs)
        for graph in graphs:
            assert len(gnn.predict_graph(graph)) == len(graph.endpoint_targets)

    def test_graphdata_validation(self):
        with pytest.raises(ValueError):
            GraphData("bad", np.zeros((3, 2)), np.array([0]), np.array([1, 2]), np.array([0]), np.array([1.0]))

    def test_generic_fit_not_supported(self):
        with pytest.raises(NotImplementedError):
            GNNRegressor().fit(np.zeros((2, 2)), np.zeros(2))
