"""Differential fuzzing subsystem: corpus, oracles, campaigns, shrinking.

Runs a small deterministic slice of the fuzz campaign in tier-1 (the full
open-ended campaign lives in the CI fuzz-smoke lane and in
``python -m repro.fuzz``), and proves the oracles' teeth with the
``REPRO_FAULT_INJECT`` debug faults: an injected divergence must be caught,
shrunk to a minimal spec, bundled as a replayable JSON artifact, and
disappear when the fault is lifted.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import FAULT_ENV_VAR, fault_active
from repro.fuzz.corpus import (
    SIZE_CLASSES,
    FuzzDesign,
    construct_profile,
    fixed_suite_constructs,
    generate_fuzz_design,
)
from repro.fuzz.oracles import (
    DEFAULT_CADENCE,
    ORACLES,
    FuzzContext,
    array_vs_reference_sta,
    hist_vs_exact_gbm,
    incremental_vs_full,
    interpret_vs_simulate,
    optimize_search,
    packed_vs_scalar_sim,
)
from repro.fuzz.runner import (
    BUNDLE_SCHEMA,
    CampaignConfig,
    design_seed_for,
    main,
    replay_bundle,
    run_campaign,
    shrink_design,
)
from repro.bog.builder import build_sog
from repro.hdl.generate import DesignSpec, GeneratorConfig
from repro.runtime import RuntimeReport, activate


TIER1_CHECKS = ("interpret_vs_simulate", "incremental_vs_full", "hist_vs_exact_gbm")


def _tiny_campaign(tmp_path=None, **overrides) -> CampaignConfig:
    defaults = dict(
        seed=0,
        iterations=3,
        size_classes=("tiny",),
        checks=TIER1_CHECKS,
        shrink=False,
        artifacts_dir=str(tmp_path) if tmp_path is not None else None,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestCorpus:
    def test_designs_are_replayable(self):
        """(seed, size_class) fully determines the generated source."""
        for size_class in SIZE_CLASSES:
            first = generate_fuzz_design(42, size_class)
            second = generate_fuzz_design(42, size_class)
            assert first.source == second.source
            assert first.spec == second.spec
            assert first.config == second.config

    def test_different_seeds_differ(self):
        sources = {generate_fuzz_design(seed, "small").source for seed in range(6)}
        assert len(sources) == 6

    def test_unknown_size_class_rejected(self):
        with pytest.raises(KeyError):
            generate_fuzz_design(0, "galactic")

    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_every_tiny_design_parses_and_analyzes(self, seed):
        """Property: any seed yields RTL the whole front end accepts."""
        fuzz = generate_fuzz_design(seed, "tiny")
        design = fuzz.analyzed()
        assert design.register_signals, "every fuzz design must contain registers"
        assert construct_profile(fuzz.source) is not None

    def test_corpus_covers_constructs_absent_from_fixed_suite(self):
        """The acceptance gate: ≥3 construct patterns none of the 21 designs use."""
        fixed = fixed_suite_constructs()
        corpus_tags = set()
        for seed in range(10):
            for size_class in ("tiny", "small"):
                corpus_tags |= construct_profile(
                    generate_fuzz_design(seed, size_class).source
                )
        novel = corpus_tags - fixed
        assert len(novel) >= 3, f"corpus only adds {sorted(novel)}"
        # The specific grammar regions the corpus was built to reach.
        assert {"nested-if", "replication", "reduction-op"} <= novel
        assert "partselect-assign" in novel or "rich-compare" in novel

    def test_degenerate_shapes_appear(self):
        """The tiny class produces 1-bit and single-register designs."""
        shapes = [generate_fuzz_design(seed, "tiny").spec for seed in range(40)]
        assert any(spec.data_width == 1 for spec in shapes)
        assert any(spec.stages == 1 and spec.regs_per_stage == 1 for spec in shapes)


class TestOraclesClean:
    def test_small_campaign_is_clean(self):
        result = run_campaign(_tiny_campaign())
        assert result.ok, [v.message for v in result.violations]
        assert result.n_designs == 3
        assert set(result.oracle_runs) == set(TIER1_CHECKS)

    def test_campaign_records_fuzz_stages(self):
        report = RuntimeReport()
        with activate(report):
            result = run_campaign(_tiny_campaign(iterations=1))
        assert result.ok
        assert report.stage_calls["fuzz.campaign"] == 1
        assert report.stage_calls["fuzz.generate"] == 1
        assert report.counters["fuzz_designs"] == 1
        for check in TIER1_CHECKS:
            assert report.stage_calls[f"fuzz.oracle.{check}"] == 1

    def test_oracles_clean_on_simple_design(self, simple_source):
        """Every cheap oracle passes on the hand-written conftest design."""
        fuzz = FuzzDesign(
            seed=0,
            size_class="tiny",
            spec=DesignSpec("simple", "itc99", "Verilog", 1, 4, 1, 2, 2, 2),
            config=GeneratorConfig(),
            source=simple_source,
        )
        ctx = FuzzContext(fuzz)
        for check in TIER1_CHECKS:
            assert ORACLES[check](ctx, random.Random(0)) == []


class TestKernelOracles:
    """The array-vs-reference STA and packed-vs-scalar simulation oracles."""

    def test_kernel_oracles_registered(self):
        assert "array_vs_reference_sta" in ORACLES
        assert "packed_vs_scalar_sim" in ORACLES
        assert DEFAULT_CADENCE["array_vs_reference_sta"] == 1
        assert DEFAULT_CADENCE["packed_vs_scalar_sim"] == 1

    def test_kernel_oracles_clean_on_fixed_design(self):
        fuzz = generate_fuzz_design(design_seed_for(0, 0), "tiny")
        ctx = FuzzContext(fuzz)
        assert array_vs_reference_sta(ctx, random.Random(11)) == []
        assert packed_vs_scalar_sim(ctx, random.Random(11)) == []

    def test_array_delay_fault_caught(self, monkeypatch):
        fuzz = generate_fuzz_design(design_seed_for(0, 0), "tiny")
        monkeypatch.setenv(FAULT_ENV_VAR, "sta.array_delay")
        broken = array_vs_reference_sta(FuzzContext(fuzz), random.Random(11))
        assert broken, "perturbed edge delay must diverge from the reference kernel"

    def test_packed_and_fault_caught(self, monkeypatch):
        fuzz = generate_fuzz_design(design_seed_for(0, 0), "tiny")
        monkeypatch.setenv(FAULT_ENV_VAR, "simulate.packed_and")
        broken = packed_vs_scalar_sim(FuzzContext(fuzz), random.Random(11))
        assert broken, "AND-as-OR in the packed evaluator must diverge from scalar"

    def test_large_size_class_reaches_kernel_scale(self):
        """The ``large`` class exists to exercise the array kernels at depth."""
        assert "large" in SIZE_CLASSES
        fuzz = generate_fuzz_design(0, "large")
        sog = build_sog(fuzz.analyzed())
        assert len(sog.nodes) >= 1000


class TestCampaignBudget:
    def test_zero_budget_runs_no_designs(self):
        config = _tiny_campaign(iterations=5, max_seconds=0.0)
        result = run_campaign(config)
        assert result.n_designs == 0
        assert result.budget_exhausted
        assert result.ok
        assert "budget exhausted" in result.summary()

    def test_no_budget_by_default(self):
        result = run_campaign(_tiny_campaign(iterations=1))
        assert not result.budget_exhausted
        assert "budget exhausted" not in result.summary()

    def test_cli_max_seconds_flag(self, tmp_path, capsys):
        code = main(
            [
                "--seed", "0",
                "--iterations", "4",
                "--size-classes", "tiny",
                "--checks", "interpret_vs_simulate",
                "--max-seconds", "0",
                "--artifacts-dir", str(tmp_path),
                "--bench-out", str(tmp_path / "bench.json"),
            ]
        )
        assert code == 0
        assert "budget exhausted" in capsys.readouterr().out


class TestFaultInjection:
    def test_fault_env_parsing(self, monkeypatch):
        assert not fault_active("incremental.extra_load")
        monkeypatch.setenv(FAULT_ENV_VAR, "incremental.extra_load, interpret.add")
        assert fault_active("incremental.extra_load")
        assert fault_active("interpret.add")
        assert not fault_active("gbm.hist_threshold")

    def test_interpreter_fault_caught_by_simulation_oracle(self, simple_source, monkeypatch):
        fuzz = FuzzDesign(
            seed=0,
            size_class="tiny",
            spec=DesignSpec("simple", "itc99", "Verilog", 1, 4, 1, 2, 2, 2),
            config=GeneratorConfig(),
            source=simple_source,  # contains `a + b`, so the adder fault fires
        )
        clean = interpret_vs_simulate(FuzzContext(fuzz), random.Random(3))
        assert clean == []
        monkeypatch.setenv(FAULT_ENV_VAR, "interpret.add")
        broken = interpret_vs_simulate(FuzzContext(fuzz), random.Random(3))
        assert broken, "off-by-one adder must diverge from the bit-blasted adder"

    def test_incremental_fault_caught(self, monkeypatch):
        fuzz = generate_fuzz_design(design_seed_for(0, 0), "tiny")
        assert incremental_vs_full(FuzzContext(fuzz), random.Random(5)) == []
        monkeypatch.setenv(FAULT_ENV_VAR, "incremental.extra_load")
        broken = incremental_vs_full(FuzzContext(fuzz), random.Random(5))
        assert broken, "dropped load term must diverge from full re-analysis"

    def test_gbm_fault_caught(self, monkeypatch):
        fuzz = generate_fuzz_design(design_seed_for(0, 0), "tiny")
        assert hist_vs_exact_gbm(FuzzContext(fuzz), random.Random(7)) == []
        monkeypatch.setenv(FAULT_ENV_VAR, "gbm.hist_threshold")
        broken = hist_vs_exact_gbm(FuzzContext(fuzz), random.Random(7))
        assert broken, "shifted cut must diverge from the exact splitter"

    def test_fault_campaign_catches_shrinks_and_bundles(self, tmp_path, monkeypatch):
        """End-to-end: injected fault -> violation -> shrink -> replayable bundle."""
        monkeypatch.setenv(FAULT_ENV_VAR, "incremental.extra_load")
        config = _tiny_campaign(
            tmp_path,
            iterations=2,
            checks=("incremental_vs_full",),
            shrink=True,
            stop_on_first=True,
        )
        result = run_campaign(config)
        assert not result.ok
        assert result.violations[0].oracle == "incremental_vs_full"
        assert len(result.bundle_paths) == 1

        payload = json.loads((tmp_path / "bundle_seed0_incremental_vs_full.json").read_text())
        assert payload["schema"] == BUNDLE_SCHEMA
        assert payload["messages"]
        assert payload["environment"]["fault_inject"] == "incremental.extra_load"
        shrunk = payload["shrunk"]
        assert shrunk["messages"], "the shrunk design must still fail"
        original_spec, shrunk_spec = payload["spec"], shrunk["spec"]
        for field in ("stages", "regs_per_stage", "data_width", "expr_depth", "control_regs"):
            assert shrunk_spec[field] <= original_spec[field]
        assert shrunk["register_bits"] <= 4, "shrinker should reach a near-minimal design"

        # Replay reproduces under the fault and clears without it.
        assert replay_bundle(result.bundle_paths[0])
        monkeypatch.delenv(FAULT_ENV_VAR)
        assert replay_bundle(result.bundle_paths[0]) == []

    def test_optimize_oracle_registered_and_clean(self):
        assert "optimize_search" in ORACLES
        assert DEFAULT_CADENCE["optimize_search"] >= 1
        fuzz = generate_fuzz_design(design_seed_for(0, 0), "tiny")
        assert optimize_search(FuzzContext(fuzz), random.Random(11)) == []

    def test_optimize_dominance_fault_caught(self, monkeypatch):
        """The fault tooth: dominated points survive insertion and the
        oracle's pure-predicate audit flags them (determinism is unaffected,
        which is what makes the failure shrinkable)."""
        fuzz = generate_fuzz_design(design_seed_for(0, 0), "tiny")
        assert optimize_search(FuzzContext(fuzz), random.Random(0)) == []
        monkeypatch.setenv(FAULT_ENV_VAR, "optimize.dominance")
        broken = optimize_search(FuzzContext(fuzz), random.Random(0))
        assert broken, "disabled dominance filtering must be detected"
        assert any("dominated" in message for message in broken)

    def test_optimize_dominance_campaign_catches_shrinks_and_bundles(
        self, tmp_path, monkeypatch
    ):
        """End-to-end for the optimizer fault: violation -> shrink -> bundle."""
        monkeypatch.setenv(FAULT_ENV_VAR, "optimize.dominance")
        config = _tiny_campaign(
            tmp_path,
            iterations=2,
            checks=("optimize_search",),
            cadence={"optimize_search": 1},
            shrink=True,
            max_shrink_trials=16,
            stop_on_first=True,
        )
        result = run_campaign(config)
        assert not result.ok
        assert result.violations[0].oracle == "optimize_search"
        assert "dominated" in result.violations[0].message
        assert len(result.bundle_paths) == 1

        payload = json.loads(
            (tmp_path / "bundle_seed0_optimize_search.json").read_text()
        )
        assert payload["schema"] == BUNDLE_SCHEMA
        assert payload["environment"]["fault_inject"] == "optimize.dominance"
        shrunk = payload["shrunk"]
        assert shrunk["messages"], "the shrunk design must still fail"
        original_spec, shrunk_spec = payload["spec"], shrunk["spec"]
        for field in ("stages", "regs_per_stage", "data_width", "expr_depth", "control_regs"):
            assert shrunk_spec[field] <= original_spec[field]

        # Replay reproduces under the fault and clears without it.
        assert replay_bundle(result.bundle_paths[0])
        monkeypatch.delenv(FAULT_ENV_VAR)
        assert replay_bundle(result.bundle_paths[0]) == []

    def test_shrink_reaches_minimal_single_register_design(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "incremental.extra_load")
        seed = design_seed_for(0, 0)
        fuzz = generate_fuzz_design(seed, "tiny")
        reduced, messages, trials = shrink_design(fuzz, "incremental_vs_full", seed)
        assert messages
        assert trials > 0
        assert reduced.spec.stages == 1
        assert reduced.spec.regs_per_stage == 1
        assert reduced.spec.data_width == 1


class TestCLI:
    def test_cli_clean_run_writes_report(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        code = main(
            [
                "--seed", "0",
                "--iterations", "1",
                "--size-classes", "tiny",
                "--checks", "interpret_vs_simulate,incremental_vs_full",
                "--artifacts-dir", str(tmp_path / "artifacts"),
                "--bench-out", str(bench),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out
        payload = json.loads(bench.read_text())
        assert payload["stage_calls"]["fuzz.campaign"] == 1
        assert any(name.startswith("fuzz.oracle.") for name in payload["stages"])
        assert payload["counters"]["fuzz_designs"] == 1

    def test_cli_rejects_unknown_check(self, capsys):
        assert main(["--checks", "nonsense"]) == 2
        assert "unknown checks" in capsys.readouterr().out

    def test_cli_rejects_unknown_size_class(self, capsys):
        assert main(["--size-classes", "tiny,galactic"]) == 2
        assert "unknown size classes" in capsys.readouterr().out

    def test_campaign_validates_upfront(self):
        with pytest.raises(ValueError, match="size classes"):
            run_campaign(_tiny_campaign(size_classes=("tiny", "galactic")))
        with pytest.raises(ValueError, match="unknown checks"):
            run_campaign(_tiny_campaign(checks=("nonsense",)))

    def test_cli_fault_run_fails_and_writes_bundle(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(FAULT_ENV_VAR, "incremental.extra_load")
        code = main(
            [
                "--seed", "0",
                "--iterations", "1",
                "--size-classes", "tiny",
                "--checks", "incremental_vs_full",
                "--no-shrink",
                "--artifacts-dir", str(tmp_path),
                "--bench-out", str(tmp_path / "bench.json"),
            ]
        )
        assert code == 1
        assert "VIOLATION" in capsys.readouterr().out
        assert list(tmp_path.glob("bundle_*.json"))
