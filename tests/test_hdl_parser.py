"""Unit tests for the Verilog parser and AST."""

import pytest

from repro.hdl.ast_nodes import (
    BinaryOp,
    BitSelect,
    Concat,
    Identifier,
    IfStatement,
    Number,
    PartSelect,
    Repeat,
    Ternary,
    UnaryOp,
)
from repro.hdl.parser import ParseError, Parser, parse_source
from repro.hdl.writer import write_verilog


def parse_expr(text):
    return Parser(text).parse_expression()


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = parse_expr("a | b & c")
        assert expr.op == "|"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "&"

    def test_ternary(self):
        expr = parse_expr("s ? a : b")
        assert isinstance(expr, Ternary)
        assert isinstance(expr.cond, Identifier)

    def test_nested_ternary_right_associative(self):
        expr = parse_expr("s ? a : t ? b : c")
        assert isinstance(expr, Ternary)
        assert isinstance(expr.if_false, Ternary)

    def test_unary_reduction(self):
        expr = parse_expr("^a")
        assert isinstance(expr, UnaryOp) and expr.op == "^"

    def test_bit_select_and_part_select(self):
        assert parse_expr("a[3]") == BitSelect("a", 3)
        assert parse_expr("a[7:4]") == PartSelect("a", 7, 4)

    def test_concat_and_repeat(self):
        expr = parse_expr("{a, b[1], 2'b01}")
        assert isinstance(expr, Concat) and len(expr.parts) == 3
        rep = parse_expr("{4{a}}")
        assert isinstance(rep, Repeat) and rep.count == 4

    def test_sized_number(self):
        expr = parse_expr("8'hA5")
        assert isinstance(expr, Number) and expr.value == 0xA5 and expr.width == 8

    def test_parentheses_override_precedence(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"


class TestModules:
    def test_parse_simple_module(self, simple_source):
        module = parse_source(simple_source)
        assert module.name == "simple"
        assert {p.name for p in module.ports} >= {"clk", "a", "b", "sel", "y", "q"}
        assert len(module.always_blocks) == 1
        assert module.always_blocks[0].clock == "clk"

    def test_port_widths(self, simple_module):
        assert simple_module.port("a").width == 4
        assert simple_module.port("sel").width == 1

    def test_if_else_becomes_if_statement(self, simple_module):
        body = simple_module.always_blocks[0].body
        assert any(isinstance(statement, IfStatement) for statement in body)

    def test_roundtrip_through_writer(self, simple_module):
        regenerated = parse_source(write_verilog(simple_module))
        assert regenerated.name == simple_module.name
        assert len(regenerated.ports) == len(simple_module.ports)
        assert len(regenerated.assigns) == len(simple_module.assigns)

    def test_ansi_style_header(self):
        source = """
        module ansi (input clk, input [3:0] d, output [3:0] q);
          reg [3:0] q;
          always @(posedge clk) q <= d;
        endmodule
        """
        module = parse_source(source)
        assert module.port("d").width == 4
        assert module.port("q").direction == "output"

    def test_unsupported_construct_raises(self):
        with pytest.raises(ParseError):
            parse_source("module m; initial begin end endmodule")

    def test_negedge_clock_rejected(self):
        with pytest.raises(ParseError):
            parse_source(
                "module m (clk); input clk; reg r; always @(negedge clk) r <= 1'b1; endmodule"
            )

    def test_missing_semicolon_is_error(self):
        with pytest.raises(ParseError):
            parse_source("module m (a); input a endmodule")

    def test_parameters_are_skipped(self):
        source = """
        module p (clk, d, q);
          parameter WIDTH = 8;
          input clk; input d; output q;
          reg q;
          always @(posedge clk) q <= d;
        endmodule
        """
        module = parse_source(source)
        assert module.name == "p"
