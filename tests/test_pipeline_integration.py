"""End-to-end integration tests of the RTLTimer pipeline.

Covers the full workflow of Fig. 3: train on a set of designs, predict on an
unseen design, annotate its HDL, derive synthesis options, and check the
optimization loop runs.  Model sizes are kept small for speed.
"""

import numpy as np
import pytest

from repro.core import (
    BitwiseConfig,
    OverallConfig,
    RTLTimer,
    RTLTimerConfig,
    SignalwiseConfig,
    run_optimization_experiment,
)
from repro.hdl.parser import parse_source
from repro.synth.optimizer import SynthesisOptions


@pytest.fixture(scope="module")
def trained_timer(tiny_records):
    config = RTLTimerConfig(
        bitwise=BitwiseConfig(
            n_estimators=20,
            max_depth=4,
            variants=("sog", "aig"),
            max_train_endpoints_per_design=60,
        ),
        signalwise=SignalwiseConfig(n_estimators=20, ranker_estimators=30),
        overall=OverallConfig(n_estimators=15),
    )
    return RTLTimer(config).fit(tiny_records[:4])


@pytest.fixture(scope="module")
def prediction(trained_timer, tiny_records):
    return trained_timer.predict(tiny_records[4])


def test_prediction_structure(prediction, tiny_records):
    test_record = tiny_records[4]
    assert set(prediction.bitwise_arrival) == set(test_record.endpoint_names)
    assert set(prediction.signal_arrival) == set(test_record.signal_labels())
    assert set(prediction.signal_slack) == set(prediction.signal_arrival)
    assert prediction.overall["wns"] <= 0.0
    assert prediction.overall["tns"] <= prediction.overall["wns"] + 1e-9
    assert prediction.runtime_seconds > 0.0


def test_rank_groups_cover_signals(prediction):
    assert set(prediction.rank_group) == set(prediction.signal_ranking)
    assert set(prediction.rank_group.values()) <= {1, 2, 3, 4}


def test_ranked_signals_sorted_by_score(prediction):
    ranked = prediction.ranked_signals()
    scores = [prediction.signal_ranking[s] for s in ranked]
    assert scores == sorted(scores, reverse=True)


def test_bitwise_accuracy_on_unseen_design(trained_timer, tiny_records):
    metrics = trained_timer.evaluate_bitwise(tiny_records[4])
    assert metrics["r"] > 0.5
    assert metrics["mape"] < 60.0


def test_signalwise_accuracy_on_unseen_design(trained_timer, tiny_records):
    metrics = trained_timer.evaluate_signalwise(tiny_records[4])
    assert metrics["r"] > 0.4
    assert 0.0 <= metrics["ranking_covr"] <= 100.0


def test_annotation_is_valid_verilog(trained_timer, tiny_records, prediction):
    annotated = trained_timer.annotate(tiny_records[4], prediction)
    module = parse_source(annotated)
    assert module.name == tiny_records[4].design.name
    assert "Slack@" in annotated


def test_synthesis_options_from_prediction(trained_timer, tiny_records, prediction):
    options = trained_timer.synthesis_options(tiny_records[4], prediction)
    assert isinstance(options, SynthesisOptions)
    assert options.uses_grouping
    assert options.uses_retiming


def test_prediction_driven_optimization_runs(trained_timer, tiny_records, prediction):
    outcome = run_optimization_experiment(
        tiny_records[4], prediction.ranked_signals(), ranking_source="predicted"
    )
    assert outcome.default.wns <= 0.0
    assert np.isfinite(outcome.tns_change_pct)


def test_training_designs_recorded(trained_timer, tiny_records):
    assert trained_timer.training_designs_ == [r.name for r in tiny_records[:4]]
