"""Tests for BOG functional simulation helpers."""

import pytest

from repro.bog.builder import build_sog
from repro.bog.graph import BOG
from repro.bog.simulate import evaluate_endpoints, evaluate_nodes, evaluate_signal_words


@pytest.fixture
def xor_graph():
    g = BOG("xor", variant="sog")
    a, b = g.add_input("a"), g.add_input("b")
    r = g.add_register("R[0]")
    g.add_endpoint("R[0]", "R", 0, g.XOR(a, b), reg_node=r)
    return g


def test_evaluate_nodes_truth_table(xor_graph):
    for a in (0, 1):
        for b in (0, 1):
            values = evaluate_endpoints(xor_graph, {"a": a, "b": b})
            assert values["R[0]"] == a ^ b


def test_missing_sources_default_to_zero(xor_graph):
    assert evaluate_endpoints(xor_graph, {})["R[0]"] == 0
    assert evaluate_endpoints(xor_graph, {"a": 1})["R[0]"] == 1


def test_mux_and_not_evaluation():
    g = BOG("m", variant="sog")
    s, a, b = g.add_input("s"), g.add_input("a"), g.add_input("b")
    r = g.add_register("R[0]")
    g.add_endpoint("R[0]", "R", 0, g.MUX(s, g.NOT(a), b), reg_node=r)
    assert evaluate_endpoints(g, {"s": 1, "a": 0, "b": 0})["R[0]"] == 1
    assert evaluate_endpoints(g, {"s": 0, "a": 0, "b": 1})["R[0]"] == 1
    assert evaluate_endpoints(g, {"s": 1, "a": 1, "b": 1})["R[0]"] == 0


def test_constant_nodes_evaluate():
    g = BOG("c", variant="sog")
    r = g.add_register("R[0]")
    g.add_endpoint("R[0]", "R", 0, g.const1(), reg_node=r)
    g.add_endpoint("R[1]", "R", 1, g.const0(), reg_node=g.add_register("R[1]"))
    values = evaluate_endpoints(g, {})
    assert values["R[0]"] == 1 and values["R[1]"] == 0


def test_signal_words_pack_bits(simple_design):
    sog = build_sog(simple_design)
    words = evaluate_signal_words(sog, {"a[0]": 1, "a[1]": 1, "b[0]": 1, "sel[0]": 0})
    # acc <= (sel ? a+b : a&b) ^ acc  with acc=0, sel=0: (a & b) = 1
    assert words["acc"] == 1


def test_evaluate_nodes_returns_value_per_node(xor_graph):
    values = evaluate_nodes(xor_graph, {"a": 1, "b": 0})
    assert len(values) == len(xor_graph.nodes)
    assert set(values) <= {0, 1}
