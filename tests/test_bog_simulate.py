"""Tests for BOG functional simulation helpers."""

import random

import pytest

from repro.bog.builder import build_sog
from repro.bog.graph import BOG
from repro.bog.simulate import (
    PACKED_LANES,
    evaluate_endpoints,
    evaluate_endpoints_packed,
    evaluate_nodes,
    evaluate_nodes_packed,
    evaluate_signal_words,
    pack_source_vectors,
    unpack_lane,
)
from repro.bog.transforms import build_variants


@pytest.fixture
def xor_graph():
    g = BOG("xor", variant="sog")
    a, b = g.add_input("a"), g.add_input("b")
    r = g.add_register("R[0]")
    g.add_endpoint("R[0]", "R", 0, g.XOR(a, b), reg_node=r)
    return g


def test_evaluate_nodes_truth_table(xor_graph):
    for a in (0, 1):
        for b in (0, 1):
            values = evaluate_endpoints(xor_graph, {"a": a, "b": b})
            assert values["R[0]"] == a ^ b


def test_missing_sources_default_to_zero(xor_graph):
    assert evaluate_endpoints(xor_graph, {})["R[0]"] == 0
    assert evaluate_endpoints(xor_graph, {"a": 1})["R[0]"] == 1


def test_mux_and_not_evaluation():
    g = BOG("m", variant="sog")
    s, a, b = g.add_input("s"), g.add_input("a"), g.add_input("b")
    r = g.add_register("R[0]")
    g.add_endpoint("R[0]", "R", 0, g.MUX(s, g.NOT(a), b), reg_node=r)
    assert evaluate_endpoints(g, {"s": 1, "a": 0, "b": 0})["R[0]"] == 1
    assert evaluate_endpoints(g, {"s": 0, "a": 0, "b": 1})["R[0]"] == 1
    assert evaluate_endpoints(g, {"s": 1, "a": 1, "b": 1})["R[0]"] == 0


def test_constant_nodes_evaluate():
    g = BOG("c", variant="sog")
    r = g.add_register("R[0]")
    g.add_endpoint("R[0]", "R", 0, g.const1(), reg_node=r)
    g.add_endpoint("R[1]", "R", 1, g.const0(), reg_node=g.add_register("R[1]"))
    values = evaluate_endpoints(g, {})
    assert values["R[0]"] == 1 and values["R[1]"] == 0


def test_signal_words_pack_bits(simple_design):
    sog = build_sog(simple_design)
    words = evaluate_signal_words(sog, {"a[0]": 1, "a[1]": 1, "b[0]": 1, "sel[0]": 0})
    # acc <= (sel ? a+b : a&b) ^ acc  with acc=0, sel=0: (a & b) = 1
    assert words["acc"] == 1


def test_evaluate_nodes_returns_value_per_node(xor_graph):
    values = evaluate_nodes(xor_graph, {"a": 1, "b": 0})
    assert len(values) == len(xor_graph.nodes)
    assert set(values) <= {0, 1}


class TestPackedSimulation:
    def test_packed_matches_scalar_on_every_variant(self, simple_design):
        rng = random.Random(9)
        for variant, graph in build_variants(simple_design).items():
            names = list(graph.sources)
            vectors = [
                {name: rng.getrandbits(1) for name in names}
                for _ in range(PACKED_LANES)
            ]
            packed = evaluate_nodes_packed(graph, pack_source_vectors(vectors))
            for lane in range(PACKED_LANES):
                assert unpack_lane(packed, lane) == evaluate_nodes(
                    graph, vectors[lane]
                ), f"{variant} lane {lane}"

    def test_packed_endpoints_match_scalar(self, xor_graph):
        vectors = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        packed = evaluate_endpoints_packed(xor_graph, pack_source_vectors(vectors))
        for lane, vector in enumerate(vectors):
            expected = evaluate_endpoints(xor_graph, vector)["R[0]"]
            assert (packed["R[0]"] >> lane) & 1 == expected

    def test_partial_lane_count_and_missing_sources(self, xor_graph):
        # Unfilled lanes and missing source names both default to all-zero.
        packed = evaluate_nodes_packed(
            xor_graph, pack_source_vectors([{"a": 1}])
        )
        assert unpack_lane(packed, 0) == evaluate_nodes(xor_graph, {"a": 1})
        assert unpack_lane(packed, 1) == evaluate_nodes(xor_graph, {})

    def test_more_than_64_vectors_rejected(self):
        with pytest.raises(ValueError, match="at most 64"):
            pack_source_vectors([{"a": 1}] * (PACKED_LANES + 1))

    def test_unpack_lane_bounds(self, xor_graph):
        packed = evaluate_nodes_packed(xor_graph, {})
        with pytest.raises(ValueError, match="lane"):
            unpack_lane(packed, PACKED_LANES)
        with pytest.raises(ValueError, match="lane"):
            unpack_lane(packed, -1)

    def test_const1_is_all_ones_in_every_lane(self):
        g = BOG("c", variant="sog")
        r = g.add_register("R[0]")
        g.add_endpoint("R[0]", "R", 0, g.const1(), reg_node=r)
        packed = evaluate_endpoints_packed(g, {})
        assert packed["R[0]"] == (1 << PACKED_LANES) - 1


class TestTopologicalOrderValidation:
    def _corrupted(self):
        g = BOG("bad", variant="sog")
        a, b = g.add_input("a"), g.add_input("b")
        r = g.add_register("R[0]")
        node = g.AND(a, b)
        g.add_endpoint("R[0]", "R", 0, node, reg_node=r)
        # Point the AND at a node id that does not precede it.
        g.nodes[node].fanins = (node, b)
        return g

    def test_corrupted_graph_rejected_by_topological_order(self):
        with pytest.raises(ValueError, match="not a topological order"):
            self._corrupted().topological_order()

    def test_corrupted_graph_rejected_by_both_evaluators(self):
        for evaluate in (
            lambda g: evaluate_nodes(g, {}),
            lambda g: evaluate_nodes_packed(g, {}),
        ):
            with pytest.raises(ValueError, match="not a topological order"):
                evaluate(self._corrupted())
