"""Resilience primitives: faults registry, breakers, admission, deadlines."""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    FAULT_ENV_VAR,
    FAULT_REGISTRY,
    fault_active,
    fault_fires,
    format_faults,
    parse_faults,
    reset_draws,
)
from repro.runtime.report import RuntimeReport
from repro.serve.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    RejectedError,
    remaining_or_none,
    run_with_kernel_fallback,
)
from repro.sta import engine as sta_engine


# ---------------------------------------------------------------------------
# Fault-injection registry
# ---------------------------------------------------------------------------


def test_fault_parse_format_roundtrip():
    specs = {"worker.crash": 0.25, "cache.corrupt_entry": 1.0}
    encoded = format_faults(specs, seed=7)
    parsed = parse_faults(encoded)
    assert parsed["worker.crash"].probability == 0.25
    assert parsed["worker.crash"].seed == 7
    assert parsed["cache.corrupt_entry"].probability == 1.0


def test_unknown_fault_name_rejected():
    with pytest.raises(ValueError, match="unknown fault"):
        parse_faults("no.such.fault:p=0.5")


def test_fault_fires_deterministic_per_seed_and_token(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "worker.crash:p=0.5:seed=3")
    draws = [fault_fires("worker.crash", token=str(i)) for i in range(64)]
    again = [fault_fires("worker.crash", token=str(i)) for i in range(64)]
    assert draws == again  # token-keyed draws are pure functions of the seed
    assert any(draws) and not all(draws)

    monkeypatch.setenv(FAULT_ENV_VAR, "worker.crash:p=0.5:seed=4")
    other_seed = [fault_fires("worker.crash", token=str(i)) for i in range(64)]
    assert other_seed != draws


def test_fault_inactive_without_env(monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    reset_draws()
    assert not fault_active("worker.crash")
    assert not fault_fires("worker.crash", token="anything")


def test_every_registered_fault_parses():
    encoded = format_faults({name: 0.5 for name in FAULT_REGISTRY}, seed=1)
    assert set(parse_faults(encoded)) == set(FAULT_REGISTRY)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


def test_breaker_trips_after_threshold_and_recovers():
    report = RuntimeReport()
    breaker = CircuitBreaker("dep", failure_threshold=2, reset_after_s=0.05, report=report)
    assert breaker.state == "closed"
    assert breaker.allows()
    breaker.record_failure()
    assert breaker.state == "closed"  # one failure is not a trip
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allows()
    assert report.counters["breaker_dep_trips"] == 1

    time.sleep(0.06)
    assert breaker.allows()  # half-open probe
    assert breaker.state == "half_open"
    assert not breaker.allows()  # only one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    assert report.counters["breaker_dep_recoveries"] == 1


def test_breaker_failed_probe_reopens():
    breaker = CircuitBreaker("dep", failure_threshold=1, reset_after_s=0.01)
    breaker.record_failure()
    time.sleep(0.02)
    assert breaker.allows()
    breaker.record_failure()  # probe failed
    assert breaker.state == "open"
    assert not breaker.allows()


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def test_admission_sheds_above_queue_bound():
    report = RuntimeReport()
    admission = AdmissionController(queue_max=2, retry_after_s=0.5, report=report)
    first = admission.admit("predict")
    second = admission.admit("predict")
    with pytest.raises(RejectedError) as excinfo:
        admission.admit("predict")
    assert excinfo.value.retry_after_s == 0.5
    assert report.counters["serve_shed"] == 1
    first.__exit__(None, None, None)
    with admission.admit("predict"):
        pass  # slot freed -> admitted again
    second.__exit__(None, None, None)
    assert report.counters["serve_admitted"] == 3
    assert admission.depth() == 0


def test_admission_per_route_limit_is_independent():
    report = RuntimeReport()
    admission = AdmissionController(queue_max=16, route_limits={"whatif": 1}, report=report)
    with admission.admit("whatif"):
        with pytest.raises(RejectedError):
            admission.admit("whatif")
        with admission.admit("predict"):
            pass  # other routes unaffected
    assert report.counters["serve_shed_whatif"] == 1


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


def test_deadline_remaining_and_expiry():
    deadline = Deadline.after(0.05)
    assert 0.0 < deadline.remaining() <= 0.05
    assert not deadline.expired
    assert remaining_or_none(deadline) == pytest.approx(deadline.remaining(), abs=0.01)
    time.sleep(0.06)
    assert deadline.expired
    assert deadline.remaining() <= 0.0
    assert remaining_or_none(deadline) == 0.0  # clamped for wait() timeouts
    assert remaining_or_none(None) is None
    assert Deadline.after(None) is None


# ---------------------------------------------------------------------------
# Kernel degradation
# ---------------------------------------------------------------------------


def test_kernel_forced_overrides_and_restores(monkeypatch):
    monkeypatch.delenv(sta_engine.STA_KERNEL_ENV_VAR, raising=False)
    assert sta_engine.resolve_kernel(None) == "array"
    with sta_engine.kernel_forced("reference"):
        assert sta_engine.resolve_kernel(None) == "reference"
        assert sta_engine.resolve_kernel("array") == "reference"  # forced wins
    assert sta_engine.resolve_kernel(None) == "array"
    with pytest.raises(ValueError):
        with sta_engine.kernel_forced("warp-drive"):
            pass


def test_run_with_kernel_fallback_degrades_once(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "kernel.exception")
    report = RuntimeReport()
    breaker = CircuitBreaker("kernel", failure_threshold=3, report=report)
    calls = []

    def flaky():
        calls.append(sta_engine.resolve_kernel(None))
        if sta_engine.resolve_kernel(None) == "array":
            raise RuntimeError("injected fault: kernel.exception")
        return "ok"

    assert run_with_kernel_fallback(breaker, flaky, report) == "ok"
    assert calls == ["array", "reference"]
    assert report.counters["serve_degraded_kernel_reference"] == 1
    assert report.counters["breaker_kernel_failures"] == 1


def test_run_with_kernel_fallback_skips_primary_when_open():
    report = RuntimeReport()
    breaker = CircuitBreaker("kernel", failure_threshold=1, reset_after_s=60.0, report=report)
    breaker.record_failure()  # trip it
    calls = []

    def fn():
        calls.append(sta_engine.resolve_kernel(None))
        return "ok"

    assert run_with_kernel_fallback(breaker, fn, report) == "ok"
    assert calls == ["reference"]  # open breaker: no array attempt at all
