"""Tests for the Boolean operator graph data structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bog.graph import BOG


@pytest.fixture
def graph():
    return BOG("test", variant="sog")


class TestConstruction:
    def test_constants_are_unique(self, graph):
        assert graph.const0() == graph.const0()
        assert graph.const1() == graph.const1()
        assert graph.const0() != graph.const1()

    def test_sources_are_deduplicated(self, graph):
        a = graph.add_input("a")
        assert graph.add_input("a") == a
        r = graph.add_register("R[0]")
        assert graph.add_register("R[0]") == r

    def test_structural_hashing_commutative_ops(self, graph):
        a, b = graph.add_input("a"), graph.add_input("b")
        assert graph.AND(a, b) == graph.AND(b, a)
        assert graph.XOR(a, b) == graph.XOR(b, a)
        assert graph.OR(a, b) == graph.OR(b, a)

    def test_mux_is_not_commutative(self, graph):
        s, a, b = graph.add_input("s"), graph.add_input("a"), graph.add_input("b")
        assert graph.MUX(s, a, b) != graph.MUX(s, b, a)

    def test_variant_restricts_operators(self):
        aig = BOG("aig_graph", variant="aig")
        a, b = aig.add_input("a"), aig.add_input("b")
        aig.AND(a, b)
        with pytest.raises(ValueError):
            aig.OR(a, b)
        with pytest.raises(ValueError):
            aig.MUX(a, a, b)


class TestFolding:
    def test_and_identities(self, graph):
        a = graph.add_input("a")
        assert graph.AND(a, graph.const1()) == a
        assert graph.AND(a, graph.const0()) == graph.const0()
        assert graph.AND(a, a) == a

    def test_or_identities(self, graph):
        a = graph.add_input("a")
        assert graph.OR(a, graph.const0()) == a
        assert graph.OR(a, graph.const1()) == graph.const1()
        assert graph.OR(a, a) == a

    def test_xor_identities(self, graph):
        a = graph.add_input("a")
        assert graph.XOR(a, a) == graph.const0()
        assert graph.XOR(a, graph.const0()) == a

    def test_not_of_not_cancels(self, graph):
        a = graph.add_input("a")
        assert graph.NOT(graph.NOT(a)) == a
        assert graph.NOT(graph.const0()) == graph.const1()

    def test_mux_constant_select(self, graph):
        a, b = graph.add_input("a"), graph.add_input("b")
        assert graph.MUX(graph.const1(), a, b) == a
        assert graph.MUX(graph.const0(), a, b) == b
        assert graph.MUX(graph.add_input("s"), a, a) == a


class TestQueries:
    def _small(self):
        g = BOG("q", variant="sog")
        a, b = g.add_input("a"), g.add_input("b")
        r = g.add_register("R[0]")
        x = g.AND(a, b)
        y = g.XOR(x, r)
        g.add_endpoint("R[0]", "R", 0, y, reg_node=r)
        return g, y

    def test_levels_and_depth(self):
        g, y = self._small()
        levels = g.levels()
        assert levels[y] == 2
        assert g.depth() == 2

    def test_topological_order_respects_fanins(self):
        g, _ = self._small()
        order = g.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node in g.nodes:
            for fanin in node.fanins:
                assert position[fanin] < position[node.id]

    def test_transitive_fanin_and_driving_registers(self):
        g, y = self._small()
        cone = g.transitive_fanin(y)
        assert y in cone
        drivers = g.driving_registers(y)
        assert len(drivers) == 3  # a, b and R[0]

    def test_stats_and_type_counts(self):
        g, _ = self._small()
        stats = g.stats()
        assert stats["n_sequential"] == 1
        assert stats["n_endpoints"] == 1
        counts = g.type_counts()
        assert counts["and"] == 1 and counts["xor"] == 1

    def test_validate_passes_on_wellformed_graph(self):
        g, _ = self._small()
        g.validate()

    def test_fanouts(self):
        g, y = self._small()
        fanouts = g.fanouts()
        a = g.sources["a"]
        assert any(y_ in fanouts[a] for y_ in range(len(g)))
@given(values=st.lists(st.booleans(), min_size=2, max_size=6))
def test_folding_preserves_and_semantics(values):
    """AND chains built through the folding constructor evaluate correctly."""
    from repro.bog.simulate import evaluate_nodes

    g = BOG("prop", variant="sog")
    inputs = [g.add_input(f"i{k}") for k in range(len(values))]
    node = inputs[0]
    for other in inputs[1:]:
        node = g.AND(node, other)
    env = {f"i{k}": int(v) for k, v in enumerate(values)}
    result = evaluate_nodes(g, env)[node]
    assert result == int(all(values))
