"""Tests for the STA engine, constraints and path tracing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bog.builder import build_sog
from repro.liberty import pseudo_library
from repro.sta import (
    ClockConstraint,
    TimingNetwork,
    VertexKind,
    analyze,
    compute_loads,
    driving_launch_points,
    from_bog,
    input_cone,
    path_arrival,
    sample_random_path,
    trace_critical_path,
)


@pytest.fixture(scope="module")
def pseudo_net(simple_design):
    return from_bog(build_sog(simple_design))


@pytest.fixture(scope="module")
def report(pseudo_net):
    return analyze(pseudo_net, ClockConstraint(period=500.0))


class TestConstraints:
    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            ClockConstraint(period=0.0)
        with pytest.raises(ValueError):
            ClockConstraint(period=100.0, uncertainty=-1.0)

    def test_required_time(self):
        clock = ClockConstraint(period=500.0, uncertainty=20.0)
        assert clock.required_time(42.0) == pytest.approx(438.0)

    def test_scaled(self):
        clock = ClockConstraint(period=500.0)
        assert clock.scaled(2.0).period == 1000.0


class TestEngine:
    def test_arrivals_nonnegative_and_monotone_along_fanin(self, pseudo_net, report):
        for vertex in pseudo_net.vertices:
            if vertex.kind is VertexKind.GATE:
                for fanin in vertex.fanins:
                    assert report.arrivals[vertex.id] >= report.arrivals[fanin] - 1e-9

    def test_every_register_endpoint_reported(self, pseudo_net, report):
        reported = {e.name for e in report.endpoints}
        expected = {e.name for e in pseudo_net.endpoints}
        assert reported == expected

    def test_slack_is_required_minus_arrival(self, pseudo_net, report):
        endpoint = report.register_endpoints()[0]
        net_endpoint = next(e for e in pseudo_net.endpoints if e.name == endpoint.name)
        required = report.clock.required_time(net_endpoint.setup_time)
        assert endpoint.slack == pytest.approx(required - endpoint.arrival)

    def test_wns_tns_consistency(self, report):
        negative = [e.slack for e in report.endpoints if e.slack < 0]
        if negative:
            assert report.wns == pytest.approx(min(negative))
            assert report.tns == pytest.approx(sum(negative))
        else:
            assert report.wns == 0.0 and report.tns == 0.0

    def test_longer_period_improves_slack(self, pseudo_net):
        short = analyze(pseudo_net, ClockConstraint(period=300.0))
        long = analyze(pseudo_net, ClockConstraint(period=900.0))
        assert long.wns >= short.wns
        assert long.tns >= short.tns

    def test_signal_aggregation(self, report):
        signal_arrivals = report.signal_arrivals()
        for endpoint in report.endpoints:
            assert signal_arrivals[endpoint.signal] >= endpoint.arrival - 1e-9

    def test_loads_include_fanout_caps(self, pseudo_net):
        loads = compute_loads(pseudo_net)
        fanouts = pseudo_net.fanouts()
        for vertex in pseudo_net.vertices:
            if fanouts[vertex.id]:
                assert loads[vertex.id] > 0.0

    def test_extra_load_increases_arrival(self, simple_design):
        network = from_bog(build_sog(simple_design))
        clock = ClockConstraint(period=500.0)
        base = analyze(network, clock)
        for vertex in network.vertices:
            vertex.extra_load += 20.0
        network.invalidate()
        loaded = analyze(network, clock)
        assert loaded.summary()["max_arrival"] > base.summary()["max_arrival"]

    def test_derate_scales_delays(self, simple_design):
        network = from_bog(build_sog(simple_design))
        clock = ClockConstraint(period=500.0)
        base = analyze(network, clock)
        for vertex in network.vertices:
            vertex.derate = 0.5
        faster = analyze(network, clock)
        assert faster.summary()["max_arrival"] < base.summary()["max_arrival"]


class TestPaths:
    def test_critical_path_starts_at_launch_point(self, pseudo_net, report):
        endpoint = report.register_endpoints()[0]
        path = trace_critical_path(pseudo_net, report, endpoint.name)
        first = pseudo_net.vertices[path.vertices[0]]
        assert first.kind in (VertexKind.REGISTER, VertexKind.INPUT, VertexKind.CONST)
        assert path.vertices[-1] == endpoint.driver

    def test_critical_path_arrival_matches_report(self, pseudo_net, report):
        endpoint = max(report.register_endpoints(), key=lambda e: e.arrival)
        path = trace_critical_path(pseudo_net, report, endpoint.name)
        assert path_arrival(pseudo_net, report, path.vertices) == pytest.approx(
            endpoint.arrival, rel=1e-6
        )

    def test_random_path_stays_in_cone(self, pseudo_net, report):
        import random

        endpoint = pseudo_net.endpoints[0]
        cone = input_cone(pseudo_net, endpoint.driver)
        rng = random.Random(3)
        for _ in range(5):
            path = sample_random_path(pseudo_net, endpoint.driver, rng)
            assert set(path) <= cone
            assert path[-1] == endpoint.driver

    def test_random_path_arrival_bounded_by_critical(self, pseudo_net, report):
        import random

        endpoint = max(report.register_endpoints(), key=lambda e: e.arrival)
        net_endpoint = next(e for e in pseudo_net.endpoints if e.name == endpoint.name)
        rng = random.Random(1)
        for _ in range(5):
            path = sample_random_path(pseudo_net, net_endpoint.driver, rng)
            assert path_arrival(pseudo_net, report, path) <= endpoint.arrival + 1e-6

    def test_driving_launch_points(self, pseudo_net):
        endpoint = pseudo_net.endpoints[0]
        launches = driving_launch_points(pseudo_net, endpoint.driver)
        for vertex_id in launches:
            assert pseudo_net.vertices[vertex_id].is_launch_point


class TestNetworkStructure:
    def test_cycle_detection(self):
        network = TimingNetwork("cyclic")
        lib = pseudo_library()
        a = network.add_vertex(VertexKind.INPUT, name="a")
        g1 = network.add_vertex(VertexKind.GATE, fanins=[a], cell=lib.pick("NOT"))
        g2 = network.add_vertex(VertexKind.GATE, fanins=[g1], cell=lib.pick("NOT"))
        network.vertices[g1].fanins.append(g2)
        network.invalidate()
        with pytest.raises(ValueError):
            network.topological_order()

    def test_gate_without_cell_rejected(self):
        network = TimingNetwork("broken")
        a = network.add_vertex(VertexKind.INPUT, name="a")
        network.add_vertex(VertexKind.GATE, fanins=[a], cell=None)
        with pytest.raises(ValueError):
            network.validate()
@given(period=st.floats(min_value=100.0, max_value=2000.0))
def test_tns_never_positive_and_wns_bounds_tns(period, simple_design):
    network = from_bog(build_sog(simple_design))
    report = analyze(network, ClockConstraint(period=period))
    assert report.tns <= 0.0
    assert report.wns <= 0.0
    assert report.tns <= report.wns or report.tns == 0.0
