"""Tests for timing-driven optimization: sizing, group_path, retime."""

import pytest

from repro.bog.builder import build_sog
from repro.sta import ClockConstraint, analyze
from repro.synth import (
    PathGroup,
    SynthesisOptions,
    map_to_netlist,
    optimize,
    synthesize,
    synthesize_bog,
)


@pytest.fixture()
def mapped(simple_design):
    sog = build_sog(simple_design)
    return map_to_netlist(sog, seed=2)


@pytest.fixture(scope="module")
def tight_clock(simple_design):
    sog = build_sog(simple_design)
    netlist = map_to_netlist(sog, seed=2)
    report = analyze(netlist, ClockConstraint(period=1000.0))
    max_arrival = report.summary()["max_arrival"]
    return ClockConstraint(period=0.7 * max_arrival)


def test_default_optimization_never_worsens_wns(mapped, tight_clock):
    before = analyze(mapped, tight_clock)
    after, trace = optimize(mapped, tight_clock, SynthesisOptions())
    # Area recovery is allowed to give back at most ~1 ps of WNS.
    assert after.wns >= before.wns - 1.5
    assert trace.passes >= 1


def test_sizing_upsizes_cells_on_critical_paths(mapped, tight_clock):
    _, trace = optimize(mapped, tight_clock, SynthesisOptions(area_recovery=False))
    assert trace.upsized > 0


def test_area_recovery_downsizes_noncritical_cells(mapped):
    loose_clock = ClockConstraint(period=5000.0)
    _, trace = optimize(mapped, loose_clock, SynthesisOptions())
    assert trace.downsized > 0


def test_group_path_options_touch_more_endpoints(simple_design, tight_clock):
    sog = build_sog(simple_design)
    default = synthesize_bog(sog, tight_clock, SynthesisOptions(), seed=4)

    signals = sorted({e.signal for e in default.report.endpoints})
    groups = [PathGroup("g1", signals[: len(signals) // 2]), PathGroup("g2", signals[len(signals) // 2 :])]
    grouped = synthesize_bog(sog, tight_clock, SynthesisOptions(path_groups=groups), seed=4)
    assert grouped.trace.upsized >= default.trace.upsized


def test_retime_moves_register(mapped, tight_clock):
    report = analyze(mapped, tight_clock)
    worst = min(report.register_endpoints(), key=lambda e: e.slack)
    n_endpoints_before = len(mapped.endpoints)
    moved = mapped.retime_endpoint_backward(worst.name)
    if moved:
        assert len(mapped.endpoints) != n_endpoints_before
        assert all(e.name != worst.name for e in mapped.endpoints)
        analyze(mapped, tight_clock)  # still acyclic / analyzable


def test_retime_on_output_endpoint_is_rejected(mapped):
    output_endpoints = [e for e in mapped.endpoints if e.kind == "output"]
    if output_endpoints:
        assert not mapped.retime_endpoint_backward(output_endpoints[0].name)


def test_synthesize_full_flow(simple_design):
    clock = ClockConstraint(period=400.0)
    result = synthesize(simple_design, clock)
    assert result.design == "simple"
    assert result.qor.area > 0
    assert result.runtime_seconds >= 0
    assert len(result.report.endpoints) == len(result.netlist.endpoints)


def test_options_flags():
    options = SynthesisOptions()
    assert not options.uses_grouping and not options.uses_retiming
    options = SynthesisOptions(path_groups=[PathGroup("g1", ["a"])], retime_signals=["a"])
    assert options.uses_grouping and options.uses_retiming


def test_resize_requires_same_function(mapped):
    from repro.sta.network import VertexKind

    gate = next(v for v in mapped.vertices if v.kind is VertexKind.GATE)
    other_function = "INV" if gate.cell.function != "INV" else "NAND2"
    with pytest.raises(ValueError):
        mapped.resize(gate.id, mapped.library.pick(other_function))
