"""Tests for dataset construction, path sampling and feature extraction."""

import numpy as np
import pytest

from repro.core.dataset import dataset_summary
from repro.core.features import (
    PATH_FEATURE_NAMES,
    bog_graph_data,
    combine_path_datasets,
    design_feature_vector,
    extract_path_dataset,
)
from repro.core.sampling import SamplingConfig, sample_count, sample_design_paths


class TestDataset:
    def test_record_contains_all_variants(self, tiny_record):
        assert set(tiny_record.bogs) == {"sog", "aig", "aimg", "xag"}
        assert set(tiny_record.pseudo_reports) == set(tiny_record.bogs)

    def test_labels_cover_register_endpoints(self, tiny_record):
        rtl_registers = {
            e.name for e in tiny_record.bogs["sog"].endpoints if e.kind == "register"
        }
        assert set(tiny_record.labels) == rtl_registers
        assert all(value >= 0 for value in tiny_record.labels.values())

    def test_clock_creates_violations(self, tiny_record):
        assert tiny_record.wns_label < 0.0
        assert tiny_record.tns_label <= tiny_record.wns_label

    def test_signal_labels_are_max_over_bits(self, tiny_record):
        signal_labels = tiny_record.signal_labels()
        for name, arrival in tiny_record.labels.items():
            signal = tiny_record.endpoint_signal(name)
            assert signal_labels[signal] >= arrival

    def test_slack_labels_consistent(self, tiny_record):
        endpoint_slacks = tiny_record.endpoint_slack_labels()
        label_slacks = {
            e.name: e.slack
            for e in tiny_record.label_report.endpoints
            if e.kind == "register"
        }
        for name, slack in endpoint_slacks.items():
            assert slack == pytest.approx(label_slacks[name], abs=1e-6)

    def test_summary_and_dataset_summary(self, tiny_records):
        rows = dataset_summary(tiny_records)
        assert len(rows) == len(tiny_records)
        assert {"name", "n_endpoints", "wns", "tns"} <= set(rows[0])

    def test_user_verilog_record(self, simple_record):
        assert simple_record.name == "simple"
        assert simple_record.labels  # acc and flag bits


class TestSampling:
    def test_sample_count_scales_and_caps(self):
        config = SamplingConfig(k_max=4)
        assert sample_count(1, config) >= 1
        assert sample_count(100, config) == 4
        assert sample_count(9, config) <= 4

    def test_sampling_disabled_gives_zero_random_paths(self):
        config = SamplingConfig(use_sampling=False)
        assert sample_count(50, config) == 0

    def test_design_paths_have_critical_first(self, tiny_record):
        network = tiny_record.pseudo_networks["sog"]
        report = tiny_record.pseudo_reports["sog"]
        samples = sample_design_paths(network, report, SamplingConfig(seed=1))
        assert set(samples) == set(tiny_record.endpoint_names)
        for endpoint_samples in samples.values():
            assert endpoint_samples.paths[0].is_critical
            assert all(not p.is_critical for p in endpoint_samples.paths[1:])
            assert endpoint_samples.n_driving_registers >= 0

    def test_sampling_reproducible_with_seed(self, tiny_record):
        network = tiny_record.pseudo_networks["sog"]
        report = tiny_record.pseudo_reports["sog"]
        a = sample_design_paths(network, report, SamplingConfig(seed=5))
        b = sample_design_paths(network, report, SamplingConfig(seed=5))
        name = tiny_record.endpoint_names[0]
        assert [p.vertices for p in a[name].paths] == [p.vertices for p in b[name].paths]


class TestFeatures:
    def test_feature_matrix_shape_and_finiteness(self, tiny_record):
        dataset = extract_path_dataset(tiny_record, "sog")
        assert dataset.features.shape[1] == len(PATH_FEATURE_NAMES)
        assert np.all(np.isfinite(dataset.features))
        assert dataset.n_endpoints == len(tiny_record.endpoint_names)
        assert len(dataset.tokens) == dataset.n_paths
        assert dataset.groups.max() == dataset.n_endpoints - 1

    def test_no_sampling_gives_one_path_per_endpoint(self, tiny_record):
        dataset = extract_path_dataset(
            tiny_record, "sog", SamplingConfig(use_sampling=False)
        )
        assert dataset.n_paths == dataset.n_endpoints

    def test_endpoint_labels_match_record(self, tiny_record):
        dataset = extract_path_dataset(tiny_record, "sog")
        for name, label in zip(dataset.endpoint_names, dataset.endpoint_labels):
            assert label == pytest.approx(tiny_record.labels[name])

    def test_rank_percent_feature_in_range(self, tiny_record):
        dataset = extract_path_dataset(tiny_record, "sog")
        column = PATH_FEATURE_NAMES.index("design_rank_percent")
        assert dataset.features[:, column].min() >= 0.0
        assert dataset.features[:, column].max() <= 100.0

    def test_pseudo_arrival_feature_correlates_with_labels(self, tiny_records):
        datasets = [extract_path_dataset(r, "sog", SamplingConfig(use_sampling=False)) for r in tiny_records]
        combined = combine_path_datasets(datasets)
        column = PATH_FEATURE_NAMES.index("endpoint_pseudo_arrival")
        correlation = np.corrcoef(combined.features[:, column], combined.endpoint_labels)[0, 1]
        assert correlation > 0.4

    def test_combine_reindexes_groups(self, tiny_records):
        datasets = [extract_path_dataset(r, "sog") for r in tiny_records[:2]]
        combined = combine_path_datasets(datasets)
        assert combined.n_endpoints == sum(d.n_endpoints for d in datasets)
        assert combined.groups.max() == combined.n_endpoints - 1
        assert len(combined.endpoint_designs) == combined.n_endpoints

    def test_design_feature_vector(self, tiny_record):
        vector = design_feature_vector(tiny_record)
        assert np.all(np.isfinite(vector))
        assert vector[0] > 0  # sequential cells

    def test_gnn_graph_data(self, tiny_record):
        graph = bog_graph_data(tiny_record, "sog")
        assert graph.node_features.shape[0] == len(tiny_record.pseudo_networks["sog"])
        assert len(graph.endpoint_nodes) == len(tiny_record.labels)
        assert len(graph.edge_src) == len(graph.edge_dst)
        assert graph.endpoint_targets.min() >= 0

    def test_variant_datasets_share_endpoints(self, tiny_record):
        sog = extract_path_dataset(tiny_record, "sog", SamplingConfig(use_sampling=False))
        aig = extract_path_dataset(tiny_record, "aig", SamplingConfig(use_sampling=False))
        assert sog.endpoint_names == aig.endpoint_names
