"""Tests for word-level design analysis (signal roles, register updates)."""

import pytest

from repro.hdl.ast_nodes import Identifier, Ternary
from repro.hdl.design import AnalysisError, SignalKind, analyze, expression_width
from repro.hdl.parser import parse_source


def test_signal_kinds(simple_design):
    assert simple_design.signal("a").kind is SignalKind.INPUT
    assert simple_design.signal("acc").kind is SignalKind.REGISTER
    assert simple_design.signal("sum").kind is SignalKind.WIRE
    assert simple_design.signal("y").kind is SignalKind.OUTPUT


def test_register_updates_flattened(simple_design):
    targets = {update.target for update in simple_design.registers}
    assert targets == {"acc", "flag"}


def test_if_else_becomes_ternary(simple_design):
    flag_update = next(u for u in simple_design.registers if u.target == "flag")
    assert isinstance(flag_update.expression, Ternary)


def test_unassigned_branch_holds_value():
    source = """
    module hold (clk, en, d, q);
      input clk; input en; input [1:0] d; output [1:0] q;
      reg [1:0] q;
      always @(posedge clk) begin
        if (en) q <= d;
      end
    endmodule
    """
    design = analyze(parse_source(source))
    update = design.registers[0]
    assert isinstance(update.expression, Ternary)
    assert update.expression.if_false == Identifier("q")


def test_clock_recorded(simple_design):
    assert simple_design.clock == "clk"


def test_undeclared_signal_rejected():
    source = """
    module bad (clk, q); input clk; output q; reg q;
      always @(posedge clk) q <= missing;
    endmodule
    """
    with pytest.raises(AnalysisError):
        analyze(parse_source(source))


def test_nonblocking_to_wire_rejected():
    source = """
    module bad2 (clk, a, w); input clk; input a; output w; wire w;
      always @(posedge clk) w <= a;
    endmodule
    """
    with pytest.raises(AnalysisError):
        analyze(parse_source(source))


def test_expression_width_rules(simple_design):
    from repro.hdl.parser import Parser

    def width(text):
        return expression_width(Parser(text).parse_expression(), simple_design)

    assert width("a") == 4
    assert width("a + b") == 4
    assert width("a == b") == 1
    assert width("{a, b}") == 8
    assert width("{2{a}}") == 8
    assert width("a[2]") == 1
    assert width("^a") == 1


def test_summary_counts(simple_design):
    summary = simple_design.summary()
    assert summary["registers"] == 2
    assert summary["register_bits"] == 5
    assert summary["inputs"] == 4  # clk is not a data signal


def test_multiple_clocks_rejected():
    source = """
    module two (c1, c2, d, q); input c1; input c2; input d; output q; reg q; reg p;
      always @(posedge c1) q <= d;
      always @(posedge c2) p <= d;
    endmodule
    """
    with pytest.raises(AnalysisError):
        analyze(parse_source(source))
