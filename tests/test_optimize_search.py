"""Tests for the search-based optimizer (`repro.optimize`).

Covers the tentpole contracts of the subsystem:

* seed-replay determinism — same ``(seed, strategy, budget)`` means a
  byte-identical canonical payload, across runs, STA kernels and
  ``REPRO_JOBS`` settings;
* re-anchoring — incremental drift raises :class:`DriftError` instead of
  silently corrupting a search (proved with the ``incremental.extra_load``
  fault);
* Pareto-front integrity — deterministic dominance/tie-breaking, the
  ``optimize.dominance`` fault tooth, staircase hypervolume;
* artifact round-trip — a written ``repro-optimize-run/1`` artifact replays
  to the recorded front exactly;
* edge cases — single-signal rankings, budgets exhausted mid-generation,
  all-candidates-worse searches and canonical-key collision safety.
"""

import json
import random
from dataclasses import replace

import pytest

from repro.core.optimize import options_from_ranking, ranking_from_labels
from repro.faults import FAULT_ENV_VAR
from repro.incremental.patches import AddExtraLoad
from repro.incremental.whatif import WhatIfConfig
from repro.optimize import (
    CandidateSpec,
    DriftError,
    ParetoFront,
    ParetoPoint,
    SearchConfig,
    canonical_option_key,
    canonical_payload,
    default_spec,
    dominates,
    hypervolume,
    load_artifact,
    mutate_spec,
    reference_point,
    replay_artifact,
    run_search,
    synthesis_key,
    write_artifact,
)
from repro.runtime.cache import ArtifactCache
from repro.sta.engine import STA_KERNEL_ENV_VAR
from repro.synth.optimizer import PathGroup, SynthesisOptions


def _no_cache() -> ArtifactCache:
    return ArtifactCache(enabled=False)


def _search(record, ranking, **kwargs):
    config = SearchConfig(**kwargs)
    return run_search(record, ranking, config, cache=_no_cache())


# ---------------------------------------------------------------------------
# Pareto front
# ---------------------------------------------------------------------------


class TestParetoFront:
    def _point(self, wns, area, step=0, key=None):
        return ParetoPoint(
            wns=wns, tns=wns * 3, area=area, key=key or f"p{wns}/{area}", step=step
        )

    def test_dominates_requires_no_worse_and_one_better(self):
        a = self._point(-1.0, 100.0)
        assert dominates(a, self._point(-2.0, 100.0))
        assert dominates(a, self._point(-1.0, 110.0))
        assert dominates(a, self._point(-2.0, 110.0))
        assert not dominates(a, self._point(-1.0, 100.0))  # equal: no
        assert not dominates(a, self._point(-0.5, 110.0))  # trade-off: no
        assert not dominates(a, self._point(-2.0, 90.0))

    def test_insert_filters_dominated_both_ways(self):
        front = ParetoFront()
        assert front.insert(self._point(-2.0, 100.0))
        assert not front.insert(self._point(-3.0, 110.0))  # dominated: rejected
        assert front.insert(self._point(-1.0, 120.0))  # trade-off: kept
        assert front.insert(self._point(-1.0, 90.0))  # dominates both others
        assert [(p.wns, p.area) for p in front.points] == [(-1.0, 90.0)]

    def test_duplicate_objectives_first_seen_wins(self):
        front = ParetoFront()
        assert front.insert(self._point(-2.0, 100.0, key="first"))
        assert not front.insert(self._point(-2.0, 100.0, key="second"))
        assert [p.key for p in front.points] == ["first"]

    def test_sort_order_is_deterministic(self):
        front = ParetoFront()
        front.insert(self._point(-1.0, 120.0, step=5))
        front.insert(self._point(-3.0, 90.0, step=2))
        front.insert(self._point(-2.0, 100.0, step=9))
        assert [p.wns for p in front.points] == [-1.0, -2.0, -3.0]

    def test_dominance_fault_keeps_dominated_points(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "optimize.dominance")
        front = ParetoFront()
        good = self._point(-1.0, 100.0)
        bad = self._point(-2.0, 110.0)
        assert front.insert(good)
        assert front.insert(bad)  # filter disabled: the dominated point stays
        assert len(front) == 2
        # The pure predicate is untouched — that is what the oracle audits.
        assert dominates(good, bad)

    def test_hypervolume_staircase(self):
        reference = (-4.0, 200.0)
        points = [self._point(-1.0, 150.0), self._point(-2.0, 100.0)]
        # (-1 - -4) * (200-150) + (-2 - -4) * (150-100) = 150 + 100
        assert hypervolume(points, reference) == pytest.approx(250.0)
        assert hypervolume([], reference) == 0.0
        # Points outside the reference box contribute nothing.
        assert hypervolume([self._point(-9.0, 500.0)], reference) == 0.0

    def test_reference_point_tracks_baseline(self):
        baseline = self._point(-5.0, 100.0)
        wns_ref, area_ref = reference_point(baseline, period=10.0)
        assert wns_ref == pytest.approx(-6.0)
        assert area_ref == pytest.approx(125.0)


# ---------------------------------------------------------------------------
# Candidate space
# ---------------------------------------------------------------------------


class TestCandidateSpace:
    def test_default_spec_realizes_classic_options(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        classic = options_from_ranking(ranking, seed=3)
        realized = default_spec().realize(ranking, seed=3)
        assert repr(realized) == repr(classic)
        assert canonical_option_key(realized) == canonical_option_key(classic)

    def test_spec_roundtrips_through_dict(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        rng = random.Random(7)
        spec = default_spec()
        for _ in range(5):
            spec = mutate_spec(spec, ranking, rng)
        clone = CandidateSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert repr(clone.realize(ranking, seed=1)) == repr(spec.realize(ranking, seed=1))

    def test_mutations_stay_on_grid_and_in_bounds(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        rng = random.Random(11)
        spec = default_spec()
        for _ in range(64):
            spec = mutate_spec(spec, ranking, rng)
            assert list(spec.group_fractions) == sorted(spec.group_fractions)
            for fraction in spec.group_fractions:
                assert 0.01 <= fraction <= 0.95
                assert round(fraction, 2) == fraction
            assert 0.01 <= spec.retime_fraction <= 0.25
            for signal, group in spec.moves:
                assert signal in ranking
                assert 1 <= group <= spec.n_groups

    def test_canonical_key_covers_every_option_field(self):
        base = SynthesisOptions(
            effort_passes=3,
            critical_fraction=0.1,
            path_groups=[PathGroup("g1", ("a", "b"), 2.0)],
            group_effort_passes=2,
            retime_signals=["a"],
            area_recovery=True,
            area_recovery_slack_fraction=0.3,
            seed=1,
        )
        key = canonical_option_key(base)
        assert key == canonical_option_key(base)  # stable
        variants = [
            replace(base, effort_passes=4),
            replace(base, critical_fraction=0.2),
            replace(base, path_groups=[PathGroup("g1", ("a", "b"), 3.0)]),
            replace(base, group_effort_passes=1),
            replace(base, retime_signals=["b"]),
            replace(base, area_recovery=False),
            replace(base, area_recovery_slack_fraction=0.4),
            replace(base, seed=2),
        ]
        assert all(canonical_option_key(variant) != key for variant in variants)

    def test_synthesis_key_safe_under_option_mutation(self, tiny_record):
        """Mutating any option must change the cache key; equal content
        must collide (that is what makes the cache *safe*, not lucky)."""
        ranking = ranking_from_labels(tiny_record)
        options = options_from_ranking(ranking, seed=1)
        clock = tiny_record.clock
        key = synthesis_key(tiny_record, clock, options, seed=0)
        same = synthesis_key(
            tiny_record, clock, options_from_ranking(ranking, seed=1), seed=0
        )
        assert key == same
        mutated = options_from_ranking(ranking, retime_fraction=0.2, seed=1)
        assert synthesis_key(tiny_record, clock, mutated, seed=0) != key
        assert synthesis_key(tiny_record, clock, options, seed=5) != key


# ---------------------------------------------------------------------------
# Search determinism + replay
# ---------------------------------------------------------------------------


class TestSearchDeterminism:
    @pytest.mark.parametrize("strategy", ["anneal", "evolution"])
    def test_same_triple_same_canonical_payload(self, tiny_record, strategy):
        ranking = ranking_from_labels(tiny_record)
        runs = [
            _search(tiny_record, ranking, strategy=strategy, budget=10, seed=3)
            for _ in range(2)
        ]
        first, second = (canonical_payload(run) for run in runs)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_payload_invariant_to_kernel_and_jobs(self, tiny_record, monkeypatch):
        ranking = ranking_from_labels(tiny_record)

        def payload():
            result = _search(
                tiny_record, ranking, strategy="anneal", budget=8, seed=5
            )
            return json.dumps(canonical_payload(result), sort_keys=True)

        baseline = payload()
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "reference")
        assert payload() == baseline
        monkeypatch.setenv(STA_KERNEL_ENV_VAR, "array")
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert payload() == baseline

    def test_different_seeds_diverge(self, tiny_record):
        """Sanity: the determinism above is not because the search ignores
        its seed (seeds steer the mutation/acceptance streams)."""
        ranking = ranking_from_labels(tiny_record)
        trajectories = set()
        for seed in range(4):
            result = _search(
                tiny_record, ranking, strategy="anneal", budget=8, seed=seed
            )
            trajectories.add(
                json.dumps(canonical_payload(result)["trajectory"], sort_keys=True)
            )
        assert len(trajectories) > 1

    def test_artifact_roundtrip_replays_exactly(self, tiny_record, tmp_path):
        ranking = ranking_from_labels(tiny_record)
        result = _search(
            tiny_record, ranking, strategy="evolution", budget=8, seed=2
        )
        path = write_artifact(tmp_path, result, tiny_record)
        payload = load_artifact(path)
        assert payload["schema"] == "repro-optimize-run/1"
        assert payload["source"] == tiny_record.source
        assert replay_artifact(path, cache=_no_cache()) == []

    def test_tampered_artifact_reports_divergence(self, tiny_record, tmp_path):
        ranking = ranking_from_labels(tiny_record)
        result = _search(tiny_record, ranking, strategy="anneal", budget=6, seed=2)
        path = write_artifact(tmp_path, result, tiny_record)
        payload = load_artifact(path)
        payload["front"][0]["wns"] += 1.0
        path.write_text(json.dumps(payload))
        messages = replay_artifact(path, cache=_no_cache())
        assert any("front" in message for message in messages)


# ---------------------------------------------------------------------------
# Search behaviour + budget accounting
# ---------------------------------------------------------------------------


class TestSearchBehaviour:
    def test_anneal_improves_over_baseline(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        result = _search(tiny_record, ranking, strategy="anneal", budget=12, seed=1)
        assert result.best.wns >= result.baseline.wns
        assert len(result.front) >= 1
        assert result.accounting["evals"] <= 12
        assert result.front_hypervolume() >= 0.0

    def test_front_never_keeps_points_dominated_by_baseline(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        for strategy in ("anneal", "evolution"):
            result = _search(tiny_record, ranking, strategy=strategy, budget=10, seed=4)
            points = result.front.points
            for point in points:
                if point.key != result.baseline.key:
                    assert not dominates(result.baseline, point)
            for i, a in enumerate(points):
                for b in points[i + 1 :]:
                    assert not dominates(a, b) and not dominates(b, a)

    def test_anchors_fire_at_cadence(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        result = _search(
            tiny_record, ranking, strategy="anneal", budget=10, seed=3, reanchor_every=2
        )
        anchors = [e for e in result.trajectory if e.kind == "anchor"]
        assert result.accounting["anchors"] == len(anchors) > 0
        for anchor in anchors:
            assert anchor.drift is not None and anchor.drift <= 1e-9

    def test_drift_raises_instead_of_corrupting(self, tiny_record, monkeypatch):
        """The incremental.extra_load fault makes the incremental engine lie;
        the first re-anchor must catch it as DriftError."""
        monkeypatch.setenv(FAULT_ENV_VAR, "incremental.extra_load")
        ranking = ranking_from_labels(tiny_record)
        config = SearchConfig(strategy="anneal", budget=8, seed=1, reanchor_every=1)
        # Negative slack threshold marks every endpoint as an area-recovery
        # victim, guaranteeing AddExtraLoad patches (where the fault lives).
        with pytest.raises(DriftError):
            run_search(
                tiny_record,
                ranking,
                config,
                whatif_config=WhatIfConfig(relax_slack_fraction=-1.0),
                cache=_no_cache(),
            )

    def test_single_signal_ranking(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)[:1]
        for strategy in ("anneal", "evolution"):
            result = _search(tiny_record, ranking, strategy=strategy, budget=4, seed=2)
            assert len(result.front) >= 1
            assert result.accounting["evals"] >= 1
            # Tiny spaces hit the step backstop instead of spinning forever
            # (the backstop is checked before a step; one trailing batch of
            # proposals/anchors may still land after it trips).
            assert result.accounting["steps"] <= 4 * 4 + 8

    def test_evolution_budget_exhausted_mid_generation(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        result = _search(
            tiny_record, ranking, strategy="evolution", budget=5, seed=6, mu=2, lam=6
        )
        assert result.accounting["exhausted"] is True
        assert result.accounting["evals"] == 5
        # The partial generation is still logged and selectable.
        generations = [
            e.generation
            for e in result.trajectory
            if e.kind == "eval" and e.generation is not None
        ]
        assert generations, "offspring of the partial generation must be logged"
        points = result.front.points
        for i, a in enumerate(points):
            for b in points[i + 1 :]:
                assert not dominates(a, b) and not dominates(b, a)

    def test_all_candidates_worse_keeps_baseline_only(self, tiny_record, monkeypatch):
        """When every projection strictly hurts timing at equal area, the
        returned front is exactly the default-options baseline point."""
        import repro.optimize.search as search_mod

        def pessimal_patches(netlist, report, options, config=None, path_cache=None):
            worst = min(report.endpoints, key=lambda e: e.slack)
            return [AddExtraLoad(netlist.vertices[worst.driver].id, 50.0)]

        monkeypatch.setattr(search_mod, "patches_for_options", pessimal_patches)
        ranking = ranking_from_labels(tiny_record)
        result = _search(tiny_record, ranking, strategy="anneal", budget=6, seed=1)
        assert [p.key for p in result.front.points] == ["baseline"]
        assert result.best.key == "baseline"

    def test_memo_hits_do_not_consume_budget(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)[:2]  # tiny space -> collisions
        result = _search(tiny_record, ranking, strategy="evolution", budget=6, seed=3)
        accounting = result.accounting
        assert accounting["evals"] <= 6
        evals = [e for e in result.trajectory if e.kind == "eval"]
        assert sum(1 for e in evals if not e.memo) == accounting["evals"]

    def test_config_from_env_and_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPT_STRATEGY", "evolution")
        monkeypatch.setenv("REPRO_OPT_BUDGET", "17")
        monkeypatch.setenv("REPRO_OPT_REANCHOR", "3")
        monkeypatch.setenv("REPRO_OPT_AREA_WEIGHT", "0.75")
        config = SearchConfig.from_env()
        assert (config.strategy, config.budget) == ("evolution", 17)
        assert (config.reanchor_every, config.area_weight) == (3, 0.75)
        override = SearchConfig.from_env(strategy="anneal", budget=9)
        assert (override.strategy, override.budget) == ("anneal", 9)
        monkeypatch.setenv("REPRO_OPT_STRATEGY", "sideways")
        with pytest.raises(ValueError):
            SearchConfig.from_env()

    def test_sweep_requires_candidates(self, tiny_record):
        ranking = ranking_from_labels(tiny_record)
        with pytest.raises(ValueError):
            run_search(
                tiny_record,
                ranking,
                SearchConfig(strategy="sweep", budget=4),
                cache=_no_cache(),
            )
