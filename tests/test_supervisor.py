"""Supervised worker pool: crash recovery, retries, bit-identical serving."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core import RTLTimer
from repro.faults import FAULT_ENV_VAR
from repro.runtime.report import RuntimeReport
from repro.serve.registry import state_payload
from repro.serve.service import PooledTimingService, ServeConfig
from repro.serve.supervisor import PoolConfig, WorkerPool
from tests.test_registry import TINY_TIMER_CONFIG

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="worker pool tests need the fork start method",
)


@pytest.fixture(scope="module")
def pool_timer(tiny_records):
    return RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:4])


@pytest.fixture(scope="module")
def pool_payload(pool_timer):
    return state_payload(pool_timer.to_state())


def _fast_pool_config(**overrides) -> PoolConfig:
    defaults = dict(
        workers=2,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=2.0,
        hang_timeout_s=5.0,
        backoff_base_s=0.05,
        backoff_max_s=0.2,
        retry_limit=2,
    )
    defaults.update(overrides)
    return PoolConfig(**defaults)


def _wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


# ---------------------------------------------------------------------------
# WorkerPool
# ---------------------------------------------------------------------------


def test_pool_predicts_match_parent_timer(pool_timer, pool_payload, tiny_records):
    report = RuntimeReport()
    with WorkerPool(lambda: pool_payload, _fast_pool_config(), report=report) as pool:
        for record in tiny_records[:3]:
            pooled = pool.submit("predict", record, content_key=record.name).result()
            serial = pool_timer.predict(record)
            assert pooled.signal_slack == serial.signal_slack
            assert pooled.overall == serial.overall
    assert report.counters.get("serve_worker_deaths", 0) == 0


def test_pool_recovers_from_sigkill(pool_timer, pool_payload, tiny_records):
    """SIGKILLing a worker loses nothing: in-flight retries, slot respawns."""
    report = RuntimeReport()
    with WorkerPool(lambda: pool_payload, _fast_pool_config(), report=report) as pool:
        victim = pool._workers[0].process
        os.kill(victim.pid, signal.SIGKILL)
        record = tiny_records[0]
        # Requests keep being answered correctly throughout the restart.
        for _ in range(4):
            pooled = pool.submit("predict", record).result()
            assert pooled.signal_slack == pool_timer.predict(record).signal_slack
        _wait_for(
            lambda: pool.alive_count() == 2,
            message="killed worker slot to respawn",
        )
    assert report.counters.get("serve_worker_restarts", 0) >= 1


def test_pool_parks_requests_when_all_workers_down(pool_timer, pool_payload, tiny_records):
    """With every worker dead, accepted requests wait and then complete."""
    report = RuntimeReport()
    with WorkerPool(lambda: pool_payload, _fast_pool_config(), report=report) as pool:
        for worker in pool._workers:
            os.kill(worker.process.pid, signal.SIGKILL)
        record = tiny_records[1]
        results = []

        def run():
            results.append(pool.submit("predict", record).result())

        threads = [threading.Thread(target=run) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == 3
        serial = pool_timer.predict(record)
        for pooled in results:
            assert pooled.signal_slack == serial.signal_slack


def test_pool_refreshes_payload_via_provider_on_restart(pool_timer, pool_payload):
    """Worker restarts re-pull the bundle; a failing provider degrades to cache."""
    calls = []

    def provider():
        calls.append(None)
        if len(calls) > 1:
            raise RuntimeError("registry unavailable")
        return pool_payload

    report = RuntimeReport()
    with WorkerPool(lambda: provider(), _fast_pool_config(workers=1), report=report) as pool:
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        _wait_for(
            lambda: report.counters.get("serve_worker_spawns", 0) >= 2
            and pool.alive_count() == 1,
            message="worker respawn",
        )
    assert len(calls) >= 2  # initial load + restart refresh attempt
    assert report.counters.get("serve_registry_fallbacks", 0) >= 1


def test_pool_close_is_idempotent_and_fails_pending(pool_payload):
    pool = WorkerPool(lambda: pool_payload, _fast_pool_config(workers=1))
    pool.close()
    pool.close()
    from repro.serve.resilience import WorkerUnavailable

    with pytest.raises(WorkerUnavailable):
        pool.submit("predict", None).result()


# ---------------------------------------------------------------------------
# PooledTimingService
# ---------------------------------------------------------------------------


def test_pooled_service_bit_identical(pool_timer, tiny_records):
    service = PooledTimingService(
        pool_timer,
        ServeConfig(max_batch=4, batch_window_s=0.02),
        pool_config=_fast_pool_config(),
    )
    try:
        for record in tiny_records[:3]:
            served = service.predict(record)
            serial = pool_timer.predict(record)
            assert served.signal_slack == serial.signal_slack
            assert served.signal_ranking == serial.signal_ranking
            assert served.overall == serial.overall
        workers = service.metrics()["serving"]["workers"]
        assert len(workers) == 2 and all(w["alive"] for w in workers)
    finally:
        service.close()


def test_pooled_service_survives_crash_faults(pool_timer, tiny_records, monkeypatch):
    """Every answer stays correct while workers crash under fault injection."""
    monkeypatch.setenv(FAULT_ENV_VAR, "worker.crash:p=0.3:seed=11")
    service = PooledTimingService(
        pool_timer,
        ServeConfig(max_batch=4, batch_window_s=0.01),
        pool_config=_fast_pool_config(),
    )
    try:
        serial = {r.name: pool_timer.predict(r) for r in tiny_records[:2]}
        for index in range(10):
            record = tiny_records[index % 2]
            served = service.predict(record)
            assert served.signal_slack == serial[record.name].signal_slack
    finally:
        service.close()
    counters = service.report.counters
    # The seed guarantees at least one crash in 10+ requests at p=0.3; every
    # loss was either retried on a sibling or answered by the local fallback.
    assert (
        counters.get("serve_worker_restarts", 0) > 0
        or counters.get("serve_pool_local_fallbacks", 0) > 0
    )
