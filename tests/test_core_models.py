"""Tests for the bit-wise / signal-wise / overall models and the GNN baseline.

These use deliberately small model configurations so the whole file runs in a
few tens of seconds; statistical quality is asserted loosely (the benchmarks
reproduce the paper's numbers with the full configuration).
"""

import numpy as np
import pytest

from repro.core.baselines import GNNBaselineConfig, GNNBitwiseBaseline
from repro.core.bitwise import BitwiseArrivalModel, BitwiseConfig
from repro.core.metrics import pearson_r
from repro.core.overall import OverallConfig, OverallTimingModel
from repro.core.signalwise import SignalwiseConfig, SignalwiseModel


SMALL_BITWISE = BitwiseConfig(
    n_estimators=20,
    max_depth=4,
    max_train_endpoints_per_design=60,
    variants=("sog", "aig"),
)


@pytest.fixture(scope="module")
def fitted_bitwise(tiny_records):
    return BitwiseArrivalModel(SMALL_BITWISE).fit(tiny_records[:4])


@pytest.fixture(scope="module")
def bitwise_predictions(fitted_bitwise, tiny_records):
    return {record.name: fitted_bitwise.predict(record) for record in tiny_records}


class TestBitwise:
    def test_predictions_cover_all_endpoints(self, fitted_bitwise, tiny_records):
        test_record = tiny_records[4]
        predicted = fitted_bitwise.predict(test_record)
        assert set(predicted) == set(test_record.endpoint_names)
        assert all(np.isfinite(v) for v in predicted.values())

    def test_unseen_design_correlation(self, fitted_bitwise, tiny_records):
        test_record = tiny_records[4]
        metrics = fitted_bitwise.evaluate(test_record)
        assert metrics["r"] > 0.5
        assert 0.0 <= metrics["covr"] <= 100.0

    def test_single_variant_without_ensemble(self, tiny_records):
        config = BitwiseConfig(
            n_estimators=15,
            max_depth=3,
            variants=("sog",),
            ensemble=False,
            max_train_endpoints_per_design=50,
        )
        model = BitwiseArrivalModel(config).fit(tiny_records[:3])
        predicted = model.predict(tiny_records[3])
        assert set(predicted) == set(tiny_records[3].endpoint_names)

    def test_predict_before_fit_raises(self, tiny_record):
        with pytest.raises(RuntimeError):
            BitwiseArrivalModel().predict(tiny_record)

    def test_mlp_model_type(self, tiny_records):
        config = BitwiseConfig(
            model_type="mlp",
            variants=("sog",),
            ensemble=False,
            mlp_hidden=(24,),
            mlp_epochs=40,
            max_train_endpoints_per_design=50,
        )
        model = BitwiseArrivalModel(config).fit(tiny_records[:3])
        predicted = model.predict(tiny_records[3])
        labels = [tiny_records[3].labels[n] for n in predicted]
        assert pearson_r(labels, list(predicted.values())) > 0.2


class TestSignalwise:
    def test_fit_predict(self, tiny_records, bitwise_predictions):
        model = SignalwiseModel(SignalwiseConfig(n_estimators=20, ranker_estimators=30))
        model.fit(tiny_records[:4], bitwise_predictions)
        prediction = model.predict(tiny_records[4], bitwise_predictions[tiny_records[4].name])
        signal_labels = tiny_records[4].signal_labels()
        assert set(prediction["arrival"]) == set(signal_labels)
        assert set(prediction["ranking"]) == set(signal_labels)
        labels = [signal_labels[s] for s in sorted(signal_labels)]
        values = [prediction["arrival"][s] for s in sorted(signal_labels)]
        assert pearson_r(labels, values) > 0.4

    def test_ranked_signals_order(self, tiny_records, bitwise_predictions):
        model = SignalwiseModel(SignalwiseConfig(n_estimators=15, ranker_estimators=20))
        model.fit(tiny_records[:4], bitwise_predictions)
        record = tiny_records[4]
        ranked = model.ranked_signals(record, bitwise_predictions[record.name])
        assert sorted(ranked) == sorted(record.signal_labels())

    def test_without_bitwise_ablation(self, tiny_records):
        model = SignalwiseModel(
            SignalwiseConfig(use_bitwise=False, n_estimators=15, ranker_estimators=20)
        )
        model.fit(tiny_records[:4])
        prediction = model.predict(tiny_records[4])
        assert set(prediction["arrival"]) == set(tiny_records[4].signal_labels())


class TestOverall:
    def test_fit_predict_all_modes(self, tiny_records, bitwise_predictions):
        for mode in ("full", "sog_only", "design_only"):
            model = OverallTimingModel(OverallConfig(feature_mode=mode, n_estimators=15))
            model.fit(tiny_records[:4], bitwise_predictions)
            prediction = model.predict(
                tiny_records[4], bitwise_predictions[tiny_records[4].name]
            )
            assert prediction["wns"] <= 0.0
            assert prediction["tns"] <= 0.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            OverallConfig(feature_mode="bogus")


class TestGNNBaseline:
    def test_fit_predict_and_evaluate(self, tiny_records):
        baseline = GNNBitwiseBaseline(GNNBaselineConfig(epochs=30, hidden_size=16))
        baseline.fit(tiny_records[:3])
        predicted = baseline.predict(tiny_records[3])
        assert set(predicted) == set(tiny_records[3].endpoint_names)
        metrics = baseline.evaluate(tiny_records[3])
        assert set(metrics) == {"r", "r2", "mape", "covr"}
