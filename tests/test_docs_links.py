"""Docs lane: the documentation tree exists and its links resolve.

Runs in tier 1 (and the CI docs job) so a moved file or renamed doc page
breaks loudly instead of rotting.  Only repository-relative links are
checked — external URLs are out of scope for an offline test.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every markdown file the docs lane guards.
DOC_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/api.md",
    "docs/serving.md",
    "docs/operations.md",
    "docs/optimization.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_docs_tree_exists():
    for name in DOC_FILES:
        path = REPO_ROOT / name
        assert path.is_file(), f"{name} is missing"
        assert path.read_text().strip(), f"{name} is empty"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_relative_links_resolve(doc):
    path = REPO_ROOT / doc
    broken = []
    for target in _LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        if target.startswith("../"):
            # GitHub-relative URLs (e.g. the CI badge) point outside the
            # repository checkout; nothing to verify offline.
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc} has broken relative links: {broken}"


def test_docs_cross_reference_each_other():
    """The three docs pages and the README link into each other."""
    readme = (REPO_ROOT / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/api.md", "docs/serving.md"):
        assert page in readme, f"README does not link {page}"
    architecture = (REPO_ROOT / "docs/architecture.md").read_text()
    assert "api.md" in architecture and "serving.md" in architecture


def test_serving_doc_covers_every_env_knob():
    """The serving page's knob table stays in sync with the code."""
    serving = (REPO_ROOT / "docs/serving.md").read_text()
    from repro.core.feature_cache import (
        FEATURE_CACHE_DISK_ENV_VAR,
        FEATURE_CACHE_ENV_VAR,
        FEATURE_CACHE_MAX_MB_ENV_VAR,
        FEATURE_CACHE_MEM_ENV_VAR,
    )
    from repro.faults import FAULT_ENV_VAR
    from repro.ml.tree import BINS_ENV_VAR
    from repro.runtime.cache import (
        CACHE_DIR_ENV_VAR,
        CACHE_ENABLE_ENV_VAR,
        CACHE_MAX_MB_ENV_VAR,
    )
    from repro.runtime.parallel import JOBS_ENV_VAR
    from repro.runtime.report import BENCH_ENV_VAR
    from repro.serve.registry import MODEL_DIR_ENV_VAR
    from repro.sta.engine import STA_KERNEL_ENV_VAR

    for variable in (
        FEATURE_CACHE_DISK_ENV_VAR,
        FEATURE_CACHE_ENV_VAR,
        FEATURE_CACHE_MAX_MB_ENV_VAR,
        FEATURE_CACHE_MEM_ENV_VAR,
        FAULT_ENV_VAR,
        BINS_ENV_VAR,
        CACHE_DIR_ENV_VAR,
        CACHE_ENABLE_ENV_VAR,
        CACHE_MAX_MB_ENV_VAR,
        JOBS_ENV_VAR,
        BENCH_ENV_VAR,
        MODEL_DIR_ENV_VAR,
        STA_KERNEL_ENV_VAR,
    ):
        assert variable in serving, f"docs/serving.md does not document {variable}"


def test_operations_doc_covers_every_resilience_knob():
    """The operations page's knob table stays in sync with the code.

    Each resilience variable must appear both in docs/operations.md (the
    table that defines it) and in docs/serving.md (the pointer list that
    keeps the main knob page exhaustive).
    """
    operations = (REPO_ROOT / "docs/operations.md").read_text()
    serving = (REPO_ROOT / "docs/serving.md").read_text()
    from repro.serve.resilience import (
        BREAKER_RESET_ENV_VAR,
        BREAKER_THRESHOLD_ENV_VAR,
        DEADLINE_ENV_VAR,
        QUEUE_MAX_ENV_VAR,
        RETRY_AFTER_ENV_VAR,
        WHATIF_CONCURRENCY_ENV_VAR,
    )
    from repro.serve.supervisor import (
        BACKOFF_ENV_VAR,
        BACKOFF_MAX_ENV_VAR,
        HANG_TIMEOUT_ENV_VAR,
        HEARTBEAT_ENV_VAR,
        HEARTBEAT_TIMEOUT_ENV_VAR,
        RETRIES_ENV_VAR,
        RSS_LIMIT_ENV_VAR,
        WORKERS_ENV_VAR,
    )

    for variable in (
        QUEUE_MAX_ENV_VAR,
        DEADLINE_ENV_VAR,
        RETRY_AFTER_ENV_VAR,
        WHATIF_CONCURRENCY_ENV_VAR,
        BREAKER_THRESHOLD_ENV_VAR,
        BREAKER_RESET_ENV_VAR,
        WORKERS_ENV_VAR,
        HEARTBEAT_ENV_VAR,
        HEARTBEAT_TIMEOUT_ENV_VAR,
        HANG_TIMEOUT_ENV_VAR,
        RSS_LIMIT_ENV_VAR,
        BACKOFF_ENV_VAR,
        BACKOFF_MAX_ENV_VAR,
        RETRIES_ENV_VAR,
    ):
        assert variable in operations, f"docs/operations.md does not document {variable}"
        assert variable in serving, f"docs/serving.md does not mention {variable}"


def test_docs_cover_every_lifecycle_knob():
    """Every lifecycle env knob is documented on both ops-facing pages."""
    operations = (REPO_ROOT / "docs/operations.md").read_text()
    serving = (REPO_ROOT / "docs/serving.md").read_text()
    from repro.lifecycle.evaluate import LATENCY_RATIO_ENV_VAR, MIN_R_DELTA_ENV_VAR
    from repro.serve.service import REFRESH_ENV_VAR

    for variable in (MIN_R_DELTA_ENV_VAR, LATENCY_RATIO_ENV_VAR, REFRESH_ENV_VAR):
        assert variable in operations, f"docs/operations.md does not document {variable}"
        assert variable in serving, f"docs/serving.md does not mention {variable}"
    # The eval-report schema tag is part of the operational contract too.
    from repro.lifecycle.evaluate import EVAL_REPORT_SCHEMA

    assert EVAL_REPORT_SCHEMA in operations


def test_operations_doc_covers_every_chaos_fault():
    """Every chaos-campaign fault and its evidence counters stay documented."""
    operations = (REPO_ROOT / "docs/operations.md").read_text()
    from repro.serve.chaos import DEFAULT_FAULTS

    for fault in DEFAULT_FAULTS:
        assert fault in operations, f"docs/operations.md does not document fault {fault}"


def test_api_doc_matches_cli_subcommands():
    """docs/api.md lists exactly the CLI subcommands the parser offers."""
    from repro.cli import build_parser

    api = (REPO_ROOT / "docs/api.md").read_text()
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions if hasattr(action, "choices") and action.choices
    )
    for name in subparsers.choices:
        assert f"`{name}`" in api, f"docs/api.md does not document the {name} subcommand"


def test_optimization_doc_covers_every_opt_knob():
    """The optimizer page documents every ``REPRO_OPT_*`` knob, the fault
    tooth and the artifact schema; serving.md's knob index points at them."""
    optimization = (REPO_ROOT / "docs/optimization.md").read_text()
    serving = (REPO_ROOT / "docs/serving.md").read_text()
    from repro.optimize.artifact import OPTIMIZE_RUN_SCHEMA
    from repro.optimize.pareto import DOMINANCE_FAULT
    from repro.optimize.search import (
        OPT_AREA_WEIGHT_ENV_VAR,
        OPT_BUDGET_ENV_VAR,
        OPT_REANCHOR_ENV_VAR,
        OPT_STRATEGY_ENV_VAR,
        STRATEGIES,
    )

    for variable in (
        OPT_STRATEGY_ENV_VAR,
        OPT_BUDGET_ENV_VAR,
        OPT_REANCHOR_ENV_VAR,
        OPT_AREA_WEIGHT_ENV_VAR,
    ):
        assert variable in optimization, f"docs/optimization.md does not document {variable}"
        assert variable in serving, f"docs/serving.md knob index misses {variable}"
    for strategy in STRATEGIES:
        assert f"`{strategy}`" in optimization, (
            f"docs/optimization.md does not document the {strategy} strategy"
        )
    assert OPTIMIZE_RUN_SCHEMA in optimization
    assert DOMINANCE_FAULT in optimization
