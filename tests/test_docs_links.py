"""Docs lane: the documentation tree exists and its links resolve.

Runs in tier 1 (and the CI docs job) so a moved file or renamed doc page
breaks loudly instead of rotting.  Only repository-relative links are
checked — external URLs are out of scope for an offline test.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every markdown file the docs lane guards.
DOC_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/api.md",
    "docs/serving.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_docs_tree_exists():
    for name in DOC_FILES:
        path = REPO_ROOT / name
        assert path.is_file(), f"{name} is missing"
        assert path.read_text().strip(), f"{name} is empty"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_relative_links_resolve(doc):
    path = REPO_ROOT / doc
    broken = []
    for target in _LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        if target.startswith("../"):
            # GitHub-relative URLs (e.g. the CI badge) point outside the
            # repository checkout; nothing to verify offline.
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc} has broken relative links: {broken}"


def test_docs_cross_reference_each_other():
    """The three docs pages and the README link into each other."""
    readme = (REPO_ROOT / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/api.md", "docs/serving.md"):
        assert page in readme, f"README does not link {page}"
    architecture = (REPO_ROOT / "docs/architecture.md").read_text()
    assert "api.md" in architecture and "serving.md" in architecture


def test_serving_doc_covers_every_env_knob():
    """The serving page's knob table stays in sync with the code."""
    serving = (REPO_ROOT / "docs/serving.md").read_text()
    from repro.core.feature_cache import (
        FEATURE_CACHE_DISK_ENV_VAR,
        FEATURE_CACHE_ENV_VAR,
        FEATURE_CACHE_MAX_MB_ENV_VAR,
        FEATURE_CACHE_MEM_ENV_VAR,
    )
    from repro.faults import FAULT_ENV_VAR
    from repro.ml.tree import BINS_ENV_VAR
    from repro.runtime.cache import (
        CACHE_DIR_ENV_VAR,
        CACHE_ENABLE_ENV_VAR,
        CACHE_MAX_MB_ENV_VAR,
    )
    from repro.runtime.parallel import JOBS_ENV_VAR
    from repro.runtime.report import BENCH_ENV_VAR
    from repro.serve.registry import MODEL_DIR_ENV_VAR
    from repro.sta.engine import STA_KERNEL_ENV_VAR

    for variable in (
        FEATURE_CACHE_DISK_ENV_VAR,
        FEATURE_CACHE_ENV_VAR,
        FEATURE_CACHE_MAX_MB_ENV_VAR,
        FEATURE_CACHE_MEM_ENV_VAR,
        FAULT_ENV_VAR,
        BINS_ENV_VAR,
        CACHE_DIR_ENV_VAR,
        CACHE_ENABLE_ENV_VAR,
        CACHE_MAX_MB_ENV_VAR,
        JOBS_ENV_VAR,
        BENCH_ENV_VAR,
        MODEL_DIR_ENV_VAR,
        STA_KERNEL_ENV_VAR,
    ):
        assert variable in serving, f"docs/serving.md does not document {variable}"


def test_api_doc_matches_cli_subcommands():
    """docs/api.md lists exactly the CLI subcommands the parser offers."""
    from repro.cli import build_parser

    api = (REPO_ROOT / "docs/api.md").read_text()
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions if hasattr(action, "choices") and action.choices
    )
    for name in subparsers.choices:
        assert f"`{name}`" in api, f"docs/api.md does not document the {name} subcommand"
