"""TimingService micro-batching and the JSON-over-HTTP server."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import RTLTimer
from repro.runtime.report import RuntimeReport
from repro.serve import ServeConfig, TimingService, start_server
from tests.test_registry import TINY_TIMER_CONFIG


@pytest.fixture(scope="module")
def served_timer(tiny_records):
    return RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:4])


@pytest.fixture()
def service(served_timer):
    service = TimingService(served_timer, ServeConfig(max_batch=4, batch_window_s=0.05))
    yield service
    service.close()


# ---------------------------------------------------------------------------
# TimingService
# ---------------------------------------------------------------------------


def test_concurrent_predicts_match_serial(served_timer, tiny_records, service):
    """N threads through the batched service == serial in-process predicts."""
    results = [None] * len(tiny_records)
    errors = []

    def run(index):
        try:
            results[index] = service.predict(tiny_records[index])
        except BaseException as exc:  # surfaced below as a test failure
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(len(tiny_records))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors

    for record, served in zip(tiny_records, results):
        serial = served_timer.predict(record)
        assert served.bitwise_arrival == serial.bitwise_arrival
        assert served.signal_arrival == serial.signal_arrival
        assert served.signal_ranking == serial.signal_ranking
        assert served.signal_slack == serial.signal_slack
        assert served.rank_group == serial.rank_group
        assert served.overall == serial.overall


def test_batching_counter_fires(served_timer, tiny_records, service):
    """Concurrent requests inside the window actually share a model pass."""
    barrier = threading.Barrier(4)
    stats = [None] * 4

    def run(index):
        barrier.wait()
        _, stats[index] = service.predict_with_stats(tiny_records[index])

    threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    counters = service.report.counters
    assert counters["serve_requests"] == 4
    assert counters["serve_batches"] < 4, "no request shared a batch"
    assert counters.get("serve_batched_requests", 0) >= 2
    assert max(s["batch_size"] for s in stats) >= 2
    assert service.report.stages.get("serve.predict_batch", 0.0) > 0.0


def test_requests_above_max_batch_split(served_timer, tiny_records):
    service = TimingService(served_timer, ServeConfig(max_batch=2, batch_window_s=0.05))
    try:
        barrier = threading.Barrier(5)
        results = [None] * 5

        def run(index):
            barrier.wait()
            results[index] = service.predict(tiny_records[index % len(tiny_records)])

        threads = [threading.Thread(target=run, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result is not None for result in results)
        assert service.report.counters["serve_requests"] == 5
        assert service.report.counters["serve_batches"] >= 3  # ceil(5 / 2)
    finally:
        service.close()


def test_nonpositive_max_batch_is_clamped(served_timer, tiny_records):
    """max_batch=0 must not busy-spin the worker and hang every caller."""
    service = TimingService(served_timer, ServeConfig(max_batch=0, batch_window_s=0.0))
    try:
        prediction = service.predict(tiny_records[0])
        assert prediction.design == tiny_records[0].name
        assert service.report.counters["serve_batches"] == 1
    finally:
        service.close()


def test_predict_after_close_raises(served_timer, tiny_records):
    service = TimingService(served_timer, ServeConfig(batch_window_s=0.0))
    service.close()
    with pytest.raises(RuntimeError, match="closed"):
        service.predict(tiny_records[0])


def test_whatif_through_service(served_timer, tiny_records, service):
    estimates = service.what_if(tiny_records[4], k=4)
    direct = served_timer.what_if(
        tiny_records[4], prediction=served_timer.predict(tiny_records[4]), k=4
    )
    assert [e.wns for e in estimates] == [e.wns for e in direct]
    assert [e.tns for e in estimates] == [e.tns for e in direct]
    assert service.report.counters["serve_whatif_requests"] == 1
    assert service.report.stages["serve.whatif"] > 0.0


def test_runtime_report_has_serve_stages(served_timer, tiny_records, service):
    service.predict(tiny_records[0])
    service.predict(tiny_records[1])
    report = service.runtime_report()
    assert report.stages["serve.predict_p50"] > 0.0
    assert report.counters["serve_requests"] == 2
    derived = report.to_dict()["derived"]
    assert derived["serve_batch_size"] >= 1.0


def test_service_record_cache(served_timer, simple_source, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    service = TimingService(served_timer)
    try:
        first = service.record_for_source(simple_source, name="simple")
        second = service.record_for_source(simple_source, name="simple")
        assert second is first  # in-process cache
        assert service.report.counters.get("serve_record_hits", 0) == 1
    finally:
        service.close()


# ---------------------------------------------------------------------------
# HTTP server
# ---------------------------------------------------------------------------


@pytest.fixture()
def http_server(served_timer, tiny_records):
    service = TimingService(served_timer, ServeConfig(max_batch=4, batch_window_s=0.02))
    server = start_server(service, port=0)
    for record in tiny_records:
        server.register_record(record)
    yield server
    server.shutdown()
    service.close()


def _url(server, path):
    host, port = server.server_address
    return f"http://{host}:{port}{path}"


def _post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def _get(server, path):
    with urllib.request.urlopen(_url(server, path)) as response:
        return json.loads(response.read())


def test_http_predict_bit_identical(http_server, served_timer, tiny_records):
    record = tiny_records[4]
    response = _post(http_server, "/predict", {"name": record.name})
    serial = served_timer.predict(record)
    assert response["design"] == record.name
    assert response["overall"] == {k: float(v) for k, v in serial.overall.items()}
    assert response["signal_slack"] == {k: float(v) for k, v in serial.signal_slack.items()}
    assert response["ranked_signals"] == serial.ranked_signals()
    assert response["serve"]["batch_size"] >= 1


def test_http_whatif(http_server, served_timer, tiny_records):
    record = tiny_records[4]
    response = _post(http_server, "/whatif", {"name": record.name, "k": 4})
    direct = served_timer.what_if(record, prediction=served_timer.predict(record), k=4)
    assert [c["wns"] for c in response["candidates"]] == [e.wns for e in direct]


def test_http_health_and_metrics(http_server):
    health = _get(http_server, "/health")
    assert health["status"] == "ok"
    # Bundle identity is always surfaced (None for an in-process fit with no
    # manifest); a registry-served promotion fills both fields in.
    assert "active_bundle_id" in health and health["active_bundle_id"] is None
    assert "eval_digest" in health and health["eval_digest"] is None
    _post(http_server, "/predict", {"name": http_server.service.timer.training_designs_[0]})
    metrics = _get(http_server, "/metrics")
    assert metrics["serving"]["requests"] >= 1
    assert "predict_p50" in metrics["serving"]
    assert "active_bundle_id" in metrics["serving"]


def test_http_error_paths(http_server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(http_server, "/nope")
    assert excinfo.value.code == 404

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(http_server, "/predict", {"name": "no-such-design"})
    assert excinfo.value.code == 404

    request = urllib.request.Request(
        _url(http_server, "/predict"),
        data=b"this is not json",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(http_server, "/whatif", {"name": "whatever", "k": -3})
    assert excinfo.value.code in (400, 404)


def test_http_post_unknown_path_does_not_desync_keepalive(http_server):
    """A 404'd POST with an unread body must not poison the connection."""
    import http.client

    host, port = http_server.server_address
    conn = http.client.HTTPConnection(host, port)
    try:
        conn.request("POST", "/bogus", body=b'{"x": 1}', headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 404
        response.read()
        # The server closes the connection instead of parsing the leftover
        # body bytes as the next request line; either the follow-up request
        # fails cleanly (closed) or — never — comes back as a 400 desync.
        try:
            conn.request("GET", "/health")
            status = conn.getresponse().status
        except (http.client.HTTPException, ConnectionError, BrokenPipeError):
            status = None
        assert status != 400
    finally:
        conn.close()
    assert _get(http_server, "/health")["status"] == "ok"


def test_record_cache_is_bounded(served_timer, simple_source):
    service = TimingService(served_timer, ServeConfig(record_cache_entries=1))
    try:
        first = service.record_for_source(simple_source, name="one")
        service.record_for_source(simple_source, name="two")
        assert len(service._record_cache) == 1  # LRU evicted the first entry
        again = service.record_for_source(simple_source, name="one")
        assert again is not first  # rebuilt (or disk-cache loaded), not leaked
    finally:
        service.close()


def test_http_source_payload(http_server, served_timer, simple_source):
    response = _post(http_server, "/predict", {"source": simple_source, "name": "simple"})
    record = http_server.service.record_for_source(simple_source, name="simple")
    serial = served_timer.predict(record)
    assert response["overall"] == {k: float(v) for k, v in serial.overall.items()}


def test_service_report_can_merge_into_session_report(served_timer, tiny_records):
    session = RuntimeReport()
    with TimingService(served_timer) as service:
        service.predict(tiny_records[0])
        session.merge(service.runtime_report())
    assert "serve.predict_batch" in session.stages
    assert "serve.predict_p50" in session.stages


# ---------------------------------------------------------------------------
# Resilience: body bounds, load shedding, deadlines, close() races
# ---------------------------------------------------------------------------


def test_http_oversized_body_rejected_with_413(http_server):
    from repro.serve.http import MAX_BODY_BYTES

    request = urllib.request.Request(
        _url(http_server, "/predict"),
        data=b"x" * 16,  # tiny actual body; the declared length is the bound
        headers={
            "Content-Type": "application/json",
            "Content-Length": str(MAX_BODY_BYTES + 1),
        },
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 413
    assert "error" in json.loads(excinfo.value.read())
    # The server stays healthy after refusing the body.
    assert _get(http_server, "/health")["status"] == "ok"


def test_http_chunked_body_rejected(http_server):
    import http.client

    host, port = http_server.server_address
    conn = http.client.HTTPConnection(host, port)
    try:
        conn.putrequest("POST", "/predict")
        conn.putheader("Transfer-Encoding", "chunked")
        conn.putheader("Content-Type", "application/json")
        conn.endheaders()
        conn.send(b"5\r\n{\"a\":\r\n0\r\n\r\n")
        response = conn.getresponse()
        assert response.status == 413
    finally:
        conn.close()


def test_http_shed_request_gets_429_with_retry_after(served_timer, tiny_records):
    service = TimingService(
        served_timer,
        ServeConfig(batch_window_s=0.0, queue_max=1, retry_after_s=2.5),
    )
    server = start_server(service, port=0)
    for record in tiny_records:
        server.register_record(record)
    try:
        # Occupy the single admission slot directly, then hit the server.
        slot = service.admission.admit("predict")
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server, "/predict", {"name": tiny_records[0].name})
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "2.5"
        finally:
            slot.__exit__(None, None, None)
        # Slot released: the same request is admitted and answered.
        response = _post(server, "/predict", {"name": tiny_records[0].name})
        assert response["design"] == tiny_records[0].name
        assert service.report.counters["serve_shed"] == 1
    finally:
        server.shutdown()
        service.close()


def test_http_expired_deadline_gets_504(served_timer, tiny_records):
    service = TimingService(
        served_timer, ServeConfig(batch_window_s=0.05, deadline_s=1e-6)
    )
    server = start_server(service, port=0)
    for record in tiny_records:
        server.register_record(record)
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/predict", {"name": tiny_records[0].name})
        assert excinfo.value.code == 504
        assert service.report.counters.get("serve_deadline_timeouts", 0) >= 1
    finally:
        server.shutdown()
        service.close()


def test_close_drains_inflight_requests(served_timer, tiny_records):
    """predicts racing close(): every caller gets a prediction or a clean
    'closed' error — nobody hangs, nothing is silently dropped."""
    for attempt in range(3):  # several interleavings of the race
        service = TimingService(served_timer, ServeConfig(batch_window_s=0.01))
        outcomes = []
        barrier = threading.Barrier(5)

        def run(index):
            barrier.wait()
            try:
                outcomes.append(("ok", service.predict(tiny_records[index % 4])))
            except RuntimeError as exc:
                outcomes.append(("closed", exc))

        def closer():
            barrier.wait()
            service.close(drain=True, timeout=30.0)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=closer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads), "a caller hung"
        assert len(outcomes) == 4
        for kind, value in outcomes:
            if kind == "ok":
                assert value.design in {r.name for r in tiny_records}
            else:
                assert "closed" in str(value)
        service.close()  # idempotent


def test_close_without_drain_aborts_queued_requests(served_timer, tiny_records):
    service = TimingService(served_timer, ServeConfig(batch_window_s=5.0))
    errors = []

    def run():
        try:
            service.predict(tiny_records[0])
            errors.append(None)
        except RuntimeError as exc:
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    time.sleep(0.1)  # let the request enter the (long) batch window
    service.close(drain=False, timeout=10.0)
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert len(errors) == 1  # answered either way; an abort error is legal
