"""Tests for the execution engine: cache, parallel builds, batch inference."""

from __future__ import annotations

import dataclasses
import json
import os
import pickle

import pytest

from repro.core import RTLTimer, RTLTimerConfig, BitwiseConfig, build_dataset, build_dataset_serial
from repro.core.dataset import DatasetConfig
from repro.runtime import (
    ArtifactCache,
    RuntimeReport,
    activate,
    build_dataset_parallel,
    incr,
    record_fingerprint,
    record_key,
    resolve_jobs,
    stage,
)

from tests.conftest import TINY_SPECS


@pytest.fixture
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(directory=tmp_path / "cache", enabled=True)


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------


def test_cache_roundtrip_and_stats(cache):
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    assert cache.put(key, {"value": [1, 2, 3]})
    assert cache.get(key) == {"value": [1, 2, 3]}
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1


def test_cache_disabled_never_hits(tmp_path):
    cache = ArtifactCache(directory=tmp_path, enabled=False)
    key = "cd" + "0" * 62
    assert not cache.put(key, "value")
    assert cache.get(key) is None
    assert cache.stats.hits == 0
    assert cache.stats.misses == 1
    assert not any(tmp_path.rglob("*.pkl"))


def test_cache_corrupt_entry_is_a_miss_and_removed(cache):
    key = "ef" + "0" * 62
    cache.put(key, "good")
    path = cache.path_for(key)
    path.write_bytes(b"not a pickle")
    assert cache.get(key, "fallback") == "fallback"
    assert not path.exists()
    # The next build stores a fresh entry.
    assert cache.load_or_build(key, lambda: "rebuilt") == "rebuilt"
    assert cache.get(key) == "rebuilt"


def test_load_or_build_builds_once(cache):
    key = "01" + "0" * 62
    calls = []

    def builder():
        calls.append(1)
        return "value"

    assert cache.load_or_build(key, builder) == "value"
    assert cache.load_or_build(key, builder) == "value"
    assert len(calls) == 1


def test_cache_put_swallows_unpicklable_values(cache):
    key = "23" + "0" * 62
    assert not cache.put(key, lambda: None)  # lambdas cannot be pickled
    assert cache.get(key) is None
    assert cache.stats.stores == 0


def test_cache_prune_evicts_oldest_until_under_budget(cache):
    for index in range(5):
        key = f"{index:02d}" + "a" * 62
        cache.put(key, b"x" * 1000)
        path = cache.path_for(key)
        os.utime(path, (index, index))  # deterministic mtime order
    total = sum(p.stat().st_size for p in cache.directory.rglob("*.pkl"))
    per_entry = total // 5
    deleted = cache.prune(max_bytes=per_entry * 2)
    assert deleted == 3
    survivors = sorted(p.name[:2] for p in cache.directory.rglob("*.pkl"))
    assert survivors == ["03", "04"]  # newest two remain
    assert cache.prune(max_bytes=per_entry * 2) == 0  # already under budget


def test_cache_prune_is_a_noop_when_disabled(tmp_path):
    writer = ArtifactCache(directory=tmp_path, enabled=True)
    key = "45" + "0" * 62
    writer.put(key, b"x" * 1000)
    disabled = ArtifactCache(directory=tmp_path, enabled=False)
    assert disabled.prune(max_bytes=1) == 0
    assert writer.path_for(key).exists()


def test_record_key_invalidation():
    spec = TINY_SPECS[0]
    base = record_key(spec, DatasetConfig())
    assert base == record_key(spec, DatasetConfig())
    # Any change to the spec, the config or the source text changes the key.
    assert record_key(dataclasses.replace(spec, seed=spec.seed + 1), DatasetConfig()) != base
    assert record_key(spec, DatasetConfig(clock_utilization=0.5)) != base
    assert record_key("module m(); endmodule", name="m") != base
    assert record_key("module m(); endmodule", name="m") != record_key(
        "module m(clk); input clk; endmodule", name="m"
    )


# ---------------------------------------------------------------------------
# Parallel + cached dataset builds
# ---------------------------------------------------------------------------


def test_parallel_build_matches_serial():
    specs = TINY_SPECS[:3]
    serial = build_dataset_serial(specs)
    disabled = ArtifactCache(enabled=False)
    parallel = build_dataset_parallel(specs, jobs=2, cache=disabled)
    assert [r.name for r in parallel] == [s.name for s in specs]
    assert [record_fingerprint(r) for r in parallel] == [record_fingerprint(r) for r in serial]
    # Element-wise equality of the user-facing artefacts, not just hashes.
    for a, b in zip(serial, parallel):
        assert a.source == b.source
        assert a.labels == b.labels
        assert a.summary() == b.summary()


def test_record_fingerprint_is_roundtrip_stable():
    record = build_dataset_serial(TINY_SPECS[:1])[0]
    reloaded = pickle.loads(pickle.dumps(record, protocol=5))
    assert record_fingerprint(record) == record_fingerprint(reloaded)


def test_build_dataset_cold_then_warm(cache):
    specs = TINY_SPECS[:2]
    report = RuntimeReport()
    cold = build_dataset(specs, cache=cache, report=report)
    assert report.counters["cache_misses"] == 2
    assert report.counters["cache_stores"] == 2
    assert report.counters["designs"] == 2

    warm = build_dataset(specs, cache=cache, report=report)
    assert report.counters["cache_hits"] == 2
    assert report.counters["designs"] == 4
    assert [record_fingerprint(r) for r in warm] == [record_fingerprint(r) for r in cold]


def test_build_dataset_serial_fallback_via_jobs_env(cache, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "1")
    report = RuntimeReport()
    records = build_dataset(TINY_SPECS[:2], cache=cache, report=report)
    assert len(records) == 2
    assert "dataset.build_serial" in report.stages
    assert "dataset.build_parallel" not in report.stages


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(n_tasks=1, jobs=8) == 1
    assert resolve_jobs(n_tasks=10, jobs=2) == 2
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(n_tasks=10) == 3
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert resolve_jobs(n_tasks=10) >= 1


# ---------------------------------------------------------------------------
# Runtime report
# ---------------------------------------------------------------------------


def test_runtime_report_stages_counters_and_json(tmp_path):
    report = RuntimeReport(meta={"suite": "unit"})
    with report.stage("outer"):
        with report.stage("inner"):
            pass
        with report.stage("inner"):
            pass
    report.incr("designs", 4)
    report.add_stage("dataset.build", 2.0)
    assert report.stage_calls["inner"] == 2
    assert report.stages["outer"] >= report.stages["inner"]
    assert report.designs_per_second() == pytest.approx(2.0)

    destination = report.write(tmp_path / "BENCH_runtime.json")
    payload = json.loads(destination.read_text())
    assert payload["schema"] == "repro-bench-runtime/1"
    assert payload["meta"]["suite"] == "unit"
    assert payload["counters"]["designs"] == 4
    assert payload["derived"]["designs_per_second"] == pytest.approx(2.0)


def test_active_report_helpers_are_noops_without_activation():
    # Must not raise when no report is active.
    with stage("anything"):
        incr("anything")

    report = RuntimeReport()
    with activate(report):
        with stage("timed"):
            incr("events", 2)
    assert "timed" in report.stages
    assert report.counters["events"] == 2


def test_report_merge():
    a = RuntimeReport()
    a.add_stage("s", 1.0)
    a.incr("c", 1)
    b = RuntimeReport(meta={"origin": "b"})
    b.add_stage("s", 2.0)
    b.incr("c", 2)
    a.merge(b)
    assert a.stages["s"] == pytest.approx(3.0)
    assert a.counters["c"] == 3
    assert a.meta["origin"] == "b"


# ---------------------------------------------------------------------------
# Batched inference
# ---------------------------------------------------------------------------


TINY_TIMER_CONFIG = RTLTimerConfig(
    bitwise=BitwiseConfig(n_estimators=10, max_depth=3, seed=5),
)


def test_predict_batch_matches_predict(tiny_records):
    train, test = tiny_records[:3], tiny_records[3:]
    timer = RTLTimer(TINY_TIMER_CONFIG).fit(train)
    batch = timer.predict_batch(test)
    assert len(batch) == len(test)
    for record, batched in zip(test, batch):
        single = timer.predict(record)
        assert batched.design == single.design
        assert batched.bitwise_arrival == single.bitwise_arrival
        assert batched.signal_arrival == single.signal_arrival
        assert batched.signal_ranking == single.signal_ranking
        assert batched.signal_slack == single.signal_slack
        assert batched.rank_group == single.rank_group
        assert batched.overall == single.overall

    report = batch.report
    for name in ("inference.batch", "inference.bitwise", "inference.signalwise",
                 "inference.overall", "inference.assemble"):
        assert name in report.stages
    assert report.counters["inference_designs"] == len(test)
    # Indexing and iteration behave like the prediction list.
    assert batch[0] is batch.predictions[0]
    assert [p.design for p in batch] == [r.name for r in test]


def test_predict_batch_runtime_includes_assembly(tiny_records, monkeypatch):
    """Regression: runtime_seconds must cover every stage, assembly included,
    so batched predictions report the same quantity as predict()."""
    import time as time_mod

    train, test = tiny_records[:3], tiny_records[3:4]
    timer = RTLTimer(TINY_TIMER_CONFIG).fit(train)

    original = RTLTimer._assemble_prediction

    def slow_assemble(self, *args, **kwargs):
        time_mod.sleep(0.05)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(RTLTimer, "_assemble_prediction", slow_assemble)
    batch = timer.predict_batch(test)
    assert batch[0].runtime_seconds >= 0.05
    # predict() reports the same quantity (assembly included) as the batch.
    assert timer.predict(test[0]).runtime_seconds >= 0.05


def test_ranked_signals_breaks_ties_deterministically():
    """Regression: equal scores must rank by name, not dict insertion order."""
    from repro.core.pipeline import RTLTimerPrediction

    ranking = {"zeta": 1.0, "alpha": 1.0, "mid": 2.0, "beta": 1.0}
    prediction = RTLTimerPrediction(
        design="d",
        bitwise_arrival={},
        signal_arrival={},
        signal_ranking=ranking,
        signal_slack={},
        rank_group={},
        overall={},
        runtime_seconds=0.0,
    )
    assert prediction.ranked_signals() == ["mid", "alpha", "beta", "zeta"]
    reversed_insertion = RTLTimerPrediction(
        design="d",
        bitwise_arrival={},
        signal_arrival={},
        signal_ranking=dict(reversed(list(ranking.items()))),
        signal_slack={},
        rank_group={},
        overall={},
        runtime_seconds=0.0,
    )
    assert reversed_insertion.ranked_signals() == prediction.ranked_signals()
