"""Tests for Verilog re-emission, annotation helpers and the interpreter."""

import pytest

from repro.hdl.design import analyze
from repro.hdl.interpret import Interpreter
from repro.hdl.parser import parse_source
from repro.hdl.writer import annotate_lines, expression_to_verilog, write_verilog


class TestWriter:
    def test_expression_rendering_roundtrip(self):
        from repro.hdl.parser import Parser

        for text in ["a + b * c", "s ? a : b", "{a, b[3:1]}", "{4{a}}", "~(a ^ 8'hFF)"]:
            expr = Parser(text).parse_expression()
            rendered = expression_to_verilog(expr)
            again = Parser(rendered).parse_expression()
            assert expression_to_verilog(again) == rendered

    def test_write_verilog_reparses(self, simple_module):
        text = write_verilog(simple_module)
        module = parse_source(text)
        assert module.name == simple_module.name
        assert len(module.always_blocks) == len(simple_module.always_blocks)

    def test_annotate_lines_appends_comments(self, simple_source):
        annotated = annotate_lines(
            simple_source,
            {"acc": "Slack@-12.0ps rank@g1", "flag": "Slack@3.0ps rank@g4"},
            header_comments=["header line"],
        )
        assert annotated.splitlines()[0] == "// header line"
        acc_lines = [l for l in annotated.splitlines() if l.strip().startswith("reg [3:0] acc")]
        assert acc_lines and "Slack@-12.0ps" in acc_lines[0]

    def test_annotate_lines_is_still_valid_verilog(self, simple_source):
        annotated = annotate_lines(simple_source, {"acc": "x"}, ["h"])
        assert parse_source(annotated).name == "simple"

    def test_annotate_only_matching_declarations(self, simple_source):
        annotated = annotate_lines(simple_source, {"sum": "wire comment"})
        lines = [l for l in annotated.splitlines() if "wire comment" in l]
        assert len(lines) == 1
        assert "sum" in lines[0]

    def test_annotate_skips_keyword_prefixed_statements(self):
        """Regression: ``regfile_q <= x;`` starts with "reg" but is not a
        declaration — the slack comment must land on the declaration only."""
        source = "\n".join(
            [
                "module m (clk, x);",
                "  input clk;",
                "  input x;",
                "  reg [3:0] regfile_q;",
                "  wire_sel_t;",  # pathological: "wire"-prefixed statement
                "  always @(posedge clk) begin",
                "    regfile_q <= x;",
                "  end",
                "endmodule",
            ]
        )
        annotated = annotate_lines(source, {"regfile_q": "MARK"})
        commented = [l for l in annotated.splitlines() if "MARK" in l]
        assert len(commented) == 1
        assert commented[0].strip().startswith("reg [3:0] regfile_q;")
        assert "regfile_q <= x;" in annotated  # assignment line unchanged

    def test_annotate_statement_only_signal_gets_no_comment(self):
        """A name appearing only in a ``reg``-prefixed assignment must not be
        annotated at all (previously the comment landed on the statement)."""
        source = "\n".join(
            [
                "module m (clk, x);",
                "  input clk;",
                "  always @(posedge clk) begin",
                "    regbank <= x;",
                "  end",
                "endmodule",
            ]
        )
        annotated = annotate_lines(source, {"regbank": "MARK"})
        assert "MARK" not in annotated

    def test_declaration_initializer_rhs_is_not_a_declaration(self):
        """``wire y = acc & x;`` declares y, not the identifiers on its RHS."""
        source = "\n".join(
            [
                "module m (x, y);",
                "  input x;",
                "  wire acc;",
                "  wire y = acc & x;",
                "endmodule",
            ]
        )
        annotated = annotate_lines(source, {"acc": "MARK"})
        commented = [l for l in annotated.splitlines() if "MARK" in l]
        assert len(commented) == 1
        assert commented[0].strip().startswith("wire acc;")


class TestInterpreter:
    @pytest.fixture(scope="class")
    def interpreter(self, simple_design):
        return Interpreter(simple_design)

    def test_add_and_mux_path(self, interpreter):
        result = interpreter.evaluate_step({"a": 3, "b": 5, "sel": 1, "acc": 0, "flag": 0})
        assert result["sum"] == 8
        assert result["acc"] == 8  # (sum ^ acc) with acc=0

    def test_and_path_when_sel_low(self, interpreter):
        result = interpreter.evaluate_step({"a": 0b1100, "b": 0b1010, "sel": 0, "acc": 0})
        assert result["acc"] == 0b1000

    def test_flag_if_else(self, interpreter):
        # sel=1 -> flag <= ^a ; sel=0 -> flag <= |b
        assert interpreter.evaluate_step({"a": 0b0111, "sel": 1})["flag"] == 1
        assert interpreter.evaluate_step({"a": 0b0011, "sel": 1})["flag"] == 0
        assert interpreter.evaluate_step({"b": 0, "sel": 0})["flag"] == 0
        assert interpreter.evaluate_step({"b": 4, "sel": 0})["flag"] == 1

    def test_register_holds_without_update(self):
        source = """
        module hold (clk, en, d, q); input clk; input en; input [3:0] d; output [3:0] q;
          reg [3:0] q;
          always @(posedge clk) begin if (en) q <= d; end
        endmodule
        """
        design = analyze(parse_source(source))
        interp = Interpreter(design)
        assert interp.evaluate_step({"en": 0, "d": 9, "q": 5})["q"] == 5
        assert interp.evaluate_step({"en": 1, "d": 9, "q": 5})["q"] == 9

    def test_values_masked_to_width(self, interpreter):
        result = interpreter.evaluate_step({"a": 0xFFF, "b": 0xFFF, "sel": 1, "acc": 0})
        assert 0 <= result["acc"] <= 0xF

    def test_wire_chain_settles(self):
        source = """
        module chain (clk, a, q); input clk; input [3:0] a; output [3:0] q;
          reg [3:0] q; wire [3:0] w1; wire [3:0] w2;
          assign w2 = w1 + 4'd1;
          assign w1 = a ^ 4'd5;
          always @(posedge clk) q <= w2;
        endmodule
        """
        design = analyze(parse_source(source))
        interp = Interpreter(design)
        assert interp.evaluate_step({"a": 2})["q"] == ((2 ^ 5) + 1) & 0xF
