"""Corruption recovery: cache/registry damage must never yield wrong answers."""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.core import RTLTimer
from repro.runtime.report import RuntimeReport
from repro.serve.registry import ModelRegistry, RegistryError
from repro.serve.service import PooledTimingService, ServeConfig, TimingService
from tests.test_registry import TINY_TIMER_CONFIG


@pytest.fixture(scope="module")
def recovery_timer(tiny_records):
    return RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:4])


def _flip_all_cache_entries(cache_dir) -> int:
    """Bit-flip the head and truncate every on-disk cache entry; returns count."""
    flipped = 0
    for path in cache_dir.rglob("*.pkl"):
        blob = path.read_bytes()
        path.write_bytes(bytes([blob[0] ^ 0xFF]) + blob[1 : max(len(blob) // 2, 1)])
        flipped += 1
    return flipped


def test_cache_corruption_recovers_under_concurrency(
    recovery_timer, simple_source, tmp_path, monkeypatch
):
    """Concurrent requests against bit-flipped cache entries all recompute
    correctly — the corrupt reads count, the answers never differ."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))

    with TimingService(recovery_timer, ServeConfig(record_cache_entries=1)) as service:
        healthy_record = service.record_for_source(simple_source, name="simple")
        healthy = recovery_timer.predict(healthy_record)
        # Evict "simple" from the in-memory LRU so the next lookups go to disk.
        service.record_for_source(simple_source, name="other")
        assert _flip_all_cache_entries(cache_dir) > 0

        results = [None] * 4
        errors = []

        def run(index):
            try:
                record = service.record_for_source(simple_source, name="simple")
                results[index] = service.predict(record)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        for prediction in results:
            assert prediction.signal_slack == healthy.signal_slack
            assert prediction.overall == healthy.overall
        counters = service.report.counters
        assert counters.get("cache_corrupt", 0) >= 1
        assert counters.get("serve_degraded_cache_recompute", 0) >= 1


def test_cache_breaker_trips_on_repeated_corruption(
    recovery_timer, simple_source, tmp_path, monkeypatch
):
    """Sustained corruption trips the disk breaker: later lookups skip the
    disk entirely (recompute) instead of re-probing a bad dependency."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))

    with TimingService(recovery_timer, ServeConfig(record_cache_entries=1)) as service:
        service.cache_breaker.failure_threshold = 1
        service.cache_breaker.reset_after_s = 60.0
        healthy_record = service.record_for_source(simple_source, name="simple")
        healthy = recovery_timer.predict(healthy_record)
        for _ in range(3):
            # Each round: evict from the LRU, corrupt the disk copy, re-request.
            service.record_for_source(simple_source, name="other")
            _flip_all_cache_entries(cache_dir)
            record = service.record_for_source(simple_source, name="simple")
            assert recovery_timer.predict(record).signal_slack == healthy.signal_slack
        assert service.cache_breaker.state != "closed"
        assert service.report.counters.get("cache_breaker_skips", 0) >= 1


def test_registry_payload_rejects_corrupted_bundle(recovery_timer, tmp_path):
    """A tampered stored bundle raises RegistryError from payload() — the
    worker-reload path can never load silently wrong bytes."""
    registry = ModelRegistry(tmp_path / "models")
    saved = registry.save(recovery_timer, "tiny")

    payload, manifest = registry.payload("tiny")
    assert manifest["bundle_id"] == saved["bundle_id"]
    assert isinstance(payload, bytes) and len(payload) > 0

    blob_path = registry.cache.path_for(saved["bundle_id"])
    blob = blob_path.read_bytes()
    blob_path.write_bytes(blob[: len(blob) // 2])

    with pytest.raises(RegistryError):
        registry.payload("tiny")


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker pool tests need the fork start method",
)
def test_pooled_service_survives_registry_corruption(
    recovery_timer, tiny_records, tmp_path
):
    """Corrupting the registry mid-flight degrades worker reloads to the
    cached payload; predictions stay bit-identical throughout."""
    import os
    import signal

    from repro.serve.supervisor import PoolConfig

    registry = ModelRegistry(tmp_path / "models")
    registry.save(recovery_timer, "tiny")
    report = RuntimeReport()
    service = PooledTimingService(
        recovery_timer,
        ServeConfig(batch_window_s=0.01),
        report=report,
        pool_config=PoolConfig(
            workers=1,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=2.0,
            backoff_base_s=0.05,
            backoff_max_s=0.2,
        ),
        payload_provider=lambda: registry.payload("tiny")[0],
    )
    try:
        record = tiny_records[0]
        healthy = recovery_timer.predict(record)
        assert service.predict(record).signal_slack == healthy.signal_slack

        # Tear the registry out from under the pool, then kill the worker:
        # the restart's payload refresh fails and degrades to the cached
        # in-memory payload.
        for path in (tmp_path / "models").rglob("*"):
            if path.is_file():
                path.write_bytes(b"garbage")
        os.kill(service.pool._workers[0].process.pid, signal.SIGKILL)

        for _ in range(4):
            assert service.predict(record).signal_slack == healthy.signal_slack
    finally:
        service.close()
    assert report.counters.get("serve_registry_fallbacks", 0) >= 1
