"""Tests for the synthetic benchmark design generator."""

import pytest

from repro.hdl.generate import (
    BENCHMARK_SPECS,
    DesignSpec,
    GeneratorConfig,
    benchmark_suite,
    generate_and_analyze,
    generate_design,
)
from repro.hdl.parser import parse_source


def test_benchmark_has_21_designs_like_the_paper():
    assert len(BENCHMARK_SPECS) == 21
    names = {spec.name for spec in BENCHMARK_SPECS}
    # Spot-check the design names used in Table 6 of the paper.
    assert {"b18_1", "Rocket1", "Vex7", "syscaes", "conmax", "FPU"} <= names


def test_four_families_are_covered():
    families = {spec.family for spec in BENCHMARK_SPECS}
    assert families == {"itc99", "opencores", "chipyard", "vexriscv"}


def test_generation_is_deterministic():
    spec = BENCHMARK_SPECS[0]
    assert generate_design(spec) == generate_design(spec)


def test_different_seeds_give_different_designs():
    spec_a = DesignSpec("a", "itc99", "Verilog", 1, 8, 2, 3, 4, 2)
    spec_b = DesignSpec("b", "itc99", "Verilog", 2, 8, 2, 3, 4, 2)
    assert generate_design(spec_a) != generate_design(spec_b)


@pytest.mark.parametrize("spec", BENCHMARK_SPECS, ids=lambda s: s.name)
def test_every_benchmark_design_parses_and_analyzes(spec):
    design = generate_and_analyze(spec)
    assert design.name == spec.name
    assert design.register_signals, "every design must contain registers"
    assert design.total_register_bits >= spec.data_width


def test_register_bits_scale_with_spec():
    small = DesignSpec("small", "vexriscv", "Verilog", 5, 4, 2, 2, 3, 2)
    large = DesignSpec("large", "vexriscv", "Verilog", 5, 16, 4, 6, 8, 2)
    assert (
        generate_and_analyze(large).total_register_bits
        > generate_and_analyze(small).total_register_bits
    )


def test_multiplier_design_contains_multiplication():
    spec = next(s for s in BENCHMARK_SPECS if s.use_multiplier)
    assert "*" in generate_design(spec)


def test_suite_returns_all_sources():
    suite = benchmark_suite(BENCHMARK_SPECS[:3])
    assert set(suite) == {spec.name for spec in BENCHMARK_SPECS[:3]}
    for source in suite.values():
        assert parse_source(source) is not None


def test_generator_config_output_fraction():
    spec = BENCHMARK_SPECS[0]
    few = generate_and_analyze(spec, GeneratorConfig(output_fraction=0.1))
    many = generate_and_analyze(spec, GeneratorConfig(output_fraction=0.9))
    assert len(many.outputs) >= len(few.outputs)


def test_approx_register_bits_property():
    spec = BENCHMARK_SPECS[0]
    assert spec.approx_register_bits > 0
