"""Online lifecycle: eval gate, retrain→promote/reject, hot swap, watcher."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.core import RTLTimer
from repro.lifecycle import (
    EvalThresholds,
    PromotionWatcher,
    RetrainConfig,
    compare_evals,
    eval_digest,
    evaluate_timer,
    run_retrain,
    training_config,
)
from repro.lifecycle.evaluate import (
    EVAL_REPORT_SCHEMA,
    LATENCY_RATIO_ENV_VAR,
    MIN_R_DELTA_ENV_VAR,
)
from repro.serve.http import start_server
from repro.serve.registry import ModelRegistry, state_payload
from repro.serve.service import PooledTimingService, ServeConfig, TimingService
from repro.serve.supervisor import PoolConfig
from tests.conftest import TINY_SPECS
from tests.test_registry import TINY_TIMER_CONFIG


@pytest.fixture(scope="module")
def good_timer(tiny_records):
    return RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:3])


@pytest.fixture(scope="module")
def alt_timer(tiny_records):
    """A different healthy bundle (wider training set → different content)."""
    return RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:4])


@pytest.fixture(scope="module")
def degraded_timer(tiny_records):
    """Deliberately bad: one design, one boosting round."""
    return RTLTimer(training_config(1, fast=True)).fit(tiny_records[:1])


@pytest.fixture(scope="module")
def holdout(tiny_records):
    return tiny_records[3:]


# ---------------------------------------------------------------------------
# Training-config semantics (the --estimators 0 bugfix)
# ---------------------------------------------------------------------------


def test_training_config_estimator_semantics():
    assert training_config(None, fast=True).bitwise.n_estimators == 20
    assert training_config(None, fast=False).bitwise.n_estimators == 60
    assert training_config(7, fast=True).bitwise.n_estimators == 7
    for bad in (0, -3):
        with pytest.raises(ValueError, match="positive"):
            training_config(bad)


# ---------------------------------------------------------------------------
# The eval gate
# ---------------------------------------------------------------------------


def test_evaluate_timer_shape(good_timer, holdout):
    result = evaluate_timer(good_timer, holdout)
    assert set(result["designs"]) == {record.name for record in holdout}
    assert -1.0 <= result["mean_r"] <= 1.0
    assert result["mean_predict_seconds"] > 0.0
    with pytest.raises(ValueError, match="empty holdout"):
        evaluate_timer(good_timer, [])


def test_eval_gate_rejects_degraded_candidate(good_timer, degraded_timer, holdout):
    good_eval = evaluate_timer(good_timer, holdout)
    bad_eval = evaluate_timer(degraded_timer, holdout)
    assert bad_eval["mean_r"] < good_eval["mean_r"] - 0.05  # decisively worse

    verdict = compare_evals(bad_eval, good_eval, EvalThresholds())
    assert verdict["verdict"] == "reject"
    assert any("regressed" in reason for reason in verdict["reasons"])

    # The improvement direction always passes.
    assert compare_evals(good_eval, bad_eval, EvalThresholds())["verdict"] == "promote"
    # No baseline: bootstrap promotion.
    bootstrap = compare_evals(good_eval, None)
    assert bootstrap["verdict"] == "promote"
    assert bootstrap["baseline_mean_r"] is None


def test_eval_gate_latency_budget():
    fast = {"mean_r": 0.9, "mean_predict_seconds": 0.1}
    slow = {"mean_r": 0.9, "mean_predict_seconds": 1.0}
    thresholds = EvalThresholds(min_r_delta=0.02, latency_ratio=5.0)
    verdict = compare_evals(slow, fast, thresholds)
    assert verdict["verdict"] == "reject"
    assert any("latency" in reason for reason in verdict["reasons"])
    assert verdict["latency_ratio_observed"] == pytest.approx(10.0)
    assert compare_evals(fast, slow, thresholds)["verdict"] == "promote"


def test_eval_thresholds_from_env(monkeypatch):
    monkeypatch.setenv(MIN_R_DELTA_ENV_VAR, "0.5")
    monkeypatch.setenv(LATENCY_RATIO_ENV_VAR, "9.0")
    thresholds = EvalThresholds.from_env()
    assert thresholds.min_r_delta == 0.5
    assert thresholds.latency_ratio == 9.0
    monkeypatch.setenv(MIN_R_DELTA_ENV_VAR, "not-a-number")
    assert EvalThresholds.from_env().min_r_delta == EvalThresholds().min_r_delta


def test_eval_digest_is_canonical():
    report = {"b": 1, "a": [1, 2], "digest": "ignored"}
    reordered = {"a": [1, 2], "b": 1}
    assert eval_digest(report) == eval_digest(reordered)
    assert eval_digest({"a": [1, 2], "b": 2}) != eval_digest(report)


# ---------------------------------------------------------------------------
# run_retrain: the eval-gated canary flow
# ---------------------------------------------------------------------------


def test_run_retrain_promotes_then_rejects_degraded(tmp_path):
    registry = ModelRegistry(tmp_path / "models")

    first = run_retrain(
        RetrainConfig(
            name="m",
            fast=True,
            estimators=10,
            train_specs=TINY_SPECS[:3],
            holdout_specs=TINY_SPECS[3:],
            report_out=str(tmp_path / "r1.json"),
        ),
        registry=registry,
    )
    assert first["promoted"] and first["verdict"] == "promote"
    first_id = first["candidate"]["bundle_id"]
    assert registry.resolve("m@promoted") == first_id
    # The promotion entry records the digest of the exact report written.
    report1 = json.loads((tmp_path / "r1.json").read_text())
    assert report1["schema"] == EVAL_REPORT_SCHEMA
    assert report1["digest"] == eval_digest(report1)
    assert registry.promoted("m")["eval_digest"] == report1["digest"]
    assert registry.promoted("m")["source"] == "retrain"

    degraded = run_retrain(
        RetrainConfig(
            name="m",
            fast=True,
            estimators=1,
            train_specs=TINY_SPECS[:1],
            holdout_specs=TINY_SPECS[3:],
            report_out=str(tmp_path / "r2.json"),
        ),
        registry=registry,
    )
    assert not degraded["promoted"] and degraded["verdict"] == "reject"
    # The registry default did NOT flip; the report was written anyway.
    assert registry.resolve("m@promoted") == first_id
    report2 = json.loads((tmp_path / "r2.json").read_text())
    assert report2["verdict"] == "reject"
    assert report2["baseline"]["bundle_id"] == first_id
    assert report2["candidate"]["bundle_id"] == degraded["candidate"]["bundle_id"]

    # The rejected candidate is still *registered* (canary, not default) —
    # a manual promote can override the gate, and rollback undoes it.
    registry.promote("m", degraded["candidate"]["bundle_id"])
    assert registry.resolve("m@promoted") == degraded["candidate"]["bundle_id"]
    restored = registry.rollback("m")
    assert restored["bundle_id"] == first_id
    assert registry.resolve("m@promoted") == first_id


def test_run_retrain_guards_holdout_overlap(tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    with pytest.raises(ValueError, match="overlap"):
        run_retrain(
            RetrainConfig(
                name="m",
                fast=True,
                train_specs=TINY_SPECS[:3],
                holdout_specs=TINY_SPECS[2:4],
            ),
            registry=registry,
        )
    with pytest.raises(ValueError, match="injected together"):
        run_retrain(RetrainConfig(name="m", train_specs=TINY_SPECS[:3]), registry=registry)


# ---------------------------------------------------------------------------
# Hot bundle swap: zero dropped in-flight requests
# ---------------------------------------------------------------------------


def _arrival_refs(timer, records):
    return {record.name: timer.predict(record).signal_arrival for record in records}


def test_inprocess_hot_swap_drops_nothing(good_timer, alt_timer, tiny_records):
    old_refs = _arrival_refs(good_timer, tiny_records)
    new_refs = _arrival_refs(alt_timer, tiny_records)
    service = TimingService(
        good_timer,
        ServeConfig(max_batch=4, batch_window_s=0.002),
        manifest={"bundle_id": "a" * 64},
    )
    results, errors = [], []
    swap_now = threading.Event()

    def client(worker_id):
        for i in range(12):
            record = tiny_records[(worker_id + i) % len(tiny_records)]
            if worker_id == 0 and i == 4:
                swap_now.set()
            try:
                prediction = service.predict(record)
                results.append((record.name, prediction.signal_arrival))
            except BaseException as exc:  # pragma: no cover - would fail the test
                errors.append(exc)

    try:
        threads = [threading.Thread(target=client, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        swap_now.wait(timeout=30)
        service.reload(alt_timer, manifest={"bundle_id": "b" * 64, "eval_digest": "e" * 8})
        for thread in threads:
            thread.join(timeout=60)

        assert not errors
        assert len(results) == 48  # every request answered
        # Every answer came from exactly one bundle — old or new, never a mix.
        for name, arrival in results:
            assert arrival in (old_refs[name], new_refs[name])
        # The swap is visible: identity surfaced, and new predictions use it.
        assert service.active_bundle_id == "b" * 64
        assert service.eval_digest == "e" * 8
        serving = service.metrics()["serving"]
        assert serving["active_bundle_id"] == "b" * 64
        assert serving["eval_digest"] == "e" * 8
        assert service.report.counters["serve_model_reloads"] == 1
        after = service.predict(tiny_records[0])
        assert after.signal_arrival == new_refs[tiny_records[0].name]
    finally:
        service.close()


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="worker pool tests need the fork start method",
)
def test_pooled_hot_swap_rolls_workers_without_drops(good_timer, alt_timer, tiny_records):
    import time

    old_refs = _arrival_refs(good_timer, tiny_records)
    new_refs = _arrival_refs(alt_timer, tiny_records)
    payload_old = state_payload(good_timer.to_state())
    payload_new = state_payload(alt_timer.to_state())
    service = PooledTimingService(
        good_timer,
        ServeConfig(max_batch=4, batch_window_s=0.002),
        manifest={"bundle_id": "a" * 64},
        pool_config=PoolConfig(
            workers=2,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=5.0,
            hang_timeout_s=10.0,
            backoff_base_s=0.05,
            backoff_max_s=0.2,
            retry_limit=2,
        ),
        payload_provider=lambda: payload_old,
    )
    results, errors = [], []
    swap_now = threading.Event()

    def client(worker_id):
        for i in range(10):
            record = tiny_records[(worker_id + i) % len(tiny_records)]
            if worker_id == 0 and i == 3:
                swap_now.set()
            try:
                prediction = service.predict(record)
                results.append((record.name, prediction.signal_arrival))
            except BaseException as exc:  # pragma: no cover - would fail the test
                errors.append(exc)

    try:
        threads = [threading.Thread(target=client, args=(t,)) for t in range(3)]
        for thread in threads:
            thread.start()
        swap_now.wait(timeout=60)
        service.reload(
            alt_timer, manifest={"bundle_id": "b" * 64}, payload=payload_new
        )
        for thread in threads:
            thread.join(timeout=120)

        assert not errors
        assert len(results) == 30  # zero dropped in-flight requests
        for name, arrival in results:
            assert arrival in (old_refs[name], new_refs[name])

        # The supervisor rolls every worker onto the new generation...
        deadline = time.monotonic() + 30
        while not service.pool.refresh_complete() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert service.pool.refresh_complete()
        assert service.report.counters["serve_pool_refreshes"] == 1
        assert service.report.counters.get("serve_worker_refreshes", 0) >= 1
        # ...and post-roll answers come from the new bundle.
        after = service.predict(tiny_records[1])
        assert after.signal_arrival == new_refs[tiny_records[1].name]
        assert service.metrics()["serving"]["active_bundle_id"] == "b" * 64
    finally:
        service.close()


# ---------------------------------------------------------------------------
# PromotionWatcher: a serving process follows name@promoted
# ---------------------------------------------------------------------------


def test_promotion_watcher_swaps_and_reports(tmp_path, good_timer, alt_timer, tiny_records):
    registry = ModelRegistry(tmp_path / "models")
    first = registry.save(good_timer, "m")
    registry.promote("m", "m@1", eval_digest="digest-1")
    timer, manifest = registry.load_with_manifest("m@promoted")
    service = TimingService(timer, ServeConfig(batch_window_s=0.0), manifest=dict(manifest))
    watcher = PromotionWatcher(service, registry, "m", interval_s=60)
    server = start_server(service, port=0)
    try:
        assert service.active_bundle_id == first["bundle_id"]
        assert watcher.poll_once() is False  # already on the promoted bundle

        second = registry.save(alt_timer, "m")
        registry.promote("m", "m@2", eval_digest="digest-2")
        assert watcher.poll_once() is True
        assert service.active_bundle_id == second["bundle_id"]
        assert service.eval_digest == "digest-2"
        record = tiny_records[2]
        assert service.predict(record).signal_arrival == alt_timer.predict(record).signal_arrival

        # /health surfaces the new identity for one-probe canary checks.
        host, port = server.server_address
        with urllib.request.urlopen(f"http://{host}:{port}/health") as response:
            health = json.loads(response.read())
        assert health["active_bundle_id"] == second["bundle_id"]
        assert health["eval_digest"] == "digest-2"
        assert health["model"]["bundle_id"] == second["bundle_id"]

        # A promotion pointing at a vanished blob must NOT take the service
        # down: the swap fails, the counter ticks, the old bundle keeps serving.
        registry.rollback("m")  # pointer back to m@1 ...
        registry.cache.path_for(first["bundle_id"]).unlink()  # ... whose blob is gone
        assert watcher.poll_once() is False
        assert service.active_bundle_id == second["bundle_id"]
        assert service.report.counters["serve_promotion_swap_failures"] >= 1
    finally:
        server.shutdown()
        service.close()


def test_promotion_watcher_background_thread(tmp_path, good_timer, alt_timer):
    import time

    registry = ModelRegistry(tmp_path / "models")
    registry.save(good_timer, "m")
    registry.promote("m", "m@1")
    timer, manifest = registry.load_with_manifest("m@promoted")
    service = TimingService(timer, ServeConfig(batch_window_s=0.0), manifest=dict(manifest))
    try:
        with PromotionWatcher(service, registry, "m", interval_s=0.05):
            second = registry.save(alt_timer, "m")
            registry.promote("m", "m@2")
            deadline = time.monotonic() + 30
            while (
                service.active_bundle_id != second["bundle_id"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert service.active_bundle_id == second["bundle_id"]
            assert service.report.counters["serve_promotion_swaps"] >= 1
    finally:
        service.close()
