"""Model registry: estimator state round-trips, bundles, corruption rejection."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import (
    BitwiseConfig,
    OverallConfig,
    RTLTimer,
    RTLTimerConfig,
    SignalwiseConfig,
)
from repro.core.state import config_from_state, config_to_state
from repro.ml import (
    DecisionTreeRegressor,
    GNNRegressor,
    GradientBoostingRegressor,
    GraphData,
    LambdaMARTRanker,
    MLPRegressor,
    MinMaxScaler,
    NewtonTreeRegressor,
    StandardScaler,
    TargetScaler,
    TransformerPathRegressor,
    estimator_from_state,
)
from repro.ml.gbm import HuberObjective
from repro.serve.registry import (
    MODEL_BUNDLE_SCHEMA,
    ModelRegistry,
    RegistryError,
    read_bundle_file,
    write_bundle_file,
)

rng = np.random.default_rng(7)
X = rng.normal(size=(160, 5))
y = 2.0 * X[:, 0] + np.sin(X[:, 1]) + 0.05 * rng.normal(size=160)


#: Small fast-training config shared by the RTLTimer round-trip tests.
TINY_TIMER_CONFIG = RTLTimerConfig(
    bitwise=BitwiseConfig(n_estimators=10, max_depth=4, max_train_endpoints_per_design=40),
    signalwise=SignalwiseConfig(n_estimators=10, ranker_estimators=10),
    overall=OverallConfig(n_estimators=8),
)


@pytest.fixture(scope="module")
def tiny_timer(tiny_records):
    return RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:4])


# ---------------------------------------------------------------------------
# Estimator-level round trips (every estimator type, bit-identical)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "build",
    [
        lambda: DecisionTreeRegressor(max_depth=5).fit(X, y),
        lambda: DecisionTreeRegressor(splitter="exact", max_depth=4).fit(X, y),
        lambda: NewtonTreeRegressor(max_depth=4).fit(X, y),
        lambda: GradientBoostingRegressor(n_estimators=12, subsample=0.8).fit(X, y),
        lambda: GradientBoostingRegressor(
            n_estimators=8, objective=HuberObjective(delta=0.7), splitter="exact"
        ).fit(X, y),
    ],
    ids=["tree-hist", "tree-exact", "newton-tree", "gbm", "gbm-huber-exact"],
)
def test_regressor_state_roundtrip_bit_identical(build):
    model = build()
    restored = estimator_from_state(model.to_state())
    assert type(restored) is type(model)
    assert np.array_equal(model.predict(X), restored.predict(X))


def test_tree_state_restores_recursive_reference():
    """The rebuilt node tree predicts identically to the flat arrays."""
    model = DecisionTreeRegressor(max_depth=6).fit(X, y)
    restored = estimator_from_state(model.to_state())
    assert np.array_equal(restored.predict_recursive(X), model.predict(X))


def test_gbm_state_drops_training_objective_but_keeps_predictions():
    from repro.ml.losses import GroupedMaxSquaredError

    groups = np.arange(len(y)) // 4
    objective = GroupedMaxSquaredError(groups, np.maximum.reduceat(y, np.arange(0, len(y), 4)))
    model = GradientBoostingRegressor(n_estimators=6, objective=objective)
    model.fit(X, objective.row_targets())
    state = model.to_state()
    assert state["params"]["objective_descriptor"]["type"] == "GroupedMaxSquaredError"
    restored = GradientBoostingRegressor.from_state(state)
    assert np.array_equal(model.predict(X), restored.predict(X))


def test_lambdamart_state_roundtrip_bit_identical():
    relevance = (y > np.median(y)).astype(int) + (y > np.percentile(y, 80)).astype(int)
    queries = [f"q{i % 4}" for i in range(len(y))]
    model = LambdaMARTRanker(n_estimators=6).fit(X, relevance, queries)
    restored = estimator_from_state(model.to_state())
    assert np.array_equal(model.predict(X), restored.predict(X))
    assert np.array_equal(model.rank(X), restored.rank(X))


def test_mlp_state_roundtrip_bit_identical():
    model = MLPRegressor(hidden_sizes=(12,), epochs=6).fit(X, y)
    restored = estimator_from_state(model.to_state())
    assert np.array_equal(model.predict(X), restored.predict(X))


def test_transformer_state_roundtrip_bit_identical():
    sequences = [rng.normal(size=(int(n), 4)) for n in rng.integers(2, 6, size=48)]
    globals_ = rng.normal(size=(48, 3))
    targets = rng.normal(size=48)
    model = TransformerPathRegressor(epochs=3, d_model=8, d_ff=8, head_hidden=8)
    model.fit(sequences, globals_, targets)
    restored = estimator_from_state(model.to_state())
    assert np.array_equal(
        model.predict(sequences, globals_), restored.predict(sequences, globals_)
    )


def test_gnn_state_roundtrip_bit_identical():
    graph = GraphData(
        "g",
        rng.normal(size=(12, 4)),
        edge_src=[0, 1, 2, 3, 4],
        edge_dst=[5, 5, 6, 7, 7],
        endpoint_nodes=[8, 9],
        endpoint_targets=[1.0, 2.0],
    )
    model = GNNRegressor(epochs=4, hidden_size=8, n_layers=2).fit_graphs([graph])
    restored = estimator_from_state(model.to_state())
    assert np.array_equal(model.predict_graph(graph), restored.predict_graph(graph))


def test_scaler_state_roundtrips():
    for scaler, data in [(StandardScaler(), X), (MinMaxScaler(), X), (TargetScaler(), y)]:
        scaler.fit(data)
        restored = estimator_from_state(scaler.to_state())
        assert np.array_equal(scaler.transform(data), restored.transform(data))


def test_unfitted_estimator_has_no_state():
    with pytest.raises(RuntimeError, match="must be fitted"):
        GradientBoostingRegressor().to_state()


def test_unknown_estimator_state_rejected():
    with pytest.raises(ValueError, match="unknown estimator"):
        estimator_from_state({"estimator": "EvilModel", "params": {}, "fitted": {}})
    with pytest.raises(ValueError, match="state is for estimator"):
        MLPRegressor.from_state({"estimator": "GNNRegressor", "params": {}, "fitted": {}})


def test_config_state_roundtrip():
    config = RTLTimerConfig(
        bitwise=BitwiseConfig(n_estimators=17, variants=("sog", "aig"), mlp_hidden=(32, 16)),
        signalwise=SignalwiseConfig(relevance_levels=3),
    )
    assert config_from_state(config_to_state(config)) == config


# ---------------------------------------------------------------------------
# RTLTimer bundles and the registry
# ---------------------------------------------------------------------------


def test_rtltimer_state_roundtrip_bit_identical(tiny_timer, tiny_records):
    restored = RTLTimer.from_state(tiny_timer.to_state())
    held_out = tiny_records[4]
    original = tiny_timer.predict(held_out)
    reloaded = restored.predict(held_out)
    assert reloaded.bitwise_arrival == original.bitwise_arrival
    assert reloaded.signal_arrival == original.signal_arrival
    assert reloaded.signal_ranking == original.signal_ranking
    assert reloaded.signal_slack == original.signal_slack
    assert reloaded.rank_group == original.rank_group
    assert reloaded.overall == original.overall
    assert restored.config == tiny_timer.config
    assert restored.training_designs_ == tiny_timer.training_designs_


def test_bundle_file_roundtrip_and_tampering(tiny_timer, tiny_records, tmp_path):
    path = tmp_path / "model.bundle"
    bundle_id = tiny_timer.save(path)
    assert len(bundle_id) == 64
    loaded = RTLTimer.load(path)
    held_out = tiny_records[4]
    assert loaded.predict(held_out).overall == tiny_timer.predict(held_out).overall

    # Flip payload bytes: the content hash no longer matches -> rejected.
    bundle = pickle.loads(path.read_bytes())
    payload = bundle["payload"]
    bundle["payload"] = payload[:100] + bytes([payload[100] ^ 0xFF]) + payload[101:]
    path.write_bytes(pickle.dumps(bundle))
    with pytest.raises(RegistryError, match="corrupted bundle"):
        read_bundle_file(path)

    # Truncated garbage is rejected, not half-parsed.
    path.write_bytes(b"not a pickle at all")
    with pytest.raises(RegistryError, match="pickled bundle"):
        read_bundle_file(path)


def test_bundle_manifest_schema_checked(tiny_timer, tmp_path):
    path = tmp_path / "model.bundle"
    write_bundle_file(tiny_timer, path)
    bundle = pickle.loads(path.read_bytes())
    assert bundle["manifest"]["schema"] == MODEL_BUNDLE_SCHEMA

    del bundle["manifest"]["created_at"]
    path.write_bytes(pickle.dumps(bundle))
    with pytest.raises(RegistryError, match="missing the 'created_at'"):
        read_bundle_file(path)

    bundle["manifest"]["created_at"] = 0.0
    bundle["manifest"]["schema"] = "repro-model-bundle/999"
    path.write_bytes(pickle.dumps(bundle))
    with pytest.raises(RegistryError, match="unsupported bundle schema"):
        read_bundle_file(path)


def test_registry_versioning_and_resolution(tiny_timer, tiny_records, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    first = registry.save(tiny_timer, "tiny")

    # Identical content re-registered -> no new version.
    again = registry.save(tiny_timer, "tiny")
    assert again["bundle_id"] == first["bundle_id"]
    assert [v["version"] for v in registry.list_models()["tiny"]] == [1]

    # A genuinely different model becomes version 2 and the new latest.
    other = RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:3])
    second = registry.save(other, "tiny")
    assert second["bundle_id"] != first["bundle_id"]
    assert [v["version"] for v in registry.list_models()["tiny"]] == [1, 2]
    assert registry.resolve("tiny") == second["bundle_id"]
    assert registry.resolve("tiny@1") == first["bundle_id"]
    assert registry.resolve(first["bundle_id"]) == first["bundle_id"]

    held_out = tiny_records[4]
    assert registry.load("tiny@1").predict(held_out).overall == tiny_timer.predict(held_out).overall

    manifest = registry.manifest("tiny@1")
    assert manifest["training_designs"] == [r.name for r in tiny_records[:4]]

    with pytest.raises(RegistryError, match="no version 9"):
        registry.resolve("tiny@9")
    with pytest.raises(RegistryError, match="unknown model"):
        registry.resolve("never-registered")


def test_registry_rejects_reserved_name_characters(tiny_timer, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    for bad in ("", "a/b", ".hidden", "name@1"):
        with pytest.raises(ValueError, match="invalid model name"):
            registry.save(tiny_timer, bad)


def test_registry_save_repairs_missing_blob(tiny_timer, tmp_path):
    """A dedup'd save must restore a deleted/corrupt blob, not fail forever."""
    registry = ModelRegistry(tmp_path / "models")
    manifest = registry.save(tiny_timer, "tiny")
    registry.cache.path_for(manifest["bundle_id"]).unlink()
    with pytest.raises(RegistryError):
        registry.load("tiny")

    repaired = registry.save(tiny_timer, "tiny")
    assert repaired["bundle_id"] == manifest["bundle_id"]
    assert [v["version"] for v in registry.list_models()["tiny"]] == [1]
    assert registry.load("tiny").training_designs_ == tiny_timer.training_designs_


def test_registry_rejects_corrupted_stored_bundle(tiny_timer, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    manifest = registry.save(tiny_timer, "tiny")
    stored = registry.cache.path_for(manifest["bundle_id"])

    bundle = pickle.loads(stored.read_bytes())
    payload = bundle["payload"]
    bundle["payload"] = payload[:-1] + bytes([payload[-1] ^ 0x01])
    stored.write_bytes(pickle.dumps(bundle))
    with pytest.raises(RegistryError, match="corrupted bundle"):
        registry.load("tiny")

    # Unreadable pickle counts as missing (the cache deletes it) -> loud error.
    stored.write_bytes(b"\x80garbage")
    with pytest.raises(RegistryError, match="missing or unreadable"):
        registry.load("tiny")


# ---------------------------------------------------------------------------
# Dedup metadata, defensive copies, missing-ref errors
# ---------------------------------------------------------------------------


def test_registry_dedup_save_merges_new_metadata(tiny_timer, tmp_path):
    """A content-dedup'd save must not silently drop freshly supplied metadata."""
    registry = ModelRegistry(tmp_path / "models")
    first = registry.save(tiny_timer, "tiny", metadata={"run": 1})
    assert first["metadata"] == {"run": 1}

    merged = registry.save(tiny_timer, "tiny", metadata={"run": 2, "ticket": "A-7"})
    assert merged["bundle_id"] == first["bundle_id"]
    assert merged["metadata"] == {"run": 2, "ticket": "A-7"}
    # Persisted, not just returned: a fresh registry object sees the merge.
    stored = ModelRegistry(tmp_path / "models").manifest("tiny")
    assert stored["metadata"] == {"run": 2, "ticket": "A-7"}
    # No new version was minted for identical content.
    assert [v["version"] for v in registry.list_models()["tiny"]] == [1]


def test_list_models_returns_defensive_copies(tiny_timer, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    manifest = registry.save(tiny_timer, "tiny")
    listing = registry.list_models()
    listing["tiny"].clear()
    listing["tiny"].append({"bundle_id": "bogus", "version": 99})
    # The mutation above must not leak into what resolve() sees.
    assert registry.resolve("tiny") == manifest["bundle_id"]
    assert [v["version"] for v in registry.list_models()["tiny"]] == [1]


def test_resolve_names_missing_bundle_id(tiny_timer, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.save(tiny_timer, "tiny")
    missing = "0" * 64
    with pytest.raises(RegistryError, match=f"bundle {missing} is not present"):
        registry.resolve(missing)


# ---------------------------------------------------------------------------
# Promotion: the name@promoted deployment pointer
# ---------------------------------------------------------------------------


def test_promote_resolve_and_rollback(tiny_timer, tiny_records, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    first = registry.save(tiny_timer, "tiny")
    other = RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:3])
    second = registry.save(other, "tiny")

    # Nothing promoted yet: the alias is a loud error, not the latest version.
    assert registry.promoted("tiny") is None
    with pytest.raises(RegistryError, match="no promoted version"):
        registry.resolve("tiny@promoted")

    entry = registry.promote("tiny", "tiny@1", eval_digest="d1", source="test")
    assert entry["bundle_id"] == first["bundle_id"]
    assert entry["version"] == 1
    assert registry.resolve("tiny@promoted") == first["bundle_id"]
    # Latest-version resolution is unaffected by the deployment pointer.
    assert registry.resolve("tiny") == second["bundle_id"]

    registry.promote("tiny", "tiny@2", eval_digest="d2")
    assert registry.resolve("tiny@promoted") == second["bundle_id"]
    assert [e["eval_digest"] for e in registry.promotion_history("tiny")] == ["d1", "d2"]

    # Re-promoting the promoted bundle is idempotent: history does not grow.
    registry.promote("tiny", "tiny@2")
    assert len(registry.promotion_history("tiny")) == 2

    restored = registry.rollback("tiny")
    assert restored["bundle_id"] == first["bundle_id"]
    assert registry.resolve("tiny@promoted") == first["bundle_id"]
    with pytest.raises(RegistryError, match="no previous promotion"):
        registry.rollback("tiny")


def test_promote_requires_registered_servable_bundle(tiny_timer, tiny_records, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.save(tiny_timer, "tiny")
    other = RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:3])
    registry.save(other, "elsewhere")

    # A bundle registered under a *different* name is not promotable here.
    with pytest.raises(RegistryError, match="not a registered version of model 'tiny'"):
        registry.promote("tiny", "elsewhere")
    with pytest.raises(RegistryError, match="no promotion to roll back"):
        registry.rollback("never-promoted")


def test_rollback_refuses_missing_previous_blob(tiny_timer, tiny_records, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    first = registry.save(tiny_timer, "tiny")
    second = registry.save(RTLTimer(TINY_TIMER_CONFIG).fit(tiny_records[:3]), "tiny")
    registry.promote("tiny", "tiny@1")
    registry.promote("tiny", "tiny@2")
    registry.cache.path_for(first["bundle_id"]).unlink()
    with pytest.raises(RegistryError, match="missing from the store"):
        registry.rollback("tiny")
    # The pointer stayed on the servable bundle.
    assert registry.resolve("tiny@promoted") == second["bundle_id"]


# ---------------------------------------------------------------------------
# Concurrency: racing registrations and promotions must not lose state
# ---------------------------------------------------------------------------


class _StubTimer:
    """Minimal to_state()-able stand-in so race tests skip model fitting."""

    def __init__(self, tag: str):
        self.config = f"stub({tag})"
        self.training_designs_ = [tag]
        self._tag = tag

    def to_state(self):
        return {"stub": self._tag}


def _race_saver(directory, proc, count, barrier):
    import repro.runtime.report as report_mod_local  # noqa: F401 - import in child

    registry = ModelRegistry(directory)
    barrier.wait(timeout=30)
    for i in range(count):
        manifest = registry.save(_StubTimer(f"p{proc}-{i}"), "raced")
        registry.promote("raced", manifest["bundle_id"])


def test_concurrent_process_saves_lose_nothing(tmp_path):
    """Two flock'd processes registering+promoting under one dir keep every write."""
    import multiprocessing

    context = multiprocessing.get_context("fork")
    directory = tmp_path / "models"
    procs, per_proc = 2, 4
    barrier = context.Barrier(procs)
    workers = [
        context.Process(target=_race_saver, args=(directory, proc, per_proc, barrier))
        for proc in range(procs)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0

    registry = ModelRegistry(directory)
    versions = registry.list_models()["raced"]
    # Every distinct payload from every process made it into the index...
    assert len(versions) == procs * per_proc
    assert len({v["bundle_id"] for v in versions}) == procs * per_proc
    assert sorted(v["version"] for v in versions) == list(range(1, procs * per_proc + 1))
    # ...with its blob on disk, and the promoted alias points at one of them.
    for version in versions:
        assert registry.cache.path_for(version["bundle_id"]).exists()
    promoted = registry.promoted("raced")
    assert promoted is not None
    assert registry.cache.path_for(promoted["bundle_id"]).exists()
    history = registry.promotion_history("raced")
    assert len(history) == len({e["bundle_id"] for e in history})  # idempotent appends


def test_lockfree_fallback_keeps_index_consistent(tmp_path, monkeypatch):
    """Without flock (non-POSIX degradation) racing writers may lose updates,
    but the index must stay parseable and the promoted alias servable."""
    import threading

    import repro.serve.registry as registry_mod

    monkeypatch.setattr(registry_mod, "fcntl", None)
    directory = tmp_path / "models"
    threads_n, per_thread = 4, 6
    errors = []

    def writer(thread_id):
        registry = ModelRegistry(directory)
        try:
            for i in range(per_thread):
                manifest = registry.save(_StubTimer(f"t{thread_id}-{i}"), "raced")
                try:
                    registry.promote("raced", manifest["bundle_id"])
                except RegistryError:
                    # Documented degradation: a racing writer clobbered this
                    # registration, so the promote refuses loudly instead of
                    # pointing the alias at an unlisted bundle.
                    pass
        except Exception as exc:  # pragma: no cover - would fail the test
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,)) for t in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors

    registry = ModelRegistry(directory)
    index_versions = registry.list_models()["raced"]  # parseable, not half-written
    assert 1 <= len(index_versions) <= threads_n * per_thread
    for version in index_versions:
        assert registry.cache.path_for(version["bundle_id"]).exists()
        assert registry.resolve(version["bundle_id"]) == version["bundle_id"]
    promoted = registry.promoted("raced")
    assert promoted is not None
    assert registry.cache.path_for(promoted["bundle_id"]).exists()
