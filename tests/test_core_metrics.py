"""Tests for the evaluation metrics (R, R2, MAPE, COVR)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    criticality_groups,
    mape,
    pearson_r,
    r_squared,
    ranking_coverage,
    regression_metrics,
)


def test_perfect_prediction_metrics():
    y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    assert pearson_r(y, y) == pytest.approx(1.0)
    assert r_squared(y, y) == pytest.approx(1.0)
    assert mape(y, y) == pytest.approx(0.0)
    assert ranking_coverage(y, y) == pytest.approx(100.0)


def test_anticorrelated_prediction():
    y = np.array([1.0, 2.0, 3.0, 4.0])
    assert pearson_r(y, -y) == pytest.approx(-1.0)


def test_constant_prediction_has_zero_correlation():
    y = np.array([1.0, 2.0, 3.0])
    assert pearson_r(y, np.ones(3)) == 0.0


def test_r_squared_of_mean_prediction_is_zero():
    y = np.array([2.0, 4.0, 6.0])
    assert r_squared(y, np.full(3, y.mean())) == pytest.approx(0.0)


def test_mape_example():
    assert mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)


def test_mape_ignores_zero_labels():
    assert mape([0.0, 100.0], [5.0, 110.0]) == pytest.approx(10.0)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        pearson_r([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        ranking_coverage([1.0], [1.0, 2.0])


def test_criticality_groups_partition_all_items():
    values = np.arange(40.0)
    groups = criticality_groups(values)
    indices = np.concatenate(groups)
    assert sorted(indices.tolist()) == list(range(40))
    # Group 1 holds the largest (most critical) values.
    assert set(groups[0].tolist()) <= set(np.argsort(-values)[: len(groups[0])].tolist())


def test_criticality_group_sizes_follow_fractions():
    values = np.arange(100.0)
    groups = criticality_groups(values)
    assert len(groups[0]) == 5
    assert len(groups[1]) == 35
    assert len(groups[2]) == 30
    assert len(groups[3]) == 30


def test_ranking_coverage_degrades_with_shuffling():
    rng = np.random.default_rng(0)
    y = np.arange(200.0)
    noisy = y + rng.normal(scale=5.0, size=200)
    shuffled = rng.permutation(y)
    assert ranking_coverage(y, noisy) > ranking_coverage(y, shuffled)


def test_regression_metrics_bundle_keys():
    metrics = regression_metrics([1.0, 2.0, 3.0], [1.1, 2.1, 2.9])
    assert set(metrics) == {"r", "r2", "mape", "covr"}
@given(
    st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=3, max_size=50),
    st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=3, max_size=50),
)
def test_pearson_r_bounded(a, b):
    n = min(len(a), len(b))
    value = pearson_r(a[:n], b[:n])
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9
@given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=4, max_size=60))
def test_covr_is_percentage(values):
    rng = np.random.default_rng(1)
    predictions = rng.permutation(np.array(values))
    coverage = ranking_coverage(values, predictions)
    assert 0.0 <= coverage <= 100.0
@given(st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=3, max_size=30))
def test_r2_never_exceeds_one(values):
    labels = np.array(values)
    predictions = labels * 0.9 + 1.0
    assert r_squared(labels, predictions) <= 1.0 + 1e-9
