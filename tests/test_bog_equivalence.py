"""Functional equivalence: bit-blasting, variants and the word interpreter.

These are the strongest correctness tests of the front end: for random
stimulus, the next-state values computed by (a) the word-level interpreter,
(b) the SOG and (c) every derived variant must agree exactly.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bog.builder import bit_name, build_sog
from repro.bog.graph import VARIANT_OPERATORS
from repro.bog.simulate import evaluate_signal_words
from repro.bog.transforms import build_variants, convert
from repro.hdl.design import analyze
from repro.hdl.generate import DesignSpec, generate_design
from repro.hdl.interpret import Interpreter
from repro.hdl.parser import parse_source


def _random_stimulus(design, rng):
    values = {}
    for signal in design.inputs + design.register_signals:
        values[signal.name] = rng.getrandbits(signal.width)
    return values


def _source_bits(design, values):
    bits = {}
    for signal in design.inputs + design.register_signals:
        for i in range(signal.width):
            bits[bit_name(signal.name, i)] = (values[signal.name] >> i) & 1
    return bits


def _check_equivalence(design, n_vectors=4, seed=0):
    rng = random.Random(seed)
    interpreter = Interpreter(design)
    variants = build_variants(design)
    for _ in range(n_vectors):
        values = _random_stimulus(design, rng)
        reference = interpreter.evaluate_step(values)
        source_bits = _source_bits(design, values)
        for name, graph in variants.items():
            words = evaluate_signal_words(graph, source_bits)
            for register in design.register_signals:
                assert words[register.name] == reference[register.name], (
                    f"{name} mismatch on {register.name}"
                )


def test_simple_design_equivalence(simple_design):
    _check_equivalence(simple_design, n_vectors=8)


@pytest.mark.parametrize("family", ["itc99", "opencores", "chipyard", "vexriscv"])
def test_generated_design_equivalence(family):
    spec = DesignSpec(f"eq_{family}", family, "Verilog", 77, 6, 2, 3, 4, 2)
    design = analyze(parse_source(generate_design(spec)))
    _check_equivalence(design, n_vectors=3)


def test_variants_only_use_their_operator_alphabet(simple_design):
    variants = build_variants(simple_design)
    for name, graph in variants.items():
        allowed = VARIANT_OPERATORS[name]
        for node in graph.operator_nodes:
            assert node.type in allowed


def test_variants_share_endpoints(simple_design):
    variants = build_variants(simple_design)
    reference = {(e.name, e.signal, e.bit, e.kind) for e in variants["sog"].endpoints}
    for graph in variants.values():
        assert {(e.name, e.signal, e.bit, e.kind) for e in graph.endpoints} == reference


def test_aig_is_largest_sog_is_smallest(simple_design):
    variants = build_variants(simple_design)
    assert len(variants["aig"]) >= len(variants["aimg"]) >= len(variants["sog"])
    assert len(variants["aig"]) >= len(variants["xag"])


def test_convert_sog_returns_same_object(simple_design):
    sog = build_sog(simple_design)
    assert convert(sog, "sog") is sog


def test_convert_unknown_variant_rejected(simple_design):
    sog = build_sog(simple_design)
    with pytest.raises(ValueError):
        convert(sog, "bdd")
@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
    sel=st.integers(min_value=0, max_value=1),
)
def test_arithmetic_bitblasting_matches_python(a, b, sel):
    """Adders, comparators and muxes bit-blast to the correct arithmetic."""
    source = """
    module arith (clk, a, b, sel, q);
      input clk; input [7:0] a; input [7:0] b; input sel; output [7:0] q;
      reg [7:0] q;
      wire [7:0] total;
      wire lt;
      assign total = a + b;
      assign lt = a < b;
      always @(posedge clk) q <= sel ? total : (lt ? a : (a - b));
    endmodule
    """
    design = analyze(parse_source(source))
    sog = build_sog(design)
    bits = {}
    for i in range(8):
        bits[f"a[{i}]"] = (a >> i) & 1
        bits[f"b[{i}]"] = (b >> i) & 1
    bits["sel[0]"] = sel
    words = evaluate_signal_words(sog, bits)
    if sel:
        expected = (a + b) & 0xFF
    elif a < b:
        expected = a
    else:
        expected = (a - b) & 0xFF
    assert words["q"] == expected


def test_shift_and_rotate_bitblasting():
    source = """
    module shifty (clk, a, n, q);
      input clk; input [7:0] a; input [2:0] n; output [7:0] q;
      reg [7:0] q;
      always @(posedge clk) q <= (a << n) | (a >> 2);
    endmodule
    """
    design = analyze(parse_source(source))
    sog = build_sog(design)
    for a, n in [(0b10110101, 3), (0xFF, 7), (1, 0)]:
        bits = {f"a[{i}]": (a >> i) & 1 for i in range(8)}
        bits.update({f"n[{i}]": (n >> i) & 1 for i in range(3)})
        words = evaluate_signal_words(sog, bits)
        assert words["q"] == (((a << n) | (a >> 2)) & 0xFF)


def test_multiplier_bitblasting():
    source = """
    module mul (clk, a, b, q);
      input clk; input [3:0] a; input [3:0] b; output [3:0] q;
      reg [3:0] q;
      always @(posedge clk) q <= a * b;
    endmodule
    """
    design = analyze(parse_source(source))
    sog = build_sog(design)
    for a, b in [(3, 5), (15, 15), (0, 9), (7, 2)]:
        bits = {f"a[{i}]": (a >> i) & 1 for i in range(4)}
        bits.update({f"b[{i}]": (b >> i) & 1 for i in range(4)})
        assert evaluate_signal_words(sog, bits)["q"] == (a * b) & 0xF
