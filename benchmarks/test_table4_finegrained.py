"""Table 4 (upper part): fine-grained modelling accuracy and ablations.

Rows reproduced:

* bit-wise: RTL-Timer (tree + sampling + ensemble), tree w/o sampled paths,
  MLP, Transformer, customized GNN baseline,
* signal-wise: RTL-Timer regression, regression w/o bit-wise, LTR ranking and
  ranking w/o LTR (regression-derived ranking).
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.core.baselines import GNNBaselineConfig, GNNBitwiseBaseline
from repro.core.bitwise import BitwiseArrivalModel, BitwiseConfig
from repro.core.metrics import mape, pearson_r, ranking_coverage
from repro.core.signalwise import SignalwiseConfig, SignalwiseModel


def _bitwise_metrics(predictions_by_design, records):
    metrics = []
    for record in records:
        predicted = predictions_by_design[record.name]
        names = [n for n in record.endpoint_names if n in predicted]
        labels = [record.labels[n] for n in names]
        values = [predicted[n] for n in names]
        metrics.append(
            (
                pearson_r(labels, values),
                mape(labels, values),
                ranking_coverage(labels, values),
            )
        )
    return tuple(float(np.mean(column)) for column in zip(*metrics))


def _signal_metrics(records, arrivals_by_design, ranking_by_design=None):
    r_values, mape_values, covr_values = [], [], []
    for record in records:
        signal_labels = record.signal_labels()
        arrivals = arrivals_by_design[record.name]
        signals = [s for s in sorted(signal_labels) if s in arrivals]
        labels = [signal_labels[s] for s in signals]
        values = [arrivals[s] for s in signals]
        r_values.append(pearson_r(labels, values))
        mape_values.append(mape(labels, values))
        ranking = ranking_by_design[record.name] if ranking_by_design else arrivals
        covr_values.append(ranking_coverage(labels, [ranking[s] for s in signals]))
    return float(np.mean(r_values)), float(np.mean(mape_values)), float(np.mean(covr_values))


def test_table4_bitwise_and_signalwise(cv_results, comparison_split, benchmark):
    records = cv_results.records
    train, test = comparison_split

    rows = []

    # --- RTL-Timer bit-wise (full CV predictions) --------------------------------
    rtl_timer_bitwise = _bitwise_metrics(cv_results.bitwise, records)
    rows.append(["Bit-wise", "RTL-Timer (tree, ensemble)", *rtl_timer_bitwise])

    # --- Ablation: tree without sampled paths ------------------------------------
    no_sample = BitwiseArrivalModel(
        BitwiseConfig(n_estimators=40, max_depth=5, use_sampling=False,
                      max_train_endpoints_per_design=120, seed=7)
    ).fit(train)
    preds = {r.name: no_sample.predict(r) for r in test}
    rows.append(["Bit-wise", "Tree-based w/o sample", *_bitwise_metrics(preds, test)])

    # --- MLP ----------------------------------------------------------------------
    mlp = BitwiseArrivalModel(
        BitwiseConfig(model_type="mlp", variants=("sog",), ensemble=False,
                      mlp_hidden=(64, 64), mlp_epochs=120,
                      max_train_endpoints_per_design=100, seed=7)
    ).fit(train)
    preds = {r.name: mlp.predict(r) for r in test}
    rows.append(["Bit-wise", "MLP", *_bitwise_metrics(preds, test)])

    # --- Transformer ----------------------------------------------------------------
    transformer = BitwiseArrivalModel(
        BitwiseConfig(model_type="transformer", variants=("sog",), ensemble=False,
                      transformer_epochs=40, max_train_endpoints_per_design=80, seed=7)
    ).fit(train)
    preds = {r.name: transformer.predict(r) for r in test}
    rows.append(["Bit-wise", "Transformer", *_bitwise_metrics(preds, test)])

    # --- Customized GNN baseline ----------------------------------------------------
    gnn = GNNBitwiseBaseline(GNNBaselineConfig(epochs=60, hidden_size=32)).fit(train)
    preds = {r.name: gnn.predict(r) for r in test}
    rows.append(["Bit-wise", "Customized GNN", *_bitwise_metrics(preds, test)])

    # --- Signal-wise: RTL-Timer regression + LTR ranking (full CV) ------------------
    def signal_rows():
        regression = _signal_metrics(records, cv_results.signal_arrival)
        with_ltr = _signal_metrics(
            records, cv_results.signal_arrival, cv_results.signal_ranking
        )
        return regression, with_ltr

    regression, with_ltr = benchmark.pedantic(signal_rows, rounds=1, iterations=1)
    rows.append(["Signal-wise", "RTL-Timer (regression)", *regression])
    rows.append(["Signal-wise", "RTL-Timer (ranking, LTR)", regression[0], regression[1], with_ltr[2]])

    # --- Ablation: signal model without bit-wise predictions ------------------------
    no_bitwise = SignalwiseModel(SignalwiseConfig(use_bitwise=False, seed=7)).fit(train)
    arrivals = {r.name: no_bitwise.predict(r)["arrival"] for r in test}
    rankings = {r.name: no_bitwise.predict(r)["ranking"] for r in test}
    rows.append(["Signal-wise", "Regression w/o bit-wise", *_signal_metrics(test, arrivals)])
    rows.append(
        ["Signal-wise", "Ranking w/o bit-wise", *_signal_metrics(test, arrivals, rankings)]
    )

    print_table(
        "Table 4 (fine-grained): accuracy comparison and ablations",
        ["Granularity", "Method", "R", "MAPE (%)", "COVR (%)"],
        [[g, m, f"{r:.2f}", f"{e:.0f}", f"{c:.0f}"] for g, m, r, e, c in rows],
    )

    by_method = {row[1]: row for row in rows}
    rtl_r = by_method["RTL-Timer (tree, ensemble)"][2]
    # Shape assertions: RTL-Timer beats the GNN baseline and the no-sampling
    # ablation; LTR ranking beats regression-derived ranking coverage.
    assert rtl_r > by_method["Customized GNN"][2]
    assert rtl_r >= by_method["Tree-based w/o sample"][2] - 0.05
    assert by_method["RTL-Timer (ranking, LTR)"][4] >= by_method["RTL-Timer (regression)"][4] - 5.0
    assert by_method["RTL-Timer (regression)"][2] > by_method["Regression w/o bit-wise"][2] - 0.05
