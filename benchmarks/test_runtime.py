"""Section 4.5: runtime analysis.

The paper reports that RTL-Timer's whole evaluation costs a small fraction of
the default synthesis runtime (RTL processing ~4 %, inference < 0.1 s) and
that the option-driven optimization flow extends synthesis runtime by ~45 %.
This benchmark measures the same ratios on our substrate.
"""

import time

from benchmarks.conftest import FAST_CONFIG, print_table
from repro.core import RTLTimer
from repro.core.features import extract_path_dataset
from repro.core.optimize import options_from_ranking, ranking_from_labels
from repro.core.sampling import SamplingConfig
from repro.bog.transforms import build_variants
from repro.synth.flow import synthesize_bog
from repro.synth.optimizer import SynthesisOptions


def test_runtime_fractions(dataset_records, benchmark):
    # Train on a prefix of the suite, evaluate runtime on one mid-size design.
    train = dataset_records[:8]
    record = dataset_records[10]
    timer = RTLTimer(FAST_CONFIG).fit(train)

    # Default synthesis runtime (label flow).
    started = time.perf_counter()
    synthesize_bog(record.bogs["sog"], record.clock, SynthesisOptions(seed=3), seed=3)
    synthesis_runtime = time.perf_counter() - started

    # RTL processing runtime: representation construction + path sampling/features.
    started = time.perf_counter()
    build_variants(record.design)
    for variant in record.bogs:
        extract_path_dataset(record, variant, SamplingConfig())
    rtl_processing_runtime = time.perf_counter() - started

    # Model inference runtime.
    inference_runtime = benchmark.pedantic(
        lambda: timer.predict(record).runtime_seconds, rounds=1, iterations=1
    )

    # Optimization flow runtime overhead.
    ranking = ranking_from_labels(record)
    started = time.perf_counter()
    synthesize_bog(record.bogs["sog"], record.clock, options_from_ranking(ranking, seed=3), seed=3)
    optimized_runtime = time.perf_counter() - started

    rows = [
        ["default synthesis (s)", f"{synthesis_runtime:.2f}"],
        ["RTL processing (s)", f"{rtl_processing_runtime:.2f}"],
        ["model inference (s)", f"{inference_runtime:.2f}"],
        ["RTL-Timer total / synthesis", f"{(rtl_processing_runtime + inference_runtime) / synthesis_runtime:.2f}x"],
        ["optimized synthesis (s)", f"{optimized_runtime:.2f}"],
        ["optimization overhead", f"{(optimized_runtime / synthesis_runtime - 1.0) * 100.0:+.0f}%"],
    ]
    print_table("Section 4.5: runtime analysis (design " + record.name + ")", ["Quantity", "Value"], rows)

    # Shape: evaluation is cheap in absolute terms and the option-driven
    # synthesis flow costs more than the default flow.  (The paper's "4 % of
    # synthesis runtime" ratio does not transfer directly: our pure-Python
    # synthesis substrate is itself tiny on these scaled-down designs, so the
    # ratio is dominated by Python overhead rather than tool work.)
    assert inference_runtime < 5.0
    assert rtl_processing_runtime < 60.0
    assert optimized_runtime >= synthesis_runtime * 0.8
