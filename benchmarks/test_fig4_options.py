"""Fig. 4: effect of group_path / retime options on the arrival distribution."""

import numpy as np

from benchmarks.conftest import print_table
from repro.core.optimize import options_from_ranking, ranking_from_labels
from repro.synth.flow import synthesize_bog
from repro.synth.optimizer import SynthesisOptions


def _arrival_histogram(report, n_bins=8):
    arrivals = np.array([e.arrival for e in report.endpoints if e.kind == "register"])
    histogram, edges = np.histogram(arrivals, bins=n_bins)
    return histogram, edges, arrivals


def test_fig4_option_effect_on_distribution(dataset_records, benchmark):
    record = next(r for r in dataset_records if r.name == "b17")
    ranking = ranking_from_labels(record)
    clock = record.clock
    sog = record.bogs["sog"]

    flows = {
        "default": SynthesisOptions(seed=11),
        "w. group": options_from_ranking(ranking, retime_fraction=0.0, seed=11),
        "w. retime": SynthesisOptions(
            retime_signals=ranking[: max(1, len(ranking) // 20)], seed=11
        ),
        "w. retime+group": options_from_ranking(ranking, seed=11),
    }
    # retime-only flow: options_from_ranking with retime_fraction=0 still builds
    # groups; rebuild it without groups to isolate the effect.
    flows["w. group"].retime_signals = None

    results = {name: synthesize_bog(sog, clock, options, seed=11) for name, options in flows.items()}

    def series():
        out = {}
        for name, result in results.items():
            histogram, edges, arrivals = _arrival_histogram(result.report)
            out[name] = (histogram, edges, arrivals.max(), result.report.wns, result.report.tns)
        return out

    data = benchmark.pedantic(series, rounds=1, iterations=1)

    rows = []
    for name, (histogram, edges, max_arrival, wns, tns) in data.items():
        rows.append(
            [name, f"{max_arrival:.0f}", f"{wns:.1f}", f"{tns:.1f}", " ".join(str(v) for v in histogram)]
        )
    print_table(
        "Fig. 4: endpoint arrival-time distribution under optimization options (design b17)",
        ["Flow", "Max arrival", "WNS", "TNS", "Histogram (counts per bin)"],
        rows,
    )

    # Shape: the combined flow does not hurt TNS relative to default, and the
    # retiming-enabled flows do not degrade WNS.
    assert data["w. retime+group"][4] >= data["default"][4] - abs(data["default"][4]) * 0.25
    assert data["w. retime+group"][3] >= data["default"][3] - abs(data["default"][3]) * 0.25
