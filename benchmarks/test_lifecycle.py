"""Lifecycle benchmark: retrain → eval gate wall time in the trend artifact.

One eval-gated retrain cycle over benchmark-suite designs, instrumented so
the CI benchmark-trend artifact (``BENCH_runtime.json``) tracks the cost of
the online lifecycle per commit: ``lifecycle.ingest`` (dataset assembly,
fuzz-seed elaboration), ``lifecycle.retrain`` (the candidate fit) and
``lifecycle.eval`` (holdout scoring of candidate and promoted baseline).

The cycle's verdicts are asserted, not just timed — a bootstrap promotion
followed by a deliberately degraded candidate being rejected — so the trend
numbers can never come from a silently broken gate.
"""

from __future__ import annotations

from benchmarks.conftest import FAST_MODE, print_table
from repro.lifecycle import RetrainConfig, run_retrain
from repro.serve import ModelRegistry


def test_lifecycle_retrain_cycle(runtime_report, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    designs = 4 if FAST_MODE else 8
    estimators = 10 if FAST_MODE else 20

    first = run_retrain(
        RetrainConfig(
            name="bench",
            designs=designs,
            holdout=2,
            estimators=estimators,
            fast=True,
            report_out=str(tmp_path / "eval-bootstrap.json"),
        ),
        registry=registry,
        report=runtime_report,
    )
    assert first["promoted"], first["reasons"]

    degraded = run_retrain(
        RetrainConfig(
            name="bench",
            designs=1,
            holdout=2,
            estimators=1,
            fast=True,
            report_out=str(tmp_path / "eval-degraded.json"),
        ),
        registry=registry,
        report=runtime_report,
    )
    assert not degraded["promoted"], "the eval gate waved a degraded candidate through"
    assert registry.resolve("bench@promoted") == first["candidate"]["bundle_id"]

    rows = [
        [
            stage,
            f"{runtime_report.stage_seconds(stage):.3f}s",
            runtime_report.stage_calls.get(stage, 0),
        ]
        for stage in ("lifecycle.ingest", "lifecycle.retrain", "lifecycle.eval")
    ]
    print_table("Lifecycle retrain cycle", ["stage", "seconds", "calls"], rows)
    for stage in ("lifecycle.ingest", "lifecycle.retrain", "lifecycle.eval"):
        assert runtime_report.stage_seconds(stage) > 0.0
