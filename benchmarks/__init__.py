"""Experiment-reproduction benchmarks (one module per paper table/figure)."""
