"""Table 4 (lower part): overall design WNS / TNS prediction accuracy.

RTL-Timer (aggregating the fine-grained ensemble predictions) is compared
against an SNS-like baseline (design features only) and a MasterRTL-like
baseline (single SOG representation), using the same cross-design protocol.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.core.metrics import mape, pearson_r, r_squared
from repro.core.overall import OverallConfig, OverallTimingModel
from repro.ml.preprocessing import group_kfold


def _cv_overall(records, bitwise_predictions, feature_mode, n_folds=3):
    names = [record.name for record in records]
    wns_pred, wns_true, tns_pred, tns_true = [], [], [], []
    for train_idx, test_idx in group_kfold(names, n_splits=n_folds, seed=5):
        train = [records[i] for i in train_idx]
        test = [records[i] for i in test_idx]
        model = OverallTimingModel(OverallConfig(feature_mode=feature_mode, n_estimators=30))
        model.fit(train, bitwise_predictions)
        for record in test:
            predicted = model.predict(record, (bitwise_predictions or {}).get(record.name))
            wns_pred.append(predicted["wns"])
            tns_pred.append(predicted["tns"])
            wns_true.append(record.wns_label)
            tns_true.append(record.tns_label)
    return (np.array(wns_true), np.array(wns_pred)), (np.array(tns_true), np.array(tns_pred))


def _metrics(truth, prediction):
    return (
        pearson_r(truth, prediction),
        r_squared(truth, prediction),
        mape(truth, prediction),
    )


def test_table4_overall_wns_tns(cv_results, benchmark):
    records = cv_results.records

    def compute():
        results = {}
        for label, mode, preds in [
            ("RTL-Timer", "full", cv_results.bitwise),
            ("MasterRTL-like (SOG only)", "sog_only", None),
            ("SNS-like (design features)", "design_only", None),
        ]:
            wns, tns = _cv_overall(records, preds, mode)
            results[label] = (_metrics(*wns), _metrics(*tns))
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for metric_index, metric_name in [(0, "WNS"), (1, "TNS")]:
        for label, (wns_metrics, tns_metrics) in results.items():
            metrics = wns_metrics if metric_name == "WNS" else tns_metrics
            rows.append(
                [metric_name, label, f"{metrics[0]:.2f}", f"{metrics[1]:.2f}", f"{metrics[2]:.0f}"]
            )
    print_table(
        "Table 4 (overall): WNS / TNS prediction accuracy",
        ["Metric", "Method", "R", "R2", "MAPE (%)"],
        rows,
    )

    rtl_wns, rtl_tns = results["RTL-Timer"]
    sns_wns, sns_tns = results["SNS-like (design features)"]
    # Shape: RTL-Timer's fine-grained aggregation beats the design-feature-only
    # baseline on both metrics, and reaches a high TNS correlation.
    assert rtl_tns[0] > 0.7
    assert rtl_wns[0] > 0.5
    assert rtl_tns[0] >= sns_tns[0] - 0.05
    # WNS over only 21 designs is noisy; allow a wider band for the baseline gap.
    assert rtl_wns[0] >= sns_wns[0] - 0.12
