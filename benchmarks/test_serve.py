"""Serve-throughput benchmark: registry round-trip + batched service stages.

Measures the production path this repo's north star cares about — train
once, serve many — on the benchmark suite: a fitted RTL-Timer is registered
and reloaded through the model registry (bit-identity asserted), then a
:class:`~repro.serve.service.TimingService` answers a concurrent burst of
predict requests.  The service's ``serve.*`` stages (``serve.predict_batch``
wall time, ``serve.predict_p50`` request latency) and counters
(``serve_requests`` / ``serve_batches`` -> the derived ``serve_batch_size``)
are merged into the session report, so the CI benchmark-trend artifact
(``BENCH_runtime.json``) tracks serving throughput per commit next to the
training and incremental-engine stages.
"""

from __future__ import annotations

import threading

from benchmarks.conftest import FAST_CONFIG, print_table
from repro.core import RTLTimer
from repro.serve import ModelRegistry, ServeConfig, TimingService


def test_serve_throughput(dataset_records, runtime_report, tmp_path, benchmark):
    train = dataset_records[:8]
    serve_set = dataset_records[8:16]

    with runtime_report.stage("serve.train"):
        timer = RTLTimer(FAST_CONFIG).fit(train)

    # Registry round-trip: what the service loads is bit-identical to the
    # freshly fitted model.
    registry = ModelRegistry(tmp_path / "models")
    registry.save(timer, "bench")
    served_timer = registry.load("bench")
    reference = timer.predict(serve_set[0])
    reloaded = served_timer.predict(serve_set[0])
    assert reloaded.overall == reference.overall
    assert reloaded.signal_ranking == reference.signal_ranking

    service = TimingService(
        served_timer,
        ServeConfig(max_batch=8, batch_window_s=0.01),
        report=runtime_report,
    )
    try:
        requests = serve_set * 2  # 16 requests over 8 designs
        results = [None] * len(requests)
        barrier = threading.Barrier(len(requests))

        def run(index):
            barrier.wait()
            results[index] = service.predict(requests[index])

        def burst():
            barrier.reset()
            threads = [
                threading.Thread(target=run, args=(index,)) for index in range(len(requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        benchmark.pedantic(burst, rounds=1, iterations=1)

        # Served results match serial inference (spot-check one design).
        serial = served_timer.predict(serve_set[0])
        assert results[0].overall == serial.overall
        assert results[0].signal_slack == serial.signal_slack

        requests_count = runtime_report.counters.get("serve_requests", 0)
        batches = runtime_report.counters.get("serve_batches", 0)
        assert requests_count >= len(requests)
        assert batches < requests_count, "micro-batching never fused a request"

        metrics = service.metrics()["serving"]
        rows = [
            ["requests", requests_count],
            ["model passes (batches)", batches],
            ["mean batch size", f"{metrics['batch_size']:.2f}"],
            ["predict p50 (s)", f"{metrics['predict_p50']:.4f}"],
            ["predict p95 (s)", f"{metrics['predict_p95']:.4f}"],
        ]
        print_table("Serve throughput (batched TimingService)", ["Quantity", "Value"], rows)
    finally:
        service.close()

    # Fold the latency percentiles into the session report: BENCH_runtime.json
    # gains serve.predict_p50 next to serve.predict_batch / serve.save_model.
    serve_report = service.runtime_report()
    runtime_report.stages.setdefault(
        "serve.predict_p50", serve_report.stages.get("serve.predict_p50", 0.0)
    )
    assert "serve.predict_batch" in runtime_report.stages
    assert "serve.save_model" in runtime_report.stages
    assert "serve.load_model" in runtime_report.stages
