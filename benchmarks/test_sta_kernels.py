"""Array timing-kernel benchmarks (``sta.*`` / ``bog.*`` BENCH stages).

Measures the compiled-kernel claims of the array-native timing core on the
real benchmark suite and records them into ``BENCH_runtime.json`` for the
CI trend and perf-smoke jobs:

1. the array level-sweep STA kernel is bit-identical to the per-vertex
   reference kernel on every suite design (the exhaustive property tests
   live in ``tests/test_sta_kernels.py``; the fuzz campaign extends this to
   random RTL),
2. on the largest suite design the array kernel beats the reference by at
   least 5x end to end (``sta.analyze_array`` vs ``sta.analyze_reference``),
   with compilation (``sta.levelize``) amortized across analyses,
3. uint64 bit-packed batch simulation beats the scalar evaluator by at
   least 20x per stimulus vector (``bog.simulate_packed`` vs
   ``bog.simulate_scalar``) while agreeing lane for lane.
"""

from __future__ import annotations

import gc
import random
import time

import numpy as np

from benchmarks.conftest import print_table
from repro.bog.simulate import (
    PACKED_LANES,
    evaluate_nodes,
    evaluate_nodes_packed,
    pack_source_vectors,
    unpack_lane,
)
from repro.runtime import activate
from repro.sta.engine import analyze


def _by_gate_count(records):
    return sorted(records, key=lambda r: r.synthesis.netlist.gate_count())


def _best_of(fn, rounds: int) -> float:
    # Pause the cyclic GC while timing: in a full-suite run the live heap is
    # large, and allocation-triggered gen2 collections otherwise tax the
    # kernels by whatever the rest of the session left alive.  Callers run
    # ``gc.collect()`` once up front, *outside* the report stages, so the
    # recorded stage times stay clean for the CI trend guard.
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def test_array_kernel_bit_identical_across_suite(dataset_records, runtime_report):
    """Array and reference STA agree bit for bit on every suite design."""
    with activate(runtime_report), runtime_report.stage("sta.kernel_equivalence"):
        for record in dataset_records:
            network = record.synthesis.netlist
            array = analyze(network, record.clock, kernel="array")
            reference = analyze(network, record.clock, kernel="reference")
            assert np.array_equal(array.loads, reference.loads), record.name
            assert np.array_equal(array.arrivals, reference.arrivals), record.name
            assert np.array_equal(array.slews, reference.slews), record.name
            assert array.wns == reference.wns and array.tns == reference.tns, record.name
    assert len(dataset_records) == 21


def test_array_kernel_speedup_on_largest_design(
    dataset_records, runtime_report, benchmark
):
    """Acceptance: the array kernel is >= 5x the reference on the largest design."""
    record = _by_gate_count(dataset_records)[-1]
    network = record.synthesis.netlist
    gc.collect()

    with activate(runtime_report):
        network.invalidate()
        with runtime_report.stage("sta.levelize"):
            compiled = network.compiled()

        with runtime_report.stage("sta.analyze_array"):
            array_seconds = benchmark.pedantic(
                lambda: _best_of(
                    lambda: analyze(network, record.clock, kernel="array"), rounds=7
                ),
                rounds=1,
                iterations=1,
            )
        with runtime_report.stage("sta.analyze_reference"):
            reference_seconds = _best_of(
                lambda: analyze(network, record.clock, kernel="reference"), rounds=3
            )

    speedup = reference_seconds / max(array_seconds, 1e-9)
    runtime_report.meta["sta_kernel_design"] = record.name
    print_table(
        f"Array vs reference STA kernel ({record.name})",
        ["Quantity", "Value"],
        [
            ["vertices", len(network.vertices)],
            ["levels", compiled.n_levels],
            ["levelize+compile (ms)", f"{runtime_report.stages.get('sta.levelize', 0.0) * 1e3:.1f}"],
            ["analyze, array kernel (ms)", f"{array_seconds * 1e3:.2f}"],
            ["analyze, reference kernel (ms)", f"{reference_seconds * 1e3:.2f}"],
            ["speedup", f"{speedup:.1f}x"],
        ],
    )
    assert speedup >= 5.0, f"array kernel only {speedup:.1f}x faster than reference"


def test_packed_simulation_speedup(dataset_records, runtime_report):
    """Acceptance: packed simulation is >= 20x per vector vs the scalar loop."""
    record = max(
        dataset_records, key=lambda r: len(r.bogs["sog"].nodes)
    )
    sog = record.bogs["sog"]
    names = list(sog.sources)
    rng = random.Random(1234)
    vectors = [
        {name: rng.getrandbits(1) for name in names} for _ in range(PACKED_LANES)
    ]
    packed_sources = pack_source_vectors(vectors)
    evaluate_nodes_packed(sog, packed_sources)  # warm up before timing
    gc.collect()

    with activate(runtime_report):
        with runtime_report.stage("bog.simulate_packed"):
            packed_seconds = _best_of(
                lambda: evaluate_nodes_packed(sog, packed_sources), rounds=9
            )
        n_scalar = 4
        with runtime_report.stage("bog.simulate_scalar"):
            scalar_seconds = _best_of(
                lambda: [evaluate_nodes(sog, vector) for vector in vectors[:n_scalar]],
                rounds=3,
            )

    packed_values = evaluate_nodes_packed(sog, packed_sources)
    for lane in (0, 17, PACKED_LANES - 1):
        assert unpack_lane(packed_values, lane) == evaluate_nodes(sog, vectors[lane])

    per_vector_packed = packed_seconds / PACKED_LANES
    per_vector_scalar = scalar_seconds / n_scalar
    speedup = per_vector_scalar / max(per_vector_packed, 1e-12)
    runtime_report.meta["packed_sim_design"] = record.name
    print_table(
        f"Packed vs scalar BOG simulation ({record.name})",
        ["Quantity", "Value"],
        [
            ["sog nodes", len(sog.nodes)],
            ["packed, 64 vectors (ms)", f"{packed_seconds * 1e3:.2f}"],
            ["scalar, per vector (ms)", f"{per_vector_scalar * 1e3:.2f}"],
            ["per-vector speedup", f"{speedup:.0f}x"],
        ],
    )
    assert speedup >= 20.0, f"packed kernel only {speedup:.0f}x per vector"
