"""Shared fixtures for the experiment-reproduction benchmarks.

The heavy work (building the 21-design dataset and running cross-design
cross-validation of the full RTL-Timer stack) happens once per session in
these fixtures; the individual benchmark files then assemble the tables and
figures of the paper from the cached results and only time the inexpensive
inference / analysis step with pytest-benchmark.

The dataset fixture goes through the :mod:`repro.runtime` engine: records
are loaded from the content-addressed artifact cache when possible and the
misses are elaborated in parallel (``REPRO_JOBS`` controls the fan-out,
``REPRO_CACHE=0`` forces a rebuild).  Everything is instrumented into a
session-wide :class:`~repro.runtime.report.RuntimeReport` which is written
to ``BENCH_runtime.json`` (``REPRO_BENCH_OUT`` overrides the path) when the
session ends — the CI benchmark-trend job uploads that file as a build
artifact on every commit.

Scale note: model sizes and the number of CV folds are reduced relative to
the paper (3 folds instead of 10, smaller boosted ensembles) so the whole
harness runs in minutes on a laptop; setting ``REPRO_BENCH_FAST=1`` (the CI
benchmark job does) shrinks them further for trend tracking rather than
paper-grade numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.core import (
    BitwiseConfig,
    OverallConfig,
    RTLTimer,
    RTLTimerConfig,
    SignalwiseConfig,
    build_dataset,
    feature_cache_enabled,
)
from repro.core.dataset import DesignRecord
from repro.hdl.generate import BENCHMARK_SPECS
from repro.ml.preprocessing import group_kfold
from repro.ml.tree import resolve_max_bins
from repro.runtime import RuntimeReport, activate, resolve_jobs, write_bench_report

#: CI benchmark-trend mode: smaller models, fewer folds, same pipeline shape.
FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Number of cross-validation folds (the paper uses 10; 3 keeps runtime low).
N_FOLDS = 2 if FAST_MODE else 3

FAST_CONFIG = RTLTimerConfig(
    bitwise=BitwiseConfig(
        n_estimators=20 if FAST_MODE else 40,
        max_depth=5,
        max_train_endpoints_per_design=80 if FAST_MODE else 120,
        seed=7,
    ),
    signalwise=SignalwiseConfig(
        n_estimators=20 if FAST_MODE else 40,
        ranker_estimators=30 if FAST_MODE else 60,
        seed=7,
    ),
    overall=OverallConfig(n_estimators=15 if FAST_MODE else 30, seed=7),
)


@dataclass
class CVResults:
    """Cross-validated predictions of the full RTL-Timer stack."""

    records: List[DesignRecord]
    bitwise: Dict[str, Dict[str, float]] = field(default_factory=dict)
    signal_arrival: Dict[str, Dict[str, float]] = field(default_factory=dict)
    signal_ranking: Dict[str, Dict[str, float]] = field(default_factory=dict)
    overall: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fold_of: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str) -> DesignRecord:
        return next(r for r in self.records if r.name == name)


@pytest.fixture(scope="session")
def runtime_report():
    """Session-wide instrumentation, flushed to BENCH_runtime.json at exit."""
    report = RuntimeReport(
        meta={
            "suite": "benchmarks",
            "fast_mode": FAST_MODE,
            "n_folds": N_FOLDS,
            "jobs": resolve_jobs(len(BENCHMARK_SPECS)),
            "gbm_splitter": FAST_CONFIG.bitwise.splitter,
            "gbm_max_bins": resolve_max_bins(FAST_CONFIG.bitwise.max_bins),
            "feature_cache": feature_cache_enabled(),
        }
    )
    yield report
    write_bench_report(report)


@pytest.fixture(autouse=True)
def activated_report(runtime_report):
    """Collect module-level stage instrumentation (``ml.*``, ``features.*``)
    into the session report for every benchmark test, not only the CV fixture,
    so the CI benchmark-trend job sees the model-stack stages too.

    Every model-invoking benchmark runs a fixed ``pedantic(rounds=1)``
    workload (the auto-calibrated ``benchmark()`` loops wrap pure metric
    assembly), so these stage totals stay comparable across runs."""
    with activate(runtime_report):
        yield runtime_report


@pytest.fixture(scope="session")
def dataset_records(runtime_report) -> List[DesignRecord]:
    """The 21-design benchmark suite with labels (Table 3)."""
    return build_dataset(BENCHMARK_SPECS, report=runtime_report)


@pytest.fixture(scope="session")
def cv_results(dataset_records, runtime_report) -> CVResults:
    """Cross-design CV predictions for every design in the suite."""
    names = [record.name for record in dataset_records]
    results = CVResults(records=dataset_records)
    extract_calls_before = runtime_report.stage_calls.get(
        "features.extract_path_dataset", 0
    )

    with activate(runtime_report), runtime_report.stage("benchmarks.cross_validation"):
        for fold, (train_idx, test_idx) in enumerate(
            group_kfold(names, n_splits=N_FOLDS, seed=3)
        ):
            train_records = [dataset_records[i] for i in train_idx]
            test_records = [dataset_records[i] for i in test_idx]
            with runtime_report.stage("benchmarks.cv_fit"):
                timer = RTLTimer(FAST_CONFIG).fit(train_records)
            batch = timer.predict_batch(test_records, report=runtime_report)
            for record, prediction in zip(test_records, batch):
                results.bitwise[record.name] = prediction.bitwise_arrival
                results.signal_arrival[record.name] = prediction.signal_arrival
                results.signal_ranking[record.name] = prediction.signal_ranking
                results.overall[record.name] = prediction.overall
                results.fold_of[record.name] = fold

    if feature_cache_enabled():
        # The path-feature cache must collapse per-fold re-extraction: across
        # all folds there are at most two distinct extractions per (design,
        # variant) — the endpoint-subsampled training extraction and the
        # full-sampling prediction extraction — plus one unsampled reference
        # per design, regardless of the number of folds.
        extract_calls = (
            runtime_report.stage_calls.get("features.extract_path_dataset", 0)
            - extract_calls_before
        )
        n_variants = len(FAST_CONFIG.bitwise.variants)
        assert extract_calls <= len(dataset_records) * (2 * n_variants + 1), (
            f"feature cache failed to collapse CV re-extraction: {extract_calls} calls"
        )
        assert runtime_report.stage_calls.get("features.cache_hit", 0) > 0
    return results


@pytest.fixture(scope="session")
def comparison_split(dataset_records):
    """A single train/test split used by the model-comparison rows of Table 4.

    Smaller than the full CV so that the expensive alternative models (MLP,
    transformer, GNN) stay affordable.
    """
    train = dataset_records[:10]
    test = dataset_records[10:14]
    return train, test


def print_table(title: str, header: List[str], rows: List[List]) -> None:
    """Render a small aligned text table to stdout (captured with -s)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
