"""Table 6: synthesis optimization guided by predicted vs ground-truth ranking.

Every design is synthesized twice — default flow vs ``group_path`` + ``retime``
options derived from the signal criticality ranking — once with RTL-Timer's
cross-validated predicted ranking and once with the ground-truth ranking.
The table reports the percentage change of WNS, TNS, power and area
(negative WNS/TNS change = timing improvement), plus the Avg1/Avg2 rows.
"""


from benchmarks.conftest import print_table
from repro.core.optimize import (
    ranking_from_labels,
    run_optimization_experiment,
    summarize_outcomes,
)


def test_table6_optimization(cv_results, benchmark):
    records = cv_results.records

    predicted_outcomes = []
    real_outcomes = []
    for record in records:
        ranking_scores = cv_results.signal_ranking[record.name]
        predicted_ranking = sorted(ranking_scores, key=lambda s: -ranking_scores[s])
        predicted_outcomes.append(
            run_optimization_experiment(record, predicted_ranking, "predicted")
        )
        real_outcomes.append(
            run_optimization_experiment(record, ranking_from_labels(record), "real")
        )

    def summarize():
        return summarize_outcomes(predicted_outcomes), summarize_outcomes(real_outcomes)

    predicted_summary, real_summary = benchmark.pedantic(summarize, rounds=1, iterations=1)

    rows = []
    for predicted, real in zip(predicted_outcomes, real_outcomes):
        rows.append(
            [
                predicted.design,
                f"{predicted.wns_change_pct:+.1f}",
                f"{predicted.tns_change_pct:+.1f}",
                f"{predicted.power_change_pct:+.1f}",
                f"{predicted.area_change_pct:+.1f}",
                f"{real.wns_change_pct:+.1f}",
                f"{real.tns_change_pct:+.1f}",
            ]
        )
    rows.append(
        [
            "Avg1",
            f"{predicted_summary['avg1_wns_pct']:+.1f}",
            f"{predicted_summary['avg1_tns_pct']:+.1f}",
            f"{predicted_summary['avg1_power_pct']:+.1f}",
            f"{predicted_summary['avg1_area_pct']:+.1f}",
            f"{real_summary['avg1_wns_pct']:+.1f}",
            f"{real_summary['avg1_tns_pct']:+.1f}",
        ]
    )
    rows.append(
        [
            "Avg2",
            f"{predicted_summary['avg2_wns_pct']:+.1f}",
            f"{predicted_summary['avg2_tns_pct']:+.1f}",
            f"{predicted_summary['avg2_power_pct']:+.1f}",
            f"{predicted_summary['avg2_area_pct']:+.1f}",
            f"{real_summary['avg2_wns_pct']:+.1f}",
            f"{real_summary['avg2_tns_pct']:+.1f}",
        ]
    )
    print_table(
        "Table 6: optimization with predicted vs ground-truth ranking (% change)",
        ["Design", "WNS(pred)", "TNS(pred)", "Pwr(pred)", "Area(pred)", "WNS(real)", "TNS(real)"],
        rows,
    )

    # Shape assertions: on average the prediction-driven flow improves timing
    # (negative change), and it is comparable to using the ground-truth ranking.
    assert predicted_summary["avg2_tns_pct"] <= 0.0
    assert predicted_summary["avg2_wns_pct"] <= 0.0
    assert predicted_summary["avg2_tns_pct"] <= real_summary["avg2_tns_pct"] + 10.0
    # Power and area stay roughly neutral (well under the timing gains).
    assert abs(predicted_summary["avg2_area_pct"]) < 25.0
