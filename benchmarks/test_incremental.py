"""Incremental what-if engine benchmarks (`incremental.*` BENCH stages).

Three claims are measured on the real benchmark suite and recorded into
``BENCH_runtime.json`` for the CI trend job:

1. dirty-cone re-timing agrees with a full ``sta.engine.analyze`` re-run on
   a patched suite netlist (spot equivalence; the exhaustive property test
   lives in ``tests/test_incremental.py``),
2. a 16-candidate what-if sweep is measurably faster than 16 full
   re-syntheses of the same candidates — the speedup that makes
   multi-candidate optimization search affordable,
3. the sweep produces an extended Table 6 row (estimates + chosen
   candidate) whose full synthesis result is comparable to the classic
   single-candidate protocol.
"""

from __future__ import annotations

import random
import time

import numpy as np

from benchmarks.conftest import FAST_MODE, print_table
from repro.core.optimize import (
    generate_candidates,
    ranking_from_labels,
    run_optimization_sweep,
)
from repro.incremental import IncrementalSTA, SetDerate, SwapCell
from repro.incremental.whatif import evaluate_candidates
from repro.runtime import activate
from repro.runtime.report import FULL_RESYNTHESIS_STAGE, WHATIF_SWEEP_STAGE
from repro.sta.engine import analyze
from repro.sta.network import VertexKind
from repro.synth.flow import synthesize_bog


def _by_gate_count(records):
    return sorted(records, key=lambda r: r.synthesis.netlist.gate_count())


def test_incremental_matches_full_sta_on_suite(dataset_records, runtime_report):
    """Dirty-cone re-timing equals a full re-analysis on a real suite design."""
    record = _by_gate_count(dataset_records)[len(dataset_records) // 2]
    network = record.synthesis.netlist
    engine = IncrementalSTA(network, record.clock, baseline=record.synthesis.report)
    rng = random.Random(42)
    gates = [v.id for v in network.vertices if v.kind is VertexKind.GATE]

    with activate(runtime_report):
        for _ in range(5):
            patches = [SetDerate(rng.choice(gates), rng.uniform(0.5, 1.5)) for _ in range(4)]
            for _ in range(4):
                vertex = rng.choice(gates)
                cell = network.vertices[vertex].cell
                stronger = network.library.upsize(cell)
                if stronger is not None:
                    patches.append(SwapCell(vertex, stronger))
            with engine.what_if(patches) as incremental:
                with runtime_report.stage("incremental.full_reanalysis"):
                    full = analyze(network, record.clock)
                np.testing.assert_allclose(
                    incremental.arrivals, full.arrivals, atol=1e-9, rtol=0
                )
                assert abs(incremental.wns - full.wns) <= 1e-9
                assert abs(incremental.tns - full.tns) <= 1e-9
            stats = engine.last_stats
            assert stats is not None and stats.cone_fraction <= 1.0


def test_incremental_whatif_sweep_vs_full_resynthesis(
    dataset_records, runtime_report, benchmark
):
    """Acceptance: 16 what-if candidates beat 16 full re-syntheses outright."""
    ordered = _by_gate_count(dataset_records)
    # Mid-size design in CI fast mode, a large one for paper-grade numbers.
    record = ordered[len(ordered) // 2] if FAST_MODE else ordered[-3]
    ranked = ranking_from_labels(record)
    candidates = generate_candidates(ranked, k=16)

    with activate(runtime_report):
        started = time.perf_counter()
        with runtime_report.stage(WHATIF_SWEEP_STAGE):
            estimates = benchmark.pedantic(
                lambda: evaluate_candidates(record, candidates), rounds=1, iterations=1
            )
        whatif_seconds = time.perf_counter() - started

        started = time.perf_counter()
        with runtime_report.stage(FULL_RESYNTHESIS_STAGE):
            full_results = [
                synthesize_bog(record.bogs["sog"], record.clock, options, seed=7)
                for options in candidates
            ]
        full_seconds = time.perf_counter() - started

    # The speedup itself lands in the report's derived metrics
    # (``incremental_whatif_speedup``), computed from the two stages above.
    runtime_report.meta["incremental_whatif_design"] = record.name

    rows = [
        ["what-if sweep, 16 candidates (s)", f"{whatif_seconds:.3f}"],
        ["full re-synthesis, 16 candidates (s)", f"{full_seconds:.3f}"],
        ["speedup", f"{full_seconds / max(whatif_seconds, 1e-9):.1f}x"],
        ["mean cone fraction", f"{np.mean([e.stats.cone_fraction for e in estimates if e.stats]):.3f}"],
    ]
    print_table(
        f"Incremental what-if vs full re-synthesis ({record.name})",
        ["Quantity", "Value"],
        rows,
    )

    assert len(estimates) == len(full_results) == 16
    # "Measurably faster": at least 2x, in practice orders of magnitude.
    assert whatif_seconds * 2.0 < full_seconds


def test_incremental_sweep_extended_table6_rows(dataset_records, runtime_report):
    """Extended Table 6: multi-candidate sweep rows with projected timing."""
    ordered = _by_gate_count(dataset_records)
    sample = ordered[1:3] if FAST_MODE else ordered[2:5]
    k = 8

    rows = []
    with activate(runtime_report), runtime_report.stage("incremental.sweep_table6"):
        for record in sample:
            outcome = run_optimization_sweep(
                record, ranking_from_labels(record), k=k, ranking_source="real"
            )
            chosen = outcome.candidates[outcome.chosen_index]
            rows.append(
                [
                    outcome.design,
                    f"{outcome.wns_change_pct:+.1f}",
                    f"{outcome.tns_change_pct:+.1f}",
                    f"{outcome.power_change_pct:+.1f}",
                    f"{outcome.area_change_pct:+.1f}",
                    outcome.chosen_index,
                    f"{chosen.tns:.0f}",
                ]
            )
            assert outcome.n_candidates == k
            assert outcome.options is chosen.options

    print_table(
        f"Extended Table 6: {k}-candidate sweep (ground-truth ranking)",
        ["Design", "WNS%", "TNS%", "Pwr%", "Area%", "Chosen", "Est.TNS"],
        rows,
    )
