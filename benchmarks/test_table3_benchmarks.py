"""Table 3: benchmark suite summary (designs, sizes, endpoints, HDL family)."""

from collections import defaultdict

from benchmarks.conftest import print_table
from repro.core.dataset import dataset_summary
from repro.hdl.generate import BENCHMARK_SPECS


def test_table3_benchmark_summary(dataset_records, benchmark):
    spec_by_name = {spec.name: spec for spec in BENCHMARK_SPECS}

    def compute():
        per_suite = defaultdict(lambda: {"designs": 0, "gates": [], "endpoints": [], "hdl": ""})
        for row in dataset_summary(dataset_records):
            spec = spec_by_name[row["name"]]
            suite = {
                "itc99": "ITC'99",
                "opencores": "OpenCores",
                "chipyard": "Chipyard",
                "vexriscv": "VexRiscv",
            }[spec.family]
            entry = per_suite[suite]
            entry["designs"] += 1
            entry["gates"].append(row["n_gates"])
            entry["endpoints"].append(row["n_endpoints"])
            entry["hdl"] = spec.hdl_type
        return per_suite

    per_suite = benchmark(compute)
    rows = []
    for suite, entry in sorted(per_suite.items()):
        rows.append(
            [
                suite,
                entry["designs"],
                f"{min(entry['gates']):.0f} - {max(entry['gates']):.0f}",
                f"{min(entry['endpoints']):.0f} - {max(entry['endpoints']):.0f}",
                entry["hdl"],
            ]
        )
    print_table(
        "Table 3: benchmark design information (scaled-down synthetic suite)",
        ["Suite", "#Designs", "Gates", "Endpoints", "HDL"],
        rows,
    )
    assert sum(entry["designs"] for entry in per_suite.values()) == 21
    assert set(per_suite) == {"ITC'99", "OpenCores", "Chipyard", "VexRiscv"}
