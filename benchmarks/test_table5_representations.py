"""Table 5: the four BOG representation variants and the ensemble effect.

For every variant a single-representation bit-wise model is trained and
evaluated across the test designs; the ensemble row fuses all four.  The
paper's headline claim is that the ensemble both improves the mean
correlation and (especially) shrinks the cross-design standard deviation.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.bog.graph import BOG_VARIANTS
from repro.core.bitwise import BitwiseArrivalModel, BitwiseConfig
from repro.core.metrics import pearson_r, ranking_coverage


def _per_design_metrics(model, records):
    r_values, covr_values = [], []
    for record in records:
        predicted = model.predict(record)
        names = [n for n in record.endpoint_names if n in predicted]
        labels = [record.labels[n] for n in names]
        values = [predicted[n] for n in names]
        r_values.append(pearson_r(labels, values))
        covr_values.append(ranking_coverage(labels, values))
    return np.array(r_values), np.array(covr_values)


def test_table5_variants_and_ensemble(comparison_split, benchmark):
    train, test = comparison_split
    rows = []
    results = {}

    for variant in BOG_VARIANTS:
        model = BitwiseArrivalModel(
            BitwiseConfig(
                variants=(variant,),
                ensemble=False,
                n_estimators=40,
                max_depth=5,
                max_train_endpoints_per_design=120,
                seed=7,
            )
        ).fit(train)
        r_values, covr_values = _per_design_metrics(model, test)
        results[variant] = (r_values, covr_values)
        rows.append(
            [
                variant.upper(),
                f"{r_values.mean():.2f}",
                f"{r_values.std():.2f}",
                f"{covr_values.mean():.0f}",
                f"{covr_values.std():.0f}",
            ]
        )

    ensemble_model = BitwiseArrivalModel(
        BitwiseConfig(
            variants=BOG_VARIANTS,
            ensemble=True,
            n_estimators=40,
            max_depth=5,
            max_train_endpoints_per_design=120,
            seed=7,
        )
    ).fit(train)

    def evaluate_ensemble():
        return _per_design_metrics(ensemble_model, test)

    ensemble_r, ensemble_covr = benchmark.pedantic(evaluate_ensemble, rounds=1, iterations=1)
    results["ensemble"] = (ensemble_r, ensemble_covr)
    rows.append(
        [
            "Ensemble",
            f"{ensemble_r.mean():.2f}",
            f"{ensemble_r.std():.2f}",
            f"{ensemble_covr.mean():.0f}",
            f"{ensemble_covr.std():.0f}",
        ]
    )

    print_table(
        "Table 5: representation variants vs ensemble (bit-wise, per-design)",
        ["Representation", "Avg R", "Std R", "Avg COVR", "Std COVR"],
        rows,
    )

    single_means = [results[v][0].mean() for v in BOG_VARIANTS]
    single_stds = [results[v][0].std() for v in BOG_VARIANTS]
    # Shape: the ensemble is at least as accurate as the average single
    # representation and does not blow up the cross-design variance.
    assert ensemble_r.mean() >= np.mean(single_means) - 0.03
    assert ensemble_r.std() <= max(single_stds) + 0.03
