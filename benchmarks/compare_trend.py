"""Compare two ``BENCH_runtime.json`` reports and fail on stage regression.

Used by the CI perf-smoke job::

    python benchmarks/compare_trend.py previous/BENCH_runtime.json BENCH_runtime.json \
        --stage benchmarks.cross_validation --stage sta.analyze_array \
        --max-regression 0.20 \
        --derived optimize_evals_per_second --max-drop 0.5

``--stage`` is repeatable; each named stage is guarded independently.
``--derived`` guards a higher-is-better metric from the report's ``derived``
section (throughputs, speedups): it fails when the metric *drops* by more
than ``--max-drop``.  Exit status is non-zero only when a guarded stage or
metric exists in *both* reports and regressed beyond its tolerance.  A
missing previous report (first run on a branch, expired artifact) or an
entry absent from either side is reported and tolerated, so the guard
cannot brick CI on cold starts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_report(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    if not isinstance(report.get("stages", {}), dict):
        raise SystemExit(f"{path}: malformed report (no stages mapping)")
    return report


def load_stages(path: Path) -> dict:
    return load_report(path).get("stages", {})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=Path, help="baseline BENCH_runtime.json")
    parser.add_argument("current", type=Path, help="freshly generated BENCH_runtime.json")
    parser.add_argument(
        "--stage",
        action="append",
        dest="stages",
        default=None,
        help=(
            "stage whose wall time is guarded; repeatable "
            "(default: benchmarks.cross_validation)"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional slowdown before failing (default: 0.20)",
    )
    parser.add_argument(
        "--derived",
        action="append",
        dest="derived",
        default=None,
        help=(
            "higher-is-better derived metric (throughput/speedup) guarded "
            "against drops; repeatable"
        ),
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.5,
        help="tolerated fractional drop of a --derived metric (default: 0.5)",
    )
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"current report {args.current} does not exist", file=sys.stderr)
        return 2
    current_report = load_report(args.current)
    current = current_report.get("stages", {})

    if not args.previous.exists():
        print(f"no previous report at {args.previous}; nothing to compare (ok)")
        return 0
    previous_report = load_report(args.previous)
    previous = previous_report.get("stages", {})

    shared = sorted(set(previous) & set(current))
    if shared:
        print(f"{'stage':<40} {'previous':>10} {'current':>10} {'delta':>8}")
        for name in shared:
            before, after = previous[name], current[name]
            if before > 0:
                delta = f"{(after / before - 1.0) * 100.0:>+7.1f}%"
            else:
                delta = f"{'n/a':>8}"
            print(f"{name:<40} {before:>9.2f}s {after:>9.2f}s {delta}")

    status = 0
    for stage in args.stages or ["benchmarks.cross_validation"]:
        if stage not in previous or stage not in current:
            print(f"stage {stage!r} missing from one report; skipping the guard (ok)")
            continue
        before, after = previous[stage], current[stage]
        if before <= 0:
            print(f"previous {stage} time is {before}; skipping the guard (ok)")
            continue
        regression = after / before - 1.0
        if regression > args.max_regression:
            print(
                f"FAIL: {stage} regressed {regression * 100.0:+.1f}% "
                f"({before:.2f}s -> {after:.2f}s, tolerance {args.max_regression * 100.0:.0f}%)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"OK: {stage} {before:.2f}s -> {after:.2f}s "
                f"({regression * 100.0:+.1f}%, tolerance {args.max_regression * 100.0:.0f}%)"
            )

    previous_derived = previous_report.get("derived", {})
    current_derived = current_report.get("derived", {})
    for metric in args.derived or []:
        if metric not in previous_derived or metric not in current_derived:
            print(f"derived {metric!r} missing from one report; skipping the guard (ok)")
            continue
        before, after = float(previous_derived[metric]), float(current_derived[metric])
        if before <= 0:
            print(f"previous {metric} is {before}; skipping the guard (ok)")
            continue
        drop = 1.0 - after / before
        if drop > args.max_drop:
            print(
                f"FAIL: {metric} dropped {drop * 100.0:.1f}% "
                f"({before:.2f} -> {after:.2f}, tolerance {args.max_drop * 100.0:.0f}%)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"OK: {metric} {before:.2f} -> {after:.2f} "
                f"(drop {drop * 100.0:+.1f}%, tolerance {args.max_drop * 100.0:.0f}%)"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
