"""Compare two ``BENCH_runtime.json`` reports and fail on stage regression.

Used by the CI perf-smoke job::

    python benchmarks/compare_trend.py previous/BENCH_runtime.json BENCH_runtime.json \
        --stage benchmarks.cross_validation --max-regression 0.20

Exit status is non-zero only when the guarded stage exists in *both* reports
and its wall time regressed by more than ``--max-regression``.  A missing
previous report (first run on a branch, expired artifact) or a stage absent
from either side is reported and tolerated, so the guard cannot brick CI on
cold starts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_stages(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    stages = report.get("stages", {})
    if not isinstance(stages, dict):
        raise SystemExit(f"{path}: malformed report (no stages mapping)")
    return stages


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=Path, help="baseline BENCH_runtime.json")
    parser.add_argument("current", type=Path, help="freshly generated BENCH_runtime.json")
    parser.add_argument(
        "--stage",
        default="benchmarks.cross_validation",
        help="stage whose wall time is guarded (default: benchmarks.cross_validation)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional slowdown before failing (default: 0.20)",
    )
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"current report {args.current} does not exist", file=sys.stderr)
        return 2
    current = load_stages(args.current)

    if not args.previous.exists():
        print(f"no previous report at {args.previous}; nothing to compare (ok)")
        return 0
    previous = load_stages(args.previous)

    shared = sorted(set(previous) & set(current))
    if shared:
        print(f"{'stage':<40} {'previous':>10} {'current':>10} {'delta':>8}")
        for name in shared:
            before, after = previous[name], current[name]
            if before > 0:
                delta = f"{(after / before - 1.0) * 100.0:>+7.1f}%"
            else:
                delta = f"{'n/a':>8}"
            print(f"{name:<40} {before:>9.2f}s {after:>9.2f}s {delta}")

    if args.stage not in previous or args.stage not in current:
        print(f"stage {args.stage!r} missing from one report; skipping the guard (ok)")
        return 0

    before, after = previous[args.stage], current[args.stage]
    if before <= 0:
        print(f"previous {args.stage} time is {before}; skipping the guard (ok)")
        return 0
    regression = after / before - 1.0
    if regression > args.max_regression:
        print(
            f"FAIL: {args.stage} regressed {regression * 100.0:+.1f}% "
            f"({before:.2f}s -> {after:.2f}s, tolerance {args.max_regression * 100.0:.0f}%)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {args.stage} {before:.2f}s -> {after:.2f}s "
        f"({regression * 100.0:+.1f}%, tolerance {args.max_regression * 100.0:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
