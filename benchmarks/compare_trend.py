"""Compare two ``BENCH_runtime.json`` reports and fail on stage regression.

Used by the CI perf-smoke job::

    python benchmarks/compare_trend.py previous/BENCH_runtime.json BENCH_runtime.json \
        --stage benchmarks.cross_validation --stage sta.analyze_array \
        --max-regression 0.20

``--stage`` is repeatable; each named stage is guarded independently.  Exit
status is non-zero only when a guarded stage exists in *both* reports and
its wall time regressed by more than ``--max-regression``.  A missing
previous report (first run on a branch, expired artifact) or a stage absent
from either side is reported and tolerated, so the guard cannot brick CI on
cold starts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_stages(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    stages = report.get("stages", {})
    if not isinstance(stages, dict):
        raise SystemExit(f"{path}: malformed report (no stages mapping)")
    return stages


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=Path, help="baseline BENCH_runtime.json")
    parser.add_argument("current", type=Path, help="freshly generated BENCH_runtime.json")
    parser.add_argument(
        "--stage",
        action="append",
        dest="stages",
        default=None,
        help=(
            "stage whose wall time is guarded; repeatable "
            "(default: benchmarks.cross_validation)"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional slowdown before failing (default: 0.20)",
    )
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"current report {args.current} does not exist", file=sys.stderr)
        return 2
    current = load_stages(args.current)

    if not args.previous.exists():
        print(f"no previous report at {args.previous}; nothing to compare (ok)")
        return 0
    previous = load_stages(args.previous)

    shared = sorted(set(previous) & set(current))
    if shared:
        print(f"{'stage':<40} {'previous':>10} {'current':>10} {'delta':>8}")
        for name in shared:
            before, after = previous[name], current[name]
            if before > 0:
                delta = f"{(after / before - 1.0) * 100.0:>+7.1f}%"
            else:
                delta = f"{'n/a':>8}"
            print(f"{name:<40} {before:>9.2f}s {after:>9.2f}s {delta}")

    status = 0
    for stage in args.stages or ["benchmarks.cross_validation"]:
        if stage not in previous or stage not in current:
            print(f"stage {stage!r} missing from one report; skipping the guard (ok)")
            continue
        before, after = previous[stage], current[stage]
        if before <= 0:
            print(f"previous {stage} time is {before}; skipping the guard (ok)")
            continue
        regression = after / before - 1.0
        if regression > args.max_regression:
            print(
                f"FAIL: {stage} regressed {regression * 100.0:+.1f}% "
                f"({before:.2f}s -> {after:.2f}s, tolerance {args.max_regression * 100.0:.0f}%)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"OK: {stage} {before:.2f}s -> {after:.2f}s "
                f"({regression * 100.0:+.1f}%, tolerance {args.max_regression * 100.0:.0f}%)"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
