"""Fig. 5: per-design example b18_1 — scatter series and optimized distribution.

Reproduces the four panels as data series:
(a) pseudo-STA (RTL-STA) arrival of each representation vs post-synthesis label,
(b) bit-wise prediction vs label,
(c) signal-wise prediction vs label,
(d) arrival distribution before/after prediction-driven optimization.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.bog.graph import BOG_VARIANTS
from repro.core.metrics import pearson_r
from repro.core.optimize import run_optimization_experiment


DESIGN = "b18_1"


def test_fig5_scatter_and_distribution(cv_results, benchmark):
    record = cv_results.record(DESIGN)
    names = record.endpoint_names
    labels = np.array([record.labels[n] for n in names])

    def compute():
        series = {}
        # (a) RTL-STA of the four representations vs label.
        for variant in BOG_VARIANTS:
            report = record.pseudo_reports[variant]
            arrivals = np.array([report.endpoint(n).arrival for n in names])
            series[f"rtl_sta_{variant}"] = pearson_r(labels, arrivals)
        # (b) bit-wise ensemble prediction vs label.
        bit_preds = cv_results.bitwise[DESIGN]
        series["bitwise_prediction"] = pearson_r(
            labels, np.array([bit_preds[n] for n in names])
        )
        # (c) signal-wise prediction vs label.
        signal_labels = record.signal_labels()
        signal_preds = cv_results.signal_arrival[DESIGN]
        signals = sorted(signal_labels)
        series["signalwise_prediction"] = pearson_r(
            [signal_labels[s] for s in signals], [signal_preds[s] for s in signals]
        )
        return series

    series = benchmark.pedantic(compute, rounds=1, iterations=1)

    # (d) optimized arrival distribution.
    ranking_scores = cv_results.signal_ranking[DESIGN]
    predicted_ranking = sorted(ranking_scores, key=lambda s: -ranking_scores[s])
    outcome = run_optimization_experiment(record, predicted_ranking, "predicted")
    default_arrivals = np.array([e.arrival for e in outcome.default.report.endpoints])
    optimized_arrivals = np.array([e.arrival for e in outcome.optimized.report.endpoints])
    bins = np.histogram_bin_edges(np.concatenate([default_arrivals, optimized_arrivals]), bins=8)
    default_hist, _ = np.histogram(default_arrivals, bins=bins)
    optimized_hist, _ = np.histogram(optimized_arrivals, bins=bins)

    rows = [[key, f"{value:.2f}"] for key, value in series.items()]
    rows.append(["default arrival histogram", " ".join(map(str, default_hist))])
    rows.append(["optimized arrival histogram", " ".join(map(str, optimized_hist))])
    rows.append(["default WNS/TNS", f"{outcome.default.wns:.1f} / {outcome.default.tns:.1f}"])
    rows.append(["optimized WNS/TNS", f"{outcome.optimized.wns:.1f} / {outcome.optimized.tns:.1f}"])
    print_table(f"Fig. 5: design example {DESIGN}", ["Series", "Value"], rows)

    # Shape: the learned bit-wise prediction correlates at least as well as the
    # best raw pseudo-STA series, and the signal-wise prediction stays strong.
    best_rtl_sta = max(series[f"rtl_sta_{v}"] for v in BOG_VARIANTS)
    assert series["bitwise_prediction"] >= best_rtl_sta - 0.1
    assert series["signalwise_prediction"] > 0.5
