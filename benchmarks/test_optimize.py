"""Search-based optimizer benchmarks (`optimize.*` BENCH stages).

Two claims are measured on the real benchmark suite and recorded into
``BENCH_runtime.json`` for the CI trend job:

1. the **quality-vs-budget curve** (the search-era extension of Table 6):
   for both search strategies, more evaluation budget never hurts — the
   best energy is non-increasing and the Pareto-front hypervolume is
   non-decreasing as the budget grows (same seed, so the proposal stream of
   a smaller budget is a prefix of a larger one), and every returned front
   is internally non-dominated;
2. the **acceptance speedup**: scoring the accepted candidates incrementally
   is >= 5x faster than re-synthesizing the same candidates from scratch
   (``optimize_sweep_speedup`` in the derived metrics, alongside
   ``optimize_evals_per_second``).
"""

from __future__ import annotations

import time

from benchmarks.conftest import FAST_MODE, print_table
from repro.core.optimize import ranking_from_labels
from repro.optimize import CandidateSpec, SearchConfig, dominates, run_search
from repro.runtime import activate
from repro.runtime.cache import ArtifactCache
from repro.runtime.report import OPT_FULL_RESYNTHESIS_STAGE, RuntimeReport
from repro.synth.flow import synthesize_bog


def _by_gate_count(records):
    return sorted(records, key=lambda r: r.synthesis.netlist.gate_count())


BUDGETS = (4, 8, 16) if FAST_MODE else (8, 16, 32)


def test_optimize_quality_vs_budget_curve(dataset_records, runtime_report):
    """Extended Table 6: search quality as a function of evaluation budget."""
    ordered = _by_gate_count(dataset_records)
    sample = ordered[1:3] if FAST_MODE else ordered[2:5]

    rows = []
    last_hypervolume = 0.0
    # Search internals record into a scratch report: the session report's
    # `optimize.*` stages (and the derived speedup/throughput metrics) must
    # come only from the controlled experiment in the speedup test below.
    with runtime_report.stage("benchmarks.optimize_curve"), activate(RuntimeReport()):
        for record in sample:
            ranking = ranking_from_labels(record)
            for strategy in ("anneal", "evolution"):
                previous_energy = None
                previous_hypervolume = None
                for budget in BUDGETS:
                    config = SearchConfig(
                        strategy=strategy, budget=budget, seed=9, reanchor_every=0
                    )
                    result = run_search(record, ranking, config)
                    energy = result.best_energy()
                    hypervolume = result.front_hypervolume()
                    rows.append(
                        [
                            record.name,
                            strategy,
                            budget,
                            f"{result.baseline.wns:.1f}",
                            f"{result.best.wns:.1f}",
                            len(result.front),
                            f"{hypervolume:.0f}",
                            result.accounting["evals"],
                            result.accounting["memo_hits"],
                        ]
                    )
                    # Fronts are internally non-dominated and never worse
                    # than the baseline point.
                    points = result.front.points
                    assert points, "front must at least hold the baseline"
                    for i, a in enumerate(points):
                        for b in points[i + 1 :]:
                            assert not dominates(a, b) and not dominates(b, a)
                    assert result.best.wns >= result.baseline.wns
                    # Same seed => smaller budgets are proposal prefixes of
                    # larger ones: quality is monotone in budget.
                    if previous_energy is not None and energy is not None:
                        assert energy <= previous_energy + 1e-9
                    if previous_hypervolume is not None:
                        assert hypervolume >= previous_hypervolume - 1e-9
                    previous_energy = energy
                    previous_hypervolume = hypervolume
                    last_hypervolume = hypervolume

    runtime_report.meta["optimize_curve_designs"] = [r.name for r in sample]
    runtime_report.meta["optimize_front_hypervolume"] = round(last_hypervolume, 2)
    print_table(
        "Extended Table 6: quality vs budget (seed 9)",
        ["Design", "Strategy", "Budget", "Base WNS", "Best WNS", "Front", "HV", "Evals", "Memo"],
        rows,
    )


def test_optimize_speedup_vs_full_resynthesis(dataset_records, runtime_report, benchmark):
    """Acceptance: incremental scoring of the accepted candidates is >= 5x
    faster than re-synthesizing the same candidates from scratch."""
    ordered = _by_gate_count(dataset_records)
    record = ordered[len(ordered) // 2] if FAST_MODE else ordered[-3]
    ranking = ranking_from_labels(record)
    config = SearchConfig(strategy="anneal", budget=12, seed=9, reanchor_every=0)

    # Warm the process before timing: the first search in a fresh pytest
    # session pays one-off allocator/GC costs against the session's large
    # heap.  The warmup's stage timings go to a throwaway report so they
    # cannot pollute the derived speedup metric.
    with activate(RuntimeReport()):
        run_search(
            record,
            ranking,
            SearchConfig(strategy="anneal", budget=4, seed=1, reanchor_every=0),
            cache=ArtifactCache(enabled=False),
        )

    # Measure into a local report so the derived speedup only sees this
    # controlled experiment (other benchmark files also run searches/sweeps
    # against the shared session report); merge the stages in afterwards.
    local = RuntimeReport()
    with activate(local):
        result = benchmark.pedantic(
            lambda: run_search(record, ranking, config), rounds=1, iterations=1
        )
        accepted = [
            entry
            for entry in result.trajectory
            if entry.kind == "eval" and entry.accepted and entry.spec is not None
        ]
        assert accepted, "an annealing run always accepts at least the incumbent"
        started = time.perf_counter()
        with local.stage(OPT_FULL_RESYNTHESIS_STAGE):
            for entry in accepted:
                options = CandidateSpec.from_dict(entry.spec).realize(
                    ranking, seed=config.seed
                )
                synthesize_bog(record.bogs["sog"], record.clock, options, seed=config.seed)
        full_seconds = time.perf_counter() - started
    runtime_report.merge(local)

    derived = local.to_dict()["derived"]
    assert derived.get("optimize_evals_per_second", 0.0) > 0.0
    speedup = derived.get("optimize_sweep_speedup", 0.0)
    runtime_report.meta["optimize_speedup_design"] = record.name

    print_table(
        f"Optimizer accepted-candidate scoring vs full re-synthesis ({record.name})",
        ["Quantity", "Value"],
        [
            ["accepted candidates", str(len(accepted))],
            ["full re-synthesis (s)", f"{full_seconds:.3f}"],
            ["optimize_sweep_speedup", f"{speedup:.1f}x"],
            ["optimize_evals_per_second", f"{derived['optimize_evals_per_second']:.1f}"],
        ],
    )
    assert speedup >= 5.0, (
        f"incremental scoring must be >= 5x faster than full re-synthesis "
        f"of the accepted candidates (got {speedup:.1f}x)"
    )
