"""Table 2: per-feature correlation with the endpoint arrival-time label."""


from benchmarks.conftest import print_table
from repro.core.features import PATH_FEATURE_NAMES, combine_path_datasets, extract_path_dataset
from repro.core.metrics import pearson_r
from repro.core.sampling import SamplingConfig


#: The features reported in Table 2 of the paper, mapped to our feature names.
TABLE2_FEATURES = [
    ("Rank level / % of the endpoint rank", "design_rank_percent"),
    ("# sequential cells", "design_n_sequential"),
    ("# combinational cells", "design_n_combinational"),
    ("# total cells", "design_n_total"),
    ("# driving reg of input cone", "cone_n_driving_regs"),
    ("Arrival time by STA on R", "path_pseudo_arrival"),
    ("# of level of the timing path", "path_n_levels"),
    ("# of operators", "path_n_operators"),
    ("Fanout", "path_fanout_avg"),
    ("Load capacitance", "path_load_avg"),
    ("Slew", "path_slew_avg"),
]


def test_table2_feature_correlations(dataset_records, benchmark):
    datasets = [
        extract_path_dataset(record, "sog", SamplingConfig(use_sampling=False))
        for record in dataset_records
    ]
    combined = combine_path_datasets(datasets)
    labels = combined.endpoint_labels[combined.groups]

    def compute():
        rows = []
        for paper_name, feature in TABLE2_FEATURES:
            column = combined.features[:, PATH_FEATURE_NAMES.index(feature)]
            rows.append((paper_name, abs(pearson_r(labels, column))))
        return rows

    rows = benchmark(compute)
    print_table(
        "Table 2: feature correlation with endpoint arrival label (|R|)",
        ["Feature", "|R|"],
        [[name, f"{value:.2f}"] for name, value in rows],
    )
    # Shape check: path-level structural features carry real signal.
    by_name = dict(rows)
    assert by_name["# of level of the timing path"] > 0.3
    assert by_name["# of operators"] > 0.3
    assert by_name["Arrival time by STA on R"] > 0.3
