"""Compatibility shim: the cell library lives in :mod:`repro.liberty`.

It was moved out of the synthesis package so that the STA package (which
needs cell timing models) does not have to import :mod:`repro.synth`,
avoiding a circular dependency between the two substrates.
"""

from repro.liberty import (
    Cell,
    Library,
    PSEUDO_FUNCTION_OF_NODE,
    nangate45_like,
    pseudo_library,
)

__all__ = [
    "Cell",
    "Library",
    "PSEUDO_FUNCTION_OF_NODE",
    "nangate45_like",
    "pseudo_library",
]
