"""Gate-level netlist produced by technology mapping.

The netlist *is* a :class:`~repro.sta.network.TimingNetwork` — every vertex
is a mapped standard-cell instance (or launch point) — extended with the
quality-of-results accounting (area, leakage and dynamic power) that the
paper's Table 6 reports next to WNS/TNS, and with the in-place edit
operations the timing-driven optimizer uses (cell sizing, register retiming).

Register endpoints keep the bit-level RTL names (``"R1[3]"``), preserving the
register consistency between RTL and netlist that the paper's labelling
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sta.engine import STAReport, compute_loads
from repro.sta.network import TimingEndpoint, TimingNetwork, TimingVertex, VertexKind
from repro.liberty import Cell, Library


@dataclass
class QoR:
    """Quality-of-results summary for a synthesized netlist."""

    wns: float
    tns: float
    area: float
    total_power: float
    leakage_power: float
    dynamic_power: float
    n_cells: int
    n_registers: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "wns": self.wns,
            "tns": self.tns,
            "area": self.area,
            "total_power": self.total_power,
            "leakage_power": self.leakage_power,
            "dynamic_power": self.dynamic_power,
            "n_cells": float(self.n_cells),
            "n_registers": float(self.n_registers),
        }


class Netlist(TimingNetwork):
    """A mapped gate-level netlist with QoR accounting and edit operations."""

    def __init__(self, name: str, library: Library):
        super().__init__(name)
        self.library = library

    # -- quality of results ---------------------------------------------------

    def area(self) -> float:
        """Total cell area (um^2)."""
        return sum(v.cell.area for v in self.vertices if v.cell is not None)

    def leakage_power(self) -> float:
        """Total leakage power (nW)."""
        return sum(v.cell.leakage for v in self.vertices if v.cell is not None)

    def dynamic_power(self, activity: float = 0.1, frequency_ghz: float = 1.0) -> float:
        """Switching power proxy (uW) under a uniform activity factor."""
        loads = compute_loads(self)
        energy = 0.0
        for vertex in self.vertices:
            if vertex.cell is None or vertex.kind is VertexKind.CONST:
                continue
            energy += vertex.cell.dynamic_energy(float(loads[vertex.id]))
        return activity * frequency_ghz * energy * 1e-3

    def qor(self, report: STAReport, activity: float = 0.1) -> QoR:
        """Bundle timing and power/area metrics into a QoR record."""
        leakage = self.leakage_power()
        dynamic = self.dynamic_power(activity=activity)
        return QoR(
            wns=report.wns,
            tns=report.tns,
            area=self.area(),
            total_power=leakage * 1e-3 + dynamic,
            leakage_power=leakage,
            dynamic_power=dynamic,
            n_cells=self.gate_count(),
            n_registers=self.register_count(),
        )

    def cell_histogram(self) -> Dict[str, int]:
        """Number of instances per cell function."""
        histogram: Dict[str, int] = {}
        for vertex in self.vertices:
            if vertex.cell is None:
                continue
            histogram[vertex.cell.function] = histogram.get(vertex.cell.function, 0) + 1
        return histogram

    # -- edit operations -------------------------------------------------------

    def resize(self, vertex_id: int, cell: Cell) -> None:
        """Swap the cell implementing ``vertex_id`` (same function, new drive)."""
        vertex = self.vertices[vertex_id]
        if vertex.cell is None:
            raise ValueError(f"vertex {vertex_id} has no cell to resize")
        if vertex.cell.function != cell.function:
            raise ValueError(
                f"resize must preserve the cell function "
                f"({vertex.cell.function} -> {cell.function})"
            )
        vertex.cell = cell
        # Loads change (input caps differ across drives); arrival caches are
        # owned by the caller via STAReport, nothing to invalidate here.

    def upsize(self, vertex_id: int) -> bool:
        """Replace the vertex's cell with the next stronger drive. Returns
        ``True`` when a stronger variant existed."""
        vertex = self.vertices[vertex_id]
        if vertex.cell is None:
            return False
        stronger = self.library.upsize(vertex.cell)
        if stronger is None:
            return False
        vertex.cell = stronger
        return True

    def downsize(self, vertex_id: int) -> bool:
        """Replace the vertex's cell with the next weaker drive. Returns
        ``True`` when a weaker variant existed."""
        vertex = self.vertices[vertex_id]
        if vertex.cell is None:
            return False
        weaker = self.library.downsize(vertex.cell)
        if weaker is None:
            return False
        vertex.cell = weaker
        return True

    def retime_endpoint_backward(self, endpoint_name: str) -> bool:
        """Move the endpoint's register backward across its driving gate.

        This implements the classic backward retiming move used by the
        ``retime`` synthesis option: when the last gate ``g`` before register
        ``R`` is the bottleneck, ``R`` is replaced by one register per fanin
        of ``g`` and a copy of ``g`` is re-created *after* the (new) registers
        on the launch side.  The endpoint arrival decreases by roughly the
        delay of ``g`` while downstream paths from ``R`` grow by the same
        amount — which is precisely the balancing trade-off Fig. 4 of the
        paper illustrates.

        Returns ``True`` if the move was applied (the driver was a gate with
        register fanout only through this endpoint's register).
        """
        endpoint = next((e for e in self.endpoints if e.name == endpoint_name), None)
        if endpoint is None or endpoint.kind != "register":
            return False
        driver = self.vertices[endpoint.driver]
        if driver.kind is not VertexKind.GATE or not driver.fanins:
            return False
        register_vertex = self._register_vertex_of(endpoint)
        if register_vertex is None:
            return False

        # 1. One new register per fanin of the driving gate.
        new_regs: List[int] = []
        reg_cell = register_vertex.cell
        for index, fanin in enumerate(driver.fanins):
            reg_id = self.add_vertex(
                VertexKind.REGISTER,
                cell=reg_cell,
                name=f"{endpoint.name}.rt{index}",
            )
            new_regs.append(reg_id)
            self.add_endpoint(
                TimingEndpoint(
                    name=f"{endpoint.name}.rt{index}",
                    signal=endpoint.signal,
                    bit=endpoint.bit,
                    driver=fanin,
                    kind="register",
                    capture_cell=reg_cell,
                )
            )

        # 2. A copy of the driving gate is placed after the new registers and
        #    takes over the original register's fanout.
        gate_copy = self.add_vertex(
            VertexKind.GATE, fanins=new_regs, cell=driver.cell, name=None
        )
        for vertex in self.vertices:
            if vertex.id in (gate_copy,):
                continue
            vertex.fanins = [gate_copy if f == register_vertex.id else f for f in vertex.fanins]
        for other in self.endpoints:
            if other is endpoint:
                continue
            if other.driver == register_vertex.id:
                other.driver = gate_copy

        # 3. The original endpoint (and its register) disappears.
        self.endpoints.remove(endpoint)
        register_vertex.fanins = []
        self.invalidate()
        return True

    def _register_vertex_of(self, endpoint: TimingEndpoint) -> Optional[TimingVertex]:
        """Find the register (launch) vertex whose name matches the endpoint."""
        for vertex in self.vertices:
            if vertex.kind is VertexKind.REGISTER and vertex.name == endpoint.name:
                return vertex
        return None
