"""End-to-end logic synthesis flow (Design Compiler stand-in).

``synthesize`` runs the full flow the paper's dataset generation and
optimization experiments rely on::

    word-level Design --bit-blast--> SOG --map--> netlist --optimize--> STA/QoR

The same entry point serves three roles:

* ground-truth label generation (default options),
* the "default synthesis" baseline of Table 6,
* the prediction-driven flow of Table 6 (options carrying ``group_path`` and
  ``retime`` directives derived from RTL-Timer's predicted rankings).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.bog.builder import build_sog
from repro.bog.graph import BOG
from repro.hdl.design import Design
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import STAReport
from repro.liberty import Library, nangate45_like
from repro.synth.mapper import map_to_netlist
from repro.synth.netlist import Netlist, QoR
from repro.synth.optimizer import OptimizationTrace, SynthesisOptions, optimize


@dataclass
class SynthesisResult:
    """Everything the rest of the flow needs from one synthesis run."""

    design: str
    netlist: Netlist
    report: STAReport
    qor: QoR
    options: SynthesisOptions
    trace: OptimizationTrace
    runtime_seconds: float

    @property
    def wns(self) -> float:
        return self.report.wns

    @property
    def tns(self) -> float:
        return self.report.tns


def synthesize_bog(
    bog: BOG,
    clock: ClockConstraint,
    options: Optional[SynthesisOptions] = None,
    library: Optional[Library] = None,
    seed: Optional[int] = None,
) -> SynthesisResult:
    """Map and optimize an already-built Boolean operator graph."""
    started = time.perf_counter()
    options = options or SynthesisOptions()
    library = library or nangate45_like()
    netlist = map_to_netlist(bog, library=library, seed=seed)
    report, trace = optimize(netlist, clock, options)
    qor = netlist.qor(report)
    runtime = time.perf_counter() - started
    return SynthesisResult(
        design=bog.name,
        netlist=netlist,
        report=report,
        qor=qor,
        options=options,
        trace=trace,
        runtime_seconds=runtime,
    )


def synthesize(
    design: Design,
    clock: ClockConstraint,
    options: Optional[SynthesisOptions] = None,
    library: Optional[Library] = None,
    seed: Optional[int] = None,
) -> SynthesisResult:
    """Run the complete synthesis flow on a word-level design."""
    sog = build_sog(design)
    return synthesize_bog(sog, clock, options=options, library=library, seed=seed)
