"""Technology mapping: Boolean operator graph -> gate-level netlist.

Stands in for the mapping step of a commercial synthesis tool.  Two effects
matter for the reproduction and are modelled explicitly:

* **Restructuring.**  Chains of identical associative operators (AND/OR/XOR)
  are collapsed and re-emitted as balanced trees, so the mapped netlist's
  logic depth differs systematically from the RTL representation's depth.
  This is the main reason the slowest RTL path is *not* always the slowest
  netlist path — the motivation for the paper's multi-path sampling.
* **Mapping choices.**  Each operator can be implemented by different cells
  (e.g. AND2 vs NAND2+INV); the choice is made pseudo-randomly per instance
  (seeded by the design name) which injects the realistic, structured noise
  that separates RTL-stage prediction from a simple analytical model.

Register endpoints keep their RTL bit names, preserving the RTL/netlist
register consistency the paper's labelling relies on.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Set

from repro.bog.graph import BOG, NodeType
from repro.sta.network import TimingEndpoint, VertexKind
from repro.liberty import Library, nangate45_like
from repro.synth.netlist import Netlist


def map_to_netlist(
    bog: BOG,
    library: Optional[Library] = None,
    seed: Optional[int] = None,
    balance_trees: bool = True,
    alt_mapping_probability: Optional[float] = None,
    high_fanout_threshold: int = 6,
) -> Netlist:
    """Map ``bog`` onto standard cells and return the netlist.

    When ``alt_mapping_probability`` is not given, a per-design value is drawn
    from the seeded generator, mirroring the design-to-design variation in
    optimization behaviour that the paper's design-level features exist to
    absorb.
    """
    library = library or nangate45_like()
    if seed is None:
        seed = sum(ord(c) for c in bog.name) * 7919 + len(bog.nodes)
    rng = random.Random(seed)
    if alt_mapping_probability is None:
        alt_mapping_probability = rng.uniform(0.15, 0.6)

    netlist = Netlist(bog.name, library)
    mapper = _Mapper(bog, netlist, library, rng, balance_trees, alt_mapping_probability)
    mapper.run()

    # Pick initial drive strengths: stronger cells on high-fanout nets, and a
    # sprinkling of pre-sized instances elsewhere (as a real mapper leaves
    # behind after its own internal sizing).
    fanouts = netlist.fanouts()
    for vertex in netlist.vertices:
        if vertex.kind is not VertexKind.GATE:
            continue
        if len(fanouts[vertex.id]) >= high_fanout_threshold:
            netlist.upsize(vertex.id)
        elif rng.random() < 0.1:
            netlist.upsize(vertex.id)

    _apply_cone_effort(netlist, rng)

    netlist.validate()
    return netlist


def _apply_cone_effort(netlist: Netlist, rng: random.Random) -> None:
    """Model per-cone logic restructuring as a delay derate on gate delays.

    Commercial synthesis restructures *chain-shaped* logic aggressively —
    ripple-carry adders become carry-lookahead structures, priority chains
    become trees — while logic that is already tree-shaped changes little.
    The compression achievable for a cone is therefore governed by the gap
    between its actual depth and the depth of a balanced implementation
    (roughly ``log2`` of its size), plus cone-to-cone variation in how hard
    the tool worked.

    We capture this as a per-cone delay multiplier applied to every gate in
    the cone: ``derate ~ (k0 + k1*log2(size) + noise) / depth`` clipped to
    ``[0.3, 1.0]``.  A gate shared by several cones takes the strongest
    compression applied to any of them.  The systematic part is learnable
    from the cone/path features RTL-Timer extracts (cone size, level count,
    operator counts); the random part is the irreducible noise that keeps the
    paper's fine-grained correlation well below 1.0.
    """
    depths = _gate_depths(netlist)

    # Group endpoints by word-level signal: the input logic of one register
    # bank is optimized together, so all its bits share one effort level.
    drivers_by_signal: Dict[str, List[int]] = {}
    for endpoint in netlist.endpoints:
        drivers_by_signal.setdefault(endpoint.signal, []).append(endpoint.driver)

    for signal in sorted(drivers_by_signal):
        drivers = drivers_by_signal[signal]
        cone: Set[int] = set()
        for driver in drivers:
            cone.update(_cone_vertices(netlist, driver))
        gates = [v for v in cone if netlist.vertices[v].kind is VertexKind.GATE]
        if not gates:
            continue
        depth = max(depths[d] for d in drivers)
        if depth <= 1:
            continue
        size = len(gates)
        balanced_depth = 2.0 + 2.2 * math.log2(size + 1)
        effort = rng.uniform(0.85, 1.25)
        factor = (balanced_depth * effort) / depth + rng.uniform(-0.06, 0.06)
        factor = max(0.3, min(1.0, factor))
        for vertex_id in gates:
            vertex = netlist.vertices[vertex_id]
            if factor < vertex.derate:
                vertex.derate = factor


def _gate_depths(netlist: Netlist) -> List[int]:
    """Logic depth of every vertex (launch points are depth 0)."""
    depths = [0] * len(netlist.vertices)
    for vertex_id in netlist.topological_order():
        vertex = netlist.vertices[vertex_id]
        if vertex.kind is VertexKind.GATE and vertex.fanins:
            depths[vertex_id] = 1 + max(depths[f] for f in vertex.fanins)
    return depths


def _cone_vertices(netlist: Netlist, driver: int) -> List[int]:
    """Transitive fanin cone of ``driver`` (inclusive)."""
    seen = set()
    stack = [driver]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(netlist.vertices[current].fanins)
    return list(seen)


class _Mapper:
    """Internal mapping state machine."""

    def __init__(
        self,
        bog: BOG,
        netlist: Netlist,
        library: Library,
        rng: random.Random,
        balance_trees: bool,
        alt_mapping_probability: float,
    ):
        self.bog = bog
        self.netlist = netlist
        self.library = library
        self.rng = rng
        self.balance_trees = balance_trees
        self.alt_probability = alt_mapping_probability
        self.mapping: Dict[int, int] = {}
        self.fanout_counts = self._count_fanouts()

    def _count_fanouts(self) -> List[int]:
        counts = [0] * len(self.bog.nodes)
        for node in self.bog.nodes:
            for fanin in node.fanins:
                counts[fanin] += 1
        for endpoint in self.bog.endpoints:
            counts[endpoint.driver] += 1
        return counts

    # -- main ----------------------------------------------------------------

    def run(self) -> None:
        dff = self.library.pick("DFF")
        for node in self.bog.nodes:
            if node.id in self.mapping:
                continue
            if node.type is NodeType.CONST0 or node.type is NodeType.CONST1:
                self.mapping[node.id] = self.netlist.add_vertex(
                    VertexKind.CONST, name=node.type.value
                )
            elif node.type is NodeType.INPUT:
                self.mapping[node.id] = self.netlist.add_vertex(
                    VertexKind.INPUT, name=node.name
                )
            elif node.type is NodeType.REG:
                self.mapping[node.id] = self.netlist.add_vertex(
                    VertexKind.REGISTER, cell=dff, name=node.name
                )
            else:
                self.mapping[node.id] = self._map_operator(node.id)

        for endpoint in self.bog.endpoints:
            self.netlist.add_endpoint(
                TimingEndpoint(
                    name=endpoint.name,
                    signal=endpoint.signal,
                    bit=endpoint.bit,
                    driver=self.mapping[endpoint.driver],
                    kind=endpoint.kind,
                    capture_cell=dff if endpoint.kind == "register" else None,
                )
            )

    # -- operators -----------------------------------------------------------

    def _map_operator(self, node_id: int) -> int:
        node = self.bog.nodes[node_id]
        if node.type in (NodeType.AND, NodeType.OR, NodeType.XOR) and self.balance_trees:
            leaves = self._collect_tree_leaves(node_id, node.type)
            if len(leaves) > 2:
                mapped_leaves = [self._require(leaf) for leaf in leaves]
                return self._emit_balanced_tree(node.type, mapped_leaves)
        fanins = [self._require(f) for f in node.fanins]
        return self._emit_single(node.type, fanins)

    def _require(self, node_id: int) -> int:
        if node_id not in self.mapping:
            self.mapping[node_id] = self._map_operator(node_id)
        return self.mapping[node_id]

    def _collect_tree_leaves(self, root: int, op: NodeType) -> List[int]:
        """Leaves of the maximal single-fanout same-operator tree under ``root``."""
        leaves: List[int] = []

        def walk(node_id: int, is_root: bool) -> None:
            node = self.bog.nodes[node_id]
            same_op = node.type is op
            single_fanout = self.fanout_counts[node_id] <= 1
            if not is_root and (not same_op or not single_fanout):
                leaves.append(node_id)
                return
            if not same_op:
                leaves.append(node_id)
                return
            for fanin in node.fanins:
                walk(fanin, False)

        walk(root, True)
        return leaves

    def _emit_balanced_tree(self, op: NodeType, leaves: List[int]) -> int:
        """Emit a balanced binary tree of 2-input cells over ``leaves``."""
        current = list(leaves)
        self.rng.shuffle(current)
        while len(current) > 1:
            next_level: List[int] = []
            for i in range(0, len(current) - 1, 2):
                next_level.append(self._emit_single(op, [current[i], current[i + 1]]))
            if len(current) % 2 == 1:
                next_level.append(current[-1])
            current = next_level
        return current[0]

    def _emit_single(self, op: NodeType, fanins: List[int]) -> int:
        """Emit the cell(s) implementing one 2-input operator instance."""
        use_alt = self.rng.random() < self.alt_probability
        if op is NodeType.NOT:
            return self._gate("INV", fanins)
        if op is NodeType.AND:
            if use_alt:
                nand = self._gate("NAND2", fanins)
                return self._gate("INV", [nand])
            return self._gate("AND2", fanins)
        if op is NodeType.OR:
            if use_alt:
                nor = self._gate("NOR2", fanins)
                return self._gate("INV", [nor])
            return self._gate("OR2", fanins)
        if op is NodeType.XOR:
            if use_alt:
                xnor = self._gate("XNOR2", fanins)
                return self._gate("INV", [xnor])
            return self._gate("XOR2", fanins)
        if op is NodeType.MUX:
            return self._gate("MUX2", fanins)
        raise ValueError(f"cannot map operator {op}")

    def _gate(self, function: str, fanins: List[int]) -> int:
        cell = self.library.pick(function)
        return self.netlist.add_vertex(VertexKind.GATE, fanins=fanins, cell=cell)
