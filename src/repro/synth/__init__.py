"""Logic synthesis substrate (Design Compiler stand-in)."""

from repro.synth.library import Cell, Library, nangate45_like, pseudo_library
from repro.synth.netlist import Netlist, QoR
from repro.synth.mapper import map_to_netlist
from repro.synth.optimizer import (
    OptimizationTrace,
    PathGroup,
    SynthesisOptions,
    optimize,
)
from repro.synth.flow import SynthesisResult, synthesize, synthesize_bog

__all__ = [
    "Cell",
    "Library",
    "nangate45_like",
    "pseudo_library",
    "Netlist",
    "QoR",
    "map_to_netlist",
    "OptimizationTrace",
    "PathGroup",
    "SynthesisOptions",
    "optimize",
    "SynthesisResult",
    "synthesize",
    "synthesize_bog",
]
