"""Timing-driven netlist optimization.

Stands in for the optimization phase of a commercial synthesis tool.  The
behaviour the reproduction needs is:

* a **default flow** that concentrates its effort on the most critical
  endpoints only — which is why, in the paper, large TNS headroom remains at
  the non-worst endpoints (Fig. 4, "default tool"),
* a **path-grouping flow** (``group_path``): endpoints are partitioned into
  named groups and every group receives its own optimization budget, which
  improves TNS without necessarily improving WNS,
* a **retiming flow** (``retime``): selected critical registers are moved
  backward across their driving gate to balance pipeline stages, which is the
  lever for WNS,
* **area recovery** that downsizes cells with large positive slack so power
  and area stay roughly neutral.

All of these operate on the mapped :class:`~repro.synth.netlist.Netlist` via
cell sizing and structural retiming moves, with full STA between passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.sta.constraints import ClockConstraint
from repro.sta.engine import STAReport, analyze
from repro.sta.network import VertexKind
from repro.sta.paths import trace_critical_path
from repro.synth.netlist import Netlist


@dataclass
class PathGroup:
    """One ``group_path`` directive: a named group of endpoint signals."""

    name: str
    signals: List[str]
    weight: float = 1.0


@dataclass
class SynthesisOptions:
    """Options controlling the optimization flow.

    The default values correspond to the "default synthesis" flow of the
    paper; the prediction-driven flow sets ``path_groups`` (four criticality
    groups) and ``retime_signals`` (top ~5% critical signals).
    """

    effort_passes: int = 3
    critical_fraction: float = 0.05
    path_groups: Optional[List[PathGroup]] = None
    group_effort_passes: int = 2
    retime_signals: Optional[List[str]] = None
    area_recovery: bool = True
    area_recovery_slack_fraction: float = 0.35
    seed: int = 1

    @property
    def uses_grouping(self) -> bool:
        return bool(self.path_groups)

    @property
    def uses_retiming(self) -> bool:
        return bool(self.retime_signals)


@dataclass
class OptimizationTrace:
    """Record of what the optimizer did (used by tests and runtime analysis)."""

    passes: int = 0
    upsized: int = 0
    downsized: int = 0
    retimed: int = 0
    wns_history: List[float] = field(default_factory=list)
    tns_history: List[float] = field(default_factory=list)


def optimize(
    netlist: Netlist,
    clock: ClockConstraint,
    options: Optional[SynthesisOptions] = None,
) -> tuple[STAReport, OptimizationTrace]:
    """Optimize ``netlist`` in place and return the final STA report."""
    options = options or SynthesisOptions()
    trace = OptimizationTrace()

    report = analyze(netlist, clock)
    trace.wns_history.append(report.wns)
    trace.tns_history.append(report.tns)

    # 1. Retiming first (structural), restricted to the requested signals.
    if options.uses_retiming:
        report = _retime_signals(netlist, clock, options.retime_signals or [], report, trace)

    # 2. Critical-path sizing.  Without grouping, only the globally worst
    #    endpoints receive attention; with grouping, every group gets its own
    #    budget of passes.
    if options.uses_grouping:
        for _ in range(options.group_effort_passes):
            for group in options.path_groups or []:
                targets = group_endpoints(report, group.signals, options.critical_fraction)
                report = _sizing_pass(netlist, clock, report, targets, trace)
    for _ in range(options.effort_passes):
        targets = _worst_endpoints(report, options.critical_fraction)
        report = _sizing_pass(netlist, clock, report, targets, trace)

    # 3. Area / power recovery on clearly non-critical cells.
    if options.area_recovery:
        report = _area_recovery(netlist, clock, report, options, trace)

    trace.wns_history.append(report.wns)
    trace.tns_history.append(report.tns)
    return report, trace


# ---------------------------------------------------------------------------
# Endpoint selection
# ---------------------------------------------------------------------------


def _worst_endpoints(report: STAReport, fraction: float) -> List[str]:
    """Names of the worst-slack endpoints (at least one)."""
    ordered = sorted(report.endpoints, key=lambda e: e.slack)
    count = max(1, int(len(ordered) * fraction))
    return [e.name for e in ordered[:count]]


def group_endpoints(report: STAReport, signals: Sequence[str], fraction: float) -> List[str]:
    """Worst endpoints restricted to the signals of one path group.

    Shared with the incremental what-if projection
    (:mod:`repro.incremental.whatif`), which must target exactly the
    endpoints a real ``group_path`` run would size.
    """
    wanted = set(signals)
    members = [e for e in report.endpoints if e.signal in wanted]
    members.sort(key=lambda e: e.slack)
    count = max(1, int(len(members) * max(fraction, 0.25))) if members else 0
    return [e.name for e in members[:count]]


# ---------------------------------------------------------------------------
# Sizing
# ---------------------------------------------------------------------------


def _sizing_pass(
    netlist: Netlist,
    clock: ClockConstraint,
    report: STAReport,
    endpoint_names: Sequence[str],
    trace: OptimizationTrace,
) -> STAReport:
    """Upsize cells along the critical paths of the selected endpoints."""
    if not endpoint_names:
        return report
    touched: Set[int] = set()
    for name in endpoint_names:
        try:
            path = trace_critical_path(netlist, report, name)
        except StopIteration:  # endpoint removed by retiming
            continue
        for vertex_id in path.vertices:
            vertex = netlist.vertices[vertex_id]
            if vertex.kind is not VertexKind.GATE or vertex_id in touched:
                continue
            if netlist.upsize(vertex_id):
                touched.add(vertex_id)
                trace.upsized += 1
    trace.passes += 1
    if not touched:
        return report
    netlist.invalidate()
    return analyze(netlist, clock)


def _area_recovery(
    netlist: Netlist,
    clock: ClockConstraint,
    report: STAReport,
    options: SynthesisOptions,
    trace: OptimizationTrace,
) -> STAReport:
    """Downsize cells that only feed endpoints with ample positive slack."""
    slack_threshold = options.area_recovery_slack_fraction * clock.period
    # Worst endpoint slack reachable from every vertex (reverse propagation).
    worst_downstream = _worst_downstream_slack(netlist, report)
    wns_before = report.wns
    downsized: List[int] = []
    for vertex in netlist.vertices:
        if vertex.kind is not VertexKind.GATE:
            continue
        if worst_downstream.get(vertex.id, 0.0) >= slack_threshold:
            if netlist.downsize(vertex.id):
                downsized.append(vertex.id)
    if not downsized:
        return report
    netlist.invalidate()
    new_report = analyze(netlist, clock)
    if new_report.wns < wns_before - 1.0:
        # Too aggressive: undo the recovery entirely.
        for vertex_id in downsized:
            netlist.upsize(vertex_id)
        netlist.invalidate()
        return analyze(netlist, clock)
    trace.downsized += len(downsized)
    return new_report


def _worst_downstream_slack(netlist: Netlist, report: STAReport) -> Dict[int, float]:
    """Worst endpoint slack in the transitive fanout of each vertex."""
    worst: Dict[int, float] = {}
    for endpoint in netlist.endpoints:
        timing = report.endpoint(endpoint.name) if endpoint.name in report._by_name else None
        if timing is None:
            continue
        current = worst.get(endpoint.driver)
        if current is None or timing.slack < current:
            worst[endpoint.driver] = timing.slack
    # Propagate backwards in reverse topological order.
    order = netlist.topological_order()
    for vertex_id in reversed(order):
        vertex = netlist.vertices[vertex_id]
        value = worst.get(vertex_id)
        if value is None:
            continue
        for fanin in vertex.fanins:
            current = worst.get(fanin)
            if current is None or value < current:
                worst[fanin] = value
    return worst


# ---------------------------------------------------------------------------
# Retiming
# ---------------------------------------------------------------------------


def _retime_signals(
    netlist: Netlist,
    clock: ClockConstraint,
    signals: Sequence[str],
    report: STAReport,
    trace: OptimizationTrace,
) -> STAReport:
    """Retime the worst bit endpoint of each selected signal, keeping the move
    only if design WNS does not degrade."""
    for signal in signals:
        bits = [e for e in report.endpoints if e.signal == signal and e.kind == "register"]
        if not bits:
            continue
        worst_bit = min(bits, key=lambda e: e.slack)
        if worst_bit.slack >= 0:
            continue
        wns_before = report.wns
        moved = netlist.retime_endpoint_backward(worst_bit.name)
        if not moved:
            continue
        new_report = analyze(netlist, clock)
        if new_report.wns < wns_before - 1.0:
            # The move hurt the overall WNS (downstream stage became critical).
            # There is no cheap undo for a structural move, so accept it only
            # statistically: the commercial tool exhibits the same behaviour,
            # which the paper reports as "non-optimized" cases.
            report = new_report
            trace.retimed += 1
            continue
        report = new_report
        trace.retimed += 1
    return report
