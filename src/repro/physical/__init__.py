"""Physical design substrate (placement + wire delay, Innovus stand-in)."""

from repro.physical.placement import (
    Placement,
    WIRE_CAP_PER_UM,
    apply_wire_loads,
    clear_wire_loads,
    place,
)
from repro.physical.flow import PlacementResult, place_and_optimize

__all__ = [
    "Placement",
    "WIRE_CAP_PER_UM",
    "apply_wire_loads",
    "clear_wire_loads",
    "place",
    "PlacementResult",
    "place_and_optimize",
]
