"""Lightweight analytical placement (Innovus stand-in).

The paper only uses the physical design stage to show that the optimization
gains obtained at synthesis persist through placement and post-placement
optimization.  This module provides the minimum substrate to evaluate that
claim:

* :func:`place` assigns a 2-D location to every netlist vertex with a fast
  constructive + iterative-averaging placer (levelized x-coordinate, a few
  Gauss-Seidel sweeps pulling each cell toward the centroid of its
  neighbours, plus row legalization spreading),
* :func:`apply_wire_loads` converts Manhattan wire lengths into extra load
  capacitance on each driver, which is how placement affects timing,
* :func:`Placement.total_wirelength` / :func:`Placement.utilization` expose
  the usual placement QoR knobs for tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sta.network import TimingNetwork


#: Wire capacitance per micron of Manhattan wirelength (fF/um).
WIRE_CAP_PER_UM = 0.16
#: Cell pitch used to derive the die size from the cell count (um).
CELL_PITCH = 1.4


@dataclass
class Placement:
    """Result of placing one netlist."""

    design: str
    positions: Dict[int, Tuple[float, float]]
    die_width: float
    die_height: float

    def wirelength(self, network: TimingNetwork, vertex_id: int) -> float:
        """Total Manhattan length of the nets driven by ``vertex_id``."""
        x0, y0 = self.positions[vertex_id]
        length = 0.0
        for consumer in network.fanouts()[vertex_id]:
            x1, y1 = self.positions[consumer]
            length += abs(x1 - x0) + abs(y1 - y0)
        return length

    def total_wirelength(self, network: TimingNetwork) -> float:
        """Half-perimeter-style total wirelength of the design (um)."""
        return sum(self.wirelength(network, v.id) for v in network.vertices)

    def utilization(self, network: TimingNetwork) -> float:
        """Fraction of the die area occupied by cells."""
        cell_area = sum(v.cell.area for v in network.vertices if v.cell is not None)
        die_area = self.die_width * self.die_height
        return cell_area / die_area if die_area > 0 else 0.0


def place(
    network: TimingNetwork,
    seed: int = 0,
    sweeps: int = 6,
) -> Placement:
    """Place ``network`` and return cell positions.

    The placer is deliberately simple but produces the behaviour that matters
    for timing: connected cells end up near each other, long combinational
    chains stretch across the die, and high-fanout drivers accumulate wire
    load.
    """
    rng = random.Random(seed)
    n = len(network.vertices)
    die_side = max(10.0, CELL_PITCH * math.sqrt(max(n, 1)) * 1.4)

    # Initial positions: x follows logic depth, y is random.
    depths = _levels(network)
    max_depth = max(depths) or 1
    positions: Dict[int, Tuple[float, float]] = {}
    for vertex in network.vertices:
        x = die_side * (0.05 + 0.9 * depths[vertex.id] / max_depth)
        y = die_side * rng.random()
        positions[vertex.id] = (x, y)

    # Iterative refinement: move every movable cell toward the centroid of
    # its neighbours (fanins and fanouts), then re-spread to avoid clumping.
    fanouts = network.fanouts()
    for _ in range(sweeps):
        for vertex in network.vertices:
            neighbours = list(vertex.fanins) + list(fanouts[vertex.id])
            if not neighbours:
                continue
            cx = sum(positions[u][0] for u in neighbours) / len(neighbours)
            cy = sum(positions[u][1] for u in neighbours) / len(neighbours)
            old_x, old_y = positions[vertex.id]
            positions[vertex.id] = (0.5 * (old_x + cx), 0.5 * (old_y + cy))
        _spread(positions, die_side, rng)

    return Placement(
        design=network.name,
        positions=positions,
        die_width=die_side,
        die_height=die_side,
    )


def apply_wire_loads(network: TimingNetwork, placement: Placement) -> None:
    """Annotate every driver with the wire load implied by the placement."""
    for vertex in network.vertices:
        length = placement.wirelength(network, vertex.id)
        vertex.extra_load = WIRE_CAP_PER_UM * length
    network.invalidate()


def clear_wire_loads(network: TimingNetwork) -> None:
    """Remove placement-derived wire loads (back to the synthesis view)."""
    for vertex in network.vertices:
        vertex.extra_load = 0.0
    network.invalidate()


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _levels(network: TimingNetwork) -> List[int]:
    levels = [0] * len(network.vertices)
    for vertex_id in network.topological_order():
        vertex = network.vertices[vertex_id]
        if vertex.fanins:
            levels[vertex_id] = 1 + max(levels[f] for f in vertex.fanins)
    return levels


def _spread(
    positions: Dict[int, Tuple[float, float]], die_side: float, rng: random.Random
) -> None:
    """Jitter-and-clamp pass that keeps cells inside the die and un-clumped."""
    for vertex_id, (x, y) in positions.items():
        x += rng.uniform(-0.4, 0.4)
        y += rng.uniform(-0.4, 0.4)
        positions[vertex_id] = (
            min(max(x, 0.0), die_side),
            min(max(y, 0.0), die_side),
        )
