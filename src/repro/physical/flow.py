"""Placement flow: placement, wire-load annotation and post-placement opt.

Reproduces the part of the paper's evaluation (Section 4.4, last paragraph)
showing that synthesis-stage optimization gains persist through placement and
post-placement timing optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.placement import Placement, apply_wire_loads, place
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import STAReport, analyze
from repro.synth.netlist import Netlist
from repro.synth.optimizer import OptimizationTrace, SynthesisOptions, optimize


@dataclass
class PlacementResult:
    """Timing before placement, after placement and after post-placement opt."""

    design: str
    placement: Placement
    pre_placement: STAReport
    post_placement: STAReport
    post_optimization: STAReport
    trace: OptimizationTrace

    @property
    def placement_wns_degradation(self) -> float:
        """WNS change caused by wire loads (negative means worse)."""
        return self.post_placement.wns - self.pre_placement.wns


def place_and_optimize(
    netlist: Netlist,
    clock: ClockConstraint,
    seed: int = 0,
    optimization_passes: int = 2,
) -> PlacementResult:
    """Place ``netlist``, annotate wire loads, and run post-placement opt.

    The netlist is modified in place (wire loads stay annotated and cells may
    be resized), mirroring how the physical tool owns the design after
    hand-off.
    """
    pre_placement = analyze(netlist, clock)

    placement = place(netlist, seed=seed)
    apply_wire_loads(netlist, placement)
    post_placement = analyze(netlist, clock)

    options = SynthesisOptions(
        effort_passes=optimization_passes,
        critical_fraction=0.08,
        area_recovery=False,
    )
    post_optimization, trace = optimize(netlist, clock, options)

    return PlacementResult(
        design=netlist.name,
        placement=placement,
        pre_placement=pre_placement,
        post_placement=post_placement,
        post_optimization=post_optimization,
        trace=trace,
    )
