"""Eval gate of the model lifecycle: held-out metrics + verdict + report.

A candidate bundle produced by ``python -m repro retrain`` may only become
``name@promoted`` after beating the currently promoted bundle on a held-out
design split.  The gate follows the paper's Table-5 evaluation: per-design
Pearson correlation of predicted signal arrival times against the ground
truth labels (averaged over the holdout), plus a prediction-latency budget
so a candidate cannot buy accuracy with pathological inference cost.

Every evaluation — promoted or rejected — is written as a JSON **eval
report** (:data:`EVAL_REPORT_SCHEMA`); its sha256 digest over the canonical
JSON encoding is recorded on the promotion entry, so ``/health`` of a
serving process can be traced back to the exact numbers that justified the
bundle it is running.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.core.metrics import pearson_r

#: Version tag of the eval-report JSON layout.
EVAL_REPORT_SCHEMA = "repro-eval-report/1"

#: Maximum tolerated drop of the holdout mean signal-arrival R before a
#: candidate is rejected (candidate may be up to this much *worse* than the
#: promoted baseline; improvements always pass).
MIN_R_DELTA_ENV_VAR = "REPRO_EVAL_MIN_R_DELTA"
DEFAULT_MIN_R_DELTA = 0.02

#: Latency budget: candidate mean predict seconds may be at most this
#: multiple of the baseline's (generous by default — the gate catches
#: pathological slowness, not benchmark noise).
LATENCY_RATIO_ENV_VAR = "REPRO_EVAL_LATENCY_RATIO"
DEFAULT_LATENCY_RATIO = 5.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class EvalThresholds:
    """No-regression bounds applied by :func:`compare_evals`."""

    #: Candidate mean R may be at most this much below the baseline's.
    min_r_delta: float = DEFAULT_MIN_R_DELTA
    #: Candidate mean predict latency may be at most this multiple of the
    #: baseline's.
    latency_ratio: float = DEFAULT_LATENCY_RATIO

    @classmethod
    def from_env(cls) -> "EvalThresholds":
        return cls(
            min_r_delta=_env_float(MIN_R_DELTA_ENV_VAR, DEFAULT_MIN_R_DELTA),
            latency_ratio=_env_float(LATENCY_RATIO_ENV_VAR, DEFAULT_LATENCY_RATIO),
        )


def design_signal_r(timer: Any, record: Any, prediction: Optional[Any] = None) -> float:
    """Pearson R of predicted vs labeled signal arrivals on one design."""
    if prediction is None:
        prediction = timer.predict(record)
    signal_labels = record.signal_labels()
    signals = [s for s in sorted(signal_labels) if s in prediction.signal_arrival]
    if not signals:
        return 0.0
    labels = [signal_labels[s] for s in signals]
    predicted = [prediction.signal_arrival[s] for s in signals]
    return pearson_r(labels, predicted)


def evaluate_timer(timer: Any, records: Sequence[Any]) -> Dict[str, Any]:
    """Holdout evaluation of one fitted timer: per-design R + mean latency.

    The first record is predicted once untimed to warm the feature caches,
    then every record is predicted once under the clock; the timed
    predictions also feed the R computation, so the gate measures exactly
    the inference it scores.
    """
    if not records:
        raise ValueError("cannot evaluate a timer on an empty holdout")
    timer.predict(records[0])  # warm-up: JIT-ish caches, page-in
    designs: Dict[str, float] = {}
    latencies: List[float] = []
    for record in records:
        started = time.perf_counter()
        prediction = timer.predict(record)
        latencies.append(time.perf_counter() - started)
        designs[record.name] = round(design_signal_r(timer, record, prediction), 6)
    return {
        "designs": designs,
        "mean_r": round(sum(designs.values()) / len(designs), 6),
        "mean_predict_seconds": round(sum(latencies) / len(latencies), 6),
    }


def compare_evals(
    candidate: Dict[str, Any],
    baseline: Optional[Dict[str, Any]],
    thresholds: Optional[EvalThresholds] = None,
) -> Dict[str, Any]:
    """No-regression verdict of a candidate eval against the baseline's.

    With no baseline (the name was never promoted) the candidate passes by
    definition — the bootstrap promotion.  Otherwise the candidate is
    rejected if its mean R drops more than ``min_r_delta`` below the
    baseline or its mean predict latency exceeds ``latency_ratio`` times
    the baseline's.
    """
    thresholds = thresholds or EvalThresholds.from_env()
    reasons: List[str] = []
    if baseline is None:
        return {
            "verdict": "promote",
            "reasons": ["no promoted baseline: bootstrap promotion"],
            "candidate_mean_r": candidate["mean_r"],
            "baseline_mean_r": None,
            "r_delta": None,
            "latency_ratio_observed": None,
        }
    r_delta = candidate["mean_r"] - baseline["mean_r"]
    if r_delta < -thresholds.min_r_delta:
        reasons.append(
            f"holdout mean R regressed by {-r_delta:.4f} "
            f"(candidate {candidate['mean_r']:.4f} vs baseline {baseline['mean_r']:.4f}, "
            f"budget {thresholds.min_r_delta:.4f})"
        )
    baseline_latency = baseline["mean_predict_seconds"]
    ratio = (
        candidate["mean_predict_seconds"] / baseline_latency if baseline_latency > 0 else 1.0
    )
    if ratio > thresholds.latency_ratio:
        reasons.append(
            f"predict latency blew the budget: {ratio:.2f}x the baseline "
            f"(allowed {thresholds.latency_ratio:.2f}x)"
        )
    return {
        "verdict": "reject" if reasons else "promote",
        "reasons": reasons or ["no regression on the holdout split"],
        "candidate_mean_r": candidate["mean_r"],
        "baseline_mean_r": baseline["mean_r"],
        "r_delta": round(r_delta, 6),
        "latency_ratio_observed": round(ratio, 4),
    }


def eval_digest(report: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON encoding of an eval report.

    Canonical means sorted keys and no whitespace, so the digest is stable
    across writers; the ``digest`` field itself is excluded (it is derived).
    """
    body = {key: value for key, value in report.items() if key != "digest"}
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(encoded).hexdigest()


def build_eval_report(
    name: str,
    candidate_bundle_id: str,
    candidate_eval: Dict[str, Any],
    baseline_bundle_id: Optional[str],
    baseline_eval: Optional[Dict[str, Any]],
    verdict: Dict[str, Any],
    thresholds: EvalThresholds,
    holdout_designs: Sequence[str],
) -> Dict[str, Any]:
    """Assemble the JSON eval-report artifact (digest filled in)."""
    report = {
        "schema": EVAL_REPORT_SCHEMA,
        "model": name,
        "created_at": time.time(),
        "candidate": {"bundle_id": candidate_bundle_id, "eval": candidate_eval},
        "baseline": (
            {"bundle_id": baseline_bundle_id, "eval": baseline_eval}
            if baseline_bundle_id is not None
            else None
        ),
        "holdout_designs": list(holdout_designs),
        "thresholds": {
            "min_r_delta": thresholds.min_r_delta,
            "latency_ratio": thresholds.latency_ratio,
        },
        "verdict": verdict["verdict"],
        "comparison": verdict,
    }
    report["digest"] = eval_digest(report)
    return report


def write_eval_report(report: Dict[str, Any], path: os.PathLike) -> Path:
    """Write an eval report as pretty JSON; returns the path written."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return destination
