"""Online model lifecycle: retrain → eval gate → canary promotion → hot swap.

The registry (:mod:`repro.serve.registry`) stores versioned bundles and the
worker pool (:mod:`repro.serve.supervisor`) can reload them; this package
closes the loop between the two:

* :mod:`repro.lifecycle.retrain` — ``python -m repro retrain``: ingest new
  designs, fit a candidate, register it, and promote it only after the eval
  gate passes;
* :mod:`repro.lifecycle.evaluate` — the gate itself: held-out Table-5-style
  signal-arrival R plus a prediction-latency budget, emitted as a JSON eval
  report whose digest is recorded on the promotion;
* :mod:`repro.lifecycle.watch` — a serving process following
  ``name@promoted`` hot-swaps bundles with zero dropped requests.
"""

from repro.lifecycle.evaluate import (
    DEFAULT_LATENCY_RATIO,
    DEFAULT_MIN_R_DELTA,
    EVAL_REPORT_SCHEMA,
    LATENCY_RATIO_ENV_VAR,
    MIN_R_DELTA_ENV_VAR,
    EvalThresholds,
    build_eval_report,
    compare_evals,
    design_signal_r,
    eval_digest,
    evaluate_timer,
    write_eval_report,
)
from repro.lifecycle.retrain import (
    EVAL_STAGE,
    INGEST_STAGE,
    RETRAIN_STAGE,
    RetrainConfig,
    run_retrain,
    training_config,
)
from repro.lifecycle.watch import PromotionWatcher

__all__ = [
    "DEFAULT_LATENCY_RATIO",
    "DEFAULT_MIN_R_DELTA",
    "EVAL_REPORT_SCHEMA",
    "EVAL_STAGE",
    "INGEST_STAGE",
    "LATENCY_RATIO_ENV_VAR",
    "MIN_R_DELTA_ENV_VAR",
    "RETRAIN_STAGE",
    "EvalThresholds",
    "PromotionWatcher",
    "RetrainConfig",
    "build_eval_report",
    "compare_evals",
    "design_signal_r",
    "eval_digest",
    "evaluate_timer",
    "run_retrain",
    "training_config",
    "write_eval_report",
]
