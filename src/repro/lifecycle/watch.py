"""Promotion watcher: a serving process follows ``name@promoted`` live.

``python -m repro serve --model name@promoted --refresh-s N`` attaches a
:class:`PromotionWatcher` to the running service.  Every ``N`` seconds the
watcher reads the registry's promotion pointer; when it moves to a bundle
the service is not already running, the watcher loads the verified payload
and hot-swaps it in:

* single-process :class:`~repro.serve.service.TimingService` — one atomic
  attribute rebind; queued requests resolve against exactly one bundle;
* :class:`~repro.serve.service.PooledTimingService` — the parent rebinds
  and the worker pool rolls one worker at a time onto the new payload,
  in-flight requests retried on siblings (zero drops by construction).

The swap is crash-safe: a promotion pointing at a bundle that fails
verification leaves the service on its current bundle (and counts a
``serve_promotion_swap_failures``) instead of taking it down.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Optional

from repro.runtime.cache import gc_paused
from repro.serve.registry import ModelRegistry, RegistryError
from repro.serve.service import PooledTimingService, TimingService


class PromotionWatcher:
    """Polls a registry's promoted alias and hot-swaps the service to match."""

    def __init__(
        self,
        service: TimingService,
        registry: ModelRegistry,
        name: str,
        interval_s: float = 5.0,
    ):
        self.service = service
        self.registry = registry
        self.name = name
        self.interval_s = max(float(interval_s), 0.1)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- one poll (exposed for deterministic tests) --------------------------------

    def poll_once(self) -> bool:
        """Check the promoted alias; swap if it moved.  Returns True on swap."""
        from repro.core.pipeline import RTLTimer

        try:
            entry = self.registry.promoted(self.name)
        except RegistryError:
            return False  # index mid-write or unreadable: try again next tick
        if entry is None or entry["bundle_id"] == self.service.active_bundle_id:
            return False
        try:
            payload, manifest = self.registry.payload(entry["bundle_id"])
            with gc_paused():
                state = pickle.loads(payload)
            timer = RTLTimer.from_state(state)
        except Exception:  # RegistryError, unpickle trouble, bad state layout
            # Keep serving the current bundle; a bad promotion must not take
            # the service down. rollback/re-promote fixes the pointer.
            self.service.report.incr("serve_promotion_swap_failures")
            return False
        manifest = dict(manifest)
        manifest["eval_digest"] = entry.get("eval_digest")
        manifest["promoted_at"] = entry.get("promoted_at")
        if isinstance(self.service, PooledTimingService):
            self.service.reload(timer, manifest=manifest, payload=payload)
        else:
            self.service.reload(timer, manifest=manifest)
        self.service.report.incr("serve_promotion_swaps")
        return True

    # -- background thread ---------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.poll_once()
            except Exception:
                # The watcher must outlive transient registry trouble.
                self.service.report.incr("serve_promotion_swap_failures")

    def start(self) -> "PromotionWatcher":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="promotion-watcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "PromotionWatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
