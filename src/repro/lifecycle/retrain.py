"""``python -m repro retrain``: ingest → fit → register → eval gate → promote.

One retrain run closes the online-lifecycle loop:

1. **Ingest** — fold newly arrived designs into the training set: extra
   benchmark designs beyond the base slice and/or fuzz-corpus seeds
   (replayable ``(seed, size_class)`` pairs elaborated through the shared
   artifact cache, the same ingestion path ``/predict`` uses for raw
   source).
2. **Retrain** — fit a fresh :class:`~repro.core.pipeline.RTLTimer` on the
   widened set and register it as a candidate bundle (never as the default
   — registration is not deployment).
3. **Eval gate** — score candidate and currently promoted baseline on a
   held-out design split (:mod:`repro.lifecycle.evaluate`), write the JSON
   eval report either way.
4. **Promote** — flip ``name@promoted`` to the candidate *only* on a
   no-regression verdict, recording the eval digest on the promotion entry.

The holdout split is disjoint from the training slice by construction and
verified at runtime — a retrain that would evaluate on its own training
designs refuses to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.lifecycle.evaluate import (
    EvalThresholds,
    build_eval_report,
    compare_evals,
    evaluate_timer,
    write_eval_report,
)
from repro.runtime import report as report_mod

#: Stage names of the retrain flow (shared with the lifecycle benchmark).
INGEST_STAGE = "lifecycle.ingest"
RETRAIN_STAGE = "lifecycle.retrain"
EVAL_STAGE = "lifecycle.eval"


def training_config(
    estimators: Optional[int] = None, fast: bool = False, seed: int = 0
):
    """Translate lifecycle/CLI training knobs into an :class:`RTLTimerConfig`.

    ``estimators`` must be positive when given; ``None`` selects the preset
    (20 fast / 60 full).  An explicit ``is None`` check — not truthiness —
    so a caller passing 0 gets an error instead of silently training with
    the default.
    """
    from repro.core import BitwiseConfig, OverallConfig, RTLTimerConfig, SignalwiseConfig

    if estimators is not None and estimators <= 0:
        raise ValueError(f"estimators must be a positive integer, got {estimators}")
    resolved = estimators if estimators is not None else (20 if fast else 60)
    return RTLTimerConfig(
        bitwise=BitwiseConfig(
            n_estimators=resolved,
            max_depth=5 if fast else 6,
            max_train_endpoints_per_design=80 if fast else 250,
            seed=seed,
        ),
        signalwise=SignalwiseConfig(
            n_estimators=resolved,
            ranker_estimators=max(resolved // 2, 10) if fast else 80,
            seed=seed,
        ),
        overall=OverallConfig(n_estimators=max(resolved // 2, 10), seed=seed),
    )


@dataclass
class RetrainConfig:
    """One retrain run's knobs (CLI flags map 1:1; tests inject specs)."""

    #: Registry name whose promoted alias the run feeds.
    name: str = "rtl-timer"
    #: Base training slice: the first N benchmark designs.
    designs: int = 8
    #: Newly ingested benchmark designs appended after the base slice.
    extra_designs: int = 0
    #: Newly ingested fuzz-corpus members, by replayable seed.
    fuzz_seeds: Sequence[int] = field(default_factory=tuple)
    #: Size class the fuzz seeds are expanded under.
    fuzz_size_class: str = "small"
    #: Held-out designs: the last N benchmark designs (disjoint from the
    #: training slice by construction, verified at runtime).
    holdout: int = 3
    #: Boosting rounds per stage (None: preset; must be positive).
    estimators: Optional[int] = None
    #: Small fast-training preset (CI smoke lanes).
    fast: bool = False
    #: Model seed.
    seed: int = 0
    #: Where the eval report lands (None: ``<registry>/eval-reports/``).
    report_out: Optional[str] = None
    #: Verdict thresholds (None: from the environment knobs).
    thresholds: Optional[EvalThresholds] = None
    #: Test injection points: explicit spec lists override the benchmark
    #: suite slices entirely.
    train_specs: Optional[Sequence[Any]] = None
    holdout_specs: Optional[Sequence[Any]] = None


def _resolve_specs(config: RetrainConfig):
    """The (train, holdout) spec split; raises on overlap or exhaustion."""
    if config.train_specs is not None or config.holdout_specs is not None:
        if config.train_specs is None or config.holdout_specs is None:
            raise ValueError("train_specs and holdout_specs must be injected together")
        train, holdout = list(config.train_specs), list(config.holdout_specs)
    else:
        from repro.hdl.generate import BENCHMARK_SPECS

        train_count = max(config.designs, 1) + max(config.extra_designs, 0)
        holdout_count = max(config.holdout, 1)
        if train_count + holdout_count > len(BENCHMARK_SPECS):
            raise ValueError(
                f"cannot split {len(BENCHMARK_SPECS)} benchmark designs into "
                f"{train_count} training + {holdout_count} holdout"
            )
        train = list(BENCHMARK_SPECS[:train_count])
        holdout = list(BENCHMARK_SPECS[-holdout_count:])
    overlap = {spec.name for spec in train} & {spec.name for spec in holdout}
    if overlap:
        raise ValueError(f"holdout designs overlap the training set: {sorted(overlap)}")
    if not holdout:
        raise ValueError("retrain needs at least one holdout design for the eval gate")
    return train, holdout


def _ingest_fuzz_records(config: RetrainConfig, report) -> List[Any]:
    """Elaborate fuzz-corpus seeds into DesignRecords via the artifact cache."""
    if not config.fuzz_seeds:
        return []
    from repro.core.dataset import build_design_record
    from repro.fuzz.corpus import generate_fuzz_design
    from repro.runtime.cache import ArtifactCache, record_key

    cache = ArtifactCache()
    records = []
    for seed in config.fuzz_seeds:
        design = generate_fuzz_design(int(seed), config.fuzz_size_class)
        records.append(
            cache.load_or_build(
                record_key(design.source, None, design.name),
                lambda design=design: build_design_record(design.source, name=design.name),
            )
        )
    report.incr("lifecycle_fuzz_ingested", len(records))
    return records


def run_retrain(
    config: RetrainConfig,
    registry: Optional[Any] = None,
    report: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute one retrain → eval → (maybe) promote cycle; returns the result.

    The result dict carries ``promoted`` (bool), the verdict, the candidate
    manifest, the promotion entry (when promoted) and the eval-report path.
    The registry default is **only** flipped on a no-regression verdict;
    the eval report is written either way.
    """
    from repro.core import RTLTimer, build_dataset
    from repro.serve.registry import ModelRegistry

    registry = registry or ModelRegistry()
    report = report if report is not None else report_mod.RuntimeReport(
        meta={"command": "retrain", "model": config.name}
    )
    train_specs, holdout_specs = _resolve_specs(config)

    with report_mod.activate(report):
        with report.stage(INGEST_STAGE):
            train_records = build_dataset(train_specs, report=report)
            train_records.extend(_ingest_fuzz_records(config, report))
            holdout_records = build_dataset(holdout_specs, report=report)
        report.incr("lifecycle_train_designs", len(train_records))

        with report.stage(RETRAIN_STAGE):
            timer = RTLTimer(
                training_config(config.estimators, fast=config.fast, seed=config.seed)
            ).fit(train_records)
        manifest = registry.save(
            timer,
            config.name,
            metadata={
                "lifecycle": "retrain",
                "fast": config.fast,
                "train_designs": len(train_records),
                "fuzz_seeds": [int(seed) for seed in config.fuzz_seeds],
            },
        )
        candidate_id = manifest["bundle_id"]

        with report.stage(EVAL_STAGE):
            candidate_eval = evaluate_timer(timer, holdout_records)
            promoted_entry = registry.promoted(config.name)
            baseline_id = promoted_entry["bundle_id"] if promoted_entry else None
            baseline_eval = None
            if baseline_id is not None and baseline_id != candidate_id:
                baseline_timer = registry.load(baseline_id)
                baseline_eval = evaluate_timer(baseline_timer, holdout_records)
            elif baseline_id == candidate_id:
                # Retraining reproduced the promoted bundle bit-for-bit
                # (content addressing): the candidate is its own baseline.
                baseline_eval = candidate_eval

        thresholds = config.thresholds or EvalThresholds.from_env()
        verdict = compare_evals(
            candidate_eval,
            baseline_eval if baseline_id is not None else None,
            thresholds,
        )
        eval_report = build_eval_report(
            config.name,
            candidate_id,
            candidate_eval,
            baseline_id,
            baseline_eval,
            verdict,
            thresholds,
            [record.name for record in holdout_records],
        )
        report_path = write_eval_report(
            eval_report,
            config.report_out
            or Path(registry.directory) / "eval-reports" / f"{candidate_id[:12]}.json",
        )

        promotion = None
        if verdict["verdict"] == "promote":
            promotion = registry.promote(
                config.name,
                candidate_id,
                eval_digest=eval_report["digest"],
                source="retrain",
            )
            report.incr("lifecycle_promotions")
        else:
            report.incr("lifecycle_rejections")

    return {
        "name": config.name,
        "promoted": promotion is not None,
        "verdict": verdict["verdict"],
        "reasons": verdict["reasons"],
        "candidate": manifest,
        "promotion": promotion,
        "eval_report": eval_report,
        "report_path": str(report_path),
    }
