"""Word-level reference interpreter for the supported Verilog subset.

Evaluates a :class:`~repro.hdl.design.Design` for one assignment of input and
register values using ordinary Python integer arithmetic.  The test suite
uses it as an executable specification: bit-blasted BOGs must produce the
same register next-state and output values as this interpreter for random
stimulus.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.hdl.ast_nodes import (
    BinaryOp,
    BitSelect,
    Concat,
    Expression,
    Identifier,
    Number,
    PartSelect,
    Repeat,
    Ternary,
    UnaryOp,
)
from repro.faults import fault_active
from repro.hdl.design import AnalysisError, Design, expression_width


def _mask(width: int) -> int:
    return (1 << width) - 1


class Interpreter:
    """Evaluates expressions of one design against a value environment."""

    def __init__(self, design: Design):
        self.design = design

    def evaluate_step(self, values: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate one clock cycle.

        ``values`` holds the current value of every input and register signal
        (missing signals default to 0).  The return value maps every register
        signal to its next-state value and every output/wire to its settled
        combinational value.
        """
        env: Dict[str, int] = {}
        for signal in self.design.signals.values():
            env[signal.name] = int(values.get(signal.name, 0)) & _mask(signal.width)

        self._settle_wires(env)

        result: Dict[str, int] = {}
        for update in self.design.registers:
            width = self.design.width_of(update.target)
            result[update.target] = self.evaluate(update.expression, env) & _mask(width)
        for signal in self.design.register_signals:
            result.setdefault(signal.name, env[signal.name])
        for signal in self.design.outputs + self.design.wires:
            result[signal.name] = env[signal.name]
        return result

    def _settle_wires(self, env: Dict[str, int]) -> None:
        """Evaluate continuous assigns repeatedly until they reach a fixpoint.

        Assigns may be declared in any order (a wire may be used before the
        assign that drives it appears), so every pass re-evaluates all of
        them; the supported subset has no combinational loops (the BOG builder
        enforces that), so at most ``len(assigns)`` passes are needed.
        """
        assigns = list(self.design.assigns)
        for _ in range(len(assigns) + 1):
            changed = False
            for assign in assigns:
                value = self.evaluate(assign.expression, env)
                signal = self.design.signal(assign.target)
                if assign.msb is None:
                    new_value = value & _mask(signal.width)
                else:
                    low = min(assign.msb, assign.lsb) - signal.lsb
                    width = abs(assign.msb - assign.lsb) + 1
                    current = env.get(assign.target, 0)
                    cleared = current & ~(_mask(width) << low)
                    new_value = cleared | ((value & _mask(width)) << low)
                if env.get(assign.target) != new_value:
                    env[assign.target] = new_value
                    changed = True
            if not changed:
                return

    # -- expression evaluation ----------------------------------------------

    def evaluate(self, expr: Expression, env: Mapping[str, int]) -> int:
        design = self.design
        if isinstance(expr, Identifier):
            return env[expr.name]
        if isinstance(expr, Number):
            if expr.width is not None:
                return expr.value & _mask(expr.width)
            return expr.value
        if isinstance(expr, BitSelect):
            signal = design.signal(expr.name)
            return (env[expr.name] >> (expr.index - signal.lsb)) & 1
        if isinstance(expr, PartSelect):
            signal = design.signal(expr.name)
            low = min(expr.msb, expr.lsb) - signal.lsb
            width = abs(expr.msb - expr.lsb) + 1
            return (env[expr.name] >> low) & _mask(width)
        if isinstance(expr, Concat):
            value = 0
            for part in expr.parts:
                width = expression_width(part, design)
                value = (value << width) | (self.evaluate(part, env) & _mask(width))
            return value
        if isinstance(expr, Repeat):
            width = expression_width(expr.expr, design)
            part = self.evaluate(expr.expr, env) & _mask(width)
            value = 0
            for _ in range(expr.count):
                value = (value << width) | part
            return value
        if isinstance(expr, UnaryOp):
            return self._unary(expr, env)
        if isinstance(expr, BinaryOp):
            return self._binary(expr, env)
        if isinstance(expr, Ternary):
            cond = self.evaluate(expr.cond, env)
            branch = expr.if_true if cond != 0 else expr.if_false
            return self.evaluate(branch, env)
        raise AnalysisError(f"cannot interpret expression {expr!r}")

    def _unary(self, expr: UnaryOp, env: Mapping[str, int]) -> int:
        width = expression_width(expr.operand, self.design)
        value = self.evaluate(expr.operand, env) & _mask(width)
        op = expr.op
        if op == "~":
            return (~value) & _mask(width)
        if op == "!":
            return int(value == 0)
        if op == "&":
            return int(value == _mask(width))
        if op == "|":
            return int(value != 0)
        if op == "^":
            return bin(value).count("1") & 1
        if op == "~&":
            return int(value != _mask(width))
        if op == "~|":
            return int(value == 0)
        if op in ("~^", "^~"):
            return 1 - (bin(value).count("1") & 1)
        if op == "-":
            return (-value) & _mask(width)
        raise AnalysisError(f"unsupported unary operator {op!r}")

    def _binary(self, expr: BinaryOp, env: Mapping[str, int]) -> int:
        design = self.design
        op = expr.op
        left_width = expression_width(expr.left, design)
        right_width = expression_width(expr.right, design)
        left = self.evaluate(expr.left, env) & _mask(left_width)
        right = self.evaluate(expr.right, env) & _mask(right_width)
        width = max(left_width, right_width)

        if op == "&&":
            return int(left != 0 and right != 0)
        if op == "||":
            return int(left != 0 or right != 0)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op in ("~^", "^~"):
            return (~(left ^ right)) & _mask(width)
        if op == "+":
            if fault_active("interpret.add"):
                # Debug fault point: an off-by-one adder must diverge from
                # the bit-blasted ripple-carry adder under the fuzz
                # campaign's interpreter-vs-simulation oracle.
                return (left + right + 1) & _mask(width)
            return (left + right) & _mask(width)
        if op == "-":
            return (left - right) & _mask(width)
        if op == "*":
            return (left * right) & _mask(width)
        if op == "<<":
            return (left << right) & _mask(left_width)
        if op == ">>":
            return (left >> right) & _mask(left_width)
        raise AnalysisError(f"unsupported binary operator {op!r}")
