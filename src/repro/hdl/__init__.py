"""Verilog front end: lexer, parser, AST, word-level design IR and generators.

This package implements the RTL-handling substrate that the RTL-Timer paper
obtains from commercial front ends.  It supports a synthesizable Verilog
subset sufficient for the benchmark families used in the paper's evaluation
(register banks, datapaths, FSMs, pipelines, bus fabrics):

* module declarations with ``input`` / ``output`` ports,
* ``wire`` / ``reg`` declarations with vector ranges,
* continuous ``assign`` statements,
* ``always @(posedge clk)`` processes with non-blocking assignments and
  ``if``/``else`` trees,
* expressions over the usual bitwise, arithmetic, relational, logical,
  reduction, shift, concatenation, replication, ternary and select operators.

The public entry points are :func:`parse_source` (text -> :class:`Module`
AST), :func:`analyze` (AST -> :class:`~repro.hdl.design.Design` word-level
IR) and :func:`generate_design` / :func:`benchmark_suite` (synthetic
benchmark designs mirroring Table 3 of the paper).
"""

from repro.hdl.ast_nodes import (
    Module,
    PortDecl,
    NetDecl,
    Assign,
    AlwaysFF,
    NonBlocking,
    IfStatement,
    Identifier,
    Number,
    UnaryOp,
    BinaryOp,
    Ternary,
    BitSelect,
    PartSelect,
    Concat,
    Repeat,
)
from repro.hdl.lexer import Lexer, Token, TokenKind, LexerError
from repro.hdl.parser import Parser, ParseError, parse_source
from repro.hdl.design import Design, Signal, SignalKind, analyze, AnalysisError
from repro.hdl.generate import (
    DesignSpec,
    GeneratorConfig,
    generate_design,
    benchmark_suite,
    BENCHMARK_SPECS,
)
from repro.hdl.writer import write_verilog

__all__ = [
    "Module",
    "PortDecl",
    "NetDecl",
    "Assign",
    "AlwaysFF",
    "NonBlocking",
    "IfStatement",
    "Identifier",
    "Number",
    "UnaryOp",
    "BinaryOp",
    "Ternary",
    "BitSelect",
    "PartSelect",
    "Concat",
    "Repeat",
    "Lexer",
    "Token",
    "TokenKind",
    "LexerError",
    "Parser",
    "ParseError",
    "parse_source",
    "Design",
    "Signal",
    "SignalKind",
    "analyze",
    "AnalysisError",
    "DesignSpec",
    "GeneratorConfig",
    "generate_design",
    "benchmark_suite",
    "BENCHMARK_SPECS",
    "write_verilog",
]
