"""Verilog re-emission helpers.

Two jobs live here:

* :func:`write_verilog` re-emits a parsed :class:`~repro.hdl.ast_nodes.Module`
  as Verilog text (used by tests for parse/print round-trips).
* :func:`annotate_lines` inserts comment annotations next to declaration
  lines, which the RTL-Timer annotation tool in :mod:`repro.core.annotate`
  uses to write predicted slack next to each sequential signal.
"""

from __future__ import annotations

import re
from typing import List, Mapping, Optional, Sequence

from repro.hdl.ast_nodes import (
    BinaryOp,
    BitSelect,
    Concat,
    Expression,
    Identifier,
    IfStatement,
    Module,
    NonBlocking,
    Number,
    PartSelect,
    Repeat,
    Statement,
    Ternary,
    UnaryOp,
)


def expression_to_verilog(expr: Expression) -> str:
    """Render an expression AST back to Verilog source text."""
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, Number):
        if expr.width is None:
            return str(expr.value)
        return f"{expr.width}'d{expr.value}"
    if isinstance(expr, BitSelect):
        return f"{expr.name}[{expr.index}]"
    if isinstance(expr, PartSelect):
        return f"{expr.name}[{expr.msb}:{expr.lsb}]"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}({expression_to_verilog(expr.operand)})"
    if isinstance(expr, BinaryOp):
        return (
            f"({expression_to_verilog(expr.left)} {expr.op} "
            f"{expression_to_verilog(expr.right)})"
        )
    if isinstance(expr, Ternary):
        return (
            f"({expression_to_verilog(expr.cond)} ? "
            f"{expression_to_verilog(expr.if_true)} : "
            f"{expression_to_verilog(expr.if_false)})"
        )
    if isinstance(expr, Concat):
        return "{" + ", ".join(expression_to_verilog(p) for p in expr.parts) + "}"
    if isinstance(expr, Repeat):
        return f"{{{expr.count}{{{expression_to_verilog(expr.expr)}}}}}"
    raise TypeError(f"cannot render expression {expr!r}")


def _statement_lines(statement: Statement, indent: str) -> List[str]:
    if isinstance(statement, NonBlocking):
        return [
            f"{indent}{expression_to_verilog(statement.target)} <= "
            f"{expression_to_verilog(statement.value)};"
        ]
    if isinstance(statement, IfStatement):
        lines = [f"{indent}if ({expression_to_verilog(statement.cond)}) begin"]
        for inner in statement.then_body:
            lines.extend(_statement_lines(inner, indent + "  "))
        lines.append(f"{indent}end")
        if statement.else_body:
            lines.append(f"{indent}else begin")
            for inner in statement.else_body:
                lines.extend(_statement_lines(inner, indent + "  "))
            lines.append(f"{indent}end")
        return lines
    raise TypeError(f"cannot render statement {statement!r}")


def write_verilog(module: Module) -> str:
    """Emit a module AST as Verilog source text."""
    lines: List[str] = []
    port_names = [port.name for port in module.ports]
    lines.append(f"module {module.name} (")
    lines.append("  " + ", ".join(port_names))
    lines.append(");")

    for port in module.ports:
        range_text = f"[{port.msb}:{port.lsb}] " if port.width > 1 else ""
        reg_text = "reg " if port.is_reg else ""
        lines.append(f"  {port.direction} {reg_text}{range_text}{port.name};")

    for net in module.nets:
        range_text = f"[{net.msb}:{net.lsb}] " if net.width > 1 else ""
        lines.append(f"  {net.kind} {range_text}{net.name};")

    for assign in module.assigns:
        lines.append(
            f"  assign {expression_to_verilog(assign.target)} = "
            f"{expression_to_verilog(assign.value)};"
        )

    for block in module.always_blocks:
        lines.append(f"  always @(posedge {block.clock}) begin")
        for statement in block.body:
            lines.extend(_statement_lines(statement, "    "))
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def annotate_lines(
    source: str,
    signal_comments: Mapping[str, str],
    header_comments: Sequence[str] = (),
) -> str:
    """Insert comments next to signal declaration lines in ``source``.

    ``signal_comments`` maps a signal name to the comment text (without the
    leading ``//``) to append to the line that declares it.  ``header_comments``
    are inserted at the very top of the file.  Lines that do not declare an
    annotated signal are returned unchanged, so the output remains valid
    Verilog that diffs cleanly against the input.
    """
    annotated: List[str] = [f"// {text}" for text in header_comments]
    remaining = dict(signal_comments)
    for line in source.splitlines():
        target: Optional[str] = None
        stripped = line.strip()
        if _DECLARATION_RE.match(stripped):
            for name in list(remaining):
                if _declares(stripped, name):
                    target = name
                    break
        if target is not None:
            annotated.append(f"{line}  // {remaining.pop(target)}")
        else:
            annotated.append(line)
    return "\n".join(annotated) + "\n"


#: A declaration statement starts with a declaration *keyword token*.  The
#: word boundary is essential: a plain prefix match would also hit statements
#: whose first identifier merely starts with a keyword, e.g. the assignment
#: ``regfile_q <= x;`` or ``wire_sel = y;``.
_DECLARATION_RE = re.compile(r"^(?:input|output|inout|reg|wire)\b")


def _declares(declaration_line: str, name: str) -> bool:
    """True when a declaration statement declares the signal ``name``."""
    if not _DECLARATION_RE.match(declaration_line):
        return False
    body = declaration_line.split("//")[0]
    # Keep only the declared names: drop any initializer expression, then
    # strip the range if present and compare identifier tokens.
    body = body.split("=")[0].rstrip("; \t")
    tokens = (
        body.replace(",", " ")
        .replace("]", "] ")
        .split()
    )
    return name in tokens
