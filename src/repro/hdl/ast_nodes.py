"""Abstract syntax tree node definitions for the supported Verilog subset.

The AST is intentionally small: it models exactly the constructs the
benchmark generator emits and the elaborator consumes.  Every node is an
immutable dataclass so trees can be shared safely between representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression:
    """Base class for all expression nodes."""


@dataclass(frozen=True)
class Identifier(Expression):
    """Reference to a named signal (full width)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Number(Expression):
    """Literal constant.

    ``width`` is ``None`` for unsized decimal literals; the analyzer infers a
    context width during elaboration.
    """

    value: int
    width: Optional[int] = None

    def __str__(self) -> str:
        if self.width is None:
            return str(self.value)
        return f"{self.width}'d{self.value}"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator.

    Supported operators: ``~`` (bitwise not), ``!`` (logical not), ``-``
    (arithmetic negation) and the reductions ``&``, ``|``, ``^``, ``~&``,
    ``~|``, ``~^``.
    """

    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator.

    Supported operators: ``&``, ``|``, ``^``, ``~^``, ``+``, ``-``, ``*``,
    ``<<``, ``>>``, ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``&&``,
    ``||``.
    """

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Ternary(Expression):
    """Conditional operator ``cond ? if_true : if_false``."""

    cond: Expression
    if_true: Expression
    if_false: Expression

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


@dataclass(frozen=True)
class BitSelect(Expression):
    """Single-bit select ``name[index]`` with a constant index."""

    name: str
    index: int

    def __str__(self) -> str:
        return f"{self.name}[{self.index}]"


@dataclass(frozen=True)
class PartSelect(Expression):
    """Constant part select ``name[msb:lsb]``."""

    name: str
    msb: int
    lsb: int

    def __str__(self) -> str:
        return f"{self.name}[{self.msb}:{self.lsb}]"


@dataclass(frozen=True)
class Concat(Expression):
    """Concatenation ``{a, b, c}`` (left-most part is the most significant)."""

    parts: Tuple[Expression, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(p) for p in self.parts) + "}"


@dataclass(frozen=True)
class Repeat(Expression):
    """Replication ``{count{expr}}``."""

    count: int
    expr: Expression

    def __str__(self) -> str:
        return f"{{{self.count}{{{self.expr}}}}}"


# ---------------------------------------------------------------------------
# Statements and declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class for statements inside ``always`` blocks."""


@dataclass(frozen=True)
class NonBlocking(Statement):
    """Non-blocking assignment ``lhs <= rhs;`` targeting a register."""

    target: Expression
    value: Expression


@dataclass(frozen=True)
class IfStatement(Statement):
    """``if (cond) ... else ...`` tree inside an ``always`` block."""

    cond: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class PortDecl:
    """Port declaration: direction is ``"input"`` or ``"output"``."""

    direction: str
    name: str
    msb: int = 0
    lsb: int = 0
    is_reg: bool = False

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1


@dataclass(frozen=True)
class NetDecl:
    """Internal ``wire`` or ``reg`` declaration."""

    kind: str  # "wire" or "reg"
    name: str
    msb: int = 0
    lsb: int = 0

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1


@dataclass(frozen=True)
class Assign:
    """Continuous assignment ``assign target = value;``."""

    target: Expression
    value: Expression


@dataclass(frozen=True)
class AlwaysFF:
    """``always @(posedge clock)`` process with optional synchronous reset."""

    clock: str
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class Module:
    """Top-level module AST."""

    name: str
    ports: Tuple[PortDecl, ...] = ()
    nets: Tuple[NetDecl, ...] = ()
    assigns: Tuple[Assign, ...] = ()
    always_blocks: Tuple[AlwaysFF, ...] = ()
    source_lines: Tuple[str, ...] = field(default_factory=tuple)

    def port(self, name: str) -> PortDecl:
        """Return the port declaration named ``name``.

        Raises ``KeyError`` if the module has no such port.
        """
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(name)

    def net(self, name: str) -> NetDecl:
        """Return the net declaration named ``name`` (wire or reg)."""
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(name)
