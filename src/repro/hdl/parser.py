"""Recursive-descent parser for the supported Verilog subset.

The grammar is deliberately small (see :mod:`repro.hdl`); it covers the
constructs produced by :mod:`repro.hdl.generate` and typical hand-written
synthesizable RTL of the same flavour.  Unsupported constructs raise
:class:`ParseError` with a source position so users know what to rewrite.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hdl.ast_nodes import (
    AlwaysFF,
    Assign,
    BinaryOp,
    BitSelect,
    Concat,
    Expression,
    Identifier,
    IfStatement,
    Module,
    NetDecl,
    NonBlocking,
    Number,
    PartSelect,
    PortDecl,
    Repeat,
    Statement,
    Ternary,
    UnaryOp,
)
from repro.hdl.lexer import Lexer, Token, TokenKind


class ParseError(ValueError):
    """Raised when the source does not conform to the supported subset."""

    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{message} at line {token.line}, column {token.column} (near {token.text!r})"
        super().__init__(message)
        self.token = token


# Binary operator precedence (higher binds tighter), mirroring Verilog.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_UNARY_OPS = {"~", "!", "-", "&", "|", "^", "~&", "~|", "~^", "^~"}


class Parser:
    """Parses a token stream into a :class:`Module` AST."""

    def __init__(self, source: str):
        self.source = source
        self._tokens = Lexer(source).tokens()
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._current
        if not token.is_keyword(word):
            raise ParseError(f"expected keyword {word!r}", token)
        return self._advance()

    def _expect_punct(self, punct: str) -> Token:
        token = self._current
        if not token.is_punct(punct):
            raise ParseError(f"expected {punct!r}", token)
        return self._advance()

    def _expect_op(self, op: str) -> Token:
        token = self._current
        if not token.is_op(op):
            raise ParseError(f"expected operator {op!r}", token)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", token)
        return self._advance()

    def _expect_integer(self) -> int:
        token = self._current
        if token.kind not in (TokenKind.NUMBER, TokenKind.SIZED_NUMBER):
            raise ParseError("expected integer literal", token)
        self._advance()
        assert token.value is not None
        return token.value

    # -- top level ----------------------------------------------------------

    def parse_module(self) -> Module:
        """Parse a single module (the first one in the file)."""
        self._expect_keyword("module")
        name_token = self._expect_ident()

        port_order: List[str] = []
        ports: List[PortDecl] = []
        if self._current.is_punct("("):
            port_order, ansi_ports = self._parse_port_list()
            ports.extend(ansi_ports)
        self._expect_punct(";")

        nets: List[NetDecl] = []
        assigns: List[Assign] = []
        always_blocks: List[AlwaysFF] = []

        while not self._current.is_keyword("endmodule"):
            token = self._current
            if token.kind is TokenKind.EOF:
                raise ParseError("unexpected end of file inside module", token)
            if token.is_keyword("input") or token.is_keyword("output"):
                ports.extend(self._parse_port_decl())
            elif token.is_keyword("wire") or token.is_keyword("reg"):
                nets.extend(self._parse_net_decl())
            elif token.is_keyword("assign"):
                assigns.append(self._parse_assign())
            elif token.is_keyword("always"):
                always_blocks.append(self._parse_always())
            elif token.is_keyword("parameter") or token.is_keyword("localparam"):
                self._skip_to_semicolon()
            else:
                raise ParseError("unsupported module item", token)

        self._expect_keyword("endmodule")

        ports = self._order_ports(ports, port_order)
        return Module(
            name=name_token.text,
            ports=tuple(ports),
            nets=tuple(nets),
            assigns=tuple(assigns),
            always_blocks=tuple(always_blocks),
            source_lines=tuple(self.source.splitlines()),
        )

    def _parse_port_list(self) -> Tuple[List[str], List[PortDecl]]:
        """Parse ``(a, b, c)`` style or ANSI-style header port lists."""
        self._expect_punct("(")
        names: List[str] = []
        ansi_ports: List[PortDecl] = []
        while not self._current.is_punct(")"):
            token = self._current
            if token.is_keyword("input") or token.is_keyword("output"):
                # ANSI-style header declarations are treated like body decls.
                break
            if token.kind is TokenKind.IDENT:
                names.append(token.text)
                self._advance()
            elif token.is_punct(","):
                self._advance()
            else:
                raise ParseError("unsupported token in port list", token)
        # ANSI-style: consume full declarations until the closing paren.
        if not self._current.is_punct(")"):
            ansi_ports = self._parse_ansi_header()
            names = [port.name for port in ansi_ports]
        self._expect_punct(")")
        return names, ansi_ports

    def _parse_ansi_header(self) -> List[PortDecl]:
        decls: List[PortDecl] = []
        while not self._current.is_punct(")"):
            token = self._current
            if token.is_punct(","):
                self._advance()
                continue
            if not (token.is_keyword("input") or token.is_keyword("output")):
                raise ParseError("unsupported token in ANSI port header", token)
            direction = self._advance().text
            is_reg = False
            if self._current.is_keyword("reg") or self._current.is_keyword("wire"):
                is_reg = self._current.text == "reg"
                self._advance()
            msb, lsb = self._parse_optional_range()
            name = self._expect_ident().text
            decls.append(PortDecl(direction, name, msb, lsb, is_reg))
        return decls

    @staticmethod
    def _order_ports(ports: List[PortDecl], order: List[str]) -> List[PortDecl]:
        if not order:
            return ports
        by_name = {port.name: port for port in ports}
        ordered = [by_name[name] for name in order if name in by_name]
        remaining = [port for port in ports if port.name not in order]
        return ordered + remaining

    # -- declarations -------------------------------------------------------

    def _parse_optional_range(self) -> Tuple[int, int]:
        if not self._current.is_punct("["):
            return 0, 0
        self._expect_punct("[")
        msb = self._expect_integer()
        self._expect_punct(":")
        lsb = self._expect_integer()
        self._expect_punct("]")
        return msb, lsb

    def _parse_port_decl(self) -> List[PortDecl]:
        direction = self._advance().text
        is_reg = False
        if self._current.is_keyword("reg") or self._current.is_keyword("wire"):
            is_reg = self._current.text == "reg"
            self._advance()
        msb, lsb = self._parse_optional_range()
        decls = []
        while True:
            name = self._expect_ident().text
            decls.append(PortDecl(direction, name, msb, lsb, is_reg))
            if self._current.is_punct(","):
                self._advance()
                continue
            break
        self._expect_punct(";")
        return decls

    def _parse_net_decl(self) -> List[NetDecl]:
        kind = self._advance().text
        msb, lsb = self._parse_optional_range()
        decls = []
        while True:
            name = self._expect_ident().text
            decls.append(NetDecl(kind, name, msb, lsb))
            if self._current.is_punct(","):
                self._advance()
                continue
            break
        self._expect_punct(";")
        return decls

    def _skip_to_semicolon(self) -> None:
        while not self._current.is_punct(";"):
            if self._current.kind is TokenKind.EOF:
                raise ParseError("unexpected end of file", self._current)
            self._advance()
        self._advance()

    # -- behavioural items --------------------------------------------------

    def _parse_assign(self) -> Assign:
        self._expect_keyword("assign")
        target = self._parse_lvalue()
        self._expect_op("=")
        value = self.parse_expression()
        self._expect_punct(";")
        return Assign(target=target, value=value)

    def _parse_always(self) -> AlwaysFF:
        self._expect_keyword("always")
        self._expect_punct("@")
        self._expect_punct("(")
        self._expect_keyword("posedge")
        clock = self._expect_ident().text
        if self._current.is_punct(",") or self._current.is_keyword("negedge"):
            raise ParseError(
                "multiple clocks / async resets are not supported", self._current
            )
        self._expect_punct(")")
        body = self._parse_statement_block()
        return AlwaysFF(clock=clock, body=tuple(body))

    def _parse_statement_block(self) -> List[Statement]:
        if self._current.is_keyword("begin"):
            self._advance()
            statements: List[Statement] = []
            while not self._current.is_keyword("end"):
                if self._current.kind is TokenKind.EOF:
                    raise ParseError("unterminated begin/end block", self._current)
                statements.append(self._parse_statement())
            self._expect_keyword("end")
            return statements
        return [self._parse_statement()]

    def _parse_statement(self) -> Statement:
        token = self._current
        if token.is_keyword("if"):
            return self._parse_if()
        return self._parse_nonblocking()

    def _parse_if(self) -> IfStatement:
        self._expect_keyword("if")
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        then_body = self._parse_statement_block()
        else_body: List[Statement] = []
        if self._current.is_keyword("else"):
            self._advance()
            else_body = self._parse_statement_block()
        return IfStatement(cond=cond, then_body=tuple(then_body), else_body=tuple(else_body))

    def _parse_nonblocking(self) -> NonBlocking:
        target = self._parse_lvalue()
        self._expect_op("<=")
        value = self.parse_expression()
        self._expect_punct(";")
        return NonBlocking(target=target, value=value)

    def _parse_lvalue(self) -> Expression:
        token = self._expect_ident()
        if self._current.is_punct("["):
            return self._parse_select(token.text)
        return Identifier(token.text)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> Expression:
        """Parse a full expression (including the ternary operator)."""
        return self._parse_ternary()

    def _parse_ternary(self) -> Expression:
        cond = self._parse_binary(0)
        if self._current.is_op("?"):
            self._advance()
            if_true = self._parse_ternary()
            self._expect_punct(":")
            if_false = self._parse_ternary()
            return Ternary(cond=cond, if_true=if_true, if_false=if_false)
        return cond

    def _parse_binary(self, min_precedence: int) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.kind is not TokenKind.OPERATOR:
                break
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = BinaryOp(op=token.text, left=left, right=right)
        return left

    def _parse_unary(self) -> Expression:
        token = self._current
        if token.kind is TokenKind.OPERATOR and token.text in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(op=token.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("{"):
            return self._parse_concat()
        if token.kind is TokenKind.SIZED_NUMBER:
            self._advance()
            assert token.value is not None
            return Number(value=token.value, width=token.width)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            assert token.value is not None
            return Number(value=token.value, width=None)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._current.is_punct("["):
                return self._parse_select(token.text)
            return Identifier(token.text)
        raise ParseError("unsupported primary expression", token)

    def _parse_select(self, name: str) -> Expression:
        self._expect_punct("[")
        first = self._expect_integer()
        if self._current.is_punct(":"):
            self._advance()
            lsb = self._expect_integer()
            self._expect_punct("]")
            return PartSelect(name=name, msb=first, lsb=lsb)
        self._expect_punct("]")
        return BitSelect(name=name, index=first)

    def _parse_concat(self) -> Expression:
        self._expect_punct("{")
        # Replication: {N{expr}}
        if self._current.kind in (TokenKind.NUMBER, TokenKind.SIZED_NUMBER) and self._peek(
            1
        ).is_punct("{"):
            count = self._expect_integer()
            self._expect_punct("{")
            expr = self.parse_expression()
            self._expect_punct("}")
            self._expect_punct("}")
            return Repeat(count=count, expr=expr)
        parts: List[Expression] = [self.parse_expression()]
        while self._current.is_punct(","):
            self._advance()
            parts.append(self.parse_expression())
        self._expect_punct("}")
        return Concat(parts=tuple(parts))


def parse_source(source: str) -> Module:
    """Parse Verilog ``source`` text and return the module AST."""
    return Parser(source).parse_module()
