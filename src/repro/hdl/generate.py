"""Synthetic benchmark design generator.

The paper trains and evaluates on 21 open-source designs drawn from four
suites (ITC'99, OpenCores, Chipyard, VexRiscv).  Those designs and the
commercial flow that labels them are not available here, so this module
generates a *synthetic benchmark suite* with the same shape:

* 21 designs carrying the same names as Table 6 of the paper,
* four structural families that mimic the character of the four suites
  (control/FSM-heavy ITC'99 circuits, crypto/bus OpenCores blocks,
  Rocket-style CPU datapaths, VexRiscv-style pipelines across a wide size
  range),
* widely varying sizes, operator mixes, pipeline depths and register counts
  so that cross-design generalization is genuinely exercised.

Every generated design is plain Verilog text in the subset supported by
:mod:`repro.hdl.parser`, so the whole flow (parse -> analyze -> bit-blast ->
synthesize -> STA) runs on it exactly as it would on user RTL.

Sizes are scaled down relative to the paper (hundreds to a few thousand
registers bits rather than 6K-510K gates) to keep the pure-Python synthesis
and STA substrate tractable; the scaling factor is uniform across designs and
documented in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdl.design import Design, analyze
from repro.hdl.parser import parse_source
from repro.runtime.report import stage as _stage


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs shared by all generated designs.

    The construct probabilities below the first block default to 0.0 and are
    *draw-order neutral* when disabled: the fixed 21-design benchmark suite
    generates byte-identical sources with a default config before and after
    these knobs existed.  The fuzz corpus (:mod:`repro.fuzz.corpus`) enables
    them to reach grammar regions — reduction operators, replication,
    nested ``if``/``else``, split part-select assigns, the full comparison
    alphabet, mixed register widths — that none of the fixed designs use.
    """

    max_expr_depth: int = 3
    enable_probability: float = 0.55
    feedback_probability: float = 0.35
    output_fraction: float = 0.25

    # -- fuzz-corpus construct knobs (0.0 == disabled, no RNG draws) --------
    reduction_probability: float = 0.0
    replicate_probability: float = 0.0
    nested_if_probability: float = 0.0
    partselect_assign_probability: float = 0.0
    rich_compare_probability: float = 0.0
    width_jitter_probability: float = 0.0


@dataclass(frozen=True)
class DesignSpec:
    """Parameters for one synthetic benchmark design."""

    name: str
    family: str  # "itc99", "opencores", "chipyard", "vexriscv"
    hdl_type: str  # reported HDL family, mirroring Table 3
    seed: int
    data_width: int
    stages: int
    regs_per_stage: int
    control_regs: int = 4
    expr_depth: int = 3
    use_multiplier: bool = False

    @property
    def approx_register_bits(self) -> int:
        """Rough number of register bits the design will contain."""
        return self.stages * self.regs_per_stage * self.data_width + self.control_regs


# Operator mixes per family: (binary word ops, weights).
_FAMILY_OPS: Dict[str, List[Tuple[str, float]]] = {
    # Control-dominated circuits: lots of comparisons and boolean logic.
    "itc99": [
        ("&", 2.0),
        ("|", 2.0),
        ("^", 1.5),
        ("+", 1.0),
        ("==", 1.2),
        ("mux", 2.0),
        ("~", 1.0),
    ],
    # Crypto / bus blocks: wide xor networks, rotations, substitutions.
    "opencores": [
        ("^", 3.0),
        ("&", 1.5),
        ("|", 1.5),
        ("+", 1.0),
        ("rot", 1.5),
        ("mux", 1.5),
        ("~", 1.0),
    ],
    # Rocket-style datapaths: arithmetic and bypass muxes.
    "chipyard": [
        ("+", 2.5),
        ("-", 1.5),
        ("&", 1.0),
        ("|", 1.0),
        ("^", 1.0),
        ("<", 1.0),
        ("mux", 2.0),
        ("shift", 1.0),
    ],
    # VexRiscv-style pipelines: balanced mix with shifts and compares.
    "vexriscv": [
        ("+", 2.0),
        ("&", 1.2),
        ("|", 1.2),
        ("^", 1.5),
        ("==", 1.0),
        ("mux", 2.0),
        ("shift", 1.2),
        ("rot", 0.8),
    ],
}


# The 21 designs of Table 3 / Table 6, with scaled-down sizes.  The relative
# ordering of sizes follows the paper (VexRiscv spans the widest range,
# Rocket cores are mid-size, ITC'99 are small-to-mid, OpenCores small).
BENCHMARK_SPECS: Tuple[DesignSpec, ...] = (
    DesignSpec("syscdes", "opencores", "Verilog", 101, 16, 3, 4, 6, 3),
    DesignSpec("syscaes", "opencores", "Verilog", 102, 16, 4, 5, 6, 3),
    DesignSpec("conmax", "opencores", "Verilog", 103, 12, 4, 6, 8, 2),
    DesignSpec("FPU", "opencores", "Verilog", 104, 12, 4, 5, 6, 3, use_multiplier=True),
    DesignSpec("Marax", "opencores", "Verilog", 105, 14, 4, 5, 6, 3),
    DesignSpec("b17", "itc99", "VHDL", 201, 8, 4, 6, 10, 3),
    DesignSpec("b17_1", "itc99", "VHDL", 202, 8, 4, 6, 10, 3),
    DesignSpec("b18", "itc99", "VHDL", 203, 10, 5, 7, 12, 3),
    DesignSpec("b18_1", "itc99", "VHDL", 204, 10, 5, 7, 12, 3),
    DesignSpec("b20", "itc99", "VHDL", 205, 8, 3, 4, 8, 2),
    DesignSpec("b22", "itc99", "VHDL", 206, 8, 3, 5, 8, 2),
    DesignSpec("Rocket1", "chipyard", "Chisel", 301, 16, 5, 5, 8, 3),
    DesignSpec("Rocket2", "chipyard", "Chisel", 302, 16, 5, 6, 8, 3),
    DesignSpec("Rocket3", "chipyard", "Chisel", 303, 16, 6, 5, 8, 3),
    DesignSpec("Vex_1", "vexriscv", "SpinalHDL", 401, 8, 3, 3, 4, 2),
    DesignSpec("Vex_2", "vexriscv", "SpinalHDL", 402, 8, 3, 4, 4, 2),
    DesignSpec("Vex_3", "vexriscv", "SpinalHDL", 403, 12, 4, 4, 6, 3),
    DesignSpec("Vex_4", "vexriscv", "SpinalHDL", 404, 12, 4, 5, 6, 3),
    DesignSpec("Vex5", "vexriscv", "SpinalHDL", 405, 16, 5, 5, 6, 3),
    DesignSpec("Vex6", "vexriscv", "SpinalHDL", 406, 16, 5, 6, 8, 3),
    DesignSpec("Vex7", "vexriscv", "SpinalHDL", 407, 16, 6, 7, 8, 3),
)


def benchmark_suite(
    specs: Optional[Sequence[DesignSpec]] = None,
    config: Optional[GeneratorConfig] = None,
) -> Dict[str, str]:
    """Generate Verilog sources for the benchmark suite.

    Returns a mapping from design name to Verilog source text.
    """
    config = config or GeneratorConfig()
    sources: Dict[str, str] = {}
    for spec in specs if specs is not None else BENCHMARK_SPECS:
        sources[spec.name] = generate_design(spec, config)
    return sources


def generate_design(
    spec: DesignSpec,
    config: Optional[GeneratorConfig] = None,
    rng: Optional[random.Random] = None,
) -> str:
    """Generate the Verilog source for one design described by ``spec``.

    ``rng`` injects the statement-level random stream; by default a fresh
    ``random.Random(spec.seed)`` is used so every ``(spec, config)`` pair is
    replayable.  The fuzz corpus passes its own seeded stream so the fixed
    benchmark suite and randomized fuzz designs share this one generator
    core.
    """
    config = config or GeneratorConfig()
    with _stage("hdl.generate_design"):
        return _DesignWriter(spec, config, rng=rng).build()


def generate_and_analyze(
    spec: DesignSpec,
    config: Optional[GeneratorConfig] = None,
    rng: Optional[random.Random] = None,
) -> Design:
    """Generate, parse and analyze a design in one call."""
    source = generate_design(spec, config, rng=rng)
    module = parse_source(source)
    return analyze(module, source=source)


# ---------------------------------------------------------------------------
# Internal generator machinery
# ---------------------------------------------------------------------------


@dataclass
class _SignalRef:
    """A generated signal available as an expression operand."""

    name: str
    width: int


class _DesignWriter:
    """Builds the Verilog text for a single synthetic design."""

    def __init__(
        self,
        spec: DesignSpec,
        config: GeneratorConfig,
        rng: Optional[random.Random] = None,
    ):
        self.spec = spec
        self.config = config
        self.rng = rng if rng is not None else random.Random(spec.seed)
        self.ops = _FAMILY_OPS[spec.family]
        self.port_lines: List[str] = []
        self.decl_lines: List[str] = []
        self.assign_lines: List[str] = []
        self.always_lines: List[str] = []
        self.port_names: List[str] = ["clk"]
        self._wire_counter = 0

    # -- public -------------------------------------------------------------

    def build(self) -> str:
        spec = self.spec

        inputs = self._make_inputs()
        control_inputs = self._make_control_inputs()

        stage_regs: List[List[_SignalRef]] = []
        control_regs = self._make_control_registers(control_inputs)

        previous: List[_SignalRef] = list(inputs)
        for stage in range(spec.stages):
            regs = self._make_stage(stage, previous, control_regs, control_inputs)
            stage_regs.append(regs)
            # Later stages see both the previous stage and (sometimes) inputs,
            # modelling bypass/forwarding paths.
            previous = list(regs)
            if self.rng.random() < self.config.feedback_probability and stage_regs:
                previous.append(self.rng.choice(stage_regs[0]))
            if self.rng.random() < 0.5:
                previous.append(self.rng.choice(inputs))

        self._make_outputs(stage_regs, control_regs)

        return self._render()

    # -- inputs / outputs ----------------------------------------------------

    def _make_inputs(self) -> List[_SignalRef]:
        width = self.spec.data_width
        count = max(2, self.spec.regs_per_stage // 2 + 1)
        refs = []
        for index in range(count):
            name = f"in_data{index}"
            self.port_lines.append(f"  input [{width - 1}:0] {name};")
            self.port_names.append(name)
            refs.append(_SignalRef(name, width))
        return refs

    def _make_control_inputs(self) -> List[_SignalRef]:
        refs = []
        for index in range(max(2, self.spec.control_regs // 2)):
            name = f"in_ctrl{index}"
            self.port_lines.append(f"  input {name};")
            self.port_names.append(name)
            refs.append(_SignalRef(name, 1))
        return refs

    def _make_outputs(
        self, stage_regs: List[List[_SignalRef]], control_regs: List[_SignalRef]
    ) -> None:
        last_stage = stage_regs[-1]
        n_outputs = max(1, int(len(last_stage) * self.config.output_fraction))
        for index in range(n_outputs):
            reg = last_stage[index % len(last_stage)]
            name = f"out_data{index}"
            self.port_lines.append(f"  output [{reg.width - 1}:0] {name};")
            self.port_names.append(name)
            self.decl_lines.append(f"  wire [{reg.width - 1}:0] {name};")
            self.assign_lines.append(f"  assign {name} = {reg.name};")
        if control_regs:
            self.port_lines.append("  output out_flag;")
            self.port_names.append("out_flag")
            self.decl_lines.append("  wire out_flag;")
            terms = " ^ ".join(ref.name for ref in control_regs[:4])
            self.assign_lines.append(f"  assign out_flag = {terms};")

    # -- registers -----------------------------------------------------------

    def _make_control_registers(self, control_inputs: List[_SignalRef]) -> List[_SignalRef]:
        """Small FSM-like single-bit registers used as enables and selects."""
        refs = []
        for index in range(self.spec.control_regs):
            name = f"ctrl_r{index}"
            self.decl_lines.append(f"  reg {name};")
            source = self.rng.choice(control_inputs)
            other = self.rng.choice(control_inputs)
            prev = refs[-1].name if refs else source.name
            expr = f"({source.name} ^ {prev}) | (~{other.name} & {prev})"
            self.always_lines.append(f"      {name} <= {expr};")
            refs.append(_SignalRef(name, 1))
        return refs

    def _make_stage(
        self,
        stage: int,
        sources: List[_SignalRef],
        control_regs: List[_SignalRef],
        control_inputs: List[_SignalRef],
    ) -> List[_SignalRef]:
        spec = self.spec
        regs: List[_SignalRef] = []
        for index in range(spec.regs_per_stage):
            width = spec.data_width
            if self._maybe(self.config.width_jitter_probability):
                # Mixed register widths force zero-extension/truncation in
                # downstream arithmetic (none of the fixed designs mix widths
                # within a stage).
                width = 1 + self.rng.randrange(spec.data_width + 2)
            reg_name = f"s{stage}_r{index}"
            self.decl_lines.append(f"  reg [{width - 1}:0] {reg_name};")

            if width >= 2 and self._maybe(self.config.partselect_assign_probability):
                wire_name = self._emit_split_wire(sources, width, spec.expr_depth)
            else:
                expr = self._expression(sources, width, spec.expr_depth)
                wire_name = self._emit_wire(width, expr)

            controls = control_regs + control_inputs
            if controls and self._maybe(self.config.nested_if_probability):
                self._emit_nested_update(reg_name, wire_name, sources, width, controls)
                regs.append(_SignalRef(reg_name, width))
                continue

            use_enable = self.rng.random() < self.config.enable_probability
            if use_enable and control_regs:
                enable = self.rng.choice(control_regs + control_inputs).name
                self.always_lines.append(
                    f"      if ({enable}) {reg_name} <= {wire_name};"
                )
            else:
                self.always_lines.append(f"      {reg_name} <= {wire_name};")
            regs.append(_SignalRef(reg_name, width))

        # Occasionally add a multiplier-fed register for the FPU-like design.
        if spec.use_multiplier and stage == spec.stages // 2:
            width = min(8, spec.data_width)
            reg_name = f"s{stage}_mul"
            self.decl_lines.append(f"  reg [{width - 1}:0] {reg_name};")
            a = self._coerce(self.rng.choice(sources), width)
            b = self._coerce(self.rng.choice(sources), width)
            wire_name = self._emit_wire(width, f"{a} * {b}")
            self.always_lines.append(f"      {reg_name} <= {wire_name};")
            regs.append(_SignalRef(reg_name, width))
        return regs

    # -- fuzz-corpus constructs ----------------------------------------------

    def _maybe(self, probability: float) -> bool:
        """Draw against an optional-construct knob.

        The knob check short-circuits *before* the RNG draw, so a disabled
        construct (probability 0.0, the default) consumes no randomness and
        the fixed benchmark designs stay byte-identical.
        """
        return probability > 0.0 and self.rng.random() < probability

    def _select_bit(self, sources: List[_SignalRef]) -> str:
        """A 1-bit expression string: a scalar signal or a random bit select."""
        ref = self.rng.choice(sources)
        if ref.width == 1:
            return ref.name
        return f"{ref.name}[{self.rng.randrange(ref.width)}]"

    def _emit_split_wire(self, sources: List[_SignalRef], width: int, depth: int) -> str:
        """A wire driven by two part-select assigns (``w[h:m]`` / ``w[m-1:0]``)."""
        name = f"w{self._wire_counter}"
        self._wire_counter += 1
        self.decl_lines.append(f"  wire [{width - 1}:0] {name};")
        mid = self.rng.randrange(1, width)
        high = self._expression(sources, width - mid, max(depth - 1, 0))
        low = self._expression(sources, mid, max(depth - 1, 0))
        self.assign_lines.append(f"  assign {name}[{width - 1}:{mid}] = {high};")
        self.assign_lines.append(f"  assign {name}[{mid - 1}:0] = {low};")
        return name

    def _emit_nested_update(
        self,
        reg_name: str,
        wire_name: str,
        sources: List[_SignalRef],
        width: int,
        controls: List[_SignalRef],
    ) -> None:
        """Register update through a nested ``if``/``else`` tree."""
        outer = self.rng.choice(controls).name
        inner = self.rng.choice(controls).name
        alt = self._emit_wire(width, self._expression(sources, width, 1))
        self.always_lines.append(f"      if ({outer}) begin")
        self.always_lines.append(f"        if ({inner}) {reg_name} <= {wire_name};")
        self.always_lines.append(f"        else {reg_name} <= {alt};")
        if self.rng.random() < 0.5:
            other = self._emit_wire(width, self._expression(sources, width, 1))
            self.always_lines.append("      end else begin")
            self.always_lines.append(f"        {reg_name} <= {other};")
            self.always_lines.append("      end")
        else:
            self.always_lines.append("      end")

    def _replicate_expr(self, sources: List[_SignalRef], width: int, depth: int) -> str:
        """Replication mask: ``({W{bit}} op operand)``."""
        bit = self._select_bit(sources)
        op = self.rng.choice(["&", "^", "|"])
        operand = self._expression(sources, width, max(depth - 1, 0))
        return f"({{{width}{{{bit}}}}} {op} ({operand}))"

    def _reduction_expr(self, sources: List[_SignalRef], width: int, depth: int) -> str:
        """A reduction-operator select feeding a mux."""
        op = self.rng.choice(["&", "|", "^", "~&", "~|", "~^"])
        ref = self.rng.choice(sources)
        a = self._expression(sources, width, max(depth - 1, 0))
        b = self._expression(sources, width, max(depth - 1, 0))
        return f"(({op}{ref.name}) ? ({a}) : ({b}))"

    def _rich_compare_expr(self, sources: List[_SignalRef], width: int, depth: int) -> str:
        """Comparison/logical operators outside the fixed designs' alphabet."""
        op = self.rng.choice(["!=", ">", ">=", "&&", "||"])
        a = self._expression(sources, width, max(depth - 1, 0))
        b = self._expression(sources, width, max(depth - 1, 0))
        cmp_wire = self._emit_wire(1, f"({a}) {op} ({b})")
        value = self._expression(sources, width, max(depth - 1, 0))
        return f"({cmp_wire} ? ({value}) : (~({value})))"

    # -- expressions ---------------------------------------------------------

    def _emit_wire(self, width: int, expr: str) -> str:
        name = f"w{self._wire_counter}"
        self._wire_counter += 1
        if width == 1:
            self.decl_lines.append(f"  wire {name};")
        else:
            self.decl_lines.append(f"  wire [{width - 1}:0] {name};")
        self.assign_lines.append(f"  assign {name} = {expr};")
        return name

    def _pick_op(self) -> str:
        ops, weights = zip(*self.ops)
        return self.rng.choices(ops, weights=weights, k=1)[0]

    def _coerce(self, ref: _SignalRef, width: int) -> str:
        """Return an expression string of exactly ``width`` bits from ``ref``."""
        if ref.width == width:
            return ref.name
        if ref.width > width:
            return f"{ref.name}[{width - 1}:0]"
        # Zero-extend via concatenation with a sized constant.
        pad = width - ref.width
        return f"{{{pad}'d0, {ref.name}}}"

    def _expression(self, sources: List[_SignalRef], width: int, depth: int) -> str:
        """Generate a random expression string of ``width`` bits."""
        if depth > 0:
            # Optional fuzz-corpus constructs; every branch is gated by
            # _maybe so the default config draws nothing here.
            if self._maybe(self.config.replicate_probability):
                return self._replicate_expr(sources, width, depth)
            if self._maybe(self.config.reduction_probability):
                return self._reduction_expr(sources, width, depth)
            if self._maybe(self.config.rich_compare_probability):
                return self._rich_compare_expr(sources, width, depth)
        if depth <= 0 or (depth < self.spec.expr_depth and self.rng.random() < 0.25):
            return self._coerce(self.rng.choice(sources), width)

        op = self._pick_op()
        if op == "~":
            return f"~({self._expression(sources, width, depth - 1)})"
        if op == "mux":
            sel_ref = self.rng.choice(sources)
            sel = (
                sel_ref.name
                if sel_ref.width == 1
                else f"{sel_ref.name}[{self.rng.randrange(sel_ref.width)}]"
            )
            a = self._expression(sources, width, depth - 1)
            b = self._expression(sources, width, depth - 1)
            return f"({sel} ? ({a}) : ({b}))"
        if op == "shift":
            amount = self.rng.randrange(1, max(2, width // 2))
            direction = self.rng.choice(["<<", ">>"])
            inner = self._expression(sources, width, depth - 1)
            return f"(({inner}) {direction} {amount})"
        if op == "rot":
            amount = self.rng.randrange(1, width) if width > 1 else 0
            ref = self.rng.choice(sources)
            operand = self._coerce(ref, width)
            if amount == 0 or width == 1:
                return operand
            # Rotation via part selects requires a named signal; materialise it.
            if "[" in operand or "{" in operand or ref.width != width:
                operand = self._emit_wire(width, operand)
            return (
                f"{{{operand}[{amount - 1}:0], {operand}[{width - 1}:{amount}]}}"
            )
        if op in ("==", "<"):
            a = self._expression(sources, width, depth - 1)
            b = self._expression(sources, width, depth - 1)
            cmp_wire = self._emit_wire(1, f"({a}) {op} ({b})")
            value = self._expression(sources, width, depth - 1)
            return f"({cmp_wire} ? ({value}) : (~({value})))"
        # Plain binary word operators.
        a = self._expression(sources, width, depth - 1)
        b = self._expression(sources, width, depth - 1)
        return f"(({a}) {op} ({b}))"

    # -- rendering -----------------------------------------------------------

    def _render(self) -> str:
        spec = self.spec
        lines: List[str] = []
        lines.append(f"// Synthetic benchmark design: {spec.name}")
        lines.append(f"// family={spec.family} hdl={spec.hdl_type} seed={spec.seed}")
        lines.append(f"module {spec.name} (")
        lines.append("  " + ", ".join(self.port_names))
        lines.append(");")
        lines.append("  input clk;")
        lines.extend(self.port_lines)
        lines.append("")
        lines.extend(self.decl_lines)
        lines.append("")
        lines.extend(self.assign_lines)
        lines.append("")
        lines.append("  always @(posedge clk) begin")
        lines.extend(self.always_lines)
        lines.append("  end")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"
