"""Tokenizer for the supported Verilog subset."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional


class LexerError(ValueError):
    """Raised when the source text contains an unrecognised character."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    SIZED_NUMBER = "sized_number"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "assign",
        "always",
        "posedge",
        "negedge",
        "begin",
        "end",
        "if",
        "else",
        "parameter",
        "localparam",
    }
)

# Multi-character operators must be listed before their prefixes.
_OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "~^",
    "^~",
    "~&",
    "~|",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "?",
]

_PUNCT = ["(", ")", "[", "]", "{", "}", ",", ";", ":", "@", "#", "."]

_SIZED_NUMBER_RE = re.compile(r"(\d+)\s*'\s*([bdhoBDHO])\s*([0-9a-fA-F_xXzZ]+)")
_NUMBER_RE = re.compile(r"\d[\d_]*")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_ESCAPED_IDENT_RE = re.compile(r"\\[^\s]+")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int
    value: Optional[int] = None
    width: Optional[int] = None

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text == op

    def is_punct(self, punct: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == punct

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"


def _strip_comments(source: str) -> str:
    """Replace comments with spaces while preserving line/column positions."""
    out: List[str] = []
    i = 0
    n = len(source)
    while i < n:
        two = source[i : i + 2]
        if two == "//":
            j = source.find("\n", i)
            if j < 0:
                j = n
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = source.find("*/", i + 2)
            if j < 0:
                j = n
            else:
                j += 2
            chunk = source[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j
        else:
            out.append(source[i])
            i += 1
    return "".join(out)


class Lexer:
    """Converts Verilog source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self._clean = _strip_comments(source)

    def tokens(self) -> List[Token]:
        """Return the complete token list, terminated by an EOF token."""
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        text = self._clean
        pos = 0
        line = 1
        line_start = 0
        n = len(text)
        while pos < n:
            ch = text[pos]
            if ch == "\n":
                line += 1
                pos += 1
                line_start = pos
                continue
            if ch.isspace():
                pos += 1
                continue
            column = pos - line_start + 1

            match = _SIZED_NUMBER_RE.match(text, pos)
            if match:
                width = int(match.group(1))
                base_char = match.group(2).lower()
                digits = match.group(3).replace("_", "")
                base = {"b": 2, "d": 10, "h": 16, "o": 8}[base_char]
                digits = digits.replace("x", "0").replace("X", "0")
                digits = digits.replace("z", "0").replace("Z", "0")
                value = int(digits, base) if digits else 0
                yield Token(
                    TokenKind.SIZED_NUMBER,
                    match.group(0),
                    line,
                    column,
                    value=value,
                    width=width,
                )
                pos = match.end()
                continue

            match = _NUMBER_RE.match(text, pos)
            if match:
                value = int(match.group(0).replace("_", ""))
                yield Token(
                    TokenKind.NUMBER, match.group(0), line, column, value=value
                )
                pos = match.end()
                continue

            match = _ESCAPED_IDENT_RE.match(text, pos)
            if match:
                yield Token(TokenKind.IDENT, match.group(0)[1:], line, column)
                pos = match.end()
                continue

            match = _IDENT_RE.match(text, pos)
            if match:
                word = match.group(0)
                kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
                yield Token(kind, word, line, column)
                pos = match.end()
                continue

            op = self._match_fixed(text, pos, _OPERATORS)
            if op is not None:
                yield Token(TokenKind.OPERATOR, op, line, column)
                pos += len(op)
                continue

            punct = self._match_fixed(text, pos, _PUNCT)
            if punct is not None:
                yield Token(TokenKind.PUNCT, punct, line, column)
                pos += len(punct)
                continue

            raise LexerError(f"unexpected character {ch!r}", line, column)

        yield Token(TokenKind.EOF, "", line, 1)

    @staticmethod
    def _match_fixed(text: str, pos: int, candidates: List[str]) -> Optional[str]:
        for candidate in candidates:
            if text.startswith(candidate, pos):
                return candidate
        return None


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokens()
