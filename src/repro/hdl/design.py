"""Word-level design intermediate representation.

:func:`analyze` lowers a parsed :class:`~repro.hdl.ast_nodes.Module` into a
:class:`Design`, resolving declarations into :class:`Signal` objects and
flattening ``always @(posedge clk)`` bodies into one next-state expression
per register target (``if``/``else`` trees become nested ternaries, and a
register that is not assigned on some path holds its value).

The :class:`Design` is the hand-off point to :mod:`repro.bog`, which
bit-blasts the word-level expressions into Boolean operator graphs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hdl.ast_nodes import (
    BinaryOp,
    BitSelect,
    Concat,
    Expression,
    Identifier,
    IfStatement,
    Module,
    NonBlocking,
    Number,
    PartSelect,
    Repeat,
    Statement,
    Ternary,
    UnaryOp,
)


class AnalysisError(ValueError):
    """Raised when the module uses undeclared signals or inconsistent widths."""


class SignalKind(enum.Enum):
    """Role of a signal in the design."""

    INPUT = "input"
    OUTPUT = "output"
    WIRE = "wire"
    REGISTER = "register"


@dataclass
class Signal:
    """A named word-level signal with its width and role."""

    name: str
    width: int
    kind: SignalKind
    msb: int = 0
    lsb: int = 0

    @property
    def is_register(self) -> bool:
        return self.kind is SignalKind.REGISTER

    @property
    def is_input(self) -> bool:
        return self.kind is SignalKind.INPUT

    def __repr__(self) -> str:
        return f"Signal({self.name}, width={self.width}, {self.kind.value})"


@dataclass
class RegisterUpdate:
    """Next-state expression for one register signal."""

    target: str
    expression: Expression
    clock: str


@dataclass
class WireAssign:
    """Continuous assignment for a wire/output signal (full width)."""

    target: str
    expression: Expression
    # For part-select targets ``w[msb:lsb] = ...``: the assigned bit range.
    msb: Optional[int] = None
    lsb: Optional[int] = None


@dataclass
class Design:
    """Word-level view of a module: signals, wire assigns and register updates."""

    name: str
    signals: Dict[str, Signal] = field(default_factory=dict)
    assigns: List[WireAssign] = field(default_factory=list)
    registers: List[RegisterUpdate] = field(default_factory=list)
    clock: Optional[str] = None
    source: str = ""

    # -- convenience queries -------------------------------------------------

    @property
    def inputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind is SignalKind.INPUT]

    @property
    def outputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind is SignalKind.OUTPUT]

    @property
    def register_signals(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind is SignalKind.REGISTER]

    @property
    def wires(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.kind is SignalKind.WIRE]

    def signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError as exc:
            raise AnalysisError(f"unknown signal {name!r} in design {self.name}") from exc

    def width_of(self, name: str) -> int:
        return self.signal(name).width

    @property
    def total_register_bits(self) -> int:
        return sum(s.width for s in self.register_signals)

    def summary(self) -> Dict[str, int]:
        """Return a small dictionary with design size statistics."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "wires": len(self.wires),
            "registers": len(self.register_signals),
            "register_bits": self.total_register_bits,
            "assigns": len(self.assigns),
        }


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def analyze(module: Module, source: str = "") -> Design:
    """Lower a parsed module into the word-level :class:`Design` IR."""
    design = Design(name=module.name, source=source)
    _collect_signals(module, design)
    _collect_assigns(module, design)
    _collect_registers(module, design)
    _check_references(module, design)
    return design


def _collect_signals(module: Module, design: Design) -> None:
    reg_names = {net.name for net in module.nets if net.kind == "reg"}
    reg_names |= {port.name for port in module.ports if port.is_reg}

    for port in module.ports:
        if port.name in design.signals:
            raise AnalysisError(f"duplicate declaration of {port.name!r}")
        if port.direction == "input":
            kind = SignalKind.INPUT
        elif port.name in reg_names:
            kind = SignalKind.REGISTER
        else:
            kind = SignalKind.OUTPUT
        design.signals[port.name] = Signal(
            port.name, port.width, kind, msb=port.msb, lsb=port.lsb
        )

    for net in module.nets:
        if net.name in design.signals:
            existing = design.signals[net.name]
            # A port redeclared as wire/reg keeps its port role (plus reg-ness).
            if net.kind == "reg" and existing.kind is SignalKind.OUTPUT:
                existing.kind = SignalKind.REGISTER
            continue
        kind = SignalKind.REGISTER if net.kind == "reg" else SignalKind.WIRE
        design.signals[net.name] = Signal(
            net.name, net.width, kind, msb=net.msb, lsb=net.lsb
        )


def _collect_assigns(module: Module, design: Design) -> None:
    for assign in module.assigns:
        target = assign.target
        if isinstance(target, Identifier):
            design.assigns.append(WireAssign(target.name, assign.value))
        elif isinstance(target, PartSelect):
            design.assigns.append(
                WireAssign(target.name, assign.value, msb=target.msb, lsb=target.lsb)
            )
        elif isinstance(target, BitSelect):
            design.assigns.append(
                WireAssign(target.name, assign.value, msb=target.index, lsb=target.index)
            )
        else:
            raise AnalysisError(f"unsupported assign target {target}")


def _collect_registers(module: Module, design: Design) -> None:
    for block in module.always_blocks:
        if design.clock is None:
            design.clock = block.clock
        elif design.clock != block.clock:
            raise AnalysisError(
                f"multiple clocks are not supported ({design.clock!r} vs {block.clock!r})"
            )
        updates = _flatten_statements(block.body, design)
        for target, expression in updates.items():
            design.registers.append(
                RegisterUpdate(target=target, expression=expression, clock=block.clock)
            )


def _flatten_statements(
    statements: Tuple[Statement, ...], design: Design
) -> Dict[str, Expression]:
    """Flatten a statement list into per-register next-state expressions.

    Later assignments to the same register override earlier ones (Verilog
    non-blocking last-write-wins semantics within a block); ``if``/``else``
    branches become ternary selections, with an unassigned branch holding the
    register's current value.
    """
    updates: Dict[str, Expression] = {}
    for statement in statements:
        if isinstance(statement, NonBlocking):
            name = _target_name(statement.target)
            updates[name] = statement.value
        elif isinstance(statement, IfStatement):
            then_updates = _flatten_statements(statement.then_body, design)
            else_updates = _flatten_statements(statement.else_body, design)
            for name in set(then_updates) | set(else_updates):
                current = updates.get(name, Identifier(name))
                then_value = then_updates.get(name, current)
                else_value = else_updates.get(name, current)
                updates[name] = Ternary(
                    cond=statement.cond, if_true=then_value, if_false=else_value
                )
        else:
            raise AnalysisError(f"unsupported statement {statement}")
    return updates


def _target_name(target: Expression) -> str:
    if isinstance(target, Identifier):
        return target.name
    if isinstance(target, (BitSelect, PartSelect)):
        raise AnalysisError(
            "bit/part-select register targets are not supported; assign the full register"
        )
    raise AnalysisError(f"unsupported register target {target}")


def _check_references(module: Module, design: Design) -> None:
    """Verify every identifier used in an expression is declared."""
    clock = design.clock

    def check(expr: Expression) -> None:
        if isinstance(expr, Identifier):
            if expr.name == clock:
                return
            if expr.name not in design.signals:
                raise AnalysisError(
                    f"use of undeclared signal {expr.name!r} in design {design.name}"
                )
        elif isinstance(expr, (BitSelect, PartSelect)):
            if expr.name not in design.signals:
                raise AnalysisError(
                    f"use of undeclared signal {expr.name!r} in design {design.name}"
                )
        elif isinstance(expr, UnaryOp):
            check(expr.operand)
        elif isinstance(expr, BinaryOp):
            check(expr.left)
            check(expr.right)
        elif isinstance(expr, Ternary):
            check(expr.cond)
            check(expr.if_true)
            check(expr.if_false)
        elif isinstance(expr, Concat):
            for part in expr.parts:
                check(part)
        elif isinstance(expr, Repeat):
            check(expr.expr)
        elif isinstance(expr, Number):
            return

    for assign in design.assigns:
        design.signal(assign.target)
        check(assign.expression)
    for update in design.registers:
        signal = design.signal(update.target)
        if not signal.is_register:
            raise AnalysisError(
                f"non-blocking assignment to non-register {update.target!r}"
            )
        check(update.expression)


def expression_width(expr: Expression, design: Design) -> int:
    """Best-effort width of ``expr`` following Verilog self-determined rules."""
    if isinstance(expr, Identifier):
        return design.width_of(expr.name)
    if isinstance(expr, Number):
        if expr.width is not None:
            return expr.width
        return max(1, expr.value.bit_length())
    if isinstance(expr, BitSelect):
        return 1
    if isinstance(expr, PartSelect):
        return abs(expr.msb - expr.lsb) + 1
    if isinstance(expr, UnaryOp):
        if expr.op in ("!", "&", "|", "^", "~&", "~|", "~^", "^~"):
            return 1
        return expression_width(expr.operand, design)
    if isinstance(expr, BinaryOp):
        if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return 1
        if expr.op in ("<<", ">>"):
            return expression_width(expr.left, design)
        return max(
            expression_width(expr.left, design), expression_width(expr.right, design)
        )
    if isinstance(expr, Ternary):
        return max(
            expression_width(expr.if_true, design),
            expression_width(expr.if_false, design),
        )
    if isinstance(expr, Concat):
        return sum(expression_width(part, design) for part in expr.parts)
    if isinstance(expr, Repeat):
        return expr.count * expression_width(expr.expr, design)
    raise AnalysisError(f"cannot compute width of {expr}")
