"""Boolean operator graph (BOG) data structure.

The BOG is the paper's universal bit-level RTL representation (Section 3.1).
Registers and primary inputs are graph sources; every internal node is a
Boolean operator drawn from a small alphabet, and register *data* inputs and
primary outputs are the timing endpoints.  A BOG can be specialised into the
four concrete variants used by RTL-Timer — SOG, AIG, AIMG and XAG — by
restricting the operator alphabet (see :mod:`repro.bog.transforms`).

The class below is a flat, append-only node store with structural hashing,
constant folding hooks, topological iteration and level computation.  It is
the "pseudo netlist" the paper runs pseudo-STA on, so it purposely looks like
a gate-level netlist: every operator node can be treated as a pseudo standard
cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


class NodeType(enum.Enum):
    """Node types allowed in a Boolean operator graph."""

    CONST0 = "const0"
    CONST1 = "const1"
    INPUT = "input"  # primary input bit
    REG = "reg"  # register bit (graph source; its data pin is an endpoint)
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    MUX = "mux"  # fanins: (sel, a, b) -> sel ? a : b


#: Operator alphabets of the four BOG variants explored in the paper.
VARIANT_OPERATORS: Dict[str, frozenset] = {
    "sog": frozenset({NodeType.AND, NodeType.OR, NodeType.XOR, NodeType.NOT, NodeType.MUX}),
    "aig": frozenset({NodeType.AND, NodeType.NOT}),
    "aimg": frozenset({NodeType.AND, NodeType.NOT, NodeType.MUX}),
    "xag": frozenset({NodeType.AND, NodeType.XOR, NodeType.NOT}),
}

BOG_VARIANTS: Tuple[str, ...] = ("sog", "aig", "aimg", "xag")

_SOURCE_TYPES = frozenset({NodeType.CONST0, NodeType.CONST1, NodeType.INPUT, NodeType.REG})


@dataclass(slots=True)
class Node:
    """A single BOG node."""

    id: int
    type: NodeType
    fanins: Tuple[int, ...] = ()
    name: Optional[str] = None  # set for INPUT / REG bits, e.g. "R1[3]"

    @property
    def is_source(self) -> bool:
        return self.type in _SOURCE_TYPES

    @property
    def is_operator(self) -> bool:
        return not self.is_source

    def __repr__(self) -> str:
        label = f" {self.name}" if self.name else ""
        return f"Node({self.id}, {self.type.value}{label}, fanins={list(self.fanins)})"


@dataclass(slots=True)
class Endpoint:
    """A timing endpoint: a register data pin or a primary output.

    ``driver`` is the node whose output feeds the endpoint.  ``signal`` and
    ``bit`` identify the word-level RTL signal the endpoint belongs to, which
    is how bit-wise predictions are later aggregated back to signal-wise
    endpoints (Section 3.2 of the paper).
    """

    name: str  # e.g. "R1[3]"
    signal: str  # e.g. "R1"
    bit: int
    driver: int  # node id of the endpoint's driving (data) node
    kind: str = "register"  # "register" or "output"
    reg_node: Optional[int] = None  # node id of the register bit (if register)


class BOG:
    """Bit-level Boolean operator graph with structural hashing."""

    def __init__(self, name: str, variant: str = "sog"):
        if variant not in VARIANT_OPERATORS:
            raise ValueError(f"unknown BOG variant {variant!r}")
        self.name = name
        self.variant = variant
        self.nodes: List[Node] = []
        self.endpoints: List[Endpoint] = []
        # name -> node id for INPUT/REG source bits
        self.sources: Dict[str, int] = {}
        self._const0: Optional[int] = None
        self._const1: Optional[int] = None
        self._strash: Dict[Tuple, int] = {}
        self._fanouts: Optional[List[List[int]]] = None

    # -- construction --------------------------------------------------------

    def _new_node(self, node_type: NodeType, fanins: Tuple[int, ...] = (), name: Optional[str] = None) -> int:
        node = Node(id=len(self.nodes), type=node_type, fanins=fanins, name=name)
        self.nodes.append(node)
        self._fanouts = None
        return node.id

    def const0(self) -> int:
        """Return (creating if needed) the constant-zero node."""
        if self._const0 is None:
            self._const0 = self._new_node(NodeType.CONST0)
        return self._const0

    def const1(self) -> int:
        """Return (creating if needed) the constant-one node."""
        if self._const1 is None:
            self._const1 = self._new_node(NodeType.CONST1)
        return self._const1

    def add_input(self, name: str) -> int:
        """Add a primary-input bit (e.g. ``in_data0[3]``)."""
        if name in self.sources:
            return self.sources[name]
        node_id = self._new_node(NodeType.INPUT, name=name)
        self.sources[name] = node_id
        return node_id

    def add_register(self, name: str) -> int:
        """Add a register bit source node (its data pin is attached later)."""
        if name in self.sources:
            return self.sources[name]
        node_id = self._new_node(NodeType.REG, name=name)
        self.sources[name] = node_id
        return node_id

    def _check_operator(self, node_type: NodeType) -> None:
        allowed = VARIANT_OPERATORS[self.variant]
        if node_type not in allowed:
            raise ValueError(
                f"operator {node_type.value} not allowed in variant {self.variant!r}"
            )

    def add_op(self, node_type: NodeType, *fanins: int) -> int:
        """Add an operator node with constant folding and structural hashing."""
        self._check_operator(node_type)
        folded = self._fold(node_type, fanins)
        if folded is not None:
            return folded
        key = self._hash_key(node_type, fanins)
        existing = self._strash.get(key)
        if existing is not None:
            return existing
        node_id = self._new_node(node_type, tuple(fanins))
        self._strash[key] = node_id
        return node_id

    # Convenience operator constructors -------------------------------------

    def AND(self, a: int, b: int) -> int:
        return self.add_op(NodeType.AND, a, b)

    def OR(self, a: int, b: int) -> int:
        return self.add_op(NodeType.OR, a, b)

    def XOR(self, a: int, b: int) -> int:
        return self.add_op(NodeType.XOR, a, b)

    def NOT(self, a: int) -> int:
        return self.add_op(NodeType.NOT, a)

    def MUX(self, sel: int, a: int, b: int) -> int:
        """``sel ? a : b``."""
        return self.add_op(NodeType.MUX, sel, a, b)

    def add_endpoint(
        self,
        name: str,
        signal: str,
        bit: int,
        driver: int,
        kind: str = "register",
        reg_node: Optional[int] = None,
    ) -> Endpoint:
        """Register a timing endpoint fed by node ``driver``."""
        endpoint = Endpoint(
            name=name, signal=signal, bit=bit, driver=driver, kind=kind, reg_node=reg_node
        )
        self.endpoints.append(endpoint)
        return endpoint

    # -- simplification ------------------------------------------------------

    def _fold(self, node_type: NodeType, fanins: Sequence[int]) -> Optional[int]:
        """Constant folding and trivial-identity simplification."""
        c0, c1 = self._const0, self._const1

        def is0(n: int) -> bool:
            return c0 is not None and n == c0

        def is1(n: int) -> bool:
            return c1 is not None and n == c1

        if node_type is NodeType.NOT:
            (a,) = fanins
            if is0(a):
                return self.const1()
            if is1(a):
                return self.const0()
            # NOT(NOT(x)) -> x
            node = self.nodes[a]
            if node.type is NodeType.NOT:
                return node.fanins[0]
            return None

        if node_type is NodeType.AND:
            a, b = fanins
            if is0(a) or is0(b):
                return self.const0()
            if is1(a):
                return b
            if is1(b):
                return a
            if a == b:
                return a
            return None

        if node_type is NodeType.OR:
            a, b = fanins
            if is1(a) or is1(b):
                return self.const1()
            if is0(a):
                return b
            if is0(b):
                return a
            if a == b:
                return a
            return None

        if node_type is NodeType.XOR:
            a, b = fanins
            if a == b:
                return self.const0()
            if is0(a):
                return b
            if is0(b):
                return a
            return None

        if node_type is NodeType.MUX:
            sel, a, b = fanins
            if is1(sel):
                return a
            if is0(sel):
                return b
            if a == b:
                return a
            return None

        return None

    @staticmethod
    def _hash_key(node_type: NodeType, fanins: Sequence[int]) -> Tuple:
        if node_type in (NodeType.AND, NodeType.OR, NodeType.XOR):
            return (node_type, tuple(sorted(fanins)))
        return (node_type, tuple(fanins))

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def register_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.type is NodeType.REG]

    @property
    def input_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.type is NodeType.INPUT]

    @property
    def operator_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.is_operator]

    def fanouts(self) -> List[List[int]]:
        """Fanout adjacency (node id -> list of consumer node ids), cached."""
        if self._fanouts is None:
            fanouts: List[List[int]] = [[] for _ in self.nodes]
            for node in self.nodes:
                for fanin in node.fanins:
                    fanouts[fanin].append(node.id)
            self._fanouts = fanouts
        return self._fanouts

    def endpoint_fanout_counts(self) -> Dict[int, int]:
        """Number of endpoints each node drives directly."""
        counts: Dict[int, int] = {}
        for endpoint in self.endpoints:
            counts[endpoint.driver] = counts.get(endpoint.driver, 0) + 1
        return counts

    def topological_order(self) -> List[int]:
        """Node ids in topological order (sources first), validated.

        The construction order is topological because fanins must exist
        before an operator referencing them can be created — but transforms
        build graphs by hand, so the invariant is *checked* here (O(V+E))
        rather than assumed: a graph whose ids are not a topological order
        raises instead of letting evaluators silently read stale fanin
        values.  Both the scalar and the bit-packed simulators iterate this
        order, and the levelization they share
        (:meth:`levels`) relies on the same invariant.
        """
        for node in self.nodes:
            for fanin in node.fanins:
                if not 0 <= fanin < node.id:
                    raise ValueError(
                        f"node {node.id} has fanin {fanin} that does not precede it; "
                        "node ids are not a topological order"
                    )
        return list(range(len(self.nodes)))

    def levels(self) -> List[int]:
        """Logic level of each node (sources are level 0)."""
        levels = [0] * len(self.nodes)
        for node in self.nodes:
            if node.is_operator and node.fanins:
                levels[node.id] = 1 + max(levels[f] for f in node.fanins)
        return levels

    def depth(self) -> int:
        """Maximum logic level over all endpoint drivers."""
        if not self.endpoints:
            return 0
        levels = self.levels()
        return max(levels[e.driver] for e in self.endpoints)

    def transitive_fanin(self, node_id: int) -> Set[int]:
        """All node ids in the transitive fanin cone of ``node_id`` (inclusive)."""
        seen: Set[int] = set()
        stack = [node_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.nodes[current].fanins)
        return seen

    def driving_registers(self, node_id: int) -> List[int]:
        """Register/input source nodes in the transitive fanin of ``node_id``."""
        cone = self.transitive_fanin(node_id)
        return [n for n in cone if self.nodes[n].type in (NodeType.REG, NodeType.INPUT)]

    def type_counts(self) -> Dict[str, int]:
        """Number of nodes per node type."""
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.type.value] = counts.get(node.type.value, 0) + 1
        return counts

    def stats(self) -> Dict[str, float]:
        """Summary statistics used as design-level features."""
        counts = self.type_counts()
        n_comb = sum(v for k, v in counts.items() if k not in ("input", "reg", "const0", "const1"))
        n_seq = counts.get("reg", 0)
        return {
            "n_nodes": float(len(self.nodes)),
            "n_combinational": float(n_comb),
            "n_sequential": float(n_seq),
            "n_inputs": float(counts.get("input", 0)),
            "n_endpoints": float(len(self.endpoints)),
            "depth": float(self.depth()),
        }

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for node in self.nodes:
            for fanin in node.fanins:
                if fanin >= node.id:
                    raise ValueError(
                        f"node {node.id} has fanin {fanin} that does not precede it"
                    )
                if fanin < 0 or fanin >= len(self.nodes):
                    raise ValueError(f"node {node.id} has out-of-range fanin {fanin}")
            if node.type is NodeType.NOT and len(node.fanins) != 1:
                raise ValueError(f"NOT node {node.id} must have exactly one fanin")
            if node.type in (NodeType.AND, NodeType.OR, NodeType.XOR) and len(node.fanins) != 2:
                raise ValueError(f"{node.type.value} node {node.id} must have two fanins")
            if node.type is NodeType.MUX and len(node.fanins) != 3:
                raise ValueError(f"MUX node {node.id} must have three fanins")
            if node.is_operator and node.type not in VARIANT_OPERATORS[self.variant]:
                raise ValueError(
                    f"node {node.id} of type {node.type.value} is not allowed in "
                    f"variant {self.variant!r}"
                )
        for endpoint in self.endpoints:
            if endpoint.driver < 0 or endpoint.driver >= len(self.nodes):
                raise ValueError(f"endpoint {endpoint.name} has invalid driver")

    def __repr__(self) -> str:
        return (
            f"BOG({self.name!r}, variant={self.variant}, nodes={len(self.nodes)}, "
            f"endpoints={len(self.endpoints)})"
        )
