"""Bit-blasting of word-level RTL expressions into BOG nodes.

This is the machinery behind :func:`repro.bog.builder.build_sog`: every
word-level operator of the supported Verilog subset is lowered into a vector
of single-bit Boolean operator nodes (AND/OR/XOR/NOT/MUX), mirroring how a
logic synthesis front end decomposes RTL operators into gate networks.

Conventions
-----------
* A word value is represented as a list of node ids, index 0 being the least
  significant bit.
* All arithmetic is unsigned; operands are zero-extended to a common width
  before an operator is applied (matching the self-determined/context width
  rules closely enough for the supported subset).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bog.graph import BOG
from repro.hdl.ast_nodes import (
    BinaryOp,
    BitSelect,
    Concat,
    Expression,
    Identifier,
    Number,
    PartSelect,
    Repeat,
    Ternary,
    UnaryOp,
)
from repro.hdl.design import AnalysisError, Design

Bits = List[int]


class BitBlaster:
    """Lowers word-level expressions into BOG node vectors.

    ``signal_bits`` maps a signal name to its bit vector (LSB first); the
    builder populates it with primary input bits, register output bits and
    already-elaborated wire bits before expressions referencing them are
    blasted.
    """

    def __init__(self, bog: BOG, design: Design, signal_bits: Dict[str, Bits]):
        self.bog = bog
        self.design = design
        self.signal_bits = signal_bits

    # -- public -------------------------------------------------------------

    def blast(self, expr: Expression, width: int) -> Bits:
        """Lower ``expr`` and coerce the result to exactly ``width`` bits."""
        bits = self._expr(expr)
        return self.coerce(bits, width)

    def coerce(self, bits: Bits, width: int) -> Bits:
        """Zero-extend or truncate ``bits`` to ``width``."""
        if len(bits) >= width:
            return bits[:width]
        return bits + [self.bog.const0()] * (width - len(bits))

    # -- dispatch -----------------------------------------------------------

    def _expr(self, expr: Expression) -> Bits:
        if isinstance(expr, Identifier):
            return self._identifier(expr)
        if isinstance(expr, Number):
            return self._number(expr)
        if isinstance(expr, BitSelect):
            return self._bit_select(expr)
        if isinstance(expr, PartSelect):
            return self._part_select(expr)
        if isinstance(expr, Concat):
            return self._concat(expr)
        if isinstance(expr, Repeat):
            return self._repeat(expr)
        if isinstance(expr, UnaryOp):
            return self._unary(expr)
        if isinstance(expr, BinaryOp):
            return self._binary(expr)
        if isinstance(expr, Ternary):
            return self._ternary(expr)
        raise AnalysisError(f"cannot bit-blast expression {expr!r}")

    # -- leaves -------------------------------------------------------------

    def _identifier(self, expr: Identifier) -> Bits:
        try:
            return list(self.signal_bits[expr.name])
        except KeyError as exc:
            raise AnalysisError(
                f"signal {expr.name!r} used before its bits were elaborated"
            ) from exc

    def _number(self, expr: Number) -> Bits:
        width = expr.width if expr.width is not None else max(1, expr.value.bit_length())
        return [
            self.bog.const1() if (expr.value >> i) & 1 else self.bog.const0()
            for i in range(width)
        ]

    def _bit_select(self, expr: BitSelect) -> Bits:
        bits = self.signal_bits[expr.name]
        lsb = self.design.signal(expr.name).lsb
        index = expr.index - lsb
        if index < 0 or index >= len(bits):
            raise AnalysisError(
                f"bit select {expr.name}[{expr.index}] out of range (width {len(bits)})"
            )
        return [bits[index]]

    def _part_select(self, expr: PartSelect) -> Bits:
        bits = self.signal_bits[expr.name]
        lsb_offset = self.design.signal(expr.name).lsb
        low = min(expr.msb, expr.lsb) - lsb_offset
        high = max(expr.msb, expr.lsb) - lsb_offset
        if low < 0 or high >= len(bits):
            raise AnalysisError(
                f"part select {expr.name}[{expr.msb}:{expr.lsb}] out of range"
            )
        return list(bits[low : high + 1])

    def _concat(self, expr: Concat) -> Bits:
        # Verilog lists the most significant part first; bit vectors are LSB
        # first, so reverse the part order and concatenate.
        bits: Bits = []
        for part in reversed(expr.parts):
            bits.extend(self._expr(part))
        return bits

    def _repeat(self, expr: Repeat) -> Bits:
        base = self._expr(expr.expr)
        return list(base) * expr.count

    # -- operators ----------------------------------------------------------

    def _unary(self, expr: UnaryOp) -> Bits:
        op = expr.op
        operand = self._expr(expr.operand)
        bog = self.bog
        if op == "~":
            return [bog.NOT(b) for b in operand]
        if op == "!":
            return [bog.NOT(self._reduce_or(operand))]
        if op == "&":
            return [self._reduce(operand, bog.AND)]
        if op == "|":
            return [self._reduce_or(operand)]
        if op == "^":
            return [self._reduce(operand, bog.XOR)]
        if op == "~&":
            return [bog.NOT(self._reduce(operand, bog.AND))]
        if op == "~|":
            return [bog.NOT(self._reduce_or(operand))]
        if op in ("~^", "^~"):
            return [bog.NOT(self._reduce(operand, bog.XOR))]
        if op == "-":
            return self._negate(operand)
        raise AnalysisError(f"unsupported unary operator {op!r}")

    def _binary(self, expr: BinaryOp) -> Bits:
        op = expr.op
        bog = self.bog

        if op in ("<<", ">>"):
            left = self._expr(expr.left)
            return self._shift(left, expr.right, op)

        left = self._expr(expr.left)
        right = self._expr(expr.right)

        if op in ("&&", "||"):
            a = self._reduce_or(left)
            b = self._reduce_or(right)
            return [bog.AND(a, b) if op == "&&" else bog.OR(a, b)]

        if op in ("==", "!="):
            width = max(len(left), len(right))
            left = self.coerce(left, width)
            right = self.coerce(right, width)
            diff = [bog.XOR(a, b) for a, b in zip(left, right)]
            any_diff = self._reduce_or(diff)
            return [bog.NOT(any_diff)] if op == "==" else [any_diff]

        if op in ("<", "<=", ">", ">="):
            return [self._compare(left, right, op)]

        width = max(len(left), len(right))
        left = self.coerce(left, width)
        right = self.coerce(right, width)

        if op == "&":
            return [bog.AND(a, b) for a, b in zip(left, right)]
        if op == "|":
            return [bog.OR(a, b) for a, b in zip(left, right)]
        if op == "^":
            return [bog.XOR(a, b) for a, b in zip(left, right)]
        if op in ("~^", "^~"):
            return [bog.NOT(bog.XOR(a, b)) for a, b in zip(left, right)]
        if op == "+":
            return self._add(left, right)
        if op == "-":
            return self._add(left, self._negate_no_extend(right), carry_in=True)
        if op == "*":
            return self._multiply(left, right)
        if op in ("/", "%"):
            raise AnalysisError("division/modulo are not synthesizable in this subset")
        raise AnalysisError(f"unsupported binary operator {op!r}")

    def _ternary(self, expr: Ternary) -> Bits:
        sel_bits = self._expr(expr.cond)
        sel = self._reduce_or(sel_bits)
        then_bits = self._expr(expr.if_true)
        else_bits = self._expr(expr.if_false)
        width = max(len(then_bits), len(else_bits))
        then_bits = self.coerce(then_bits, width)
        else_bits = self.coerce(else_bits, width)
        return [self.bog.MUX(sel, a, b) for a, b in zip(then_bits, else_bits)]

    # -- primitives ----------------------------------------------------------

    def _reduce(self, bits: Bits, op: Callable[[int, int], int]) -> int:
        """Balanced reduction tree over ``bits`` using binary operator ``op``."""
        if not bits:
            return self.bog.const0()
        current = list(bits)
        while len(current) > 1:
            next_level: Bits = []
            for i in range(0, len(current) - 1, 2):
                next_level.append(op(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                next_level.append(current[-1])
            current = next_level
        return current[0]

    def _reduce_or(self, bits: Bits) -> int:
        return self._reduce(bits, self.bog.OR)

    def _add(self, left: Bits, right: Bits, carry_in: bool = False) -> Bits:
        """Ripple-carry addition, truncated to the operand width."""
        bog = self.bog
        carry = bog.const1() if carry_in else bog.const0()
        out: Bits = []
        for a, b in zip(left, right):
            axb = bog.XOR(a, b)
            out.append(bog.XOR(axb, carry))
            carry = bog.OR(bog.AND(a, b), bog.AND(axb, carry))
        return out

    def _negate_no_extend(self, bits: Bits) -> Bits:
        """Bitwise complement (two's complement negation pairs with carry-in)."""
        return [self.bog.NOT(b) for b in bits]

    def _negate(self, bits: Bits) -> Bits:
        """Two's complement negation: ``~x + 1``."""
        inverted = self._negate_no_extend(bits)
        one = [self.bog.const1()] + [self.bog.const0()] * (len(bits) - 1)
        return self._add(inverted, one)

    def _multiply(self, left: Bits, right: Bits) -> Bits:
        """Shift-and-add array multiplier, truncated to the operand width."""
        bog = self.bog
        width = len(left)
        accumulator: Bits = [bog.const0()] * width
        for shift, b in enumerate(right):
            if shift >= width:
                break
            partial = [bog.const0()] * shift + [bog.AND(a, b) for a in left[: width - shift]]
            accumulator = self._add(accumulator, self.coerce(partial, width))
        return accumulator

    def _shift(self, left: Bits, amount_expr: Expression, op: str) -> Bits:
        """Logical shift by a constant or variable amount."""
        bog = self.bog
        width = len(left)
        if isinstance(amount_expr, Number):
            amount = amount_expr.value
            if op == "<<":
                shifted = [bog.const0()] * amount + left
            else:
                shifted = left[amount:]
            return self.coerce(shifted, width)
        # Variable shift: barrel shifter, one MUX layer per shift-amount bit.
        amount_bits = self._expr(amount_expr)
        max_stage_bits = max(1, (width - 1).bit_length())
        current = list(left)
        for stage, sel in enumerate(amount_bits[:max_stage_bits]):
            offset = 1 << stage
            shifted: Bits = []
            for i in range(width):
                if op == "<<":
                    source = current[i - offset] if i - offset >= 0 else bog.const0()
                else:
                    source = current[i + offset] if i + offset < width else bog.const0()
                shifted.append(source)
            current = [bog.MUX(sel, s, c) for s, c in zip(shifted, current)]
        # Any higher-order shift-amount bit being set shifts everything out.
        if len(amount_bits) > max_stage_bits:
            overflow = self._reduce_or(amount_bits[max_stage_bits:])
            zero = bog.const0()
            current = [bog.MUX(overflow, zero, c) for c in current]
        return current

    def _compare(self, left: Bits, right: Bits, op: str) -> int:
        """Unsigned magnitude comparison returning a single-bit node."""
        bog = self.bog
        width = max(len(left), len(right))
        left = self.coerce(left, width)
        right = self.coerce(right, width)
        # Ripple comparison from LSB to MSB:
        #   lt = (~a & b) | ((a xnor b) & lt_prev)
        lt = bog.const0()
        gt = bog.const0()
        for a, b in zip(left, right):
            eq = bog.NOT(bog.XOR(a, b))
            lt = bog.OR(bog.AND(bog.NOT(a), b), bog.AND(eq, lt))
            gt = bog.OR(bog.AND(a, bog.NOT(b)), bog.AND(eq, gt))
        if op == "<":
            return lt
        if op == ">":
            return gt
        if op == "<=":
            return bog.NOT(gt)
        if op == ">=":
            return bog.NOT(lt)
        raise AnalysisError(f"unsupported comparison operator {op!r}")
