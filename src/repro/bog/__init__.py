"""Boolean operator graph (BOG) representations of RTL designs.

Implements the bit-level RTL representation family from Section 3.1 of the
paper: the SOG built by bit-blasting the word-level design, and the AIG,
AIMG and XAG variants derived from it.  Also provides functional simulation
used to verify that all variants are equivalent.
"""

from repro.bog.graph import BOG, BOG_VARIANTS, Endpoint, Node, NodeType, VARIANT_OPERATORS
from repro.bog.builder import build_sog, bit_name
from repro.bog.transforms import convert, build_variants
from repro.bog.simulate import (
    PACKED_LANES,
    evaluate_endpoints,
    evaluate_endpoints_packed,
    evaluate_nodes,
    evaluate_nodes_packed,
    evaluate_signal_words,
    pack_source_vectors,
    unpack_lane,
)

__all__ = [
    "BOG",
    "BOG_VARIANTS",
    "Endpoint",
    "Node",
    "NodeType",
    "VARIANT_OPERATORS",
    "build_sog",
    "bit_name",
    "convert",
    "build_variants",
    "PACKED_LANES",
    "evaluate_endpoints",
    "evaluate_endpoints_packed",
    "evaluate_nodes",
    "evaluate_nodes_packed",
    "evaluate_signal_words",
    "pack_source_vectors",
    "unpack_lane",
]
