"""Conversions between BOG operator alphabets (SOG -> AIG / AIMG / XAG).

The paper ensembles four representation variants of the same design
(Section 3.1).  All four are functionally identical; they differ only in the
operator alphabet, which changes node counts, logic depth and therefore the
pseudo-STA patterns the downstream models learn from:

* **SOG** — AND, OR, XOR, NOT, MUX (closest to the mapped netlist),
* **AIG** — AND, NOT only (finest decomposition),
* **AIMG** — AND, NOT, MUX,
* **XAG** — AND, XOR, NOT.

:func:`convert` rewrites a SOG into a target variant node-by-node in
topological order, reusing structural hashing in the destination graph so the
result stays compact.  :func:`build_variants` is the convenience front end
used by the RTL-Timer pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.bog.builder import build_sog
from repro.bog.graph import BOG, BOG_VARIANTS, Node, NodeType
from repro.hdl.design import Design


def convert(sog: BOG, variant: str) -> BOG:
    """Convert a SOG into the requested variant (returns a new graph)."""
    if variant == "sog":
        return sog
    if variant not in BOG_VARIANTS:
        raise ValueError(f"unknown BOG variant {variant!r}")
    target = BOG(sog.name, variant=variant)
    mapping: Dict[int, int] = {}

    emit_or = _or_builder(target)
    emit_xor = _xor_builder(target)
    emit_mux = _mux_builder(target)

    for node in sog.nodes:
        mapping[node.id] = _convert_node(node, target, mapping, emit_or, emit_xor, emit_mux)

    for endpoint in sog.endpoints:
        target.add_endpoint(
            name=endpoint.name,
            signal=endpoint.signal,
            bit=endpoint.bit,
            driver=mapping[endpoint.driver],
            kind=endpoint.kind,
            reg_node=mapping[endpoint.reg_node] if endpoint.reg_node is not None else None,
        )

    target.validate()
    return target


def build_variants(design: Design, variants: tuple = BOG_VARIANTS) -> Dict[str, BOG]:
    """Build the requested BOG variants for ``design`` (SOG is built once)."""
    sog = build_sog(design)
    graphs: Dict[str, BOG] = {}
    for variant in variants:
        graphs[variant] = sog if variant == "sog" else convert(sog, variant)
    return graphs


# ---------------------------------------------------------------------------
# Per-node conversion
# ---------------------------------------------------------------------------


def _convert_node(
    node: Node,
    target: BOG,
    mapping: Dict[int, int],
    emit_or: Callable[[int, int], int],
    emit_xor: Callable[[int, int], int],
    emit_mux: Callable[[int, int, int], int],
) -> int:
    if node.type is NodeType.CONST0:
        return target.const0()
    if node.type is NodeType.CONST1:
        return target.const1()
    if node.type is NodeType.INPUT:
        return target.add_input(node.name or f"pi_{node.id}")
    if node.type is NodeType.REG:
        return target.add_register(node.name or f"reg_{node.id}")

    fanins = [mapping[f] for f in node.fanins]
    if node.type is NodeType.NOT:
        return target.NOT(fanins[0])
    if node.type is NodeType.AND:
        return target.AND(fanins[0], fanins[1])
    if node.type is NodeType.OR:
        return emit_or(fanins[0], fanins[1])
    if node.type is NodeType.XOR:
        return emit_xor(fanins[0], fanins[1])
    if node.type is NodeType.MUX:
        return emit_mux(fanins[0], fanins[1], fanins[2])
    raise ValueError(f"cannot convert node type {node.type}")


def _or_builder(target: BOG) -> Callable[[int, int], int]:
    """Return a function computing OR within the target variant's alphabet."""
    from repro.bog.graph import VARIANT_OPERATORS

    allowed = VARIANT_OPERATORS[target.variant]
    if NodeType.OR in allowed:
        return target.OR

    def or_via_and(a: int, b: int) -> int:
        # De Morgan: a | b = ~(~a & ~b)
        return target.NOT(target.AND(target.NOT(a), target.NOT(b)))

    return or_via_and


def _xor_builder(target: BOG) -> Callable[[int, int], int]:
    """Return a function computing XOR within the target variant's alphabet."""
    from repro.bog.graph import VARIANT_OPERATORS

    allowed = VARIANT_OPERATORS[target.variant]
    if NodeType.XOR in allowed:
        return target.XOR
    if NodeType.MUX in allowed:

        def xor_via_mux(a: int, b: int) -> int:
            # a ^ b = a ? ~b : b
            return target.MUX(a, target.NOT(b), b)

        return xor_via_mux

    def xor_via_and(a: int, b: int) -> int:
        # a ^ b = ~(~(a & ~b) & ~(~a & b))
        left = target.AND(a, target.NOT(b))
        right = target.AND(target.NOT(a), b)
        return target.NOT(target.AND(target.NOT(left), target.NOT(right)))

    return xor_via_and


def _mux_builder(target: BOG) -> Callable[[int, int, int], int]:
    """Return a function computing MUX within the target variant's alphabet."""
    from repro.bog.graph import VARIANT_OPERATORS

    allowed = VARIANT_OPERATORS[target.variant]
    if NodeType.MUX in allowed:
        return target.MUX

    if NodeType.XOR in allowed:

        def mux_via_xor(sel: int, a: int, b: int) -> int:
            # sel ? a : b  =  b ^ (sel & (a ^ b))
            return target.XOR(b, target.AND(sel, target.XOR(a, b)))

        return mux_via_xor

    def mux_via_and(sel: int, a: int, b: int) -> int:
        # sel ? a : b  =  ~(~(sel & a) & ~(~sel & b))
        left = target.AND(sel, a)
        right = target.AND(target.NOT(sel), b)
        return target.NOT(target.AND(target.NOT(left), target.NOT(right)))

    return mux_via_and
