"""Construction of the SOG (simple operator graph) from a word-level design.

:func:`build_sog` performs the front-end elaboration step of the paper's
workflow: every word-level signal is expanded into bits, every RTL operator
is lowered into single-bit Boolean operator nodes, and every register bit /
primary output becomes a timing endpoint.  The result is the SOG variant of
the Boolean operator graph; the other three variants (AIG, AIMG, XAG) are
derived from it by :mod:`repro.bog.transforms`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.bog.bitblast import BitBlaster, Bits
from repro.bog.graph import BOG
from repro.hdl.ast_nodes import (
    BinaryOp,
    BitSelect,
    Concat,
    Expression,
    Identifier,
    Number,
    PartSelect,
    Repeat,
    Ternary,
    UnaryOp,
)
from repro.hdl.design import AnalysisError, Design, WireAssign


def bit_name(signal: str, bit: int) -> str:
    """Canonical name of a single bit of a word-level signal."""
    return f"{signal}[{bit}]"


def build_sog(design: Design) -> BOG:
    """Build the SOG Boolean operator graph for ``design``."""
    bog = BOG(design.name, variant="sog")
    signal_bits: Dict[str, Bits] = {}

    # 1. Primary input bits and register output bits are graph sources.
    for signal in design.inputs:
        signal_bits[signal.name] = [
            bog.add_input(bit_name(signal.name, i)) for i in range(signal.width)
        ]
    for signal in design.register_signals:
        signal_bits[signal.name] = [
            bog.add_register(bit_name(signal.name, i)) for i in range(signal.width)
        ]

    blaster = BitBlaster(bog, design, signal_bits)

    # 2. Continuous assignments, processed in dependency order.
    _elaborate_assigns(design, bog, blaster, signal_bits)

    # 3. Register next-state logic: each register bit becomes an endpoint.
    assigned_registers: Set[str] = set()
    for update in design.registers:
        signal = design.signal(update.target)
        bits = blaster.blast(update.expression, signal.width)
        reg_bits = signal_bits[update.target]
        for index, (driver, reg_node) in enumerate(zip(bits, reg_bits)):
            bog.add_endpoint(
                name=bit_name(update.target, index),
                signal=update.target,
                bit=index,
                driver=driver,
                kind="register",
                reg_node=reg_node,
            )
        assigned_registers.add(update.target)

    # Registers without an update hold their value; they still appear as
    # endpoints so that every sequential signal can be annotated.
    for signal in design.register_signals:
        if signal.name in assigned_registers:
            continue
        for index, reg_node in enumerate(signal_bits[signal.name]):
            bog.add_endpoint(
                name=bit_name(signal.name, index),
                signal=signal.name,
                bit=index,
                driver=reg_node,
                kind="register",
                reg_node=reg_node,
            )

    # 4. Primary outputs driven by combinational logic are PO endpoints.
    for signal in design.outputs:
        bits = signal_bits.get(signal.name)
        if bits is None:
            continue
        for index, driver in enumerate(bits):
            bog.add_endpoint(
                name=bit_name(signal.name, index),
                signal=signal.name,
                bit=index,
                driver=driver,
                kind="output",
            )

    bog.validate()
    return bog


def _elaborate_assigns(
    design: Design,
    bog: BOG,
    blaster: BitBlaster,
    signal_bits: Dict[str, Bits],
) -> None:
    """Elaborate continuous assignments in dependency order."""
    # Group the (possibly partial) assigns per target signal.
    assigns_by_target: Dict[str, List[WireAssign]] = {}
    for assign in design.assigns:
        assigns_by_target.setdefault(assign.target, []).append(assign)

    pending = dict(assigns_by_target)
    # Signals already available: inputs, registers and constants.
    progress = True
    while pending and progress:
        progress = False
        for target in list(pending):
            deps = set()
            for assign in pending[target]:
                deps |= _expression_signals(assign.expression)
            unmet = {
                d
                for d in deps
                if d not in signal_bits and d in assigns_by_target and d != target
            }
            if unmet:
                continue
            signal_bits[target] = _elaborate_target(
                design, bog, blaster, target, pending.pop(target)
            )
            progress = True

    if pending:
        cycle = ", ".join(sorted(pending))
        raise AnalysisError(f"combinational dependency cycle through assigns: {cycle}")

    # Declared wires that are never assigned default to constant zero.
    for signal in design.wires + design.outputs:
        if signal.name not in signal_bits:
            signal_bits[signal.name] = [bog.const0()] * signal.width


def _elaborate_target(
    design: Design,
    bog: BOG,
    blaster: BitBlaster,
    target: str,
    assigns: Sequence[WireAssign],
) -> Bits:
    """Compute the bit vector of a wire target from its (partial) assigns."""
    signal = design.signal(target)
    bits: List[Optional[int]] = [None] * signal.width
    for assign in assigns:
        if assign.msb is None:
            value = blaster.blast(assign.expression, signal.width)
            for i in range(signal.width):
                bits[i] = value[i]
        else:
            low = min(assign.msb, assign.lsb) - signal.lsb
            high = max(assign.msb, assign.lsb) - signal.lsb
            width = high - low + 1
            value = blaster.blast(assign.expression, width)
            for offset in range(width):
                index = low + offset
                if index < 0 or index >= signal.width:
                    raise AnalysisError(
                        f"assign to {target}[{index + signal.lsb}] is out of range"
                    )
                bits[index] = value[offset]
    return [b if b is not None else bog.const0() for b in bits]


def _expression_signals(expr: Expression) -> Set[str]:
    """Names of all signals referenced by ``expr``."""
    names: Set[str] = set()

    def walk(node: Expression) -> None:
        if isinstance(node, Identifier):
            names.add(node.name)
        elif isinstance(node, (BitSelect, PartSelect)):
            names.add(node.name)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Ternary):
            walk(node.cond)
            walk(node.if_true)
            walk(node.if_false)
        elif isinstance(node, Concat):
            for part in node.parts:
                walk(part)
        elif isinstance(node, Repeat):
            walk(node.expr)
        elif isinstance(node, Number):
            return

    walk(expr)
    return names
