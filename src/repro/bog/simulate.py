"""Functional simulation of Boolean operator graphs.

Used by the test suite to prove that bit-blasting and the SOG -> AIG/AIMG/XAG
transforms preserve functionality: the same source assignment must produce
the same endpoint values in every variant and must agree with the word-level
interpreter in :mod:`repro.hdl.interpret`.

Two evaluators are provided:

* :func:`evaluate_nodes` — scalar reference: one source assignment, one
  Python loop over the (validated) topological order.
* :func:`evaluate_nodes_packed` — uint64 bit-packed batch kernel: up to 64
  random vectors ride in the lanes of one machine word, the graph is swept
  level by level (the same levelization the timing kernels use), and each
  (level, operator) group is evaluated with one numpy bitwise op.  The
  ``packed_vs_scalar_sim`` fuzz oracle holds the two bit-for-bit equal.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.bog.graph import BOG, NodeType
from repro.faults import fault_active

#: Number of stimulus vectors one packed word carries.
PACKED_LANES = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def evaluate_nodes(bog: BOG, source_values: Mapping[str, int]) -> List[int]:
    """Evaluate every node of ``bog`` for one source assignment.

    ``source_values`` maps source bit names (``"in_data0[3]"``, ``"R1[0]"``)
    to 0/1; missing sources default to 0.  Returns a list of node values in
    node-id order.  Iterates :meth:`BOG.topological_order`, which validates
    that node ids actually are a topological order, so a malformed graph
    raises instead of evaluating stale fanin values.
    """
    values: List[int] = [0] * len(bog.nodes)
    nodes = bog.nodes
    for node_id in bog.topological_order():
        node = nodes[node_id]
        if node.type is NodeType.CONST0:
            values[node.id] = 0
        elif node.type is NodeType.CONST1:
            values[node.id] = 1
        elif node.type in (NodeType.INPUT, NodeType.REG):
            values[node.id] = int(bool(source_values.get(node.name or "", 0)))
        elif node.type is NodeType.NOT:
            values[node.id] = 1 - values[node.fanins[0]]
        elif node.type is NodeType.AND:
            values[node.id] = values[node.fanins[0]] & values[node.fanins[1]]
        elif node.type is NodeType.OR:
            values[node.id] = values[node.fanins[0]] | values[node.fanins[1]]
        elif node.type is NodeType.XOR:
            values[node.id] = values[node.fanins[0]] ^ values[node.fanins[1]]
        elif node.type is NodeType.MUX:
            sel, a, b = node.fanins
            values[node.id] = values[a] if values[sel] else values[b]
        else:
            raise ValueError(f"cannot evaluate node type {node.type}")
    return values


def evaluate_endpoints(bog: BOG, source_values: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate the graph and return the value at every endpoint driver."""
    values = evaluate_nodes(bog, source_values)
    return {endpoint.name: values[endpoint.driver] for endpoint in bog.endpoints}


def evaluate_signal_words(
    bog: BOG, source_values: Mapping[str, int]
) -> Dict[str, int]:
    """Evaluate endpoints and re-assemble per-signal integer words.

    Register endpoints named ``R[i]`` are packed back into the word-level
    value of signal ``R`` (bit ``i`` contributes ``2**i``).
    """
    endpoint_values = evaluate_endpoints(bog, source_values)
    words: Dict[str, int] = {}
    for endpoint in bog.endpoints:
        value = endpoint_values[endpoint.name]
        words[endpoint.signal] = words.get(endpoint.signal, 0) | (value << endpoint.bit)
    return words


# ---------------------------------------------------------------------------
# Bit-packed batch evaluation
# ---------------------------------------------------------------------------


def pack_source_vectors(
    vectors: Sequence[Mapping[str, int]]
) -> Dict[str, int]:
    """Pack up to :data:`PACKED_LANES` source assignments into lane words.

    ``vectors[lane]`` is one :func:`evaluate_nodes`-style source assignment;
    bit ``lane`` of the returned word for a source name carries that lane's
    value.  Names missing from a lane default to 0, exactly like the scalar
    evaluator.
    """
    if len(vectors) > PACKED_LANES:
        raise ValueError(
            f"at most {PACKED_LANES} vectors fit one packed word, got {len(vectors)}"
        )
    words: Dict[str, int] = {}
    for lane, vector in enumerate(vectors):
        mask = 1 << lane
        for name, value in vector.items():
            if value & 1:
                words[name] = words.get(name, 0) | mask
    return words


def evaluate_nodes_packed(
    bog: BOG, packed_sources: Mapping[str, int]
) -> np.ndarray:
    """Evaluate all 64 lanes of every node with levelized numpy bitwise ops.

    ``packed_sources`` maps source bit names to uint64 lane words (see
    :func:`pack_source_vectors`); missing sources default to 0 in every
    lane.  Returns a uint64 array of per-node lane words, bit-identical per
    lane to running :func:`evaluate_nodes` on that lane's assignment.

    The graph is swept level by level over the validated topological order —
    the same levelization contract the timing kernels compile — and every
    (level, operator-type) group is evaluated with one vectorized op, so the
    per-vector cost is roughly 1/64th of a scalar numpy sweep.
    """
    bog.topological_order()  # validate: ids must be a topological order
    n = len(bog.nodes)
    values = np.zeros(n, dtype=np.uint64)
    levels = bog.levels()

    groups: Dict[Tuple[int, NodeType], List[Tuple[int, Tuple[int, ...]]]] = {}
    const1_ids: List[int] = []
    source_ids: List[int] = []
    source_words: List[int] = []
    for node in bog.nodes:
        if node.type is NodeType.CONST1:
            const1_ids.append(node.id)
        elif node.type in (NodeType.INPUT, NodeType.REG):
            source_ids.append(node.id)
            source_words.append(packed_sources.get(node.name or "", 0))
        elif node.type is NodeType.CONST0:
            pass  # already zero
        else:
            groups.setdefault((levels[node.id], node.type), []).append(
                (node.id, node.fanins)
            )

    if const1_ids:
        values[const1_ids] = _ALL_ONES
    if source_ids:
        values[source_ids] = np.array(source_words, dtype=np.uint64)

    and_is_or = fault_active("simulate.packed_and")
    for (_, node_type), members in sorted(groups.items(), key=lambda item: item[0][0]):
        ids = np.array([m[0] for m in members], dtype=np.int64)
        f0 = values[np.array([m[1][0] for m in members], dtype=np.int64)]
        if node_type is NodeType.NOT:
            values[ids] = ~f0
            continue
        f1 = values[np.array([m[1][1] for m in members], dtype=np.int64)]
        if node_type is NodeType.AND:
            if and_is_or:
                # Debug fault point: packed AND computed as OR, which the
                # packed_vs_scalar_sim oracle must catch (see repro.faults).
                values[ids] = f0 | f1
            else:
                values[ids] = f0 & f1
        elif node_type is NodeType.OR:
            values[ids] = f0 | f1
        elif node_type is NodeType.XOR:
            values[ids] = f0 ^ f1
        elif node_type is NodeType.MUX:
            f2 = values[np.array([m[1][2] for m in members], dtype=np.int64)]
            values[ids] = (f0 & f1) | (~f0 & f2)
        else:  # pragma: no cover - alphabet is closed by BOG.validate
            raise ValueError(f"cannot evaluate node type {node_type}")
    return values


def unpack_lane(packed_values: np.ndarray, lane: int) -> List[int]:
    """One lane's scalar node values out of a packed evaluation."""
    if not 0 <= lane < PACKED_LANES:
        raise ValueError(f"lane must be in [0, {PACKED_LANES}), got {lane}")
    return ((packed_values >> np.uint64(lane)) & np.uint64(1)).astype(int).tolist()


def evaluate_endpoints_packed(
    bog: BOG, packed_sources: Mapping[str, int]
) -> Dict[str, int]:
    """Packed evaluation reduced to per-endpoint lane words."""
    values = evaluate_nodes_packed(bog, packed_sources)
    return {endpoint.name: int(values[endpoint.driver]) for endpoint in bog.endpoints}
