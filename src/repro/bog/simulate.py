"""Functional simulation of Boolean operator graphs.

Used by the test suite to prove that bit-blasting and the SOG -> AIG/AIMG/XAG
transforms preserve functionality: the same source assignment must produce
the same endpoint values in every variant and must agree with the word-level
interpreter in :mod:`repro.hdl.interpret`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.bog.graph import BOG, NodeType


def evaluate_nodes(bog: BOG, source_values: Mapping[str, int]) -> List[int]:
    """Evaluate every node of ``bog`` for one source assignment.

    ``source_values`` maps source bit names (``"in_data0[3]"``, ``"R1[0]"``)
    to 0/1; missing sources default to 0.  Returns a list of node values in
    node-id order.
    """
    values: List[int] = [0] * len(bog.nodes)
    for node in bog.nodes:
        if node.type is NodeType.CONST0:
            values[node.id] = 0
        elif node.type is NodeType.CONST1:
            values[node.id] = 1
        elif node.type in (NodeType.INPUT, NodeType.REG):
            values[node.id] = int(bool(source_values.get(node.name or "", 0)))
        elif node.type is NodeType.NOT:
            values[node.id] = 1 - values[node.fanins[0]]
        elif node.type is NodeType.AND:
            values[node.id] = values[node.fanins[0]] & values[node.fanins[1]]
        elif node.type is NodeType.OR:
            values[node.id] = values[node.fanins[0]] | values[node.fanins[1]]
        elif node.type is NodeType.XOR:
            values[node.id] = values[node.fanins[0]] ^ values[node.fanins[1]]
        elif node.type is NodeType.MUX:
            sel, a, b = node.fanins
            values[node.id] = values[a] if values[sel] else values[b]
        else:
            raise ValueError(f"cannot evaluate node type {node.type}")
    return values


def evaluate_endpoints(bog: BOG, source_values: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate the graph and return the value at every endpoint driver."""
    values = evaluate_nodes(bog, source_values)
    return {endpoint.name: values[endpoint.driver] for endpoint in bog.endpoints}


def evaluate_signal_words(
    bog: BOG, source_values: Mapping[str, int]
) -> Dict[str, int]:
    """Evaluate endpoints and re-assemble per-signal integer words.

    Register endpoints named ``R[i]`` are packed back into the word-level
    value of signal ``R`` (bit ``i`` contributes ``2**i``).
    """
    endpoint_values = evaluate_endpoints(bog, source_values)
    words: Dict[str, int] = {}
    for endpoint in bog.endpoints:
        value = endpoint_values[endpoint.name]
        words[endpoint.signal] = words.get(endpoint.signal, 0) | (value << endpoint.bit)
    return words
