"""Feature extraction for RTL processing (Table 2 of the paper).

Three levels of features are extracted for every sampled path:

* **design-level** — the endpoint's criticality rank within its design (from
  pseudo-STA) and global size counters (sequential / combinational / total
  pseudo cells).  These let the model compare endpoints across designs whose
  synthesis effort differs.
* **cone-level** — the number of registers driving the endpoint's input cone.
* **path-level** — pseudo-STA arrival time, level count, operator counts per
  type, and sum/average/standard deviation statistics of fanout, load and
  slew along the path.

The same module also produces the per-path token sequences consumed by the
transformer path model and the whole-graph records consumed by the GNN
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import DesignRecord
from repro.core.sampling import EndpointSamples, SamplingConfig, sample_design_paths
from repro.ml.gnn import GraphData
from repro.runtime.report import stage as _stage
from repro.sta.engine import STAReport
from repro.sta.network import TimingNetwork, VertexKind
from repro.sta.paths import path_arrival


#: Column names of the path feature matrix (order matters).
PATH_FEATURE_NAMES: Tuple[str, ...] = (
    "design_rank_percent",
    "design_n_sequential",
    "design_n_combinational",
    "design_n_total",
    "cone_n_driving_regs",
    "path_pseudo_arrival",
    "path_n_levels",
    "path_n_operators",
    "path_n_and",
    "path_n_or",
    "path_n_xor",
    "path_n_not",
    "path_n_mux",
    "path_fanout_sum",
    "path_fanout_avg",
    "path_fanout_std",
    "path_load_sum",
    "path_load_avg",
    "path_load_std",
    "path_slew_avg",
    "endpoint_fanout",
    "endpoint_pseudo_arrival",
)

#: Token alphabet for the transformer path model.
_TOKEN_FUNCTIONS: Tuple[str, ...] = ("AND", "OR", "XOR", "NOT", "MUX", "REG", "input", "const")


@dataclass
class PathDataset:
    """Per-path features for one design under one BOG variant."""

    design: str
    variant: str
    features: np.ndarray  # (n_paths, n_features)
    groups: np.ndarray  # (n_paths,) endpoint index local to this dataset
    tokens: List[np.ndarray]  # per-path token sequences (for the transformer)
    endpoint_names: List[str]
    endpoint_signals: List[str]
    endpoint_labels: np.ndarray  # (n_endpoints,) post-synthesis arrival labels
    endpoint_designs: List[str]

    @property
    def n_paths(self) -> int:
        return len(self.features)

    @property
    def n_endpoints(self) -> int:
        return len(self.endpoint_names)


def extract_path_dataset(
    record: DesignRecord,
    variant: str = "sog",
    sampling: Optional[SamplingConfig] = None,
    endpoint_names: Optional[Sequence[str]] = None,
) -> PathDataset:
    """Extract the path-level dataset of one design for one BOG variant.

    Extraction is deterministic in its arguments, so results are served from
    the fingerprint-keyed :mod:`~repro.core.feature_cache` when possible —
    cross-validation folds, fit and predict all share one extraction per
    (record, variant, sampling, endpoint subset).  The
    ``features.extract_path_dataset`` stage therefore counts *actual*
    extractions; hits show up as ``features.cache_hit``.
    """
    from repro.core.feature_cache import cached_extract_path_dataset

    sampling = sampling or SamplingConfig()

    def extractor() -> PathDataset:
        with _stage("features.extract_path_dataset"):
            return _extract_path_dataset(record, variant, sampling, endpoint_names)

    return cached_extract_path_dataset(record, variant, sampling, endpoint_names, extractor)


def _extract_path_dataset(
    record: DesignRecord,
    variant: str,
    sampling: Optional[SamplingConfig],
    endpoint_names: Optional[Sequence[str]],
) -> PathDataset:
    sampling = sampling or SamplingConfig()
    network = record.pseudo_networks[variant]
    report = record.pseudo_reports[variant]

    wanted = list(endpoint_names) if endpoint_names is not None else record.endpoint_names
    samples = sample_design_paths(network, report, sampling, wanted)

    design_stats = _design_statistics(network)
    rank_percent = _endpoint_rank_percent(report, wanted)
    fanouts = network.fanouts()

    feature_rows: List[np.ndarray] = []
    token_rows: List[np.ndarray] = []
    groups: List[int] = []
    endpoint_labels: List[float] = []
    endpoint_signals: List[str] = []
    kept_names: List[str] = []

    for endpoint_index, name in enumerate(wanted):
        endpoint_samples = samples.get(name)
        if endpoint_samples is None:
            continue
        kept_names.append(name)
        endpoint_signals.append(endpoint_samples.signal)
        endpoint_labels.append(record.labels[name])
        local_index = len(kept_names) - 1
        for path in endpoint_samples.paths:
            feature_rows.append(
                _path_feature_vector(
                    network,
                    report,
                    path.vertices,
                    design_stats,
                    rank_percent.get(name, 0.0),
                    endpoint_samples,
                    fanouts,
                )
            )
            token_rows.append(_path_tokens(network, report, path.vertices, fanouts))
            groups.append(local_index)

    return PathDataset(
        design=record.name,
        variant=variant,
        features=np.array(feature_rows) if feature_rows else np.zeros((0, len(PATH_FEATURE_NAMES))),
        groups=np.array(groups, dtype=int),
        tokens=token_rows,
        endpoint_names=kept_names,
        endpoint_signals=endpoint_signals,
        endpoint_labels=np.array(endpoint_labels),
        endpoint_designs=[record.name] * len(kept_names),
    )


def combine_path_datasets(datasets: Sequence[PathDataset]) -> PathDataset:
    """Concatenate per-design datasets, re-indexing endpoint groups."""
    datasets = [d for d in datasets if d.n_endpoints > 0]
    if not datasets:
        raise ValueError("no non-empty datasets to combine")
    features = np.vstack([d.features for d in datasets])
    tokens: List[np.ndarray] = []
    groups: List[np.ndarray] = []
    names: List[str] = []
    signals: List[str] = []
    labels: List[np.ndarray] = []
    designs: List[str] = []
    offset = 0
    for dataset in datasets:
        tokens.extend(dataset.tokens)
        groups.append(dataset.groups + offset)
        names.extend(dataset.endpoint_names)
        signals.extend(dataset.endpoint_signals)
        labels.append(dataset.endpoint_labels)
        designs.extend(dataset.endpoint_designs)
        offset += dataset.n_endpoints
    return PathDataset(
        design="+".join(sorted({d.design for d in datasets})),
        variant=datasets[0].variant,
        features=features,
        groups=np.concatenate(groups),
        tokens=tokens,
        endpoint_names=names,
        endpoint_signals=signals,
        endpoint_labels=np.concatenate(labels),
        endpoint_designs=designs,
    )


# ---------------------------------------------------------------------------
# Per-path features
# ---------------------------------------------------------------------------


def _design_statistics(network: TimingNetwork) -> Dict[str, float]:
    n_sequential = float(network.register_count())
    n_combinational = float(network.gate_count())
    return {
        "n_sequential": n_sequential,
        "n_combinational": n_combinational,
        "n_total": n_sequential + n_combinational,
    }


def _endpoint_rank_percent(report: STAReport, names: Sequence[str]) -> Dict[str, float]:
    """Criticality rank (0 = most critical) of each endpoint, as a percentage."""
    arrivals = []
    for name in names:
        try:
            arrivals.append((name, report.endpoint(name).arrival))
        except KeyError:
            continue
    arrivals.sort(key=lambda pair: -pair[1])
    total = max(len(arrivals) - 1, 1)
    return {name: 100.0 * index / total for index, (name, _) in enumerate(arrivals)}


def _path_feature_vector(
    network: TimingNetwork,
    report: STAReport,
    vertices: Sequence[int],
    design_stats: Dict[str, float],
    rank_percent: float,
    endpoint_samples: EndpointSamples,
    fanouts: List[List[int]],
) -> np.ndarray:
    gate_vertices = [v for v in vertices if network.vertices[v].kind is VertexKind.GATE]
    functions = [network.vertices[v].cell.function for v in gate_vertices]
    fanout_counts = np.array([len(fanouts[v]) for v in vertices], dtype=float)
    loads = np.array([report.loads[v] for v in vertices], dtype=float)
    slews = np.array([report.slews[v] for v in vertices], dtype=float)
    arrival = path_arrival(network, report, list(vertices))
    driver = endpoint_samples.driver

    def count(function: str) -> float:
        return float(sum(1 for f in functions if f == function))

    values = {
        "design_rank_percent": rank_percent,
        "design_n_sequential": design_stats["n_sequential"],
        "design_n_combinational": design_stats["n_combinational"],
        "design_n_total": design_stats["n_total"],
        "cone_n_driving_regs": float(endpoint_samples.n_driving_registers),
        "path_pseudo_arrival": arrival,
        "path_n_levels": float(len(vertices)),
        "path_n_operators": float(len(gate_vertices)),
        "path_n_and": count("AND"),
        "path_n_or": count("OR"),
        "path_n_xor": count("XOR"),
        "path_n_not": count("NOT"),
        "path_n_mux": count("MUX"),
        "path_fanout_sum": float(fanout_counts.sum()),
        "path_fanout_avg": float(fanout_counts.mean()) if len(fanout_counts) else 0.0,
        "path_fanout_std": float(fanout_counts.std()) if len(fanout_counts) else 0.0,
        "path_load_sum": float(loads.sum()),
        "path_load_avg": float(loads.mean()) if len(loads) else 0.0,
        "path_load_std": float(loads.std()) if len(loads) else 0.0,
        "path_slew_avg": float(slews.mean()) if len(slews) else 0.0,
        "endpoint_fanout": float(len(fanouts[driver])),
        "endpoint_pseudo_arrival": float(report.arrivals[driver]),
    }
    return np.array([values[name] for name in PATH_FEATURE_NAMES])


def _path_tokens(
    network: TimingNetwork,
    report: STAReport,
    vertices: Sequence[int],
    fanouts: List[List[int]],
) -> np.ndarray:
    """Per-vertex token features along a path (for the transformer model)."""
    tokens = np.zeros((len(vertices), len(_TOKEN_FUNCTIONS) + 2))
    for row, vertex_id in enumerate(vertices):
        vertex = network.vertices[vertex_id]
        if vertex.cell is not None:
            label = vertex.cell.function
        else:
            label = vertex.kind.value
        if label not in _TOKEN_FUNCTIONS:
            label = "const"
        tokens[row, _TOKEN_FUNCTIONS.index(label)] = 1.0
        tokens[row, len(_TOKEN_FUNCTIONS)] = len(fanouts[vertex_id])
        tokens[row, len(_TOKEN_FUNCTIONS) + 1] = report.loads[vertex_id] / 10.0
    return tokens


# ---------------------------------------------------------------------------
# Design-level features and GNN graphs
# ---------------------------------------------------------------------------


def design_feature_vector(record: DesignRecord, variant: str = "sog") -> np.ndarray:
    """Design-level features used by the overall TNS/WNS model."""
    network = record.pseudo_networks[variant]
    report = record.pseudo_reports[variant]
    arrivals = np.array([e.arrival for e in report.endpoints if e.kind == "register"])
    stats = _design_statistics(network)
    if arrivals.size == 0:
        arrivals = np.zeros(1)
    return np.array(
        [
            stats["n_sequential"],
            stats["n_combinational"],
            stats["n_total"],
            float(len(record.labels)),
            float(arrivals.max()),
            float(arrivals.mean()),
            float(arrivals.std()),
            float(np.percentile(arrivals, 95)),
            record.clock.period,
        ]
    )


DESIGN_FEATURE_NAMES: Tuple[str, ...] = (
    "n_sequential",
    "n_combinational",
    "n_total",
    "n_endpoints",
    "pseudo_arrival_max",
    "pseudo_arrival_mean",
    "pseudo_arrival_std",
    "pseudo_arrival_p95",
    "clock_period",
)


def bog_graph_data(record: DesignRecord, variant: str = "sog") -> GraphData:
    """Whole-design graph record for the customized GNN baseline."""
    network = record.pseudo_networks[variant]
    fanouts = network.fanouts()
    levels = _vertex_levels(network)

    n = len(network.vertices)
    features = np.zeros((n, len(_TOKEN_FUNCTIONS) + 2))
    for vertex in network.vertices:
        label = vertex.cell.function if vertex.cell is not None else vertex.kind.value
        if label not in _TOKEN_FUNCTIONS:
            label = "const"
        features[vertex.id, _TOKEN_FUNCTIONS.index(label)] = 1.0
        features[vertex.id, len(_TOKEN_FUNCTIONS)] = len(fanouts[vertex.id])
        features[vertex.id, len(_TOKEN_FUNCTIONS) + 1] = levels[vertex.id] / 10.0

    edge_src: List[int] = []
    edge_dst: List[int] = []
    for vertex in network.vertices:
        for fanin in vertex.fanins:
            edge_src.append(fanin)
            edge_dst.append(vertex.id)

    endpoint_nodes: List[int] = []
    endpoint_targets: List[float] = []
    endpoint_names: List[str] = []
    for endpoint in network.endpoints:
        if endpoint.kind != "register" or endpoint.name not in record.labels:
            continue
        endpoint_nodes.append(endpoint.driver)
        endpoint_targets.append(record.labels[endpoint.name])
        endpoint_names.append(endpoint.name)

    graph = GraphData(
        name=record.name,
        node_features=features,
        edge_src=np.array(edge_src, dtype=int),
        edge_dst=np.array(edge_dst, dtype=int),
        endpoint_nodes=np.array(endpoint_nodes, dtype=int),
        endpoint_targets=np.array(endpoint_targets),
    )
    # Stash the endpoint names for downstream evaluation.
    graph.endpoint_names = endpoint_names  # type: ignore[attr-defined]
    return graph


def _vertex_levels(network: TimingNetwork) -> List[int]:
    levels = [0] * len(network.vertices)
    for vertex_id in network.topological_order():
        vertex = network.vertices[vertex_id]
        if vertex.fanins:
            levels[vertex_id] = 1 + max(levels[f] for f in vertex.fanins)
    return levels
