"""Dataset construction: designs, representations, pseudo-STA and labels.

One :class:`DesignRecord` bundles everything RTL-Timer needs for a single
design:

* the word-level design parsed from (generated or user) Verilog,
* the four BOG representation variants and their pseudo-STA reports,
* the ground-truth synthesis run (default options) whose netlist STA provides
  the per-endpoint arrival-time labels, plus design WNS/TNS,
* the per-design clock constraint.

The clock period is chosen per design as a fraction of the design's maximum
post-synthesis arrival time so that every design has a realistic population
of violating endpoints (the paper assumes a fixed technology clock; the exact
period only shifts slacks by a constant and does not affect the learning
problem, which is driven by arrival times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bog.graph import BOG, BOG_VARIANTS
from repro.bog.transforms import build_variants
from repro.hdl.design import Design, analyze
from repro.hdl.generate import BENCHMARK_SPECS, DesignSpec, generate_design
from repro.hdl.parser import parse_source
from repro.runtime.report import stage as _stage
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import STAReport, analyze as sta_analyze
from repro.sta.network import TimingNetwork, from_bog
from repro.synth.flow import SynthesisResult, synthesize_bog
from repro.synth.optimizer import SynthesisOptions


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs for dataset generation."""

    variants: Tuple[str, ...] = BOG_VARIANTS
    clock_utilization: float = 0.82
    pseudo_clock_period: float = 1000.0
    seed: int = 0


@dataclass
class DesignRecord:
    """All per-design artefacts used for training and evaluation."""

    name: str
    spec: Optional[DesignSpec]
    design: Design
    source: str
    bogs: Dict[str, BOG]
    pseudo_networks: Dict[str, TimingNetwork]
    pseudo_reports: Dict[str, STAReport]
    synthesis: SynthesisResult
    clock: ClockConstraint
    labels: Dict[str, float] = field(default_factory=dict)

    # -- derived -----------------------------------------------------------------

    @property
    def endpoint_names(self) -> List[str]:
        """Register endpoints present both in the RTL representation and netlist."""
        return sorted(self.labels)

    @property
    def label_report(self) -> STAReport:
        return self.synthesis.report

    def endpoint_signal(self, endpoint_name: str) -> str:
        return endpoint_name.split("[")[0]

    def signal_labels(self) -> Dict[str, float]:
        """Word-level signal -> max arrival over its bits (the signal label)."""
        signals: Dict[str, float] = {}
        for name, arrival in self.labels.items():
            signal = self.endpoint_signal(name)
            if signal not in signals or arrival > signals[signal]:
                signals[signal] = arrival
        return signals

    def signal_slack_labels(self) -> Dict[str, float]:
        """Word-level signal -> worst slack over its bits."""
        required = self.clock.required_time(self._setup_time())
        return {signal: required - arrival for signal, arrival in self.signal_labels().items()}

    def endpoint_slack_labels(self) -> Dict[str, float]:
        required = self.clock.required_time(self._setup_time())
        return {name: required - arrival for name, arrival in self.labels.items()}

    def _setup_time(self) -> float:
        endpoints = self.synthesis.netlist.endpoints
        for endpoint in endpoints:
            if endpoint.kind == "register":
                return endpoint.setup_time
        return 0.0

    @property
    def wns_label(self) -> float:
        return self.label_report.wns

    @property
    def tns_label(self) -> float:
        return self.label_report.tns

    def summary(self) -> Dict[str, float]:
        stats = self.bogs["sog"].stats()
        return {
            "n_endpoints": float(len(self.labels)),
            "n_signals": float(len(self.signal_labels())),
            "n_gates": float(self.synthesis.netlist.gate_count()),
            "n_registers": float(self.synthesis.netlist.register_count()),
            "sog_nodes": stats["n_nodes"],
            "clock_period": self.clock.period,
            "wns": self.wns_label,
            "tns": self.tns_label,
        }


def build_design_record(
    spec_or_source,
    config: Optional[DatasetConfig] = None,
    name: Optional[str] = None,
) -> DesignRecord:
    """Build the full record for one design.

    ``spec_or_source`` is either a :class:`DesignSpec` (the design is
    generated) or a Verilog source string (user RTL).
    """
    config = config or DatasetConfig()

    if isinstance(spec_or_source, DesignSpec):
        spec: Optional[DesignSpec] = spec_or_source
        source = generate_design(spec_or_source)
        design_name = spec_or_source.name
    else:
        spec = None
        source = str(spec_or_source)
        design_name = name or "user_design"

    with _stage("dataset.parse_analyze"):
        module = parse_source(source)
        design = analyze(module, source=source)
    if name:
        design_name = name

    with _stage("dataset.bog_variants"):
        bogs = build_variants(design, tuple(config.variants))

    pseudo_clock = ClockConstraint(period=config.pseudo_clock_period)
    pseudo_networks: Dict[str, TimingNetwork] = {}
    pseudo_reports: Dict[str, STAReport] = {}
    with _stage("dataset.pseudo_sta"):
        for variant, bog in bogs.items():
            network = from_bog(bog)
            pseudo_networks[variant] = network
            pseudo_reports[variant] = sta_analyze(network, pseudo_clock)

    with _stage("dataset.label_synthesis"):
        # Ground-truth synthesis with default options.
        provisional_clock = ClockConstraint(period=config.pseudo_clock_period)
        synthesis = synthesize_bog(bogs["sog"], provisional_clock, SynthesisOptions())

        # Choose the design clock so that a realistic fraction of endpoints
        # violate, then recompute the label report against that clock.
        max_arrival = max((e.arrival for e in synthesis.report.endpoints), default=1.0)
        period = max(50.0, config.clock_utilization * max_arrival)
        clock = ClockConstraint(period=period)
        label_report = sta_analyze(synthesis.netlist, clock)
        synthesis.report = label_report
        synthesis.qor = synthesis.netlist.qor(label_report)

    labels = {
        endpoint.name: endpoint.arrival
        for endpoint in label_report.endpoints
        if endpoint.kind == "register"
    }
    # Keep only endpoints that also exist in the RTL representation (register
    # consistency; retiming is never applied to the label run so in practice
    # this keeps everything).
    rtl_endpoints = {e.name for e in bogs["sog"].endpoints if e.kind == "register"}
    labels = {name: arrival for name, arrival in labels.items() if name in rtl_endpoints}

    return DesignRecord(
        name=design_name,
        spec=spec,
        design=design,
        source=source,
        bogs=bogs,
        pseudo_networks=pseudo_networks,
        pseudo_reports=pseudo_reports,
        synthesis=synthesis,
        clock=clock,
        labels=labels,
    )


def build_dataset(
    specs: Sequence[DesignSpec] = BENCHMARK_SPECS,
    config: Optional[DatasetConfig] = None,
    *,
    jobs: Optional[int] = None,
    cache=None,
    report=None,
) -> List[DesignRecord]:
    """Build records for a benchmark suite (Table 3 of the paper).

    Delegates to the :mod:`repro.runtime` engine: specs already present in
    the content-addressed artifact cache are loaded from disk, the rest are
    elaborated in parallel across ``jobs`` worker processes (``REPRO_JOBS``
    env var, default ``os.cpu_count()``), and results come back in spec
    order — element-wise identical to a serial build.  See
    :func:`repro.runtime.parallel.build_dataset_parallel` for the knobs.
    """
    from repro.runtime.parallel import build_dataset_parallel

    return build_dataset_parallel(specs, config, jobs=jobs, cache=cache, report=report)


def build_dataset_serial(
    specs: Sequence[DesignSpec] = BENCHMARK_SPECS,
    config: Optional[DatasetConfig] = None,
) -> List[DesignRecord]:
    """The seed's uncached in-process build; reference path for determinism tests."""
    config = config or DatasetConfig()
    return [build_design_record(spec, config) for spec in specs]


def dataset_summary(records: Sequence[DesignRecord]) -> List[Dict[str, float]]:
    """Per-design summary table (used by the Table 3 benchmark)."""
    return [dict(name=record.name, **record.summary()) for record in records]
