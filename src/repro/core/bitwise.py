"""Bit-wise endpoint arrival-time modelling (Section 3.4.1 of the paper).

For every BOG representation variant a *path model* is trained with the
customized max arrival-time loss: the model scores every sampled path of an
endpoint and the endpoint prediction is the maximum of the path scores.
Three path model families are supported (tree-based boosting, MLP,
transformer), mirroring the paper's comparison.

On top of the per-variant predictions an *ensemble* model (tree-based) fuses
the four representations — their individual predictions plus max/min/mean/std
statistics and the cone/design features — into the final bit-wise arrival
prediction, which is what reduces the cross-design variance in Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bog.graph import BOG_VARIANTS
from repro.core.dataset import DesignRecord
from repro.core.features import (
    PATH_FEATURE_NAMES,
    PathDataset,
    combine_path_datasets,
    extract_path_dataset,
)
from repro.core.sampling import SamplingConfig
from repro.core.state import config_from_state, config_to_state
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.losses import GroupedMaxSquaredError, group_max
from repro.ml.mlp import MLPRegressor
from repro.ml.preprocessing import StandardScaler, TargetScaler
from repro.ml.serialize import estimator_from_state, estimator_to_state
from repro.ml.transformer import TransformerPathRegressor


@dataclass(frozen=True)
class BitwiseConfig:
    """Configuration of the bit-wise arrival model."""

    model_type: str = "tree"  # "tree" | "mlp" | "transformer"
    variants: Tuple[str, ...] = BOG_VARIANTS
    ensemble: bool = True
    use_sampling: bool = True
    n_estimators: int = 60
    max_depth: int = 6
    learning_rate: float = 0.12
    splitter: str = "hist"  # GBM split finding: "hist" | "exact"
    max_bins: Optional[int] = None  # histogram bin budget (None = REPRO_GBM_BINS)
    mlp_hidden: Tuple[int, ...] = (64, 64)
    mlp_epochs: int = 150
    transformer_epochs: int = 60
    max_train_endpoints_per_design: Optional[int] = 250
    seed: int = 0

    def sampling(self) -> SamplingConfig:
        return SamplingConfig(use_sampling=self.use_sampling, seed=self.seed)


class _VariantPathModel:
    """One path model (per BOG variant), trained with the max-arrival loss."""

    def __init__(self, config: BitwiseConfig, variant: str):
        self.config = config
        self.variant = variant
        self.scaler = StandardScaler()
        self.target_scaler = TargetScaler()

    # -- training ----------------------------------------------------------------

    def fit(self, dataset: PathDataset) -> "_VariantPathModel":
        config = self.config
        features = self.scaler.fit_transform(dataset.features)
        labels = self.target_scaler.fit_transform(dataset.endpoint_labels)

        if config.model_type == "tree":
            objective = GroupedMaxSquaredError(dataset.groups, labels)
            self.model_ = GradientBoostingRegressor(
                n_estimators=config.n_estimators,
                learning_rate=config.learning_rate,
                max_depth=config.max_depth,
                min_samples_leaf=4,
                colsample=0.8,
                objective=objective,
                splitter=config.splitter,
                max_bins=config.max_bins,
                seed=config.seed,
            )
            self.model_.fit(features, objective.row_targets())
        elif config.model_type == "mlp":
            self.model_ = MLPRegressor(
                hidden_sizes=config.mlp_hidden,
                epochs=config.mlp_epochs,
                seed=config.seed,
            )
            self.model_.fit_grouped_max(features, dataset.groups, labels)
        elif config.model_type == "transformer":
            self.model_ = TransformerPathRegressor(
                epochs=config.transformer_epochs, seed=config.seed
            )
            self.model_.fit(
                dataset.tokens,
                features,
                labels[dataset.groups],
                groups=dataset.groups,
                group_targets=labels,
            )
        else:
            raise ValueError(f"unknown bit-wise model type {config.model_type!r}")
        return self

    # -- inference ---------------------------------------------------------------

    def predict_endpoints(self, dataset: PathDataset) -> np.ndarray:
        """Per-endpoint arrival predictions (max over the endpoint's paths)."""
        features = self.scaler.transform(dataset.features)
        if self.config.model_type == "transformer":
            path_scores = self.model_.predict(dataset.tokens, features)
        else:
            path_scores = self.model_.predict(features)
        maxima = group_max(path_scores, dataset.groups, dataset.n_endpoints)
        return self.target_scaler.inverse_transform(maxima)

    # -- serialization -------------------------------------------------------------

    def to_state(self) -> dict:
        """Snapshot the fitted path model (scalers + underlying estimator)."""
        return {
            "variant": self.variant,
            "scaler": self.scaler.to_state(),
            "target_scaler": self.target_scaler.to_state(),
            "model": estimator_to_state(self.model_),
        }

    @classmethod
    def from_state(cls, config: BitwiseConfig, state: dict) -> "_VariantPathModel":
        model = cls(config, state["variant"])
        model.scaler = StandardScaler.from_state(state["scaler"])
        model.target_scaler = TargetScaler.from_state(state["target_scaler"])
        model.model_ = estimator_from_state(state["model"])
        return model


class BitwiseArrivalModel:
    """Per-variant path models plus the representation ensemble."""

    def __init__(self, config: Optional[BitwiseConfig] = None):
        self.config = config or BitwiseConfig()

    # -- dataset helpers ------------------------------------------------------------

    def _extract(self, record: DesignRecord, variant: str, training: bool) -> PathDataset:
        endpoint_names = None
        limit = self.config.max_train_endpoints_per_design
        if training and limit is not None and len(record.endpoint_names) > limit:
            rng = np.random.default_rng(self.config.seed + len(record.name))
            endpoint_names = list(
                rng.choice(record.endpoint_names, size=limit, replace=False)
            )
        return extract_path_dataset(
            record, variant, self.config.sampling(), endpoint_names
        )

    # -- training --------------------------------------------------------------------

    def fit(self, records: Sequence[DesignRecord]) -> "BitwiseArrivalModel":
        config = self.config
        self.variant_models_: Dict[str, _VariantPathModel] = {}
        per_variant_training: Dict[str, PathDataset] = {}

        for variant in config.variants:
            datasets = [self._extract(record, variant, training=True) for record in records]
            combined = combine_path_datasets(datasets)
            per_variant_training[variant] = combined
            model = _VariantPathModel(config, variant)
            model.fit(combined)
            self.variant_models_[variant] = model

        if config.ensemble and len(config.variants) > 1:
            self._fit_ensemble(records)
        return self

    def _fit_ensemble(self, records: Sequence[DesignRecord]) -> None:
        rows: List[np.ndarray] = []
        labels: List[float] = []
        for record in records:
            features, names = self._ensemble_features(record)
            rows.append(features)
            labels.extend(record.labels[name] for name in names)
        X = np.vstack(rows)
        y = np.array(labels)
        self.ensemble_scaler_ = StandardScaler()
        self.ensemble_target_scaler_ = TargetScaler()
        Xs = self.ensemble_scaler_.fit_transform(X)
        ys = self.ensemble_target_scaler_.fit_transform(y)
        self.ensemble_model_ = GradientBoostingRegressor(
            n_estimators=self.config.n_estimators,
            learning_rate=self.config.learning_rate,
            max_depth=4,
            min_samples_leaf=4,
            splitter=self.config.splitter,
            max_bins=self.config.max_bins,
            seed=self.config.seed,
        )
        self.ensemble_model_.fit(Xs, ys)

    # -- inference --------------------------------------------------------------------

    def _variant_predictions(self, record: DesignRecord) -> Tuple[Dict[str, np.ndarray], List[str]]:
        predictions: Dict[str, np.ndarray] = {}
        names: Optional[List[str]] = None
        for variant, model in self.variant_models_.items():
            dataset = extract_path_dataset(record, variant, self.config.sampling())
            predictions[variant] = model.predict_endpoints(dataset)
            if names is None:
                names = dataset.endpoint_names
        assert names is not None
        return predictions, names

    def _ensemble_features(self, record: DesignRecord) -> Tuple[np.ndarray, List[str]]:
        predictions, names = self._variant_predictions(record)
        stacked = np.column_stack([predictions[v] for v in self.variant_models_])
        stats = np.column_stack(
            [
                stacked.max(axis=1),
                stacked.min(axis=1),
                stacked.mean(axis=1),
                stacked.std(axis=1),
            ]
        )
        # Cone / design context from the SOG dataset (first variant).
        reference_variant = next(iter(self.variant_models_))
        reference = extract_path_dataset(
            record, reference_variant, SamplingConfig(use_sampling=False)
        )
        context_columns = [
            PATH_FEATURE_NAMES.index("cone_n_driving_regs"),
            PATH_FEATURE_NAMES.index("design_rank_percent"),
            PATH_FEATURE_NAMES.index("design_n_total"),
            PATH_FEATURE_NAMES.index("endpoint_pseudo_arrival"),
            PATH_FEATURE_NAMES.index("endpoint_fanout"),
        ]
        context = reference.features[:, context_columns]
        # The reference dataset has exactly one (critical) path per endpoint, so
        # its rows align with the endpoint order.
        if len(context) != len(names):
            context = context[: len(names)]
        return np.hstack([stacked, stats, context]), names

    def predict(self, record: DesignRecord) -> Dict[str, float]:
        """Predicted post-synthesis arrival time for every register endpoint."""
        if not hasattr(self, "variant_models_"):
            raise RuntimeError("BitwiseArrivalModel must be fitted before predict()")
        if getattr(self, "ensemble_model_", None) is not None and self.config.ensemble and len(
            self.config.variants
        ) > 1:
            features, names = self._ensemble_features(record)
            scaled = self.ensemble_scaler_.transform(features)
            predictions = self.ensemble_target_scaler_.inverse_transform(
                self.ensemble_model_.predict(scaled)
            )
            return dict(zip(names, predictions))
        predictions, names = self._variant_predictions(record)
        single = predictions[next(iter(self.variant_models_))]
        return dict(zip(names, single))

    def evaluate(self, record: DesignRecord) -> Dict[str, float]:
        """R / MAPE / COVR of the bit-wise predictions on one design."""
        from repro.core.metrics import regression_metrics

        predicted = self.predict(record)
        names = [n for n in record.endpoint_names if n in predicted]
        labels = [record.labels[n] for n in names]
        values = [predicted[n] for n in names]
        return regression_metrics(labels, values)

    # -- serialization --------------------------------------------------------------

    def to_state(self) -> dict:
        """Snapshot the per-variant path models plus the ensemble stage."""
        if not hasattr(self, "variant_models_"):
            raise RuntimeError("BitwiseArrivalModel must be fitted before to_state()")
        state = {
            "model": "BitwiseArrivalModel",
            "config": config_to_state(self.config),
            "variants": {
                variant: model.to_state()
                for variant, model in self.variant_models_.items()
            },
            "ensemble": None,
        }
        if getattr(self, "ensemble_model_", None) is not None:
            state["ensemble"] = {
                "scaler": self.ensemble_scaler_.to_state(),
                "target_scaler": self.ensemble_target_scaler_.to_state(),
                "model": estimator_to_state(self.ensemble_model_),
            }
        return state

    @classmethod
    def from_state(cls, state: dict) -> "BitwiseArrivalModel":
        """Rebuild a fitted model; predictions are bit-identical to the source."""
        model = cls(config_from_state(state["config"]))
        model.variant_models_ = {
            variant: _VariantPathModel.from_state(model.config, variant_state)
            for variant, variant_state in state["variants"].items()
        }
        ensemble = state.get("ensemble")
        if ensemble is not None:
            model.ensemble_scaler_ = StandardScaler.from_state(ensemble["scaler"])
            model.ensemble_target_scaler_ = TargetScaler.from_state(ensemble["target_scaler"])
            model.ensemble_model_ = estimator_from_state(ensemble["model"])
        return model
