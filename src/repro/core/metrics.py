"""Evaluation metrics used throughout the paper's experiments (Section 4.2).

* ``R`` — Pearson correlation coefficient,
* ``R2`` — coefficient of determination,
* ``MAPE`` — mean absolute percentage error,
* ``COVR`` — critical-level ranking coverage: endpoints are split into four
  criticality groups (top 5%, 5-40%, 40-70%, rest) by both the labels and the
  predictions, and the coverage is the average fraction of each label group
  recovered by the corresponding predicted group.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ml.base import as_1d_array

#: Criticality group boundaries used by the paper: top 5 %, 5-40 %, 40-70 %, rest.
DEFAULT_GROUP_FRACTIONS: Tuple[float, ...] = (0.05, 0.40, 0.70)


def pearson_r(labels: Sequence[float], predictions: Sequence[float]) -> float:
    """Pearson correlation coefficient between labels and predictions."""
    y = as_1d_array(labels)
    p = as_1d_array(predictions)
    if len(y) != len(p):
        raise ValueError("labels and predictions must have the same length")
    if len(y) < 2 or np.std(y) == 0.0 or np.std(p) == 0.0:
        return 0.0
    return float(np.corrcoef(y, p)[0, 1])


def r_squared(labels: Sequence[float], predictions: Sequence[float]) -> float:
    """Coefficient of determination R^2."""
    y = as_1d_array(labels)
    p = as_1d_array(predictions)
    if len(y) != len(p):
        raise ValueError("labels and predictions must have the same length")
    total = float(np.sum((y - y.mean()) ** 2))
    if total == 0.0:
        return 0.0
    residual = float(np.sum((y - p) ** 2))
    return 1.0 - residual / total


def mape(labels: Sequence[float], predictions: Sequence[float], epsilon: float = 1e-9) -> float:
    """Mean absolute percentage error, in percent.

    Labels whose magnitude is below ``epsilon`` are excluded (the paper's
    labels are arrival times, which are strictly positive).
    """
    y = as_1d_array(labels)
    p = as_1d_array(predictions)
    if len(y) != len(p):
        raise ValueError("labels and predictions must have the same length")
    mask = np.abs(y) > epsilon
    if not np.any(mask):
        return 0.0
    return float(np.mean(np.abs(y[mask] - p[mask]) / np.abs(y[mask])) * 100.0)


def group_boundaries(n: int, fractions: Sequence[float] = DEFAULT_GROUP_FRACTIONS) -> List[int]:
    """Cumulative group end indices for ``n`` ranked items.

    The single source of truth for turning the paper's group fractions into
    index boundaries — used both by the metric/annotation grouping
    (:func:`criticality_groups`) and by the synthesis option builder
    (:func:`repro.core.optimize.options_from_ranking`), so tiny designs get
    the *same* split everywhere.  Every leading group is non-empty (the most
    critical item always lands in group 1); duplicate boundaries collapse,
    so fewer than ``len(fractions) + 1`` groups are possible for small ``n``.
    """
    if n <= 0:
        return []
    boundaries = [min(max(1, int(round(fraction * n))), n) for fraction in fractions]
    return sorted(set(boundaries))


def criticality_groups(
    values: Sequence[float],
    fractions: Sequence[float] = DEFAULT_GROUP_FRACTIONS,
    descending: bool = True,
) -> List[np.ndarray]:
    """Split item indices into criticality groups.

    ``values`` are arrival times (or predicted scores); by default larger
    values are more critical and go into the earlier groups.  Returns a list
    of index arrays, one per group (``len(fractions) + 1`` groups when no
    boundaries collide).
    """
    array = as_1d_array(values)
    order = np.argsort(-array if descending else array, kind="stable")
    n = len(array)
    boundaries = group_boundaries(n, fractions)
    groups: List[np.ndarray] = []
    start = 0
    for boundary in boundaries + [n]:
        groups.append(order[start:boundary])
        start = boundary
    return groups


def ranking_coverage(
    labels: Sequence[float],
    predictions: Sequence[float],
    fractions: Sequence[float] = DEFAULT_GROUP_FRACTIONS,
) -> float:
    """COVR: average per-group overlap between label and prediction groups."""
    y = as_1d_array(labels)
    p = as_1d_array(predictions)
    if len(y) != len(p):
        raise ValueError("labels and predictions must have the same length")
    if len(y) == 0:
        return 0.0
    label_groups = criticality_groups(y, fractions)
    prediction_groups = criticality_groups(p, fractions)
    coverages = []
    for label_group, prediction_group in zip(label_groups, prediction_groups):
        if len(label_group) == 0:
            continue
        overlap = len(set(label_group.tolist()) & set(prediction_group.tolist()))
        coverages.append(overlap / len(label_group))
    return float(np.mean(coverages) * 100.0) if coverages else 0.0


def regression_metrics(labels: Sequence[float], predictions: Sequence[float]) -> Dict[str, float]:
    """Bundle of R / R^2 / MAPE / COVR for one evaluation."""
    return {
        "r": pearson_r(labels, predictions),
        "r2": r_squared(labels, predictions),
        "mape": mape(labels, predictions),
        "covr": ranking_coverage(labels, predictions),
    }
