"""Baseline fine-grained predictors compared against RTL-Timer.

The paper adapts a layout-stage GNN timing model as the baseline for bit-wise
endpoint prediction ("Customized GNN" in Table 4).  The class below wraps the
from-scratch :class:`~repro.ml.gnn.GNNRegressor` around whole-design BOG
graphs so it can be evaluated with exactly the same protocol as RTL-Timer's
bit-wise model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import DesignRecord
from repro.core.features import bog_graph_data
from repro.core.metrics import regression_metrics
from repro.ml.gnn import GNNRegressor
from repro.ml.preprocessing import TargetScaler


@dataclass(frozen=True)
class GNNBaselineConfig:
    """Configuration of the customized-GNN baseline."""

    variant: str = "sog"
    hidden_size: int = 32
    n_layers: int = 3
    epochs: int = 120
    learning_rate: float = 2e-3
    seed: int = 0


class GNNBitwiseBaseline:
    """Customized GNN baseline for bit-wise endpoint arrival prediction."""

    def __init__(self, config: Optional[GNNBaselineConfig] = None):
        self.config = config or GNNBaselineConfig()

    def fit(self, records: Sequence[DesignRecord]) -> "GNNBitwiseBaseline":
        graphs = [bog_graph_data(record, self.config.variant) for record in records]
        all_targets = np.concatenate([g.endpoint_targets for g in graphs])
        self.target_scaler_ = TargetScaler().fit(all_targets)
        for graph in graphs:
            graph.endpoint_targets = self.target_scaler_.transform(graph.endpoint_targets)
        self.model_ = GNNRegressor(
            hidden_size=self.config.hidden_size,
            n_layers=self.config.n_layers,
            epochs=self.config.epochs,
            learning_rate=self.config.learning_rate,
            seed=self.config.seed,
        )
        self.model_.fit_graphs(graphs)
        return self

    def predict(self, record: DesignRecord) -> Dict[str, float]:
        """Predicted arrival time per register endpoint."""
        if not hasattr(self, "model_"):
            raise RuntimeError("GNNBitwiseBaseline must be fitted before predict()")
        graph = bog_graph_data(record, self.config.variant)
        predictions = self.target_scaler_.inverse_transform(self.model_.predict_graph(graph))
        names: List[str] = graph.endpoint_names  # type: ignore[attr-defined]
        return dict(zip(names, predictions))

    def evaluate(self, record: DesignRecord) -> Dict[str, float]:
        predicted = self.predict(record)
        names = [n for n in record.endpoint_names if n in predicted]
        labels = [record.labels[n] for n in names]
        values = [predicted[n] for n in names]
        return regression_metrics(labels, values)
