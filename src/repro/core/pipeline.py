"""The RTL-Timer public API: end-to-end fine-grained RTL timing evaluation.

:class:`RTLTimer` ties the whole workflow of Fig. 3 together:

1. register-oriented RTL processing over the four BOG variants,
2. bit-wise endpoint arrival modelling with the max-arrival loss + ensemble,
3. signal-wise max-arrival regression and LambdaMART criticality ranking,
4. design-level WNS/TNS prediction,
5. automatic slack annotation on the HDL source,
6. prediction-driven synthesis options (``group_path`` + ``retime``).

Typical usage::

    records = build_dataset(BENCHMARK_SPECS)
    timer = RTLTimer().fit(records[:-1])
    prediction = timer.predict(records[-1])
    print(prediction.overall)                  # predicted WNS / TNS
    annotated = timer.annotate(records[-1])    # Verilog with slack comments
    options = timer.synthesis_options(records[-1])
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.annotate import AnnotationConfig, annotate_design, ranking_groups
from repro.core.bitwise import BitwiseArrivalModel, BitwiseConfig
from repro.core.dataset import DesignRecord
from repro.core.metrics import regression_metrics
from repro.core.optimize import generate_candidates, options_from_ranking
from repro.core.state import config_from_state, config_to_state
from repro.incremental.whatif import evaluate_candidates
from repro.core.overall import OverallConfig, OverallTimingModel
from repro.core.signalwise import SignalwiseConfig, SignalwiseModel
from repro.runtime.report import RuntimeReport, stage as report_stage
from repro.synth.optimizer import SynthesisOptions


@dataclass(frozen=True)
class RTLTimerConfig:
    """Top-level configuration bundling the per-stage configurations."""

    bitwise: BitwiseConfig = field(default_factory=BitwiseConfig)
    signalwise: SignalwiseConfig = field(default_factory=SignalwiseConfig)
    overall: OverallConfig = field(default_factory=OverallConfig)
    annotation: AnnotationConfig = field(default_factory=AnnotationConfig)


@dataclass
class RTLTimerPrediction:
    """Everything RTL-Timer predicts for one design."""

    design: str
    bitwise_arrival: Dict[str, float]
    signal_arrival: Dict[str, float]
    signal_ranking: Dict[str, float]
    signal_slack: Dict[str, float]
    rank_group: Dict[str, int]
    overall: Dict[str, float]
    runtime_seconds: float

    def ranked_signals(self) -> List[str]:
        """Signals ordered from most critical to least critical.

        Score ties break on the signal name, so the ranking is a pure
        function of the prediction rather than of dict insertion order.
        """
        return sorted(self.signal_ranking, key=lambda s: (-self.signal_ranking[s], s))


@dataclass
class BatchPrediction:
    """Result of :meth:`RTLTimer.predict_batch`: predictions + stage timings.

    Behaves like the list of per-design predictions (iteration, indexing,
    ``len``) while carrying the :class:`~repro.runtime.report.RuntimeReport`
    with per-stage wall time and counters for the whole batch.
    """

    predictions: List[RTLTimerPrediction]
    report: RuntimeReport

    def __iter__(self):
        return iter(self.predictions)

    def __len__(self) -> int:
        return len(self.predictions)

    def __getitem__(self, index):
        return self.predictions[index]


class RTLTimer:
    """Fine-grained general RTL timing estimator (the paper's contribution)."""

    def __init__(self, config: Optional[RTLTimerConfig] = None):
        self.config = config or RTLTimerConfig()
        self.bitwise = BitwiseArrivalModel(self.config.bitwise)
        self.signalwise = SignalwiseModel(self.config.signalwise)
        self.overall = OverallTimingModel(self.config.overall)

    # -- training ---------------------------------------------------------------------

    def fit(self, records: Sequence[DesignRecord]) -> "RTLTimer":
        """Train all stages on the given designs (cross-design training set)."""
        self.bitwise.fit(records)
        bitwise_predictions = {
            record.name: self.bitwise.predict(record) for record in records
        }
        self.signalwise.fit(records, bitwise_predictions)
        self.overall.fit(records, bitwise_predictions)
        self.training_designs_ = [record.name for record in records]
        return self

    # -- inference --------------------------------------------------------------------

    def predict(self, record: DesignRecord) -> RTLTimerPrediction:
        """Run the full prediction stack on one (unseen) design."""
        started = time.perf_counter()
        bitwise_arrival = self.bitwise.predict(record)
        signal_prediction = self.signalwise.predict(record, bitwise_arrival)
        overall = self.overall.predict(record, bitwise_arrival)
        prediction = self._assemble_prediction(
            record, bitwise_arrival, signal_prediction, overall, 0.0
        )
        # Stamp the runtime after assembly so runtime_seconds covers every
        # stage — the same quantity predict_batch reports per design.
        prediction.runtime_seconds = time.perf_counter() - started
        return prediction

    def predict_batch(
        self,
        records: Sequence[DesignRecord],
        report: Optional[RuntimeReport] = None,
    ) -> BatchPrediction:
        """Run the prediction stack over many designs, one stage at a time.

        Dispatching stage-by-stage instead of design-by-design amortizes the
        per-stage model setup across the whole batch and lets each stage be
        timed as a unit: the returned :class:`BatchPrediction` carries a
        :class:`~repro.runtime.report.RuntimeReport` with ``inference.*``
        stage wall times next to the per-design predictions (which are
        identical to calling :meth:`predict` on each record).
        """
        report = report if report is not None else RuntimeReport()
        records = list(records)
        per_design = [0.0] * len(records)

        def timed(index: int, compute):
            started = time.perf_counter()
            value = compute()
            per_design[index] += time.perf_counter() - started
            return value

        with report.stage("inference.batch"):
            with report.stage("inference.bitwise"):
                bitwise = [
                    timed(i, lambda i=i: self.bitwise.predict(records[i]))
                    for i in range(len(records))
                ]
            with report.stage("inference.signalwise"):
                signal = [
                    timed(i, lambda i=i: self.signalwise.predict(records[i], bitwise[i]))
                    for i in range(len(records))
                ]
            with report.stage("inference.overall"):
                overall = [
                    timed(i, lambda i=i: self.overall.predict(records[i], bitwise[i]))
                    for i in range(len(records))
                ]
            with report.stage("inference.assemble"):
                predictions = [
                    timed(
                        i,
                        lambda i=i: self._assemble_prediction(
                            records[i], bitwise[i], signal[i], overall[i], 0.0
                        ),
                    )
                    for i in range(len(records))
                ]
                # runtime_seconds covers every stage including assembly, so a
                # batched prediction reports the same quantity as predict().
                for i, prediction in enumerate(predictions):
                    prediction.runtime_seconds = per_design[i]
        report.incr("inference_designs", len(records))
        return BatchPrediction(predictions=predictions, report=report)

    def _assemble_prediction(
        self,
        record: DesignRecord,
        bitwise_arrival: Dict[str, float],
        signal_prediction: Mapping[str, Dict[str, float]],
        overall: Dict[str, float],
        runtime: float,
    ) -> RTLTimerPrediction:
        required = record.clock.required_time(record._setup_time())
        signal_slack = {
            signal: required - arrival
            for signal, arrival in signal_prediction["arrival"].items()
        }
        groups = ranking_groups(signal_prediction["ranking"])
        return RTLTimerPrediction(
            design=record.name,
            bitwise_arrival=bitwise_arrival,
            signal_arrival=signal_prediction["arrival"],
            signal_ranking=signal_prediction["ranking"],
            signal_slack=signal_slack,
            rank_group=groups,
            overall=overall,
            runtime_seconds=runtime,
        )

    # -- persistence --------------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Serializable snapshot of the whole fitted stack.

        The state is a plain dict of scalars, lists and numpy arrays — no
        live estimator objects — and restoring it with :meth:`from_state`
        yields a timer whose predictions are bit-identical to this one.
        The exact per-stage configuration (feature, sampling and model
        knobs) rides along, because predictions are only reproducible under
        the config the models were trained with.
        """
        if not hasattr(self, "training_designs_"):
            raise RuntimeError("RTLTimer must be fitted before to_state()")
        return {
            "model": "RTLTimer",
            "config": config_to_state(self.config),
            "bitwise": self.bitwise.to_state(),
            "signalwise": self.signalwise.to_state(),
            "overall": self.overall.to_state(),
            "training_designs": list(self.training_designs_),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "RTLTimer":
        """Rebuild a fitted timer from a :meth:`to_state` snapshot."""
        if state.get("model") != "RTLTimer":
            raise ValueError(f"state is for {state.get('model')!r}, not RTLTimer")
        timer = cls(config_from_state(state["config"]))
        timer.bitwise = BitwiseArrivalModel.from_state(state["bitwise"])
        timer.signalwise = SignalwiseModel.from_state(state["signalwise"])
        timer.overall = OverallTimingModel.from_state(state["overall"])
        timer.training_designs_ = list(state.get("training_designs", []))
        return timer

    def save(self, path) -> "str":
        """Write this fitted timer as a single-file model bundle at ``path``.

        Returns the bundle id (content hash).  For named, versioned storage
        use :class:`repro.serve.registry.ModelRegistry` instead.
        """
        from repro.serve.registry import write_bundle_file

        return write_bundle_file(self, path)

    @classmethod
    def load(cls, path) -> "RTLTimer":
        """Load a timer saved with :meth:`save`; verifies the bundle hash."""
        from repro.serve.registry import read_bundle_file

        return read_bundle_file(path)

    # -- applications -------------------------------------------------------------------

    def annotate(self, record: DesignRecord, prediction: Optional[RTLTimerPrediction] = None) -> str:
        """Return the design's Verilog annotated with predicted slack info."""
        prediction = prediction or self.predict(record)
        return annotate_design(
            record,
            prediction.signal_slack,
            prediction.signal_ranking,
            prediction.overall,
            self.config.annotation,
        )

    def synthesis_options(
        self, record: DesignRecord, prediction: Optional[RTLTimerPrediction] = None
    ) -> SynthesisOptions:
        """Prediction-driven ``group_path`` + ``retime`` synthesis options."""
        prediction = prediction or self.predict(record)
        return options_from_ranking(prediction.ranked_signals())

    def what_if(
        self,
        record: DesignRecord,
        candidates: Optional[Sequence[SynthesisOptions]] = None,
        prediction: Optional[RTLTimerPrediction] = None,
        k: int = 8,
    ):
        """Project candidate option sets with the incremental timing engine.

        ``candidates`` defaults to ``k`` option sets generated around the
        predicted criticality ranking.  Each candidate is translated into a
        patch set on the record's baseline synthesis netlist and re-timed
        incrementally (dirty cone only) — no re-synthesis happens.  Returns
        one :class:`~repro.incremental.whatif.WhatIfEstimate` per candidate,
        in candidate order.
        """
        if candidates is None:
            prediction = prediction or self.predict(record)
            candidates = generate_candidates(prediction.ranked_signals(), k=k)
        with report_stage("inference.what_if"):
            return evaluate_candidates(record, candidates)

    # -- evaluation ---------------------------------------------------------------------

    def evaluate_bitwise(self, record: DesignRecord) -> Dict[str, float]:
        """R / R2 / MAPE / COVR of the bit-wise predictions on one design."""
        prediction = self.bitwise.predict(record)
        names = [n for n in record.endpoint_names if n in prediction]
        labels = [record.labels[n] for n in names]
        values = [prediction[n] for n in names]
        return regression_metrics(labels, values)

    def evaluate_signalwise(self, record: DesignRecord) -> Dict[str, float]:
        """Metrics of the signal-wise regression and LTR ranking on one design."""
        prediction = self.predict(record)
        signal_labels = record.signal_labels()
        signals = [s for s in sorted(signal_labels) if s in prediction.signal_arrival]
        labels = [signal_labels[s] for s in signals]
        regression = regression_metrics(labels, [prediction.signal_arrival[s] for s in signals])
        from repro.core.metrics import ranking_coverage

        ranking_covr = ranking_coverage(labels, [prediction.signal_ranking[s] for s in signals])
        regression["ranking_covr"] = ranking_covr
        return regression
