"""Design-level overall timing (WNS / TNS) modelling and baselines.

Section 3.4.3 of the paper: TNS and WNS are functions of the negative
register slacks, so an accurate fine-grained model makes the overall model
straightforward — its features are aggregates of the predicted endpoint
slacks plus design-level features, fed to a small tree-based regressor.

Three feature modes reproduce the paper's Table 4 comparison:

* ``"full"``      — RTL-Timer: aggregates of the ensemble bit-wise predictions,
* ``"sog_only"``  — a MasterRTL-like baseline using a single representation,
* ``"design_only"`` — an SNS-like baseline using only design-level features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.dataset import DesignRecord
from repro.core.features import design_feature_vector
from repro.core.state import config_from_state, config_to_state
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.preprocessing import StandardScaler, TargetScaler
from repro.ml.serialize import estimator_from_state, estimator_to_state

FEATURE_MODES = ("full", "sog_only", "design_only")


@dataclass(frozen=True)
class OverallConfig:
    """Configuration of the overall WNS/TNS model."""

    feature_mode: str = "full"
    n_estimators: int = 40
    max_depth: int = 3
    splitter: str = "hist"  # tree split finding: "hist" | "exact"
    max_bins: Optional[int] = None  # histogram bin budget (None = REPRO_GBM_BINS)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.feature_mode not in FEATURE_MODES:
            raise ValueError(f"feature_mode must be one of {FEATURE_MODES}")


def _slack_aggregates(record: DesignRecord, arrivals: Dict[str, float]) -> np.ndarray:
    """Aggregate predicted endpoint slacks into design-level features."""
    required = record.clock.required_time(record._setup_time())
    slacks = np.array([required - arrivals[name] for name in sorted(arrivals)])
    if slacks.size == 0:
        slacks = np.zeros(1)
    negative = slacks[slacks < 0.0]
    return np.array(
        [
            float(negative.sum()) if negative.size else 0.0,
            float(slacks.min()),
            float(negative.size),
            float(negative.size) / float(len(slacks)),
            float(slacks.mean()),
            float(np.percentile(slacks, 5)),
        ]
    )


class OverallTimingModel:
    """Predicts design WNS and TNS from fine-grained predictions."""

    def __init__(self, config: Optional[OverallConfig] = None):
        self.config = config or OverallConfig()

    # -- features --------------------------------------------------------------------

    def _features(
        self, record: DesignRecord, bitwise_predictions: Optional[Dict[str, float]]
    ) -> np.ndarray:
        mode = self.config.feature_mode
        design_features = design_feature_vector(record, "sog")
        if mode == "design_only":
            return design_features
        if mode == "sog_only" or bitwise_predictions is None:
            # Fall back to the raw pseudo-STA arrivals of the SOG representation.
            report = record.pseudo_reports["sog"]
            arrivals = {
                e.name: e.arrival for e in report.endpoints if e.kind == "register"
            }
            # Pseudo arrivals live on a different scale; normalise by their max
            # so the aggregates remain comparable across designs.
            scale = max(arrivals.values()) or 1.0
            target_scale = record.clock.period / 0.82
            arrivals = {k: v / scale * target_scale for k, v in arrivals.items()}
            aggregates = _slack_aggregates(record, arrivals)
        else:
            aggregates = _slack_aggregates(record, bitwise_predictions)
        return np.concatenate([aggregates, design_features])

    # -- training --------------------------------------------------------------------

    def fit(
        self,
        records: Sequence[DesignRecord],
        bitwise_predictions: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> "OverallTimingModel":
        rows = []
        wns_labels = []
        tns_labels = []
        for record in records:
            predictions = (bitwise_predictions or {}).get(record.name)
            rows.append(self._features(record, predictions))
            wns_labels.append(record.wns_label)
            tns_labels.append(record.tns_label)
        X = np.vstack(rows)
        self.scaler_ = StandardScaler()
        Xs = self.scaler_.fit_transform(X)

        self.wns_scaler_ = TargetScaler()
        self.tns_scaler_ = TargetScaler()
        wns = self.wns_scaler_.fit_transform(np.array(wns_labels))
        tns = self.tns_scaler_.fit_transform(np.array(tns_labels))

        self.wns_model_ = GradientBoostingRegressor(
            n_estimators=self.config.n_estimators,
            max_depth=self.config.max_depth,
            min_samples_leaf=2,
            splitter=self.config.splitter,
            max_bins=self.config.max_bins,
            seed=self.config.seed,
        )
        self.tns_model_ = GradientBoostingRegressor(
            n_estimators=self.config.n_estimators,
            max_depth=self.config.max_depth,
            min_samples_leaf=2,
            splitter=self.config.splitter,
            max_bins=self.config.max_bins,
            seed=self.config.seed + 1,
        )
        self.wns_model_.fit(Xs, wns)
        self.tns_model_.fit(Xs, tns)
        return self

    # -- inference --------------------------------------------------------------------

    def predict(
        self,
        record: DesignRecord,
        bitwise_predictions: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """Predicted design WNS and TNS."""
        if not hasattr(self, "wns_model_"):
            raise RuntimeError("OverallTimingModel must be fitted before predict()")
        features = self._features(record, bitwise_predictions).reshape(1, -1)
        scaled = self.scaler_.transform(features)
        wns = float(self.wns_scaler_.inverse_transform(self.wns_model_.predict(scaled))[0])
        tns = float(self.tns_scaler_.inverse_transform(self.tns_model_.predict(scaled))[0])
        return {"wns": min(wns, 0.0), "tns": min(tns, 0.0)}

    # -- serialization ------------------------------------------------------------

    def to_state(self) -> dict:
        """Snapshot the fitted WNS/TNS models."""
        if not hasattr(self, "wns_model_"):
            raise RuntimeError("OverallTimingModel must be fitted before to_state()")
        return {
            "model": "OverallTimingModel",
            "config": config_to_state(self.config),
            "scaler": self.scaler_.to_state(),
            "wns_scaler": self.wns_scaler_.to_state(),
            "tns_scaler": self.tns_scaler_.to_state(),
            "wns_model": estimator_to_state(self.wns_model_),
            "tns_model": estimator_to_state(self.tns_model_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OverallTimingModel":
        """Rebuild a fitted model; predictions are bit-identical to the source."""
        model = cls(config_from_state(state["config"]))
        model.scaler_ = StandardScaler.from_state(state["scaler"])
        model.wns_scaler_ = TargetScaler.from_state(state["wns_scaler"])
        model.tns_scaler_ = TargetScaler.from_state(state["tns_scaler"])
        model.wns_model_ = estimator_from_state(state["wns_model"])
        model.tns_model_ = estimator_from_state(state["tns_model"])
        return model
