"""Signal-wise endpoint modelling: max-arrival regression and LTR ranking.

Section 3.4.2 of the paper: the arrival time of a word-level RTL signal is
the maximum over its bits, so the signal-wise models are built *on top of*
the bit-wise predictions.  Two models are provided:

* a tree-based regression model for the signal max arrival time,
* a pairwise LambdaMART learning-to-rank model whose queries are designs,
  documents are signal-wise endpoints and relevance labels are criticality
  levels — this is what drives the ``group_path`` optimization groups.

The ``use_bitwise=False`` mode implements the paper's "w/o bit-wise" ablation
(modelling signals directly from aggregate signal features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import DesignRecord
from repro.core.features import PATH_FEATURE_NAMES, extract_path_dataset
from repro.core.metrics import criticality_groups
from repro.core.sampling import SamplingConfig
from repro.core.state import config_from_state, config_to_state
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.lambdamart import LambdaMARTRanker
from repro.ml.preprocessing import StandardScaler, TargetScaler
from repro.ml.serialize import estimator_from_state, estimator_to_state


@dataclass(frozen=True)
class SignalwiseConfig:
    """Configuration of the signal-wise models."""

    use_bitwise: bool = True
    n_estimators: int = 60
    max_depth: int = 5
    ranker_estimators: int = 80
    ranker_depth: int = 4
    relevance_levels: int = 4
    splitter: str = "hist"  # tree split finding: "hist" | "exact"
    max_bins: Optional[int] = None  # histogram bin budget (None = REPRO_GBM_BINS)
    seed: int = 0


def _signal_feature_matrix(
    record: DesignRecord,
    bitwise_predictions: Optional[Dict[str, float]],
    use_bitwise: bool,
) -> Tuple[np.ndarray, List[str]]:
    """Per-signal feature rows (and the signal order)."""
    dataset = extract_path_dataset(record, "sog", SamplingConfig(use_sampling=False))
    by_signal: Dict[str, List[int]] = {}
    for index, signal in enumerate(dataset.endpoint_signals):
        by_signal.setdefault(signal, []).append(index)

    cone_col = PATH_FEATURE_NAMES.index("cone_n_driving_regs")
    rank_col = PATH_FEATURE_NAMES.index("design_rank_percent")
    arr_col = PATH_FEATURE_NAMES.index("endpoint_pseudo_arrival")
    total_col = PATH_FEATURE_NAMES.index("design_n_total")
    levels_col = PATH_FEATURE_NAMES.index("path_n_levels")

    signals = sorted(by_signal)
    rows: List[np.ndarray] = []
    for signal in signals:
        indices = by_signal[signal]
        features = dataset.features[indices]
        names = [dataset.endpoint_names[i] for i in indices]
        if use_bitwise and bitwise_predictions is not None:
            bit_preds = np.array(
                [bitwise_predictions.get(name, 0.0) for name in names]
            )
        else:
            bit_preds = features[:, arr_col]
        rows.append(
            np.array(
                [
                    float(bit_preds.max()),
                    float(bit_preds.mean()),
                    float(bit_preds.std()),
                    float(len(indices)),
                    float(features[:, cone_col].max()),
                    float(features[:, rank_col].min()),
                    float(features[:, arr_col].max()),
                    float(features[:, levels_col].max()),
                    float(features[0, total_col]),
                ]
            )
        )
    return np.vstack(rows), signals


def _relevance_from_labels(labels: np.ndarray, levels: int) -> np.ndarray:
    """Criticality relevance labels: most critical group gets the highest value."""
    groups = criticality_groups(labels)
    relevance = np.zeros(len(labels), dtype=int)
    for group_index, members in enumerate(groups):
        relevance[members] = max(levels - 1 - group_index, 0)
    return relevance


class SignalwiseModel:
    """Signal max-arrival regression plus LambdaMART criticality ranking."""

    def __init__(self, config: Optional[SignalwiseConfig] = None):
        self.config = config or SignalwiseConfig()

    # -- training ------------------------------------------------------------------

    def fit(
        self,
        records: Sequence[DesignRecord],
        bitwise_predictions: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> "SignalwiseModel":
        """Fit on training designs.

        ``bitwise_predictions`` maps design name -> endpoint name -> predicted
        arrival (typically produced by :class:`BitwiseArrivalModel`).
        """
        config = self.config
        feature_rows: List[np.ndarray] = []
        labels: List[float] = []
        relevance: List[int] = []
        queries: List[str] = []

        for record in records:
            bit_preds = (bitwise_predictions or {}).get(record.name)
            features, signals = _signal_feature_matrix(record, bit_preds, config.use_bitwise)
            signal_labels = record.signal_labels()
            values = np.array([signal_labels[s] for s in signals])
            feature_rows.append(features)
            labels.extend(values.tolist())
            relevance.extend(_relevance_from_labels(values, config.relevance_levels).tolist())
            queries.extend([record.name] * len(signals))

        X = np.vstack(feature_rows)
        y = np.array(labels)
        self.scaler_ = StandardScaler()
        self.target_scaler_ = TargetScaler()
        Xs = self.scaler_.fit_transform(X)
        ys = self.target_scaler_.fit_transform(y)

        self.regressor_ = GradientBoostingRegressor(
            n_estimators=config.n_estimators,
            max_depth=config.max_depth,
            min_samples_leaf=3,
            splitter=config.splitter,
            max_bins=config.max_bins,
            seed=config.seed,
        )
        self.regressor_.fit(Xs, ys)

        self.ranker_ = LambdaMARTRanker(
            n_estimators=config.ranker_estimators,
            max_depth=config.ranker_depth,
            splitter=config.splitter,
            max_bins=config.max_bins,
            seed=config.seed,
        )
        self.ranker_.fit(Xs, np.array(relevance), queries)
        return self

    # -- inference ------------------------------------------------------------------

    def predict(
        self,
        record: DesignRecord,
        bitwise_predictions: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Predict signal max arrivals and ranking scores for one design.

        Returns ``{"arrival": {signal: value}, "ranking": {signal: score}}``
        where a larger ranking score means *more critical*.
        """
        if not hasattr(self, "regressor_"):
            raise RuntimeError("SignalwiseModel must be fitted before predict()")
        features, signals = _signal_feature_matrix(
            record, bitwise_predictions, self.config.use_bitwise
        )
        scaled = self.scaler_.transform(features)
        arrivals = self.target_scaler_.inverse_transform(self.regressor_.predict(scaled))
        scores = self.ranker_.predict(scaled)
        return {
            "arrival": dict(zip(signals, arrivals)),
            "ranking": dict(zip(signals, scores)),
        }

    def ranked_signals(
        self,
        record: DesignRecord,
        bitwise_predictions: Optional[Dict[str, float]] = None,
        use_ranker: bool = True,
    ) -> List[str]:
        """Signals ordered from most critical to least critical."""
        prediction = self.predict(record, bitwise_predictions)
        key = "ranking" if use_ranker else "arrival"
        scores = prediction[key]
        return sorted(scores, key=lambda s: -scores[s])

    # -- serialization ------------------------------------------------------------

    def to_state(self) -> dict:
        """Snapshot the fitted regression + ranking stage."""
        if not hasattr(self, "regressor_"):
            raise RuntimeError("SignalwiseModel must be fitted before to_state()")
        return {
            "model": "SignalwiseModel",
            "config": config_to_state(self.config),
            "scaler": self.scaler_.to_state(),
            "target_scaler": self.target_scaler_.to_state(),
            "regressor": estimator_to_state(self.regressor_),
            "ranker": estimator_to_state(self.ranker_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SignalwiseModel":
        """Rebuild a fitted model; predictions are bit-identical to the source."""
        model = cls(config_from_state(state["config"]))
        model.scaler_ = StandardScaler.from_state(state["scaler"])
        model.target_scaler_ = TargetScaler.from_state(state["target_scaler"])
        model.regressor_ = estimator_from_state(state["regressor"])
        model.ranker_ = estimator_from_state(state["ranker"])
        return model
