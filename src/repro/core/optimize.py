"""Prediction-driven synthesis optimization (Section 3.5.2, Table 6).

RTL-Timer's signal-wise criticality ranking is turned into synthesis
directives:

* the signals are split into four path groups (top 5 %, 5-40 %, 40-70 %,
  rest) and every group receives its own ``group_path`` optimization budget,
* the top ~5 % most critical signals are additionally targeted by ``retime``.

Two experiment entry points build on this:

* :func:`run_optimization_experiment` — the paper's Table 6 protocol:
  synthesize once with default options, once with the prediction-driven
  options, report the percentage change of WNS/TNS/power/area.
* :func:`run_optimization_sweep` — the multi-candidate extension: generate
  K candidate option sets around the ranking (varying group fractions and
  retime aggressiveness), *project* each candidate's timing with the
  incremental what-if engine (:mod:`repro.incremental`) instead of K full
  re-syntheses, then pay for exactly one real synthesis of the most
  promising candidate.  The result is an extended Table 6 row carrying the
  sweep metadata next to the usual percentage changes.

The sweep's scoring loop is the ``sweep`` strategy of the search framework
in :mod:`repro.optimize` — the same evaluator, Pareto bookkeeping and
budget accounting that drive the ``anneal`` / ``evolution`` strategies of
``python -m repro optimize`` (the open-ended quality-vs-budget extension of
Table 6).

Passing the ground-truth ranking instead of the predicted one gives the
"Opt. w. Real" columns in both protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import DesignRecord
from repro.core.metrics import DEFAULT_GROUP_FRACTIONS
from repro.incremental.whatif import WhatIfConfig, WhatIfEstimate
from repro.optimize.search import SearchConfig, run_search
from repro.optimize.space import (
    cached_synthesize as _cached_synthesize_impl,
    canonical_option_key,
    options_from_ranking,
    synthesis_key,
)
from repro.runtime.cache import ArtifactCache
from repro.runtime.report import incr as _incr, stage as _stage
from repro.sta.constraints import ClockConstraint
from repro.synth.flow import SynthesisResult
from repro.synth.optimizer import SynthesisOptions

__all__ = [
    "CANDIDATE_GROUP_FRACTIONS",
    "CANDIDATE_RETIME_FRACTIONS",
    "OptimizationOutcome",
    "canonical_option_key",
    "generate_candidates",
    "options_from_ranking",
    "ranking_from_labels",
    "run_optimization_experiment",
    "run_optimization_sweep",
    "summarize_outcomes",
]


@dataclass
class OptimizationOutcome:
    """Default-vs-optimized comparison for one design (one Table 6 row).

    When produced by :func:`run_optimization_sweep`, ``candidates`` carries
    the incremental what-if estimate of every option set evaluated and
    ``chosen_index`` points at the one that was actually synthesized.
    """

    design: str
    default: SynthesisResult
    optimized: SynthesisResult
    options: SynthesisOptions
    ranking_source: str = "predicted"
    candidates: List[WhatIfEstimate] = field(default_factory=list)
    chosen_index: int = 0

    # Percentage changes, computed in __post_init__.
    wns_change_pct: float = field(init=False)
    tns_change_pct: float = field(init=False)
    power_change_pct: float = field(init=False)
    area_change_pct: float = field(init=False)

    def __post_init__(self) -> None:
        self.wns_change_pct = _magnitude_change_pct(self.default.wns, self.optimized.wns)
        self.tns_change_pct = _magnitude_change_pct(self.default.tns, self.optimized.tns)
        self.power_change_pct = _relative_change_pct(
            self.default.qor.total_power, self.optimized.qor.total_power
        )
        self.area_change_pct = _relative_change_pct(
            self.default.qor.area, self.optimized.qor.area
        )

    @property
    def improved(self) -> bool:
        """True when neither WNS nor TNS degraded (the paper's criterion)."""
        return self.wns_change_pct <= 0.0 and self.tns_change_pct <= 0.0

    @property
    def n_candidates(self) -> int:
        return len(self.candidates)

    def as_row(self) -> Dict[str, float]:
        row = {
            "design": self.design,
            "wns_pct": self.wns_change_pct,
            "tns_pct": self.tns_change_pct,
            "power_pct": self.power_change_pct,
            "area_pct": self.area_change_pct,
        }
        if self.candidates:
            chosen = self.candidates[self.chosen_index]
            row["n_candidates"] = float(len(self.candidates))
            row["chosen_candidate"] = float(self.chosen_index)
            row["estimated_wns"] = chosen.wns
            row["estimated_tns"] = chosen.tns
        return row


def _magnitude_change_pct(default_value: float, optimized_value: float) -> float:
    """Change of |value| in percent (negative = improvement for WNS/TNS)."""
    base = abs(default_value)
    if base < 1e-9:
        return 0.0
    return 100.0 * (abs(optimized_value) - base) / base


def _relative_change_pct(default_value: float, optimized_value: float) -> float:
    if abs(default_value) < 1e-12:
        return 0.0
    return 100.0 * (optimized_value - default_value) / default_value


#: Group-fraction variations explored by the candidate generator: the
#: paper's split first, then progressively wider/narrower critical groups.
CANDIDATE_GROUP_FRACTIONS: Tuple[Tuple[float, ...], ...] = (
    DEFAULT_GROUP_FRACTIONS,
    (0.05, 0.30, 0.60),
    (0.10, 0.40, 0.70),
    (0.05, 0.45, 0.80),
    (0.03, 0.35, 0.65),
    (0.10, 0.50, 0.80),
    (0.08, 0.40, 0.75),
    (0.05, 0.25, 0.55),
)

#: Retime-fraction variations (the paper targets the top ~5 %).
CANDIDATE_RETIME_FRACTIONS: Tuple[float, ...] = (0.05, 0.03, 0.10, 0.08)


def generate_candidates(
    ranked_signals: Sequence[str],
    k: int = 8,
    seed: int = 1,
) -> List[SynthesisOptions]:
    """Deterministically generate up to ``k`` candidate option sets.

    Candidates walk a fixed grid of group-fraction and retime-fraction
    variations, starting from the paper's configuration, so candidate 0 of a
    ``k=1`` sweep is exactly the classic Table 6 option set.  Grid points
    whose *realized* options collapse to an already-generated candidate are
    deduplicated by :func:`repro.optimize.space.canonical_option_key` — the
    same key the search strategies memoize on — so a sweep or search budget
    is never silently wasted re-scoring the same option set (tiny rankings
    map many fraction tuples onto the same split, and fewer than ``k``
    candidates can come back).
    """
    candidates: List[SynthesisOptions] = []
    seen: set = set()
    grid_size = len(CANDIDATE_GROUP_FRACTIONS) * len(CANDIDATE_RETIME_FRACTIONS)
    for index in range(grid_size):
        if len(candidates) >= max(1, k):
            break
        fractions = CANDIDATE_GROUP_FRACTIONS[index % len(CANDIDATE_GROUP_FRACTIONS)]
        retime = CANDIDATE_RETIME_FRACTIONS[
            (index // len(CANDIDATE_GROUP_FRACTIONS)) % len(CANDIDATE_RETIME_FRACTIONS)
        ]
        options = options_from_ranking(
            ranked_signals,
            group_fractions=fractions,
            retime_fraction=retime,
            seed=seed,
        )
        key = canonical_option_key(options)
        if key in seen:
            continue
        seen.add(key)
        candidates.append(options)
    return candidates


def _synthesis_key(
    record: DesignRecord, clock: ClockConstraint, options: SynthesisOptions, seed: int
) -> str:
    """Backward-compatible alias of :func:`repro.optimize.space.synthesis_key`."""
    return synthesis_key(record, clock, options, seed)


def _cached_synthesize(
    record: DesignRecord,
    clock: ClockConstraint,
    options: SynthesisOptions,
    seed: int,
    cache: Optional[ArtifactCache],
) -> SynthesisResult:
    return _cached_synthesize_impl(record, clock, options, seed, cache)


def ranking_from_labels(record: DesignRecord) -> List[str]:
    """Ground-truth signal ranking (most critical first) from the labels."""
    labels = record.signal_labels()
    return sorted(labels, key=lambda signal: (-labels[signal], signal))


def run_optimization_sweep(
    record: DesignRecord,
    ranked_signals: Sequence[str],
    k: int = 8,
    ranking_source: str = "predicted",
    clock: Optional[ClockConstraint] = None,
    whatif_config: Optional[WhatIfConfig] = None,
    cache: Optional[ArtifactCache] = None,
    seed: int = 7,
) -> OptimizationOutcome:
    """Multi-candidate prediction-driven optimization for one design.

    Evaluates ``k`` candidate option sets with the incremental what-if
    engine against the record's baseline synthesis (through the ``sweep``
    strategy of :func:`repro.optimize.run_search`), then runs the full flow
    only for the default options and the best-scoring candidate.  With
    ``k=1`` this degenerates to the paper's two-synthesis protocol (the
    what-if projection is skipped entirely).

    The two full synthesis runs go through the content-addressed artifact
    cache (``cache`` defaults to the environment-configured store, honouring
    ``REPRO_CACHE=0``), so repeated sweeps over an unchanged design cost
    only the incremental projections.
    """
    clock = clock or record.clock
    if cache is None:
        cache = ArtifactCache()
    candidates = generate_candidates(ranked_signals, k=k, seed=seed)

    estimates: List[WhatIfEstimate] = []
    chosen_index = 0
    if len(candidates) > 1:
        with _stage("optimize.whatif_sweep"):
            search = run_search(
                record,
                ranked_signals,
                config=SearchConfig(
                    strategy="sweep",
                    budget=len(candidates),
                    seed=seed,
                    reanchor_every=0,
                ),
                whatif_config=whatif_config,
                cache=cache,
                candidates=candidates,
            )
        estimates = search.estimates
        # Best projected timing: largest (least negative) TNS, then WNS.
        chosen_index = max(
            range(len(estimates)),
            key=lambda i: (estimates[i].tns, estimates[i].wns, -i),
        )
        _incr("optimize_candidates", len(estimates))

    with _stage("optimize.synthesis"):
        default = _cached_synthesize(record, clock, SynthesisOptions(seed=seed), seed, cache)
        optimized = _cached_synthesize(record, clock, candidates[chosen_index], seed, cache)

    return OptimizationOutcome(
        design=record.name,
        default=default,
        optimized=optimized,
        options=candidates[chosen_index],
        ranking_source=ranking_source,
        candidates=estimates,
        chosen_index=chosen_index,
    )


def run_optimization_experiment(
    record: DesignRecord,
    ranked_signals: Sequence[str],
    ranking_source: str = "predicted",
    clock: Optional[ClockConstraint] = None,
    seed: int = 7,
) -> OptimizationOutcome:
    """The paper's single-candidate protocol (one row of Table 6).

    Equivalent to :func:`run_optimization_sweep` with ``k=1``: default
    options vs the classic prediction-driven option set, two syntheses.
    """
    return run_optimization_sweep(
        record,
        ranked_signals,
        k=1,
        ranking_source=ranking_source,
        clock=clock,
        seed=seed,
    )


#: Keys always present in a :func:`summarize_outcomes` result.
SUMMARY_KEYS: Tuple[str, ...] = tuple(
    f"{prefix}_{metric}_pct"
    for prefix in ("avg1", "avg2")
    for metric in ("wns", "tns", "power", "area")
)


def summarize_outcomes(outcomes: Sequence[OptimizationOutcome]) -> Dict[str, float]:
    """Avg1/Avg2 aggregation of Table 6.

    ``avg1_*`` averages the optimization-flow results over all designs;
    ``avg2_*`` replaces non-optimized designs (where WNS or TNS degraded) with
    the default flow (zero change), matching the paper's practice of running
    both flows concurrently and keeping the better one.

    The result is well-defined on an empty outcome list: every ``avg*`` key
    is present with value 0.0 and ``n_designs`` is 0, so table assembly
    never trips over a missing key or a division by zero.
    """
    if not outcomes:
        return {**{key: 0.0 for key in SUMMARY_KEYS}, "n_designs": 0.0}

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    avg1 = {
        "avg1_wns_pct": mean([o.wns_change_pct for o in outcomes]),
        "avg1_tns_pct": mean([o.tns_change_pct for o in outcomes]),
        "avg1_power_pct": mean([o.power_change_pct for o in outcomes]),
        "avg1_area_pct": mean([o.area_change_pct for o in outcomes]),
    }
    avg2 = {
        "avg2_wns_pct": mean([o.wns_change_pct if o.improved else 0.0 for o in outcomes]),
        "avg2_tns_pct": mean([o.tns_change_pct if o.improved else 0.0 for o in outcomes]),
        "avg2_power_pct": mean([o.power_change_pct if o.improved else 0.0 for o in outcomes]),
        "avg2_area_pct": mean([o.area_change_pct if o.improved else 0.0 for o in outcomes]),
    }
    return {**avg1, **avg2, "n_designs": float(len(outcomes))}
