"""Prediction-driven synthesis optimization (Section 3.5.2, Table 6).

RTL-Timer's signal-wise criticality ranking is turned into synthesis
directives:

* the signals are split into four path groups (top 5 %, 5-40 %, 40-70 %,
  rest) and every group receives its own ``group_path`` optimization budget,
* the top ~5 % most critical signals are additionally targeted by ``retime``.

:func:`run_optimization_experiment` synthesizes a design twice — once with
default options and once with the prediction-driven options — and reports the
percentage change of WNS, TNS, power and area, which is exactly one row of
Table 6.  Passing the ground-truth ranking instead of the predicted one gives
the "Opt. w. Real" columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.dataset import DesignRecord
from repro.core.metrics import DEFAULT_GROUP_FRACTIONS
from repro.sta.constraints import ClockConstraint
from repro.synth.flow import SynthesisResult, synthesize_bog
from repro.synth.optimizer import PathGroup, SynthesisOptions


@dataclass
class OptimizationOutcome:
    """Default-vs-optimized comparison for one design (one Table 6 row)."""

    design: str
    default: SynthesisResult
    optimized: SynthesisResult
    options: SynthesisOptions
    ranking_source: str = "predicted"

    # Percentage changes, computed in __post_init__.
    wns_change_pct: float = field(init=False)
    tns_change_pct: float = field(init=False)
    power_change_pct: float = field(init=False)
    area_change_pct: float = field(init=False)

    def __post_init__(self) -> None:
        self.wns_change_pct = _magnitude_change_pct(self.default.wns, self.optimized.wns)
        self.tns_change_pct = _magnitude_change_pct(self.default.tns, self.optimized.tns)
        self.power_change_pct = _relative_change_pct(
            self.default.qor.total_power, self.optimized.qor.total_power
        )
        self.area_change_pct = _relative_change_pct(
            self.default.qor.area, self.optimized.qor.area
        )

    @property
    def improved(self) -> bool:
        """True when neither WNS nor TNS degraded (the paper's criterion)."""
        return self.wns_change_pct <= 0.0 and self.tns_change_pct <= 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            "design": self.design,
            "wns_pct": self.wns_change_pct,
            "tns_pct": self.tns_change_pct,
            "power_pct": self.power_change_pct,
            "area_pct": self.area_change_pct,
        }


def _magnitude_change_pct(default_value: float, optimized_value: float) -> float:
    """Change of |value| in percent (negative = improvement for WNS/TNS)."""
    base = abs(default_value)
    if base < 1e-9:
        return 0.0
    return 100.0 * (abs(optimized_value) - base) / base


def _relative_change_pct(default_value: float, optimized_value: float) -> float:
    if abs(default_value) < 1e-12:
        return 0.0
    return 100.0 * (optimized_value - default_value) / default_value


def options_from_ranking(
    ranked_signals: Sequence[str],
    group_fractions: Sequence[float] = DEFAULT_GROUP_FRACTIONS,
    retime_fraction: float = 0.05,
    seed: int = 1,
) -> SynthesisOptions:
    """Build ``group_path`` + ``retime`` synthesis options from a ranking.

    ``ranked_signals`` is ordered from most critical to least critical.
    """
    signals = list(ranked_signals)
    n = len(signals)
    if n == 0:
        return SynthesisOptions(seed=seed)

    boundaries = [max(1, int(round(fraction * n))) for fraction in group_fractions]
    boundaries = sorted(set(min(b, n) for b in boundaries))
    groups: List[PathGroup] = []
    start = 0
    for index, boundary in enumerate(boundaries + [n]):
        members = signals[start:boundary]
        if members:
            groups.append(PathGroup(name=f"g{index + 1}", signals=members))
        start = boundary

    retime_count = max(1, int(round(retime_fraction * n)))
    return SynthesisOptions(
        path_groups=groups,
        retime_signals=signals[:retime_count],
        seed=seed,
    )


def ranking_from_labels(record: DesignRecord) -> List[str]:
    """Ground-truth signal ranking (most critical first) from the labels."""
    labels = record.signal_labels()
    return sorted(labels, key=lambda signal: -labels[signal])


def run_optimization_experiment(
    record: DesignRecord,
    ranked_signals: Sequence[str],
    ranking_source: str = "predicted",
    clock: Optional[ClockConstraint] = None,
    seed: int = 7,
) -> OptimizationOutcome:
    """Synthesize with default and prediction-driven options and compare."""
    clock = clock or record.clock
    sog = record.bogs["sog"]

    default = synthesize_bog(sog, clock, SynthesisOptions(seed=seed), seed=seed)
    options = options_from_ranking(ranked_signals, seed=seed)
    optimized = synthesize_bog(sog, clock, options, seed=seed)

    return OptimizationOutcome(
        design=record.name,
        default=default,
        optimized=optimized,
        options=options,
        ranking_source=ranking_source,
    )


def summarize_outcomes(outcomes: Sequence[OptimizationOutcome]) -> Dict[str, float]:
    """Avg1/Avg2 aggregation of Table 6.

    ``avg1_*`` averages the optimization-flow results over all designs;
    ``avg2_*`` replaces non-optimized designs (where WNS or TNS degraded) with
    the default flow (zero change), matching the paper's practice of running
    both flows concurrently and keeping the better one.
    """
    if not outcomes:
        return {}

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    avg1 = {
        "avg1_wns_pct": mean([o.wns_change_pct for o in outcomes]),
        "avg1_tns_pct": mean([o.tns_change_pct for o in outcomes]),
        "avg1_power_pct": mean([o.power_change_pct for o in outcomes]),
        "avg1_area_pct": mean([o.area_change_pct for o in outcomes]),
    }
    avg2 = {
        "avg2_wns_pct": mean([o.wns_change_pct if o.improved else 0.0 for o in outcomes]),
        "avg2_tns_pct": mean([o.tns_change_pct if o.improved else 0.0 for o in outcomes]),
        "avg2_power_pct": mean([o.power_change_pct if o.improved else 0.0 for o in outcomes]),
        "avg2_area_pct": mean([o.area_change_pct if o.improved else 0.0 for o in outcomes]),
    }
    return {**avg1, **avg2}
