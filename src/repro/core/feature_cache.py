"""Fold-aware path-feature cache.

Cross-validating the RTL-Timer stack re-extracts the *same* path features
over and over: every fold trains on mostly the same designs, each of the four
BOG variants extracts per record at fit time, and prediction extracts again
for the ensemble and signal-wise stages.  Extraction is deterministic — the
path sampler is seeded by :class:`~repro.core.sampling.SamplingConfig` and
everything else is a pure function of the record — so the result can be
cached under a content key:

``sha256(feature code ⊕ record fingerprint ⊕ variant ⊕ sampling ⊕ endpoints)``

Two layers back the cache:

* a bounded in-process LRU dictionary (hits are free across CV folds within
  one session),
* the on-disk :class:`~repro.runtime.cache.ArtifactCache` under a
  ``features/`` subdirectory of the artifact cache (hits survive across
  sessions and CI runs, and inherit the ``REPRO_CACHE*`` knobs).

Cache hits are recorded as the ``features.cache_hit`` stage and the
``feature_cache_hits`` / ``feature_cache_misses`` counters, so
``BENCH_runtime.json`` shows the collapse of per-fold re-extraction.

Environment knobs:

* ``REPRO_FEATURE_CACHE=0`` — disable both layers (every call re-extracts),
* ``REPRO_FEATURE_CACHE_DISK=0`` — keep the cache in-memory only,
* ``REPRO_FEATURE_CACHE_MEM`` — max in-memory entries (default 256),
* ``REPRO_FEATURE_CACHE_MAX_MB`` — on-disk size budget in MiB (default 256);
  the feature store prunes itself and is invisible to the record cache's
  own budget.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.runtime import report as report_mod
from repro.runtime.cache import (
    ArtifactCache,
    code_fingerprint,
    default_cache_dir,
    record_fingerprint,
)

#: Set to ``0`` to disable the path-feature cache entirely.
FEATURE_CACHE_ENV_VAR = "REPRO_FEATURE_CACHE"

#: Set to ``0`` to skip the on-disk layer (in-memory only).
FEATURE_CACHE_DISK_ENV_VAR = "REPRO_FEATURE_CACHE_DISK"

#: Maximum number of in-memory entries before LRU eviction.
FEATURE_CACHE_MEM_ENV_VAR = "REPRO_FEATURE_CACHE_MEM"

#: Size budget (in MiB) of the on-disk layer (default 256).
FEATURE_CACHE_MAX_MB_ENV_VAR = "REPRO_FEATURE_CACHE_MAX_MB"

#: Default on-disk budget in MiB; feature entries are small and cheap to
#: rebuild relative to DesignRecords, so the budget is much tighter than the
#: record cache's.
DEFAULT_DISK_MB = 256

#: Disk stores between prune passes (a prune walks the cache directory).
_PRUNE_EVERY = 64

#: Default in-memory entry budget (a PathDataset is a few hundred KB).
DEFAULT_MEM_ENTRIES = 256

#: Stage recorded (with its call count) for every cache hit.
CACHE_HIT_STAGE = "features.cache_hit"

#: Feature-extraction source files folded into the cache key on top of the
#: build-relevant scope already covered by ``code_fingerprint``.
_FEATURE_CODE_FILES = ("features.py", "sampling.py")


def feature_cache_enabled() -> bool:
    """Whether the path-feature cache is enabled (``REPRO_FEATURE_CACHE=0`` disables)."""
    return os.environ.get(FEATURE_CACHE_ENV_VAR, "1") != "0"


def feature_disk_enabled() -> bool:
    """Whether the on-disk layer is enabled (``REPRO_FEATURE_CACHE_DISK=0`` disables)."""
    return os.environ.get(FEATURE_CACHE_DISK_ENV_VAR, "1") != "0"


def _memory_budget() -> int:
    try:
        budget = int(os.environ.get(FEATURE_CACHE_MEM_ENV_VAR, str(DEFAULT_MEM_ENTRIES)))
    except ValueError:
        budget = DEFAULT_MEM_ENTRIES
    return max(budget, 1)


@lru_cache(maxsize=1)
def feature_code_fingerprint() -> str:
    """Digest of everything that can change extracted features.

    The build-scope fingerprint already covers the HDL/BOG/STA/synthesis
    code that shapes a record; the feature extractor and path sampler are
    layered on top so edits to them invalidate stale feature entries without
    invalidating the (much more expensive) record entries.
    """
    digest = hashlib.sha256()
    digest.update(code_fingerprint().encode())
    root = Path(__file__).resolve().parent  # src/repro/core
    for entry in _FEATURE_CODE_FILES:
        path = root / entry
        digest.update(entry.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def record_fingerprint_cached(record: Any) -> str:
    """Content identity of a record, memoized on the record instance.

    Records that came through the runtime engine carry their content-addressed
    build key (``_content_key``: spec ⊕ config ⊕ build code), which identifies
    the content without touching the record bytes.  Records built directly
    (e.g. from raw Verilog in tests) fall back to the pickled-bytes
    fingerprint — that pickles the whole record, so the result is computed
    once per record object and stashed in the instance ``__dict__``
    (dataclass machinery — ``fields``/``replace``/``repr`` — never sees the
    extra key).  Records are treated as immutable once built.
    """
    cached = record.__dict__.get("_feature_fingerprint")
    if cached is None:
        key = record.__dict__.get("_content_key")
        cached = f"key:{key}" if key is not None else f"fp:{record_fingerprint(record)}"
        record.__dict__["_feature_fingerprint"] = cached
    return cached


def path_dataset_key(
    record: Any,
    variant: str,
    sampling: Any,
    endpoint_names: Optional[Sequence[str]],
) -> str:
    """Content-address of one ``extract_path_dataset`` call.

    ``endpoint_names`` participates because the shared sampling RNG makes the
    extracted paths a function of the exact endpoint subset, not just of the
    per-endpoint inputs.
    """
    if endpoint_names is None:
        endpoints = "*"
    else:
        endpoints = ",".join(str(name) for name in endpoint_names)
    parts = (
        "path-dataset/v1",
        f"code={feature_code_fingerprint()}",
        f"record={record_fingerprint_cached(record)}",
        f"variant={variant}",
        f"sampling={sampling!r}",
        f"endpoints={endpoints}",
    )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class PathFeatureCache:
    """Two-layer (in-memory LRU + on-disk) cache for extracted path datasets."""

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        max_entries: Optional[int] = None,
        disk: Optional[bool] = None,
    ):
        if directory is None:
            directory = default_cache_dir() / "features"
        self.max_entries = _memory_budget() if max_entries is None else max(int(max_entries), 1)
        self.disk = ArtifactCache(directory, counter_prefix="feature_disk")
        if disk is not None:
            self.disk.enabled = bool(disk)
        elif not feature_disk_enabled():
            self.disk.enabled = False
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._stores_since_prune = 0

    # -- stats ---------------------------------------------------------------

    @property
    def n_memory_entries(self) -> int:
        return len(self._memory)

    # -- lookup --------------------------------------------------------------

    def get_or_extract(self, key: str, extractor: Callable[[], Any]) -> Any:
        """Return the cached dataset under ``key``, extracting on a full miss."""
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self._record_hit()
            return hit
        if self.disk.enabled:
            value = self.disk.get(key)
            if value is not None:
                self._remember(key, value)
                self._record_hit()
                return value
        report_mod.incr("feature_cache_misses")
        value = extractor()
        self._remember(key, value)
        if self.disk.enabled and self.disk.put(key, value):
            self._stores_since_prune += 1
            if self._stores_since_prune >= _PRUNE_EVERY:
                self._stores_since_prune = 0
                self.disk.prune(self._disk_budget_bytes())
        return value

    def clear(self) -> None:
        """Drop the in-memory layer (the disk layer is left untouched)."""
        self._memory.clear()

    # -- internals -----------------------------------------------------------

    def _disk_budget_bytes(self) -> int:
        try:
            budget = int(os.environ.get(FEATURE_CACHE_MAX_MB_ENV_VAR, str(DEFAULT_DISK_MB)))
        except ValueError:
            budget = DEFAULT_DISK_MB
        return max(budget, 1) * 1024 * 1024

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def _record_hit(self) -> None:
        report_mod.incr("feature_cache_hits")
        report = report_mod.active_report()
        if report is not None:
            report.add_stage(CACHE_HIT_STAGE, 0.0)


# ---------------------------------------------------------------------------
# Process-wide cache instance
# ---------------------------------------------------------------------------

_ACTIVE_CACHE: Optional[PathFeatureCache] = None


def path_feature_cache() -> Optional[PathFeatureCache]:
    """The process-wide cache, or ``None`` when disabled via the environment."""
    global _ACTIVE_CACHE
    if not feature_cache_enabled():
        return None
    if _ACTIVE_CACHE is None:
        _ACTIVE_CACHE = PathFeatureCache()
    return _ACTIVE_CACHE


def reset_feature_cache() -> None:
    """Drop the process-wide cache so the next use re-reads the environment."""
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = None


def cached_extract_path_dataset(
    record: Any,
    variant: str,
    sampling: Any,
    endpoint_names: Optional[Sequence[str]],
    extractor: Callable[[], Any],
) -> Any:
    """Cache-or-extract wrapper used by ``extract_path_dataset``.

    ``extractor`` runs exactly when the cache is disabled or the key misses
    both layers.
    """
    cache = path_feature_cache()
    if cache is None:
        return extractor()
    key = path_dataset_key(record, variant, sampling, endpoint_names)
    return cache.get_or_extract(key, extractor)
