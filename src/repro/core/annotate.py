"""Automatic slack annotation on HDL source (Section 3.5.1 of the paper).

Given RTL-Timer's predictions for a design, this module writes the predicted
slack and criticality ranking group of every sequential signal as a trailing
comment on the line that declares it, and a file header carrying the
technology node and the predicted overall WNS/TNS — exactly the artefact
shown in Fig. 3 (step 3) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.dataset import DesignRecord
from repro.core.metrics import criticality_groups
from repro.hdl.writer import annotate_lines


@dataclass(frozen=True)
class AnnotationConfig:
    """Formatting options for the HDL annotation."""

    technology: str = "NanGate45-like (synthetic)"
    time_unit: str = "ps"
    group_prefix: str = "g"


def ranking_groups(scores: Mapping[str, float]) -> Dict[str, int]:
    """Assign each signal a criticality group (1 = most critical .. 4).

    ``scores`` maps signal name to a criticality score where larger means
    more critical (predicted arrival or LTR ranking score).
    """
    names = sorted(scores)
    values = [scores[name] for name in names]
    groups = criticality_groups(values)
    assignment: Dict[str, int] = {}
    for group_index, members in enumerate(groups):
        for member in members:
            assignment[names[member]] = group_index + 1
    return assignment


def annotate_design(
    record: DesignRecord,
    signal_slacks: Mapping[str, float],
    ranking_scores: Mapping[str, float],
    overall: Mapping[str, float],
    config: Optional[AnnotationConfig] = None,
) -> str:
    """Return the design's Verilog source with slack annotations added.

    ``signal_slacks`` maps each sequential signal to its predicted slack,
    ``ranking_scores`` to its predicted criticality score, and ``overall``
    carries the predicted ``wns`` / ``tns`` of the whole design.
    """
    config = config or AnnotationConfig()
    groups = ranking_groups(ranking_scores)

    comments: Dict[str, str] = {}
    # A signal absent from the ranking falls back to the least-critical group
    # actually in use (not the group *count*, which would collide with a real
    # mid-criticality group).
    fallback_group = max(groups.values(), default=4)
    for signal, slack in signal_slacks.items():
        group = groups.get(signal, fallback_group)
        comments[signal] = (
            f"({signal}) Slack@{slack:.1f}{config.time_unit} "
            f"rank@{config.group_prefix}{group}"
        )

    header = [
        f"Tech: {config.technology}",
        (
            f"Predicted WNS: {overall.get('wns', 0.0):.1f}{config.time_unit}, "
            f"TNS: {overall.get('tns', 0.0):.1f}{config.time_unit}"
        ),
        "Annotated by RTL-Timer reproduction (per-signal predicted slack and rank group)",
    ]
    return annotate_lines(record.source, comments, header)
