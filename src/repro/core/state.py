"""Config <-> state-dict helpers for the core model stack.

The model registry persists fitted models together with the *exact*
configuration they were trained under (feature/sampling knobs change what
``extract_path_dataset`` produces, so predictions are only reproducible with
the saved config).  Configs are frozen dataclasses; this module converts
them to plain ``{"config": <class name>, "fields": {...}}`` dicts and back
by field name, so a bundle survives reordering or extending a config class
— a *removed* or renamed field fails loudly at restore time instead of
silently predicting with different knobs.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any, Mapping

#: Class name -> defining module for every serializable configuration.
CONFIG_MODULES = {
    "RTLTimerConfig": "repro.core.pipeline",
    "BitwiseConfig": "repro.core.bitwise",
    "SignalwiseConfig": "repro.core.signalwise",
    "OverallConfig": "repro.core.overall",
    "AnnotationConfig": "repro.core.annotate",
    "SamplingConfig": "repro.core.sampling",
    "DatasetConfig": "repro.core.dataset",
}


def config_to_state(config: Any) -> dict:
    """Snapshot a (possibly nested) config dataclass into a plain dict."""
    fields: dict = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        fields[field.name] = (
            config_to_state(value) if dataclasses.is_dataclass(value) else value
        )
    return {"config": type(config).__name__, "fields": fields}


def config_from_state(state: Mapping[str, Any]) -> Any:
    """Rebuild the config dataclass a :func:`config_to_state` dict describes."""
    name = state.get("config")
    module_name = CONFIG_MODULES.get(name)
    if module_name is None:
        raise ValueError(f"unknown config {name!r}; known: {sorted(CONFIG_MODULES)}")
    cls = getattr(importlib.import_module(module_name), name)
    kwargs = {}
    for field_name, value in state["fields"].items():
        if isinstance(value, Mapping) and "config" in value and "fields" in value:
            value = config_from_state(value)
        elif isinstance(value, list):
            # Tuples do survive the pickle payload, but states that passed
            # through JSON (manifest echoes, hand-written tests) carry lists.
            value = tuple(value)
        kwargs[field_name] = value
    return cls(**kwargs)
