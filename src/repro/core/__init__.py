"""RTL-Timer core: the paper's primary contribution.

The package re-exports the whole modelling surface (see ``docs/api.md``):

* dataset construction — :func:`build_dataset`, :func:`build_design_record`,
  :class:`DesignRecord`, path features + sampling,
* the model stack — :class:`BitwiseArrivalModel` (per-variant path models +
  representation ensemble), :class:`SignalwiseModel` (signal max-arrival
  regression + LambdaMART ranking), :class:`OverallTimingModel` (WNS/TNS),
  all tied together by :class:`RTLTimer`,
* applications — slack annotation (:func:`annotate_design`),
  prediction-driven synthesis options and the incremental optimization
  sweep (:func:`run_optimization_sweep`),
* metrics mirroring the paper's tables (:func:`regression_metrics`,
  :func:`ranking_coverage`, ...).

Fitted models persist through ``RTLTimer.save`` / ``RTLTimer.load`` and the
:mod:`repro.serve` registry; reloaded predictions are bit-identical.
"""

from repro.core.metrics import (
    DEFAULT_GROUP_FRACTIONS,
    criticality_groups,
    group_boundaries,
    mape,
    pearson_r,
    r_squared,
    ranking_coverage,
    regression_metrics,
)
from repro.core.dataset import (
    DatasetConfig,
    DesignRecord,
    build_dataset,
    build_dataset_serial,
    build_design_record,
    dataset_summary,
)
from repro.core.sampling import (
    EndpointSamples,
    PathSample,
    SamplingConfig,
    sample_count,
    sample_design_paths,
    sample_endpoint_paths,
)
from repro.core.features import (
    DESIGN_FEATURE_NAMES,
    PATH_FEATURE_NAMES,
    PathDataset,
    bog_graph_data,
    combine_path_datasets,
    design_feature_vector,
    extract_path_dataset,
)
from repro.core.feature_cache import (
    PathFeatureCache,
    path_feature_cache,
    feature_cache_enabled,
    path_dataset_key,
    reset_feature_cache,
)
from repro.core.bitwise import BitwiseArrivalModel, BitwiseConfig
from repro.core.signalwise import SignalwiseConfig, SignalwiseModel
from repro.core.overall import OverallConfig, OverallTimingModel
from repro.core.baselines import GNNBaselineConfig, GNNBitwiseBaseline
from repro.core.annotate import AnnotationConfig, annotate_design, ranking_groups
from repro.core.optimize import (
    OptimizationOutcome,
    generate_candidates,
    options_from_ranking,
    ranking_from_labels,
    run_optimization_experiment,
    run_optimization_sweep,
    summarize_outcomes,
)
from repro.core.pipeline import BatchPrediction, RTLTimer, RTLTimerConfig, RTLTimerPrediction

__all__ = [
    "DEFAULT_GROUP_FRACTIONS",
    "criticality_groups",
    "group_boundaries",
    "mape",
    "pearson_r",
    "r_squared",
    "ranking_coverage",
    "regression_metrics",
    "DatasetConfig",
    "DesignRecord",
    "build_dataset",
    "build_dataset_serial",
    "build_design_record",
    "dataset_summary",
    "EndpointSamples",
    "PathSample",
    "SamplingConfig",
    "sample_count",
    "sample_design_paths",
    "sample_endpoint_paths",
    "DESIGN_FEATURE_NAMES",
    "PATH_FEATURE_NAMES",
    "PathDataset",
    "bog_graph_data",
    "combine_path_datasets",
    "design_feature_vector",
    "extract_path_dataset",
    "PathFeatureCache",
    "path_feature_cache",
    "feature_cache_enabled",
    "path_dataset_key",
    "reset_feature_cache",
    "BitwiseArrivalModel",
    "BitwiseConfig",
    "SignalwiseConfig",
    "SignalwiseModel",
    "OverallConfig",
    "OverallTimingModel",
    "GNNBaselineConfig",
    "GNNBitwiseBaseline",
    "AnnotationConfig",
    "annotate_design",
    "ranking_groups",
    "OptimizationOutcome",
    "generate_candidates",
    "options_from_ranking",
    "ranking_from_labels",
    "run_optimization_experiment",
    "run_optimization_sweep",
    "summarize_outcomes",
    "BatchPrediction",
    "RTLTimer",
    "RTLTimerConfig",
    "RTLTimerPrediction",
]
