"""Register-oriented RTL processing: endpoint cones and path sampling.

Implements step 1 of the RTL-Timer workflow (Section 3.2 of the paper).  For
every register bit endpoint of a BOG "pseudo netlist":

* the endpoint's *input cone* is the transitive fanin up to driving registers
  and primary inputs,
* the *slowest path* is extracted by running pseudo-STA on the representation
  and backtracking from the endpoint,
* ``K`` additional *random paths* are sampled inside the cone, with ``K``
  proportional to the number of driving registers, so wide cones (whose
  post-synthesis restructuring is hardest to anticipate) contribute more
  evidence.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sta.engine import STAReport
from repro.sta.network import TimingNetwork
from repro.sta.paths import (
    driving_launch_points,
    sample_random_path,
    trace_critical_path,
)


@dataclass
class PathSample:
    """One sampled path ending at an endpoint."""

    endpoint: str
    vertices: List[int]
    is_critical: bool  # True for the pseudo-STA slowest path


@dataclass
class EndpointSamples:
    """All sampled paths plus cone statistics for one endpoint."""

    endpoint: str
    signal: str
    bit: int
    driver: int
    n_driving_registers: int
    paths: List[PathSample] = field(default_factory=list)


@dataclass(frozen=True)
class SamplingConfig:
    """Path sampling knobs.

    ``k_scale`` scales the number of random paths with the square root of the
    number of driving registers; ``k_max`` caps it (the paper only states the
    count is proportional to the driving-register count).  ``use_sampling``
    switches the random paths off entirely for the "w/o sample" ablation of
    Table 4.
    """

    k_scale: float = 1.0
    k_min: int = 1
    k_max: int = 4
    use_sampling: bool = True
    seed: int = 0


def sample_count(n_driving_registers: int, config: SamplingConfig) -> int:
    """Number of random paths for an endpoint with the given cone width."""
    if not config.use_sampling:
        return 0
    k = int(round(config.k_scale * math.sqrt(max(n_driving_registers, 1))))
    return max(config.k_min, min(config.k_max, k))


def sample_endpoint_paths(
    network: TimingNetwork,
    report: STAReport,
    endpoint_name: str,
    config: SamplingConfig,
    rng: random.Random,
) -> EndpointSamples:
    """Sample the slowest path plus K random paths for one endpoint."""
    endpoint = next(e for e in network.endpoints if e.name == endpoint_name)
    launch_points = driving_launch_points(network, endpoint.driver)
    samples = EndpointSamples(
        endpoint=endpoint.name,
        signal=endpoint.signal,
        bit=endpoint.bit,
        driver=endpoint.driver,
        n_driving_registers=len(launch_points),
    )

    critical = trace_critical_path(network, report, endpoint_name)
    samples.paths.append(
        PathSample(endpoint=endpoint.name, vertices=critical.vertices, is_critical=True)
    )

    for _ in range(sample_count(len(launch_points), config)):
        vertices = sample_random_path(network, endpoint.driver, rng)
        samples.paths.append(
            PathSample(endpoint=endpoint.name, vertices=vertices, is_critical=False)
        )
    return samples


def sample_design_paths(
    network: TimingNetwork,
    report: STAReport,
    config: Optional[SamplingConfig] = None,
    endpoint_names: Optional[Sequence[str]] = None,
) -> Dict[str, EndpointSamples]:
    """Sample paths for every (or the selected) register endpoint of a design."""
    config = config or SamplingConfig()
    rng = random.Random(config.seed)
    wanted = set(endpoint_names) if endpoint_names is not None else None
    result: Dict[str, EndpointSamples] = {}
    for endpoint in network.endpoints:
        if endpoint.kind != "register":
            continue
        if wanted is not None and endpoint.name not in wanted:
            continue
        result[endpoint.name] = sample_endpoint_paths(
            network, report, endpoint.name, config, rng
        )
    return result
