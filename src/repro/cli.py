"""Unified ``python -m repro`` command-line interface.

One entry point for the whole train-once/serve-many workflow::

    python -m repro train --designs 8 --name mymodel     # fit + register
    python -m repro predict --model mymodel design.v     # one-shot inference
    python -m repro whatif  --model mymodel design.v     # option projections
    python -m repro serve   --model mymodel --port 8421  # HTTP service
    python -m repro retrain --fast --fuzz-seeds 1,2      # eval-gated canary
    python -m repro promote --model mymodel              # show/set @promoted
    python -m repro rollback --model mymodel             # undo a promotion
    python -m repro dataset --designs 21                 # benchmark suite stats
    python -m repro fuzz --seed 0 --iterations 25        # differential fuzzing

``train`` stores fitted models in the content-addressed registry
(``REPRO_MODEL_DIR``, default ``<cache dir>/models``); ``predict``,
``whatif`` and ``serve`` load them back — bit-identical to the fitted
original — so no command ever re-trains implicitly.  ``retrain`` closes
the online lifecycle loop: it registers a candidate and flips the
``name@promoted`` deployment pointer only on a no-regression eval verdict
(exit code 3 on rejection), writing a JSON eval report either way; a
server started with ``--refresh-s`` follows promotions live.  ``fuzz``
delegates to the pre-existing :mod:`repro.fuzz` runner unchanged.

See ``docs/serving.md`` for the deployment knobs and ``docs/api.md`` for
the underlying python API.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.runtime import report as report_mod

#: Default model name used by ``train`` / ``predict`` / ``serve``.
DEFAULT_MODEL_NAME = "rtl-timer"

#: Exit code of a ``retrain`` whose candidate failed the eval gate
#: (distinct from argparse's 2 so CI lanes can assert the rejection path).
EXIT_EVAL_REJECTED = 3


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _registry(args):
    from repro.serve.registry import ModelRegistry

    return ModelRegistry(args.registry) if args.registry else ModelRegistry()


def _train_config(args):
    """Translate CLI knobs into an :class:`RTLTimerConfig`.

    Delegates to :func:`repro.lifecycle.retrain.training_config`, which
    treats ``estimators`` with an explicit ``is None`` check — ``0`` is an
    error (enforced by :func:`_positive_int` at parse time as well), never
    a silent fall-through to the preset.
    """
    from repro.lifecycle.retrain import training_config

    return training_config(estimators=args.estimators, fast=args.fast, seed=args.seed)


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (``--estimators 0`` is an error)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _seed_list(text: str) -> List[int]:
    """argparse type: comma-separated fuzz seeds (``1,2,3``)."""
    try:
        return [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a comma-separated integer list"
        ) from None


def _load_source_record(args, source_path: str):
    """Elaborate (or cache-load) the record for a Verilog file argument."""
    from repro.core.dataset import build_design_record
    from repro.runtime.cache import ArtifactCache, record_key

    path = Path(source_path)
    source = path.read_text()
    name = args.design_name or path.stem
    cache = ArtifactCache()
    return cache.load_or_build(
        record_key(source, None, name), lambda: build_design_record(source, name=name)
    )


def _emit(payload: dict, out: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=False)
    if out:
        Path(out).write_text(text + "\n")
    else:
        print(text)


def _maybe_write_report(report, path: Optional[str]) -> None:
    if path:
        destination = report.write(path)
        print(f"runtime report: {destination}", file=sys.stderr)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_train(args) -> int:
    from repro.core import RTLTimer, build_dataset
    from repro.hdl.generate import BENCHMARK_SPECS

    specs = BENCHMARK_SPECS[: args.designs] if args.designs else BENCHMARK_SPECS
    report = report_mod.RuntimeReport(meta={"command": "train", "designs": len(specs)})
    registry = _registry(args)
    with report_mod.activate(report):
        with report.stage("train.build_dataset"):
            records = build_dataset(specs, report=report)
        with report.stage("train.fit"):
            timer = RTLTimer(_train_config(args)).fit(records)
        manifest = registry.save(
            timer,
            args.name,
            metadata={"cli": True, "fast": args.fast, "designs": len(records)},
        )
    if args.out:
        timer.save(args.out)
        print(f"bundle file: {args.out}", file=sys.stderr)
    _emit(
        {
            "name": args.name,
            "bundle_id": manifest["bundle_id"],
            "registry": str(registry.directory),
            "training_designs": manifest["training_designs"],
            "fit_seconds": round(report.stage_seconds("train.fit"), 3),
        },
        None,
    )
    _maybe_write_report(report, args.bench_out)
    return 0


def cmd_predict(args) -> int:
    from repro.serve.http import prediction_to_json

    report = report_mod.RuntimeReport(meta={"command": "predict"})
    with report_mod.activate(report):
        timer = _registry(args).load(args.model)
        record = _load_source_record(args, args.source)
        with report.stage("serve.predict"):
            prediction = timer.predict(record)
    _emit(prediction_to_json(prediction), args.out)
    _maybe_write_report(report, args.bench_out)
    return 0


def cmd_whatif(args) -> int:
    report = report_mod.RuntimeReport(meta={"command": "whatif"})
    with report_mod.activate(report):
        timer = _registry(args).load(args.model)
        record = _load_source_record(args, args.source)
        with report.stage("serve.whatif"):
            estimates = timer.what_if(record, k=args.k)
    _emit(
        {
            "design": record.name,
            "candidates": [
                {
                    "index": index,
                    **{key: round(value, 6) for key, value in estimate.as_row().items()},
                    "uses_grouping": estimate.options.uses_grouping,
                    "uses_retiming": estimate.options.uses_retiming,
                }
                for index, estimate in enumerate(estimates)
            ],
        },
        args.out,
    )
    _maybe_write_report(report, args.bench_out)
    return 0


def cmd_serve(args) -> int:
    from repro.serve.http import start_server
    from repro.serve.service import ServeConfig, TimingService

    registry = _registry(args)
    timer, manifest = registry.load_with_manifest(args.model)
    config = ServeConfig(
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000.0,
    )
    if args.workers > 0:
        from repro.serve.service import PooledTimingService
        from repro.serve.supervisor import PoolConfig

        service = PooledTimingService(
            timer,
            config,
            manifest=manifest,
            pool_config=PoolConfig.from_env(workers=args.workers),
            # Workers (re)load the verified registry payload, not a pickle of
            # the parent's in-memory state — exactly what a restart would see.
            payload_provider=lambda: registry.payload(args.model)[0],
        )
    else:
        service = TimingService(timer, config, manifest=manifest)
    server = start_server(service, host=args.host, port=args.port, verbose=args.verbose)
    host, port = server.server_address
    print(
        f"serving model {args.model!r} (bundle {manifest['bundle_id'][:12]}) "
        f"on http://{host}:{port} — endpoints: /predict /whatif /health /metrics",
        file=sys.stderr,
    )
    watcher = None
    refresh_s = args.refresh_s
    if refresh_s is None:
        from repro.serve.service import REFRESH_ENV_VAR

        try:
            refresh_s = float(os.environ.get(REFRESH_ENV_VAR) or 0.0)
        except ValueError:
            refresh_s = 0.0
    if refresh_s > 0:
        from repro.lifecycle.watch import PromotionWatcher

        watcher = PromotionWatcher(
            service, registry, args.model.partition("@")[0], interval_s=refresh_s
        ).start()
        print(f"following promotions of {args.model.partition('@')[0]!r} "
              f"every {refresh_s:g}s", file=sys.stderr)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if watcher is not None:
            watcher.stop()
        server.shutdown()
        service.close()
        _maybe_write_report(service.runtime_report(), args.bench_out)
    return 0


def cmd_retrain(args) -> int:
    from repro.lifecycle.retrain import RetrainConfig, run_retrain

    report = report_mod.RuntimeReport(meta={"command": "retrain", "model": args.name})
    config = RetrainConfig(
        name=args.name,
        designs=args.designs,
        extra_designs=args.extra_designs,
        fuzz_seeds=tuple(args.fuzz_seeds or ()),
        fuzz_size_class=args.fuzz_size_class,
        holdout=args.holdout,
        estimators=args.estimators,
        fast=args.fast,
        seed=args.seed,
        report_out=args.report_out,
    )
    result = run_retrain(config, registry=_registry(args), report=report)
    _emit(
        {
            "name": result["name"],
            "verdict": result["verdict"],
            "promoted": result["promoted"],
            "reasons": result["reasons"],
            "candidate_bundle_id": result["candidate"]["bundle_id"],
            "eval_digest": result["eval_report"]["digest"],
            "report_path": result["report_path"],
        },
        args.out,
    )
    _maybe_write_report(report, args.bench_out)
    return 0 if result["promoted"] else EXIT_EVAL_REJECTED


def cmd_promote(args) -> int:
    from repro.serve.registry import RegistryError

    registry = _registry(args)
    name = args.model.partition("@")[0]
    try:
        if args.ref is None:
            _emit(
                {
                    "name": name,
                    "promoted": registry.promoted(name),
                    "history": registry.promotion_history(name),
                },
                args.out,
            )
        else:
            entry = registry.promote(name, args.ref, source="manual")
            _emit({"name": name, "promoted": entry}, args.out)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_rollback(args) -> int:
    from repro.serve.registry import RegistryError

    registry = _registry(args)
    name = args.model.partition("@")[0]
    try:
        entry = registry.rollback(name)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _emit({"name": name, "promoted": entry}, args.out)
    return 0


def cmd_optimize(args) -> int:
    from repro.core import build_dataset
    from repro.core.optimize import generate_candidates, ranking_from_labels
    from repro.hdl.generate import BENCHMARK_SPECS
    from repro.optimize import (
        SearchConfig,
        replay_artifact,
        replay_summary,
        run_search,
        write_artifact,
    )
    from repro.runtime.cache import ArtifactCache

    if args.replay:
        messages = replay_artifact(args.replay)
        _emit(replay_summary(args.replay, messages), args.out)
        return 0 if not messages else 1

    budgets = args.budgets or [8, 24]
    specs = BENCHMARK_SPECS[: args.designs]
    report = report_mod.RuntimeReport(
        meta={"command": "optimize", "designs": len(specs), "budgets": budgets}
    )
    cache = ArtifactCache()
    rows: List[dict] = []
    artifact_paths: List[str] = []
    with report_mod.activate(report):
        records = build_dataset(specs, report=report)
        for record in records:
            ranking = ranking_from_labels(record)
            for budget in budgets:
                config = SearchConfig.from_env(
                    strategy=args.strategy,
                    budget=budget,
                    seed=args.seed,
                    reanchor_every=args.reanchor,
                )
                candidates = None
                if config.strategy == "sweep":
                    candidates = generate_candidates(ranking, k=budget, seed=config.seed)
                result = run_search(
                    record, ranking, config, cache=cache, candidates=candidates
                )
                # The quality-vs-budget curve (extended Table 6): every row is
                # deterministic for a fixed (seed, strategy, budget), so the CI
                # optimize-smoke lane diffs two runs of this command verbatim.
                rows.append(
                    {
                        "design": record.name,
                        "strategy": config.strategy,
                        "budget": budget,
                        "seed": config.seed,
                        "baseline_wns": round(result.baseline.wns, 6),
                        "baseline_area": round(result.baseline.area, 6),
                        "best_wns": round(result.best.wns, 6),
                        "best_area": round(result.best.area, 6),
                        "front_size": len(result.front),
                        "front_hypervolume": round(result.front_hypervolume(), 6),
                        "evals": result.accounting["evals"],
                        "memo_hits": result.accounting["memo_hits"],
                        "accepted": result.accounting["accepted"],
                        "anchors": result.accounting["anchors"],
                        "exhausted": result.accounting["exhausted"],
                    }
                )
                if args.artifacts:
                    artifact_paths.append(str(write_artifact(args.artifacts, result, record)))
    payload = {
        "schema": "repro-optimize-curve/1",
        "strategy": rows[0]["strategy"] if rows else None,
        "seed": args.seed,
        "budgets": budgets,
        "designs": [record.name for record in records],
        "rows": rows,
    }
    if artifact_paths:
        payload["artifacts"] = artifact_paths
    _emit(payload, args.out)
    _maybe_write_report(report, args.bench_out)
    return 0


def cmd_dataset(args) -> int:
    from repro.core import build_dataset, dataset_summary
    from repro.hdl.generate import BENCHMARK_SPECS

    specs = BENCHMARK_SPECS[: args.designs] if args.designs else BENCHMARK_SPECS
    report = report_mod.RuntimeReport(meta={"command": "dataset", "designs": len(specs)})
    with report_mod.activate(report):
        records = build_dataset(specs, jobs=args.jobs, report=report)
    summary = dataset_summary(records)
    if args.json:
        _emit({"designs": summary}, args.out)
    else:
        def fmt(value) -> str:
            return f"{value:.1f}" if isinstance(value, float) else str(value)

        columns = list(summary[0]) if summary else []
        widths = {
            column: max(len(column), *(len(fmt(row[column])) for row in summary))
            for column in columns
        }
        print("  ".join(column.ljust(widths[column]) for column in columns))
        for row in summary:
            print("  ".join(fmt(row[c]).ljust(widths[c]) for c in columns))
    _maybe_write_report(report, args.bench_out)
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="RTL-Timer reproduction: train, predict, what-if, serve, fuzz.",
    )
    subparsers = parser.add_subparsers(dest="command", metavar="COMMAND")

    def common_model_args(sub, with_source: bool) -> None:
        sub.add_argument(
            "--model", default=DEFAULT_MODEL_NAME,
            help=f"model name, name@version or bundle id (default {DEFAULT_MODEL_NAME!r})",
        )
        sub.add_argument("--registry", default=None, help="registry dir (default $REPRO_MODEL_DIR)")
        sub.add_argument("--bench-out", default=None, help="write a BENCH_runtime.json report here")
        if with_source:
            sub.add_argument("source", help="Verilog source file to evaluate")
            sub.add_argument("--design-name", default=None, help="design name (default: file stem)")
            sub.add_argument("--out", default=None, help="write the JSON result here (default stdout)")

    train = subparsers.add_parser("train", help="fit RTL-Timer and register the model")
    train.add_argument("--designs", type=int, default=8, help="training designs from the benchmark suite (default 8)")
    train.add_argument("--name", default=DEFAULT_MODEL_NAME, help=f"registry name (default {DEFAULT_MODEL_NAME!r})")
    train.add_argument("--registry", default=None, help="registry dir (default $REPRO_MODEL_DIR)")
    train.add_argument("--estimators", type=_positive_int, default=None, help="boosting rounds per stage (positive)")
    train.add_argument("--fast", action="store_true", help="small fast-training preset")
    train.add_argument("--seed", type=int, default=0, help="model seed (default 0)")
    train.add_argument("--out", default=None, help="also write a single-file bundle here")
    train.add_argument("--bench-out", default=None, help="write a BENCH_runtime.json report here")
    train.set_defaults(handler=cmd_train)

    predict = subparsers.add_parser("predict", help="predict fine-grained timing for a Verilog file")
    common_model_args(predict, with_source=True)
    predict.set_defaults(handler=cmd_predict)

    whatif = subparsers.add_parser("whatif", help="project synthesis option candidates incrementally")
    common_model_args(whatif, with_source=True)
    whatif.add_argument("--k", type=int, default=8, help="number of candidate option sets (default 8)")
    whatif.set_defaults(handler=cmd_whatif)

    serve = subparsers.add_parser("serve", help="serve a registered model over JSON/HTTP")
    common_model_args(serve, with_source=False)
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8421, help="bind port (default 8421; 0 = OS-assigned)")
    serve.add_argument("--max-batch", type=int, default=16, help="max requests fused per model pass")
    serve.add_argument("--batch-window-ms", type=float, default=5.0, help="micro-batch window (default 5 ms)")
    serve.add_argument(
        "--workers", type=int, default=0,
        help="supervised worker processes (0 = in-process serving; default 0)",
    )
    serve.add_argument("--verbose", action="store_true", help="log every HTTP request")
    serve.add_argument(
        "--refresh-s", type=float, default=None,
        help="poll the promoted alias every N seconds and hot-swap the bundle "
             "(default $REPRO_SERVE_REFRESH_S; 0 disables)",
    )
    serve.set_defaults(handler=cmd_serve)

    retrain = subparsers.add_parser(
        "retrain",
        help="ingest new designs, fit a candidate, promote only on a no-regression eval",
    )
    retrain.add_argument("--name", default=DEFAULT_MODEL_NAME, help=f"registry name (default {DEFAULT_MODEL_NAME!r})")
    retrain.add_argument("--registry", default=None, help="registry dir (default $REPRO_MODEL_DIR)")
    retrain.add_argument("--designs", type=int, default=8, help="base training designs (default 8)")
    retrain.add_argument("--extra-designs", type=int, default=0, help="newly ingested benchmark designs beyond the base slice")
    retrain.add_argument("--fuzz-seeds", type=_seed_list, default=None, help="comma-separated fuzz corpus seeds to ingest (e.g. 1,2,3)")
    retrain.add_argument("--fuzz-size-class", default="small", help="size class of ingested fuzz designs (default 'small')")
    retrain.add_argument("--holdout", type=int, default=3, help="held-out designs for the eval gate (default 3)")
    retrain.add_argument("--estimators", type=_positive_int, default=None, help="boosting rounds per stage (positive)")
    retrain.add_argument("--fast", action="store_true", help="small fast-training preset")
    retrain.add_argument("--seed", type=int, default=0, help="model seed (default 0)")
    retrain.add_argument("--report-out", default=None, help="eval report path (default <registry>/eval-reports/)")
    retrain.add_argument("--out", default=None, help="write the JSON result here (default stdout)")
    retrain.add_argument("--bench-out", default=None, help="write a BENCH_runtime.json report here")
    retrain.set_defaults(handler=cmd_retrain)

    promote = subparsers.add_parser(
        "promote", help="show or set the name@promoted deployment pointer"
    )
    promote.add_argument("ref", nargs="?", default=None, help="version/bundle to promote (omit to show the current promotion)")
    promote.add_argument("--model", default=DEFAULT_MODEL_NAME, help=f"model name (default {DEFAULT_MODEL_NAME!r})")
    promote.add_argument("--registry", default=None, help="registry dir (default $REPRO_MODEL_DIR)")
    promote.add_argument("--out", default=None, help="write the JSON result here (default stdout)")
    promote.set_defaults(handler=cmd_promote)

    rollback = subparsers.add_parser(
        "rollback", help="move name@promoted back to the previously promoted bundle"
    )
    rollback.add_argument("--model", default=DEFAULT_MODEL_NAME, help=f"model name (default {DEFAULT_MODEL_NAME!r})")
    rollback.add_argument("--registry", default=None, help="registry dir (default $REPRO_MODEL_DIR)")
    rollback.add_argument("--out", default=None, help="write the JSON result here (default stdout)")
    rollback.set_defaults(handler=cmd_rollback)

    from repro.optimize.search import STRATEGIES

    optimize = subparsers.add_parser(
        "optimize",
        help="budget-bounded search over synthesis options on the what-if engine",
    )
    optimize.add_argument("--designs", type=_positive_int, default=2, help="number of benchmark designs (default 2)")
    optimize.add_argument("--strategy", choices=list(STRATEGIES), default=None, help="search strategy (default $REPRO_OPT_STRATEGY or anneal)")
    optimize.add_argument("--seed", type=int, default=0, help="search seed (default 0)")
    optimize.add_argument("--budgets", type=_seed_list, default=None, help="comma-separated eval budgets for the quality-vs-budget curve (default 8,24)")
    optimize.add_argument("--reanchor", type=int, default=None, help="full-synthesis re-anchor cadence (default $REPRO_OPT_REANCHOR or 8)")
    optimize.add_argument("--artifacts", default=None, help="write one repro-optimize-run/1 artifact per campaign into this directory")
    optimize.add_argument("--replay", default=None, help="replay a recorded repro-optimize-run/1 artifact and verify it reproduces")
    optimize.add_argument("--out", default=None, help="write the JSON result here (default stdout)")
    optimize.add_argument("--bench-out", default=None, help="write a BENCH_runtime.json report here")
    optimize.set_defaults(handler=cmd_optimize)

    dataset = subparsers.add_parser("dataset", help="build the benchmark dataset and print its summary")
    dataset.add_argument("--designs", type=int, default=None, help="number of designs (default: all 21)")
    dataset.add_argument("--jobs", type=int, default=None, help="worker processes (default $REPRO_JOBS)")
    dataset.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    dataset.add_argument("--out", default=None, help="write the JSON result here (default stdout)")
    dataset.add_argument("--bench-out", default=None, help="write a BENCH_runtime.json report here")
    dataset.set_defaults(handler=cmd_dataset)

    subparsers.add_parser(
        "fuzz",
        help="differential fuzz campaigns (see `python -m repro fuzz --help`)",
        add_help=False,
    )
    subparsers.add_parser(
        "chaos",
        help="fault-injection campaign against the serving stack (see `python -m repro chaos --help`)",
        add_help=False,
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments: List[str] = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "fuzz":
        # Full pass-through: the fuzz runner owns its (pre-existing) CLI.
        from repro.fuzz.runner import main as fuzz_main

        return fuzz_main(arguments[1:])
    if arguments and arguments[0] == "chaos":
        # Same pass-through pattern: the chaos harness owns its CLI.
        from repro.serve.chaos import main as chaos_main

        return chaos_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.handler(args)
