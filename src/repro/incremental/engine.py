"""Dirty-cone incremental static timing analysis.

:class:`IncrementalSTA` keeps a :class:`~repro.sta.engine.STAReport` for a
:class:`~repro.sta.network.TimingNetwork` up to date under local edits
described by :mod:`repro.incremental.patches` patch objects.  Instead of
re-propagating the whole graph, it

1. recomputes the output load of exactly the vertices a patch declares
   load-dirty, summing the contributions in the same order as
   :func:`repro.sta.engine.compute_loads` so the result is bit-identical,
2. seeds a worklist with the patches' dirty vertices and re-propagates
   arrivals/slews forward in topological order, using the frozen values of
   the previous report outside the affected cone, and stopping a branch as
   soon as a recomputed vertex reproduces its old arrival *and* slew exactly,
3. rebuilds only the endpoint timings whose driver arrival changed and
   re-derives WNS/TNS.

Because step 2 applies the same per-vertex update rule
(:func:`repro.sta.engine.propagate_vertex`) to the same operands in the same
order as a full :func:`~repro.sta.engine.analyze` run, the incremental
report matches a from-scratch re-analysis of the patched network exactly —
the property tests in ``tests/test_incremental.py`` check agreement to 1e-9
over random patch sequences.

The :meth:`IncrementalSTA.what_if` context manager applies a patch set,
yields the re-timed report, and reverts the patches on exit, which makes
multi-candidate optimization sweeps cheap: one frozen baseline, K small
cones, no re-synthesis.
"""

from __future__ import annotations

import contextlib
import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set

import numpy as np

from repro.faults import fault_active
from repro.incremental.patches import TimingPatch
from repro.runtime import report as report_mod
from repro.sta.constraints import ClockConstraint
from repro.sta.csr import AttributeColumns
from repro.sta.engine import (
    STAReport,
    analyze,
    endpoint_timing,
    propagate_vertex,
    resolve_kernel,
    summarize_slacks,
)
from repro.sta.network import TimingNetwork


@dataclass(slots=True)
class PropagationStats:
    """Work accounting for one incremental re-timing pass."""

    n_patches: int
    n_dirty_seeds: int
    n_recomputed: int
    n_vertices: int
    n_endpoints_updated: int

    @property
    def cone_fraction(self) -> float:
        """Fraction of the graph actually re-propagated."""
        if self.n_vertices == 0:
            return 0.0
        return self.n_recomputed / self.n_vertices


class IncrementalSTA:
    """Incrementally maintained STA state for one network under one clock."""

    def __init__(
        self,
        network: TimingNetwork,
        clock: ClockConstraint,
        baseline: Optional[STAReport] = None,
    ):
        self.network = network
        self.clock = clock
        if baseline is not None and (
            baseline.clock != clock or len(baseline.arrivals) != len(network.vertices)
        ):
            baseline = None  # stale baseline: recompute rather than trust it
        self._report = baseline if baseline is not None else analyze(network, clock)
        self.last_stats: Optional[PropagationStats] = None
        self._endpoint_caps_cache: Optional[Dict[int, List[float]]] = None
        # Attribute-column cache of the array kernel path: valid for one
        # compiled structure; rows a patch set touched are re-gathered at the
        # start of the next pass (covering both committed and reverted edits).
        self._columns: Optional[AttributeColumns] = None
        self._columns_csr = None
        self._stale_columns: Set[int] = set()

    # -- public API ----------------------------------------------------------

    def report(self) -> STAReport:
        """The report for the network's current state."""
        return self._report

    def refresh(self) -> STAReport:
        """Recompute from scratch (e.g. after un-patched external edits)."""
        self._endpoint_caps_cache = None
        self._columns = None
        self._columns_csr = None
        self._stale_columns = set()
        self._report = analyze(self.network, self.clock)
        return self._report

    def apply(self, patches: Sequence[TimingPatch]) -> STAReport:
        """Apply ``patches`` permanently and re-time the affected cone."""
        for patch in patches:
            patch.apply(self.network)
        self._report = self._propagate(patches)
        return self._report

    @contextlib.contextmanager
    def what_if(self, patches: Sequence[TimingPatch]) -> Iterator[STAReport]:
        """Evaluate ``patches`` without committing them.

        Yields the re-timed report of the patched network; on exit every
        patch is reverted (in reverse order) and the engine's committed
        report is untouched.  The yielded report stays valid after exit as a
        *prediction* artifact — it describes the hypothetical network, not
        the restored one.
        """
        applied: List[TimingPatch] = []
        try:
            for patch in patches:
                patch.apply(self.network)
                applied.append(patch)
            yield self._propagate(patches)
        finally:
            for patch in reversed(applied):
                patch.revert(self.network)

    # -- internals -----------------------------------------------------------

    def _endpoint_caps(self) -> Dict[int, List[float]]:
        """Per-driver endpoint pin capacitances, in endpoint-list order.

        Cached for the engine's lifetime: patches never add, remove or
        re-drive endpoints (size changes are rejected), and external edits
        require :meth:`refresh`, which drops the cache.
        """
        if self._endpoint_caps_cache is None:
            caps: Dict[int, List[float]] = {}
            for endpoint in self.network.endpoints:
                caps.setdefault(endpoint.driver, []).append(endpoint.pin_capacitance)
            self._endpoint_caps_cache = caps
        return self._endpoint_caps_cache

    def _recompute_load(
        self, vertex_id: int, fanouts: List[List[int]], endpoint_caps: Dict[int, List[float]]
    ) -> float:
        """One vertex's output load, summed in :func:`compute_loads` order."""
        vertices = self.network.vertices
        total = 0.0
        for consumer_id in fanouts[vertex_id]:
            cell = vertices[consumer_id].cell
            if cell is not None:
                total += cell.input_cap
        for cap in endpoint_caps.get(vertex_id, ()):
            total += cap
        if not fault_active("incremental.extra_load"):
            # Debug fault point: dropping the extra-load term makes this
            # path disagree with compute_loads, which the fuzz campaign's
            # incremental-vs-full oracle must catch (see repro.faults).
            total += vertices[vertex_id].extra_load
        return total

    def _propagate_reference(
        self, seeds: Set[int], fanouts, position, arrivals, slews, loads
    ):
        """Per-vertex dirty-cone worklist over :func:`propagate_vertex`."""
        heap = [(int(position[v]), v) for v in seeds]
        heapq.heapify(heap)
        queued: Set[int] = set(seeds)
        changed_drivers: Set[int] = set()
        recomputed = 0
        network = self.network
        while heap:
            _, vertex_id = heapq.heappop(heap)
            queued.discard(vertex_id)
            vertex = network.vertices[vertex_id]
            arrival, slew = propagate_vertex(
                vertex, self.clock, arrivals, slews, loads[vertex_id]
            )
            recomputed += 1
            if arrival == arrivals[vertex_id] and slew == slews[vertex_id]:
                continue  # downstream values are unchanged by construction
            arrivals[vertex_id] = arrival
            slews[vertex_id] = slew
            changed_drivers.add(vertex_id)
            for consumer in fanouts[vertex_id]:
                if consumer not in queued:
                    queued.add(consumer)
                    heapq.heappush(heap, (int(position[consumer]), consumer))
        return changed_drivers, recomputed

    def _columns_for(self, compiled, dirty: Set[int]) -> AttributeColumns:
        """Cached attribute columns, with the patch-touched rows re-gathered.

        Rows touched by the previous pass are also refreshed: a ``what_if``
        reverts its patches *after* propagation, so the values gathered for
        that pass are stale by the time the next one starts.
        """
        if self._columns is None or self._columns_csr is not compiled:
            self._columns = compiled.columns(self.network)
            self._columns_csr = compiled
        else:
            refresh = self._stale_columns | dirty
            if refresh:
                self._columns.refresh(self.network, sorted(refresh))
        self._stale_columns = set(dirty)
        return self._columns

    def _propagate_array(self, seeds: Set[int], arrivals, slews, loads):
        """Dirty level-slice re-sweep sharing the full analysis' array kernel.

        Dirty vertices are bucketed by logic level and each bucket is
        re-evaluated with one :meth:`~repro.sta.csr.CSRTimingGraph.sweep`
        call; consumers of vertices whose values changed join the bucket of
        their (strictly higher) level.  Visit set, early stopping and every
        float are identical to the reference worklist.
        """
        compiled = self.network.compiled()
        cols = self._columns_for(compiled, seeds)
        level = compiled.level
        fo_ptr = compiled.fanout_indptr
        fo_idx = compiled.fanout_indices
        buckets: Dict[int, Set[int]] = {}
        pending: List[int] = []
        for v in seeds:
            lvl = int(level[v])
            bucket = buckets.get(lvl)
            if bucket is None:
                buckets[lvl] = {v}
                heapq.heappush(pending, lvl)
            else:
                bucket.add(v)
        changed_drivers: Set[int] = set()
        recomputed = 0
        while pending:
            lvl = heapq.heappop(pending)
            members = buckets.pop(lvl)
            ids = np.fromiter(sorted(members), dtype=np.int64, count=len(members))
            old_arrivals = arrivals[ids]
            old_slews = slews[ids]
            compiled.sweep(ids, cols, self.clock, arrivals, slews, loads)
            recomputed += len(ids)
            changed = ids[(arrivals[ids] != old_arrivals) | (slews[ids] != old_slews)]
            for v in changed:
                vertex_id = int(v)
                changed_drivers.add(vertex_id)
                for consumer in fo_idx[fo_ptr[vertex_id] : fo_ptr[vertex_id + 1]]:
                    consumer_id = int(consumer)
                    consumer_level = int(level[consumer_id])
                    bucket = buckets.get(consumer_level)
                    if bucket is None:
                        buckets[consumer_level] = {consumer_id}
                        heapq.heappush(pending, consumer_level)
                    else:
                        bucket.add(consumer_id)
        return changed_drivers, recomputed

    def _propagate(self, patches: Sequence[TimingPatch]) -> STAReport:
        network = self.network
        base = self._report
        n = len(network.vertices)
        if n != len(base.arrivals):
            raise ValueError(
                "network size changed under the incremental engine; patches must "
                "not add or remove vertices — call refresh() instead"
            )

        with report_mod.stage("incremental.propagate"):
            # Structural patches invalidated the adjacency caches on apply;
            # these calls rebuild them once if needed (raising on a cycle).
            fanouts = network.fanouts()
            topo = network.topological_order()
            position = np.empty(n, dtype=np.int64)
            position[topo] = np.arange(n)

            dirty_delay: Set[int] = set()
            dirty_load: Set[int] = set()
            for patch in patches:
                dirty_delay.update(patch.dirty_delay_vertices(network))
                dirty_load.update(patch.dirty_load_vertices(network))

            arrivals = base.arrivals.copy()
            slews = base.slews.copy()
            loads = base.loads.copy()

            if dirty_load:
                endpoint_caps = self._endpoint_caps()
                for vertex_id in dirty_load:
                    loads[vertex_id] = self._recompute_load(vertex_id, fanouts, endpoint_caps)

            seeds = dirty_delay | dirty_load
            if resolve_kernel() == "array":
                changed_drivers, recomputed = self._propagate_array(
                    seeds, arrivals, slews, loads
                )
            else:
                changed_drivers, recomputed = self._propagate_reference(
                    seeds, fanouts, position, arrivals, slews, loads
                )

            endpoints = [
                endpoint_timing(endpoint, self.clock, arrivals)
                if endpoint.driver in changed_drivers
                else base.endpoints[index]
                for index, endpoint in enumerate(network.endpoints)
            ]
            updated = sum(1 for e in network.endpoints if e.driver in changed_drivers)
            wns, tns = summarize_slacks(endpoints)

        self.last_stats = PropagationStats(
            n_patches=len(patches),
            n_dirty_seeds=len(seeds),
            n_recomputed=recomputed,
            n_vertices=n,
            n_endpoints_updated=updated,
        )
        report_mod.incr("incremental_runs")
        report_mod.incr("incremental_patches", len(patches))
        report_mod.incr("incremental_recomputed_vertices", recomputed)

        return STAReport(
            design=network.name,
            clock=self.clock,
            arrivals=arrivals,
            slews=slews,
            loads=loads,
            endpoints=endpoints,
            wns=wns,
            tns=tns,
        )
