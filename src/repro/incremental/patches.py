"""Patch objects describing local edits to a :class:`TimingNetwork`.

A patch is a small, invertible edit with a declared *timing footprint*: the
vertices whose own delay equation changes (``dirty_delay_vertices``) and the
vertices whose output load changes (``dirty_load_vertices``).  The
incremental engine uses the footprint to seed its dirty-cone propagation, so
a patch must be honest about everything it touches — under-reporting breaks
the equivalence with a full re-analysis.

Four edit kinds cover the what-if scenarios the optimization sweep needs:

* :class:`SetDerate` — local optimization-effort change on one gate
  (models the stage rebalancing a ``retime`` directive achieves),
* :class:`SwapCell` — drive-strength / cell substitution
  (models ``group_path`` sizing budgets),
* :class:`AddExtraLoad` — wire-load delta on one net
  (models placement/budget effects on a net),
* :class:`RewireFanins` — a small structural rewrite of one vertex's fanin
  list (models local BOG rewrites; the only *structural* patch).

Every patch supports ``apply`` / ``revert`` on the live network; ``revert``
restores the exact previous state, which is what makes the engine's
:meth:`~repro.incremental.engine.IncrementalSTA.what_if` context safe to run
against a shared baseline netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.liberty import Cell
from repro.sta.network import TimingNetwork, VertexKind


class TimingPatch:
    """Base interface for local timing-network edits."""

    #: Structural patches change the fanin lists (adjacency / topo caches
    #: must be rebuilt); value patches only touch per-vertex attributes.
    structural: bool = False

    def apply(self, network: TimingNetwork) -> None:
        raise NotImplementedError

    def revert(self, network: TimingNetwork) -> None:
        raise NotImplementedError

    def dirty_delay_vertices(self, network: TimingNetwork) -> Iterable[int]:
        """Vertices whose own arrival/slew equation changed."""
        return ()

    def dirty_load_vertices(self, network: TimingNetwork) -> Iterable[int]:
        """Vertices whose output load must be recomputed."""
        return ()


@dataclass
class SetDerate(TimingPatch):
    """Set the delay derate of one gate (1.0 = nominal, <1.0 = faster)."""

    vertex: int
    derate: float
    _previous: Optional[float] = field(default=None, repr=False)

    def apply(self, network: TimingNetwork) -> None:
        target = network.vertices[self.vertex]
        self._previous = target.derate
        target.derate = float(self.derate)

    def revert(self, network: TimingNetwork) -> None:
        assert self._previous is not None, "revert before apply"
        network.vertices[self.vertex].derate = self._previous
        self._previous = None

    def dirty_delay_vertices(self, network: TimingNetwork) -> Iterable[int]:
        return (self.vertex,)


@dataclass
class SwapCell(TimingPatch):
    """Replace the cell implementing one vertex (e.g. a drive-strength move).

    The swap changes the vertex's own delay/slew equation *and* the input
    capacitance it presents to its fanins, so the fanins' loads are part of
    the footprint.
    """

    vertex: int
    cell: Cell
    _previous: Optional[Cell] = field(default=None, repr=False)

    def apply(self, network: TimingNetwork) -> None:
        target = network.vertices[self.vertex]
        if target.cell is None:
            raise ValueError(f"vertex {self.vertex} has no cell to swap")
        self._previous = target.cell
        target.cell = self.cell

    def revert(self, network: TimingNetwork) -> None:
        assert self._previous is not None, "revert before apply"
        network.vertices[self.vertex].cell = self._previous
        self._previous = None

    def dirty_delay_vertices(self, network: TimingNetwork) -> Iterable[int]:
        return (self.vertex,)

    def dirty_load_vertices(self, network: TimingNetwork) -> Iterable[int]:
        return tuple(network.vertices[self.vertex].fanins)


@dataclass
class AddExtraLoad(TimingPatch):
    """Add ``delta`` fF of wire load to one vertex's output net."""

    vertex: int
    delta: float
    _previous: Optional[float] = field(default=None, repr=False)

    def apply(self, network: TimingNetwork) -> None:
        target = network.vertices[self.vertex]
        self._previous = target.extra_load
        # Revert restores the saved value instead of subtracting the delta:
        # stacked float additions do not cancel exactly.
        target.extra_load = self._previous + float(self.delta)

    def revert(self, network: TimingNetwork) -> None:
        assert self._previous is not None, "revert before apply"
        network.vertices[self.vertex].extra_load = self._previous
        self._previous = None

    def dirty_delay_vertices(self, network: TimingNetwork) -> Iterable[int]:
        return (self.vertex,)

    def dirty_load_vertices(self, network: TimingNetwork) -> Iterable[int]:
        return (self.vertex,)


@dataclass
class RewireFanins(TimingPatch):
    """Replace one vertex's fanin list (a small local BOG rewrite).

    The caller is responsible for keeping the graph acyclic; the engine's
    topological-order rebuild raises on a cycle, which aborts the patch set.
    """

    vertex: int
    fanins: List[int]
    structural = True
    _previous: Optional[List[int]] = field(default=None, repr=False)

    def apply(self, network: TimingNetwork) -> None:
        target = network.vertices[self.vertex]
        if target.kind is not VertexKind.GATE:
            raise ValueError(f"vertex {self.vertex} is not a gate; cannot rewire fanins")
        self._previous = list(target.fanins)
        target.fanins = [int(f) for f in self.fanins]
        network.invalidate()

    def revert(self, network: TimingNetwork) -> None:
        assert self._previous is not None, "revert before apply"
        network.vertices[self.vertex].fanins = self._previous
        self._previous = None
        network.invalidate()

    def dirty_delay_vertices(self, network: TimingNetwork) -> Iterable[int]:
        return (self.vertex,)

    def dirty_load_vertices(self, network: TimingNetwork) -> Iterable[int]:
        previous = self._previous or []
        return tuple(set(previous) | set(network.vertices[self.vertex].fanins))
