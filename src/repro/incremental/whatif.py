"""What-if evaluation of synthesis option sets via incremental re-timing.

``run_optimization_experiment`` answers "what does this option set buy?" by
re-synthesizing the whole design — minutes of work per candidate.  This
module answers the same question approximately in milliseconds: it projects
the *local* effect each directive has on the already-synthesized baseline
netlist as a patch set and re-times only the affected cone with
:class:`~repro.incremental.engine.IncrementalSTA`:

* ``retime`` on a signal — the optimizer moves the endpoint register across
  its driving gate, rebalancing the stage; projected as a derate reduction
  on the gate driving the signal's worst bit,
* ``group_path`` budgets — every group gets its own sizing passes; projected
  as drive-strength upsizes (:class:`SwapCell`) along the critical paths of
  each group's worst endpoints,
* the least-critical group cedes effort to area recovery; projected as a
  small extra wire load on its ample-slack endpoints.

The projection is a *ranking* model, not a QoR oracle: estimates are used to
order K candidate option sets so only the most promising one pays for a full
re-synthesis (see :func:`repro.core.optimize.run_optimization_sweep`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.incremental.engine import IncrementalSTA, PropagationStats
from repro.incremental.patches import AddExtraLoad, SetDerate, SwapCell, TimingPatch
from repro.sta.engine import STAReport
from repro.sta.network import VertexKind
from repro.sta.paths import trace_critical_path
from repro.synth.netlist import Netlist
from repro.synth.optimizer import SynthesisOptions, group_endpoints


@dataclass(frozen=True)
class WhatIfConfig:
    """Knobs of the directive -> patch projection."""

    #: Derate applied to the driving gate of a retimed signal's worst bit
    #: (models the register absorbing part of the stage delay).
    retime_derate: float = 0.6
    #: Extra wire load (fF) modelling area recovery on the least-critical group.
    relax_load_ff: float = 2.0
    #: Slack threshold (fraction of the clock period) above which an endpoint
    #: is considered a safe area-recovery victim.
    relax_slack_fraction: float = 0.35


@dataclass
class WhatIfEstimate:
    """Projected timing of one candidate option set.

    ``report`` is only populated when :func:`evaluate_candidates` is asked
    to keep full reports — a sweep only needs wns/tns, and a report holds
    three vertex-sized arrays that would otherwise stay alive as long as
    the estimate does.
    """

    options: SynthesisOptions
    wns: float
    tns: float
    n_patches: int
    stats: Optional[PropagationStats] = None
    report: Optional[STAReport] = field(default=None, repr=False)

    def as_row(self) -> Dict[str, float]:
        return {
            "wns": self.wns,
            "tns": self.tns,
            "n_patches": float(self.n_patches),
            "cone_fraction": self.stats.cone_fraction if self.stats else 0.0,
        }


def patches_for_options(
    netlist: Netlist,
    report: STAReport,
    options: SynthesisOptions,
    config: Optional[WhatIfConfig] = None,
    path_cache: Optional[Dict[str, object]] = None,
) -> List[TimingPatch]:
    """Project one option set onto the baseline netlist as a patch list.

    ``path_cache`` memoizes critical-path traces by endpoint name; the
    baseline report is frozen during a sweep, so a shared dict lets K
    candidates trace each endpoint once instead of K times.
    """
    config = config or WhatIfConfig()
    patches: List[TimingPatch] = []
    planned_cells: Dict[int, object] = {}

    # -- retime: derate the gate driving each retimed signal's worst bit.
    derated: Dict[int, float] = {}
    for signal in options.retime_signals or []:
        bits = [e for e in report.endpoints if e.signal == signal and e.kind == "register"]
        if not bits:
            continue
        worst = min(bits, key=lambda e: e.slack)
        if worst.slack >= 0:
            continue
        driver = netlist.vertices[worst.driver]
        if driver.kind is not VertexKind.GATE or driver.id in derated:
            continue
        derated[driver.id] = driver.derate * config.retime_derate
    patches.extend(SetDerate(vertex, derate) for vertex, derate in derated.items())

    # -- group_path: upsize along each group's worst critical paths, one
    #    drive step per budget pass.  The endpoint selection is the
    #    optimizer's own (``group_endpoints``), so the projection sizes
    #    exactly the endpoints a real ``group_path`` run would.
    groups = options.path_groups or []
    for group in groups:
        targets = group_endpoints(report, group.signals, options.critical_fraction)
        for _ in range(options.group_effort_passes):
            for name in targets:
                path = path_cache.get(name) if path_cache is not None else None
                if path is None:
                    path = trace_critical_path(netlist, report, name)
                    if path_cache is not None:
                        path_cache[name] = path
                for vertex_id in path.vertices:
                    vertex = netlist.vertices[vertex_id]
                    if vertex.kind is not VertexKind.GATE:
                        continue
                    current = planned_cells.get(vertex_id, vertex.cell)
                    stronger = netlist.library.upsize(current)
                    if stronger is not None:
                        planned_cells[vertex_id] = stronger
    patches.extend(
        SwapCell(vertex_id, cell)
        for vertex_id, cell in planned_cells.items()
        if cell is not netlist.vertices[vertex_id].cell
    )

    # -- area recovery on the least-critical group: its ample-slack nets get
    #    slightly heavier (downsized drivers upstream -> more RC per fF).
    if groups and config.relax_load_ff > 0.0:
        relax_threshold = config.relax_slack_fraction * report.clock.period
        relaxed: set = set()
        wanted = set(groups[-1].signals)
        for endpoint in report.endpoints:
            if endpoint.signal not in wanted or endpoint.slack < relax_threshold:
                continue
            driver = endpoint.driver
            if driver in relaxed or driver in planned_cells or driver in derated:
                continue
            relaxed.add(driver)
            patches.append(AddExtraLoad(driver, config.relax_load_ff))

    return patches


def evaluate_candidates(
    record,
    candidates: Sequence[SynthesisOptions],
    config: Optional[WhatIfConfig] = None,
    engine: Optional[IncrementalSTA] = None,
    keep_reports: bool = False,
) -> List[WhatIfEstimate]:
    """Project every candidate option set against ``record``'s baseline run.

    ``record`` is a :class:`~repro.core.dataset.DesignRecord`; its default-
    options synthesis (netlist + report, already consistent with
    ``record.clock``) is the shared frozen baseline.  The baseline netlist
    is patched and reverted in place, never copied: K candidates cost K
    small dirty cones instead of K re-syntheses.  Pass ``keep_reports=True``
    to retain each candidate's full projected :class:`STAReport` for
    endpoint-level inspection.
    """
    netlist = record.synthesis.netlist
    engine = engine or IncrementalSTA(netlist, record.clock, baseline=record.synthesis.report)
    baseline = engine.report()
    path_cache: Dict[str, object] = {}
    estimates: List[WhatIfEstimate] = []
    for options in candidates:
        patches = patches_for_options(netlist, baseline, options, config, path_cache=path_cache)
        if not patches:
            estimates.append(
                WhatIfEstimate(
                    options=options,
                    wns=baseline.wns,
                    tns=baseline.tns,
                    n_patches=0,
                    report=baseline if keep_reports else None,
                )
            )
            continue
        with engine.what_if(patches) as projected:
            estimates.append(
                WhatIfEstimate(
                    options=options,
                    wns=projected.wns,
                    tns=projected.tns,
                    n_patches=len(patches),
                    stats=engine.last_stats,
                    report=projected if keep_reports else None,
                )
            )
    return estimates
