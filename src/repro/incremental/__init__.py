"""Incremental what-if timing engine.

The subsystem has three layers:

* :mod:`repro.incremental.patches` — invertible local edits
  (:class:`SetDerate`, :class:`SwapCell`, :class:`AddExtraLoad`,
  :class:`RewireFanins`) with declared timing footprints,
* :mod:`repro.incremental.engine` — :class:`IncrementalSTA`, dirty-cone
  re-propagation that matches a full re-analysis bit for bit,
* :mod:`repro.incremental.whatif` — projection of
  :class:`~repro.synth.optimizer.SynthesisOptions` candidates onto patch
  sets, powering ``RTLTimer.what_if`` and the multi-candidate optimization
  sweep of :mod:`repro.core.optimize`.
"""

from repro.incremental.engine import IncrementalSTA, PropagationStats
from repro.incremental.patches import (
    AddExtraLoad,
    RewireFanins,
    SetDerate,
    SwapCell,
    TimingPatch,
)
from repro.incremental.whatif import (
    WhatIfConfig,
    WhatIfEstimate,
    evaluate_candidates,
    patches_for_options,
)

__all__ = [
    "IncrementalSTA",
    "PropagationStats",
    "AddExtraLoad",
    "RewireFanins",
    "SetDerate",
    "SwapCell",
    "TimingPatch",
    "WhatIfConfig",
    "WhatIfEstimate",
    "evaluate_candidates",
    "patches_for_options",
]
