"""RTL-Timer reproduction: fine-grained RTL timing evaluation for early optimization.

A from-scratch, pure-Python reproduction of "Annotating Slack Directly on
Your Verilog: Fine-Grained RTL Timing Evaluation for Early Optimization"
(DAC 2024), including every substrate the paper relies on: a Verilog front
end, bit-level Boolean operator graph representations, a liberty-like cell
library, logic synthesis, static timing analysis, placement, and the ML
models (boosted trees, MLP, transformer, LambdaMART, GNN) implemented on
numpy.

Public entry points (see ``docs/api.md`` for the full reference):

* :class:`repro.core.RTLTimer` -- the fine-grained timing estimator, with
  ``save`` / ``load`` persistence and ``what_if`` projections,
* :func:`repro.core.build_dataset` -- benchmark suite + label generation
  (parallel + cached via :mod:`repro.runtime`),
* :mod:`repro.serve` -- the serving layer: versioned model registry
  (``save_model`` / ``load_model``), the micro-batching
  :class:`~repro.serve.TimingService` and the JSON-over-HTTP server,
* :mod:`repro.cli` -- the unified ``python -m repro`` command line
  (``train`` / ``predict`` / ``whatif`` / ``serve`` / ``dataset`` /
  ``fuzz``),
* :func:`repro.core.run_optimization_experiment` -- prediction-driven
  ``group_path`` / ``retime`` synthesis optimization,
* :func:`repro.core.run_optimization_sweep` -- its multi-candidate
  extension, scored by :mod:`repro.incremental` what-if re-timing,
* :mod:`repro.incremental` -- dirty-cone incremental STA: patch objects,
  :class:`~repro.incremental.IncrementalSTA` and the what-if projection,
* :mod:`repro.runtime` -- the execution engine: process-pool fan-out,
  content-addressed artifact caching, structured runtime reports,
* :mod:`repro.fuzz` -- cross-stack differential fuzzing,
* :mod:`repro.hdl`, :mod:`repro.bog`, :mod:`repro.synth`, :mod:`repro.sta`,
  :mod:`repro.physical`, :mod:`repro.ml` -- the substrates.
"""

from repro.core.pipeline import BatchPrediction, RTLTimer, RTLTimerConfig, RTLTimerPrediction
from repro.core.dataset import DatasetConfig, DesignRecord, build_dataset, build_design_record

__version__ = "0.1.0"

__all__ = [
    "BatchPrediction",
    "RTLTimer",
    "RTLTimerConfig",
    "RTLTimerPrediction",
    "DatasetConfig",
    "DesignRecord",
    "build_dataset",
    "build_design_record",
    "__version__",
]
