"""`repro-optimize-run/1` artifacts: serialize, load, replay.

An artifact is the full record of one search campaign — design source,
ranking, config (the replayable ``(seed, strategy, budget)`` triple plus
every knob), baseline point, trajectory log, Pareto front and budget
accounting.  The *canonical* section is a pure function of the run identity:
two runs of the same campaign serialize byte-identically (floats round-trip
exactly through JSON), which is what the determinism tests and the CI
optimize-smoke lane compare.  Wall-clock timings and environment snapshots
live outside the canonical section.

:func:`replay_artifact` rebuilds the design from the stored source, re-runs
the recorded campaign and reports any divergence from the recorded front /
trajectory — the optimizer's analogue of the fuzz runner's ``--replay``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional

from repro.faults import FAULT_ENV_VAR
from repro.optimize.search import SearchConfig, SearchResult, run_search
from repro.sta.engine import STA_KERNEL_ENV_VAR

#: Schema tag of the run artifact.
OPTIMIZE_RUN_SCHEMA = "repro-optimize-run/1"

#: Keys of the canonical (determinism-checked) section of the artifact.
CANONICAL_KEYS = (
    "schema",
    "design",
    "strategy",
    "seed",
    "budget",
    "config",
    "ranking",
    "baseline",
    "trajectory",
    "front",
    "accounting",
)


def canonical_payload(result: SearchResult) -> dict:
    """The deterministic section: byte-identical across replays."""
    return {
        "schema": OPTIMIZE_RUN_SCHEMA,
        "design": result.design,
        "strategy": result.config.strategy,
        "seed": result.config.seed,
        "budget": result.config.budget,
        "config": result.config.to_dict(),
        "ranking": list(result.ranking),
        "baseline": result.baseline.to_dict(),
        "trajectory": [entry.to_dict() for entry in result.trajectory],
        "front": result.front.to_dicts(),
        "accounting": dict(result.accounting),
    }


def build_artifact(result: SearchResult, record=None) -> dict:
    """Canonical payload plus the replay context (source, environment, perf)."""
    payload = canonical_payload(result)
    payload["source"] = getattr(record, "source", None)
    payload["front_hypervolume"] = result.front_hypervolume()
    payload["environment"] = {
        "sta_kernel": os.environ.get(STA_KERNEL_ENV_VAR, ""),
        "jobs": os.environ.get("REPRO_JOBS", ""),
        "fault_inject": os.environ.get(FAULT_ENV_VAR, ""),
    }
    payload["perf"] = {"search_seconds": round(result.elapsed_seconds, 6)}
    payload["replay"] = "python -m repro optimize --replay <this file>"
    return payload


def write_artifact(directory, result: SearchResult, record=None) -> Path:
    """Write one run artifact; the filename encodes the replay triple."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    config = result.config
    path = directory / (
        f"optimize_{result.design}_{config.strategy}_b{config.budget}_seed{config.seed}.json"
    )
    path.write_text(json.dumps(build_artifact(result, record), indent=2) + "\n")
    return path


def load_artifact(path) -> dict:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != OPTIMIZE_RUN_SCHEMA:
        raise ValueError(
            f"{path} is not a {OPTIMIZE_RUN_SCHEMA} artifact "
            f"(schema={payload.get('schema')!r})"
        )
    return payload


def replay_artifact(path, cache=None) -> List[str]:
    """Re-run a recorded campaign; return divergence messages (empty = exact).

    The design is rebuilt from the stored source (through the artifact
    cache), the recorded ranking is reused verbatim, and the recorded
    ``(seed, strategy, budget)`` config drives a fresh search whose canonical
    payload must match the recording field for field.
    """
    from repro.core.dataset import build_design_record
    from repro.core.optimize import generate_candidates
    from repro.runtime.cache import ArtifactCache, record_key

    payload = load_artifact(path)
    source = payload.get("source")
    if not source:
        return [f"{path}: artifact carries no design source; cannot replay"]

    name = payload["design"]
    if cache is None:
        cache = ArtifactCache()
    record = cache.load_or_build(
        record_key(source, None, name), lambda: build_design_record(source, name=name)
    )

    config = SearchConfig.from_dict(payload["config"])
    ranking = [str(signal) for signal in payload["ranking"]]
    candidates = None
    if config.strategy == "sweep":
        candidates = generate_candidates(ranking, k=config.budget, seed=config.seed)
    result = run_search(record, ranking, config, candidates=candidates)

    fresh = canonical_payload(result)
    messages: List[str] = []
    for key in CANONICAL_KEYS:
        if fresh.get(key) != payload.get(key):
            messages.append(
                f"replay of {Path(path).name} diverges on {key!r}: the recorded "
                f"campaign is not reproducible in this tree"
            )
    return messages


def replay_summary(path, messages: Optional[List[str]] = None) -> dict:
    """Small JSON summary the CLI emits for a replay run."""
    payload = load_artifact(path)
    if messages is None:
        messages = replay_artifact(path)
    return {
        "schema": "repro-optimize-replay/1",
        "artifact": str(path),
        "design": payload["design"],
        "strategy": payload["strategy"],
        "seed": payload["seed"],
        "budget": payload["budget"],
        "front_size": len(payload["front"]),
        "ok": not messages,
        "divergences": messages,
    }
