"""Search-based design-space optimization on the incremental what-if engine.

The package turns the fixed-K candidate sweep of
:func:`repro.core.optimize.run_optimization_sweep` into a real optimizer:
budget-bounded, seed-replayable search over
:class:`~repro.synth.optimizer.SynthesisOptions` (group fractions, retime
aggressiveness and per-signal group assignments) whose inner loop is the
dirty-cone incremental STA engine, with periodic full-synthesis re-anchoring
so incremental drift can never silently corrupt a search.

Layout:

* :mod:`repro.optimize.space` — the candidate genome
  (:class:`CandidateSpec`), seeded mutations, canonical option keys and the
  shared cached-synthesis helpers,
* :mod:`repro.optimize.pareto` — the delay-vs-area Pareto front with
  deterministic dominance/tie-breaking (and the ``optimize.dominance``
  fault tooth),
* :mod:`repro.optimize.search` — the strategies (``anneal``, ``evolution``,
  ``sweep``), the memoized incremental evaluator, re-anchoring and budget
  accounting,
* :mod:`repro.optimize.artifact` — ``repro-optimize-run/1`` artifacts and
  exact replay.

See ``docs/optimization.md`` for the user-facing guide and
``python -m repro optimize`` for the CLI.
"""

from repro.optimize.artifact import (
    OPTIMIZE_RUN_SCHEMA,
    build_artifact,
    canonical_payload,
    load_artifact,
    replay_artifact,
    replay_summary,
    write_artifact,
)
from repro.optimize.pareto import (
    DOMINANCE_FAULT,
    ParetoFront,
    ParetoPoint,
    dominates,
    hypervolume,
    reference_point,
)
from repro.optimize.search import (
    ANCHOR_TOLERANCE,
    OPT_AREA_WEIGHT_ENV_VAR,
    OPT_BUDGET_ENV_VAR,
    OPT_REANCHOR_ENV_VAR,
    OPT_STRATEGY_ENV_VAR,
    STRATEGIES,
    DriftError,
    IncrementalEvaluator,
    ScoredCandidate,
    SearchConfig,
    SearchResult,
    TrajectoryEntry,
    run_search,
)
from repro.optimize.space import (
    CandidateSpec,
    cached_synthesize,
    canonical_option_key,
    default_spec,
    mutate_spec,
    options_from_ranking,
    synthesis_key,
)

__all__ = [
    "ANCHOR_TOLERANCE",
    "CandidateSpec",
    "DOMINANCE_FAULT",
    "DriftError",
    "IncrementalEvaluator",
    "OPTIMIZE_RUN_SCHEMA",
    "OPT_AREA_WEIGHT_ENV_VAR",
    "OPT_BUDGET_ENV_VAR",
    "OPT_REANCHOR_ENV_VAR",
    "OPT_STRATEGY_ENV_VAR",
    "ParetoFront",
    "ParetoPoint",
    "STRATEGIES",
    "ScoredCandidate",
    "SearchConfig",
    "SearchResult",
    "TrajectoryEntry",
    "build_artifact",
    "cached_synthesize",
    "canonical_option_key",
    "canonical_payload",
    "default_spec",
    "dominates",
    "hypervolume",
    "load_artifact",
    "mutate_spec",
    "options_from_ranking",
    "reference_point",
    "replay_artifact",
    "replay_summary",
    "run_search",
    "synthesis_key",
    "write_artifact",
]
