"""Delay-vs-area Pareto front with deterministic dominance/tie-breaking.

Two objectives: maximize WNS (delay quality) and minimize area.  TNS rides
along as a reporting field but does not participate in dominance — the
front stays 2-D so its shape matches the extended Table 6 curve.

Determinism contract: points are kept sorted by ``(-wns, area, step)`` and
an incoming point that *equals* an existing one on both objectives is
rejected (first-seen wins), so the front of a replayed run is byte-identical
to the recorded one regardless of insertion timing.

The dominance filter carries the ``optimize.dominance`` fault tooth: with
``REPRO_FAULT_INJECT=optimize.dominance`` the filter is disabled and
dominated points accumulate, which the fuzz oracle must catch (and shrink)
via the pure :func:`dominates` predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faults import fault_active

#: Fault tooth: disables dominated-point filtering inside ParetoFront.insert.
DOMINANCE_FAULT = "optimize.dominance"


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate on (or submitted to) the delay-vs-area front."""

    wns: float
    tns: float
    area: float
    key: str  # canonical option key ("baseline" for the default options)
    source: str = "eval"  # "baseline" | "eval" | "anchor"
    step: int = -1  # trajectory step that produced the point

    def to_dict(self) -> dict:
        return {
            "wns": self.wns,
            "tns": self.tns,
            "area": self.area,
            "key": self.key,
            "source": self.source,
            "step": self.step,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ParetoPoint":
        return cls(
            wns=float(payload["wns"]),
            tns=float(payload["tns"]),
            area=float(payload["area"]),
            key=str(payload["key"]),
            source=str(payload["source"]),
            step=int(payload["step"]),
        )


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both objectives and
    strictly better on one.  Pure — no fault hook — so the differential
    oracle can use it to audit a front built by the (faultable) filter.
    """
    if a.wns < b.wns or a.area > b.area:
        return False
    return a.wns > b.wns or a.area < b.area


class ParetoFront:
    """Mutable non-dominated set with deterministic ordering."""

    def __init__(self, points: Optional[Sequence[ParetoPoint]] = None) -> None:
        self.points: List[ParetoPoint] = list(points or [])
        self._sort()

    def _sort(self) -> None:
        self.points.sort(key=lambda p: (-p.wns, p.area, p.step))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def insert(self, point: ParetoPoint) -> bool:
        """Add ``point`` unless dominated (or duplicated); drop what it
        dominates.  Returns True when the point entered the front.
        """
        duplicate = any(p.wns == point.wns and p.area == point.area for p in self.points)
        if fault_active(DOMINANCE_FAULT):
            # Fault tooth: the dominance filter is disabled, every distinct
            # point accumulates and dominated pairs survive for the oracle.
            if duplicate:
                return False
            self.points.append(point)
            self._sort()
            return True
        if duplicate or any(dominates(p, point) for p in self.points):
            return False
        self.points = [p for p in self.points if not dominates(point, p)]
        self.points.append(point)
        self._sort()
        return True

    def best_wns(self) -> Optional[ParetoPoint]:
        return self.points[0] if self.points else None

    def to_dicts(self) -> List[dict]:
        return [p.to_dict() for p in self.points]


def reference_point(baseline: ParetoPoint, period: float) -> Tuple[float, float]:
    """Deterministic hypervolume reference, anchored on the baseline run:
    one tenth of a clock period worse in WNS, 25 % more area.
    """
    return (baseline.wns - 0.1 * period, baseline.area * 1.25)


def hypervolume(points: Sequence[ParetoPoint], reference: Tuple[float, float]) -> float:
    """2-D dominated hypervolume of a non-dominated set vs ``reference``.

    Standard staircase sum: walk the front best-WNS-first; each point adds
    the rectangle between its WNS and the reference WNS over the area band
    it improves.  Points outside the reference box contribute nothing.
    """
    ref_wns, ref_area = reference
    volume = 0.0
    remaining_area = ref_area
    for point in sorted(points, key=lambda p: (-p.wns, p.area)):
        if point.wns <= ref_wns or point.area >= remaining_area:
            continue
        volume += (point.wns - ref_wns) * (remaining_area - point.area)
        remaining_area = point.area
    return volume
