"""Budget-bounded, seed-replayable search over synthesis options.

The inner loop is the incremental what-if engine: a candidate is scored by
projecting its :class:`~repro.optimize.space.CandidateSpec` onto timing
patches (:func:`repro.incremental.whatif.patches_for_options`) and re-timing
only the dirty cone — ~an order of magnitude cheaper than the full
synthesis it stands in for, which is what makes hundreds-of-candidates
search affordable.

Three strategies share one state machine (trajectory log, Pareto front,
memoized evaluator, budget accounting):

* ``anneal`` — simulated annealing with geometric cooling over the clock
  period; the Metropolis draw happens only for uphill moves so the RNG
  stream (and therefore the whole trajectory) is a pure function of
  ``(seed, strategy, budget)``.
* ``evolution`` — (mu+lambda) mutation-only evolutionary search with
  deterministic ``(energy, key)`` truncation selection; a budget that runs
  out mid-generation still logs and selects over the partial generation.
* ``sweep`` — the fixed candidate grid of ``generate_candidates``, run
  through the same machinery (this is what ``run_optimization_sweep`` now
  sits on).

Re-anchoring: every ``reanchor_every`` accepted moves the engine re-derives
the incumbent's patches, re-times them incrementally *and* from scratch,
and raises :class:`DriftError` if the two disagree beyond 1e-9 — incremental
drift can never silently corrupt a search — then runs one real (cached)
synthesis of the incumbent and logs the ground-truth QoR as an ``anchor``
trajectory event.
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.incremental.engine import IncrementalSTA
from repro.incremental.patches import SwapCell, TimingPatch
from repro.incremental.whatif import WhatIfConfig, WhatIfEstimate, patches_for_options
from repro.optimize.pareto import (
    ParetoFront,
    ParetoPoint,
    hypervolume,
    reference_point,
)
from repro.optimize.space import (
    CandidateSpec,
    canonical_option_key,
    cached_synthesize,
    default_spec,
    mutate_spec,
)
from repro.runtime import report as report_mod
from repro.runtime.cache import ArtifactCache
from repro.runtime.report import (
    OPT_ANCHOR_STAGE,
    OPT_SCORE_ACCEPTED_STAGE,
    OPT_SCORE_STAGE,
    OPT_SEARCH_STAGE,
)
from repro.sta.engine import analyze as sta_analyze
from repro.synth.optimizer import SynthesisOptions

#: Incremental-vs-full agreement required at every re-anchor (same contract
#: as the fuzz oracles' STA tolerance).
ANCHOR_TOLERANCE = 1e-9

#: ``SearchConfig.from_env`` knobs.
OPT_STRATEGY_ENV_VAR = "REPRO_OPT_STRATEGY"
OPT_BUDGET_ENV_VAR = "REPRO_OPT_BUDGET"
OPT_REANCHOR_ENV_VAR = "REPRO_OPT_REANCHOR"
OPT_AREA_WEIGHT_ENV_VAR = "REPRO_OPT_AREA_WEIGHT"

STRATEGIES = ("anneal", "evolution", "sweep")


class DriftError(RuntimeError):
    """Incremental score of an accepted candidate disagrees with a
    from-scratch re-analysis beyond :data:`ANCHOR_TOLERANCE`."""


@dataclass(frozen=True)
class SearchConfig:
    """The replayable identity of one search run.

    ``(seed, strategy, budget)`` plus these knobs fully determine the
    trajectory; the whole config is embedded in the run artifact.
    """

    strategy: str = "anneal"
    budget: int = 32  # unique candidates scored (memo hits are free)
    seed: int = 0
    reanchor_every: int = 8  # full-synthesis anchor cadence (0 disables)
    mu: int = 4  # evolution: parents kept
    lam: int = 8  # evolution: offspring per generation
    t0_fraction: float = 0.05  # anneal: T0 as a fraction of the clock period
    alpha: float = 0.92  # anneal: geometric cooling factor
    area_weight: float = 0.5  # energy: periods charged per 100% area growth

    @classmethod
    def from_env(cls, **overrides) -> "SearchConfig":
        """Environment-resolved config; explicit non-None overrides win."""
        values: Dict[str, object] = {}
        strategy = os.environ.get(OPT_STRATEGY_ENV_VAR)
        if strategy:
            values["strategy"] = strategy
        budget = os.environ.get(OPT_BUDGET_ENV_VAR)
        if budget:
            values["budget"] = int(budget)
        reanchor = os.environ.get(OPT_REANCHOR_ENV_VAR)
        if reanchor:
            values["reanchor_every"] = int(reanchor)
        area_weight = os.environ.get(OPT_AREA_WEIGHT_ENV_VAR)
        if area_weight:
            values["area_weight"] = float(area_weight)
        values.update({k: v for k, v in overrides.items() if v is not None})
        config = cls(**values)
        if config.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {config.strategy!r}; expected one of {STRATEGIES}"
            )
        if config.budget < 1:
            raise ValueError("budget must be >= 1")
        return config

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "reanchor_every": self.reanchor_every,
            "mu": self.mu,
            "lam": self.lam,
            "t0_fraction": self.t0_fraction,
            "alpha": self.alpha,
            "area_weight": self.area_weight,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchConfig":
        return cls(
            strategy=str(payload["strategy"]),
            budget=int(payload["budget"]),
            seed=int(payload["seed"]),
            reanchor_every=int(payload["reanchor_every"]),
            mu=int(payload["mu"]),
            lam=int(payload["lam"]),
            t0_fraction=float(payload["t0_fraction"]),
            alpha=float(payload["alpha"]),
            area_weight=float(payload["area_weight"]),
        )


@dataclass(frozen=True)
class ScoredCandidate:
    """Memoized incremental score of one option set."""

    key: str
    wns: float
    tns: float
    area: float
    n_patches: int
    seconds: float  # wall time of the scoring pass (not canonical)


@dataclass
class TrajectoryEntry:
    """One event of the search log: an evaluation or a re-anchor."""

    step: int
    kind: str  # "eval" | "anchor"
    key: str
    wns: float
    tns: float
    area: float
    spec: Optional[dict] = None
    n_patches: int = 0
    energy: Optional[float] = None
    accepted: bool = False
    entered_front: bool = False
    memo: bool = False
    temperature: Optional[float] = None
    generation: Optional[int] = None
    drift: Optional[float] = None

    def to_dict(self) -> dict:
        payload = {
            "step": self.step,
            "kind": self.kind,
            "key": self.key,
            "wns": self.wns,
            "tns": self.tns,
            "area": self.area,
            "n_patches": self.n_patches,
            "accepted": self.accepted,
            "entered_front": self.entered_front,
            "memo": self.memo,
        }
        if self.spec is not None:
            payload["spec"] = self.spec
        for name in ("energy", "temperature", "generation", "drift"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload


@dataclass
class SearchResult:
    """Everything one search run produced (see ``artifact.py`` for the
    serialized ``repro-optimize-run/1`` form)."""

    design: str
    ranking: Tuple[str, ...]
    config: SearchConfig
    baseline: ParetoPoint
    front: ParetoFront
    trajectory: List[TrajectoryEntry]
    accounting: Dict[str, object]
    period: float
    estimates: List[WhatIfEstimate] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def best(self) -> ParetoPoint:
        best = self.front.best_wns()
        return best if best is not None else self.baseline

    def front_hypervolume(self) -> float:
        return hypervolume(
            self.front.points, reference_point(self.baseline, self.period)
        )

    def best_energy(self) -> Optional[float]:
        energies = [
            e.energy for e in self.trajectory if e.kind == "eval" and e.energy is not None
        ]
        return min(energies) if energies else None


class IncrementalEvaluator:
    """Scores option sets against one design's baseline synthesis.

    All candidates are projected against the *frozen* default-options
    baseline netlist (never rebased onto an accepted candidate), so any
    logged score can later be verified by re-deriving the patches and
    re-analyzing from scratch — that is exactly what re-anchoring and the
    ``optimize_search`` fuzz oracle do.
    """

    def __init__(self, record, whatif_config: Optional[WhatIfConfig] = None) -> None:
        self.record = record
        self.netlist = record.synthesis.netlist
        self.baseline_report = record.synthesis.report
        self.config = whatif_config or WhatIfConfig()
        self.engine = IncrementalSTA(self.netlist, record.clock, baseline=self.baseline_report)
        self.path_cache: Dict = {}
        self.base_area = float(record.synthesis.qor.area)
        self.memo: Dict[str, ScoredCandidate] = {}
        self.evals = 0
        self.memo_hits = 0
        self.estimates: List[WhatIfEstimate] = []

    def patches(self, options: SynthesisOptions) -> List[TimingPatch]:
        return patches_for_options(
            self.netlist,
            self.baseline_report,
            options,
            self.config,
            path_cache=self.path_cache,
        )

    def area_of(self, patches: Sequence[TimingPatch]) -> float:
        """Exact area of the patched netlist: cell swaps carry their own
        area deltas; derates and extra loads are area-neutral."""
        delta = 0.0
        for patch in patches:
            if isinstance(patch, SwapCell):
                current = self.netlist.vertices[patch.vertex].cell
                delta += float(patch.cell.area) - float(current.area)
        return self.base_area + delta

    def score(self, options: SynthesisOptions, key: Optional[str] = None):
        """Memoized incremental score.  Returns ``(scored, memo_hit)``;
        only memo misses consume search budget."""
        key = key or canonical_option_key(options)
        hit = self.memo.get(key)
        if hit is not None:
            self.memo_hits += 1
            report_mod.incr("optimize_memo_hits")
            return hit, True
        started = time.perf_counter()
        patches = self.patches(options)
        if patches:
            with self.engine.what_if(patches) as projected:
                wns, tns = float(projected.wns), float(projected.tns)
            stats = self.engine.last_stats
        else:
            wns, tns = float(self.baseline_report.wns), float(self.baseline_report.tns)
            stats = None
        seconds = time.perf_counter() - started
        scored = ScoredCandidate(
            key=key,
            wns=wns,
            tns=tns,
            area=self.area_of(patches),
            n_patches=len(patches),
            seconds=seconds,
        )
        self.memo[key] = scored
        self.evals += 1
        self.estimates.append(
            WhatIfEstimate(options=options, wns=wns, tns=tns, n_patches=len(patches), stats=stats)
        )
        report = report_mod.active_report()
        if report is not None:
            report.add_stage(OPT_SCORE_STAGE, seconds)
        report_mod.incr("optimize_evals")
        return scored, False


class _SearchState:
    """Shared bookkeeping for all three strategies."""

    def __init__(self, record, ranking, config, evaluator, cache) -> None:
        self.record = record
        self.ranking = list(ranking)
        self.config = config
        self.evaluator = evaluator
        self.cache = cache
        self.period = float(record.clock.period)
        self.n_endpoints = max(1, len(record.synthesis.report.endpoints))
        self.baseline = ParetoPoint(
            wns=float(record.synthesis.report.wns),
            tns=float(record.synthesis.report.tns),
            area=float(record.synthesis.qor.area),
            key="baseline",
            source="baseline",
            step=-1,
        )
        self.front = ParetoFront()
        self.front.insert(self.baseline)
        self.trajectory: List[TrajectoryEntry] = []
        self.steps = 0
        self.accepted = 0
        self.anchors = 0
        self.exhausted = False

    # -- budget ---------------------------------------------------------------

    @property
    def budget_left(self) -> bool:
        return self.evaluator.evals < self.config.budget

    @property
    def step_budget_left(self) -> bool:
        # Backstop for tiny spaces where almost every proposal is a memo hit.
        return self.steps < 4 * self.config.budget

    # -- scoring --------------------------------------------------------------

    def energy(self, scored: ScoredCandidate) -> float:
        """Scalarized objective (lower is better): WNS regression vs the
        baseline, a small normalized-TNS term as tie-breaker, plus area
        growth charged in clock periods (``area_weight``)."""
        timing = (self.baseline.wns - scored.wns) + 0.05 * (
            self.baseline.tns - scored.tns
        ) / self.n_endpoints
        area = (scored.area - self.baseline.area) / max(self.baseline.area, 1e-12)
        return timing + self.config.area_weight * self.period * area

    def eval_spec(
        self,
        spec: CandidateSpec,
        temperature: Optional[float] = None,
        generation: Optional[int] = None,
    ) -> Tuple[ScoredCandidate, TrajectoryEntry, bool]:
        options = spec.realize(self.ranking, seed=self.config.seed)
        scored, memo = self.evaluator.score(options)
        entered = self.front.insert(
            ParetoPoint(
                wns=scored.wns,
                tns=scored.tns,
                area=scored.area,
                key=scored.key,
                source="eval",
                step=self.steps,
            )
        )
        entry = TrajectoryEntry(
            step=self.steps,
            kind="eval",
            key=scored.key,
            wns=scored.wns,
            tns=scored.tns,
            area=scored.area,
            spec=spec.to_dict(),
            n_patches=scored.n_patches,
            energy=self.energy(scored),
            entered_front=entered,
            memo=memo,
            temperature=temperature,
            generation=generation,
        )
        self.trajectory.append(entry)
        self.steps += 1
        return scored, entry, memo

    def propose(self, base: CandidateSpec, rng: random.Random) -> CandidateSpec:
        """Mutate until an unseen canonical key turns up (bounded retries —
        tiny option spaces legitimately exhaust, then the duplicate is
        scored through the memo at zero budget cost)."""
        proposal = mutate_spec(base, self.ranking, rng)
        for _ in range(8):
            options = proposal.realize(self.ranking, seed=self.config.seed)
            if canonical_option_key(options) not in self.evaluator.memo:
                return proposal
            proposal = mutate_spec(proposal, self.ranking, rng)
        return proposal

    # -- acceptance + re-anchoring -------------------------------------------

    def mark_accepted(self, spec: Optional[CandidateSpec], scored: ScoredCandidate) -> None:
        self.accepted += 1
        report = report_mod.active_report()
        if report is not None:
            report.add_stage(OPT_SCORE_ACCEPTED_STAGE, scored.seconds)
        report_mod.incr("optimize_accepted")
        if (
            spec is not None
            and self.config.reanchor_every > 0
            and self.accepted % self.config.reanchor_every == 0
        ):
            self.anchor(spec, scored)

    def anchor(self, spec: CandidateSpec, scored: ScoredCandidate) -> None:
        """Ground-truth the incumbent: incremental-vs-full drift check to
        1e-9, then one real (cached) synthesis logged as an anchor event."""
        evaluator = self.evaluator
        options = spec.realize(self.ranking, seed=self.config.seed)
        patches = evaluator.patches(options)
        drift = 0.0
        if patches:
            with evaluator.engine.what_if(patches) as incremental:
                full = sta_analyze(evaluator.netlist, self.record.clock)
                drift = max(
                    abs(float(incremental.wns) - float(full.wns)),
                    abs(float(incremental.tns) - float(full.tns)),
                    float(np.max(np.abs(incremental.arrivals - full.arrivals), initial=0.0)),
                )
                incremental_wns = float(incremental.wns)
                incremental_tns = float(incremental.tns)
        else:
            incremental_wns = self.baseline.wns
            incremental_tns = self.baseline.tns
        if drift > ANCHOR_TOLERANCE:
            raise DriftError(
                f"incremental what-if drifted {drift:.3e} from a from-scratch "
                f"analysis at accepted move {self.accepted} of {self.record.name} "
                f"(candidate {scored.key[:12]})"
            )
        if (
            abs(incremental_wns - scored.wns) > ANCHOR_TOLERANCE
            or abs(incremental_tns - scored.tns) > ANCHOR_TOLERANCE
        ):
            raise DriftError(
                f"memoized score of candidate {scored.key[:12]} no longer "
                f"reproduces: logged ({scored.wns!r}, {scored.tns!r}) vs "
                f"re-derived ({incremental_wns!r}, {incremental_tns!r})"
            )
        with report_mod.stage(OPT_ANCHOR_STAGE):
            result = cached_synthesize(
                self.record, self.record.clock, options, self.config.seed, self.cache
            )
        self.anchors += 1
        report_mod.incr("optimize_anchor_syntheses")
        self.trajectory.append(
            TrajectoryEntry(
                step=self.steps,
                kind="anchor",
                key=scored.key,
                wns=float(result.wns),
                tns=float(result.tns),
                area=float(result.qor.area),
                spec=spec.to_dict(),
                n_patches=scored.n_patches,
                drift=drift,
            )
        )
        self.steps += 1

    def accounting_dict(self) -> Dict[str, object]:
        return {
            "budget": self.config.budget,
            "evals": self.evaluator.evals,
            "memo_hits": self.evaluator.memo_hits,
            "accepted": self.accepted,
            "anchors": self.anchors,
            "steps": self.steps,
            "exhausted": self.exhausted,
        }


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def _run_anneal(state: _SearchState, rng: random.Random) -> None:
    config = state.config
    incumbent = default_spec()
    scored, entry, _ = state.eval_spec(incumbent, temperature=None)
    entry.accepted = True
    state.mark_accepted(incumbent, scored)
    incumbent_energy = entry.energy

    temperature = config.t0_fraction * state.period
    while state.budget_left and state.step_budget_left:
        proposal = state.propose(incumbent, rng)
        scored, entry, _ = state.eval_spec(proposal, temperature=temperature)
        delta = entry.energy - incumbent_energy
        # Metropolis rule; the draw happens only for uphill moves so the
        # RNG stream is independent of wall-clock and budget.
        accept = delta <= 0.0 or rng.random() < math.exp(
            -delta / max(temperature, 1e-12)
        )
        if accept:
            entry.accepted = True
            incumbent, incumbent_energy = proposal, entry.energy
            state.mark_accepted(proposal, scored)
        temperature *= config.alpha
    state.exhausted = not state.budget_left


def _run_evolution(state: _SearchState, rng: random.Random) -> None:
    config = state.config

    founders = [default_spec()]
    while len(founders) < config.mu:
        founders.append(mutate_spec(founders[rng.randrange(len(founders))], state.ranking, rng))

    parents: List[Tuple[float, str, CandidateSpec, ScoredCandidate]] = []
    for spec in founders:
        if not state.budget_left:
            break
        scored, entry, _ = state.eval_spec(spec, generation=0)
        entry.accepted = True  # founders are the initial parent set
        state.mark_accepted(spec, scored)
        parents.append((entry.energy, scored.key, spec, scored))
    parents.sort(key=lambda item: (item[0], item[1]))

    generation = 0
    while state.budget_left and state.step_budget_left:
        generation += 1
        offspring: List[Tuple[float, str, CandidateSpec, ScoredCandidate]] = []
        for _ in range(config.lam):
            if not state.budget_left:
                # Budget ran out mid-generation: the partial generation is
                # still logged and still competes in selection below.
                state.exhausted = True
                break
            parent = parents[rng.randrange(len(parents))][2]
            child = state.propose(parent, rng)
            scored, entry, _ = state.eval_spec(child, generation=generation)
            offspring.append((entry.energy, scored.key, child, scored))
        pool = sorted(parents + offspring, key=lambda item: (item[0], item[1]))
        survivors = pool[: config.mu]
        surviving_keys = {item[1] for item in survivors}
        parent_keys = {p[1] for p in parents}
        newly_accepted: set = set()
        for energy, key, spec, scored in offspring:
            if key in surviving_keys and key not in parent_keys and key not in newly_accepted:
                # Newly selected offspring: an accepted move.
                newly_accepted.add(key)
                for entry in reversed(state.trajectory):
                    if entry.kind == "eval" and entry.key == key:
                        entry.accepted = True
                        break
                state.mark_accepted(spec, scored)
        parents = survivors
    state.exhausted = state.exhausted or not state.budget_left


def _run_sweep(state: _SearchState, candidates: Sequence[SynthesisOptions]) -> None:
    best_energy: Optional[float] = None
    for options in candidates:
        if not state.budget_left:
            state.exhausted = True
            break
        scored, memo = state.evaluator.score(options)
        entered = state.front.insert(
            ParetoPoint(
                wns=scored.wns,
                tns=scored.tns,
                area=scored.area,
                key=scored.key,
                source="eval",
                step=state.steps,
            )
        )
        entry = TrajectoryEntry(
            step=state.steps,
            kind="eval",
            key=scored.key,
            wns=scored.wns,
            tns=scored.tns,
            area=scored.area,
            n_patches=scored.n_patches,
            energy=state.energy(scored),
            entered_front=entered,
            memo=memo,
        )
        state.trajectory.append(entry)
        state.steps += 1
        if best_energy is None or entry.energy < best_energy:
            best_energy = entry.energy
            entry.accepted = True
            state.mark_accepted(None, scored)


def run_search(
    record,
    ranked_signals: Sequence[str],
    config: Optional[SearchConfig] = None,
    whatif_config: Optional[WhatIfConfig] = None,
    cache: Optional[ArtifactCache] = None,
    candidates: Optional[Sequence[SynthesisOptions]] = None,
) -> SearchResult:
    """Run one search campaign over ``record``'s option space.

    ``ranked_signals`` is the criticality ranking (most critical first) the
    candidate genomes are realized against — predicted or ground truth.
    ``candidates`` is only meaningful for the ``sweep`` strategy, which
    scores an explicit option list instead of navigating the genome space.
    """
    config = config or SearchConfig.from_env()
    if config.strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {config.strategy!r}; expected one of {STRATEGIES}")
    if config.strategy == "sweep" and candidates is None:
        raise ValueError("the sweep strategy needs an explicit candidate list")
    if cache is None:
        cache = ArtifactCache()

    rng = random.Random(f"repro-optimize/{config.seed}/{config.strategy}")
    evaluator = IncrementalEvaluator(record, whatif_config)
    state = _SearchState(record, ranked_signals, config, evaluator, cache)

    started = time.perf_counter()
    with report_mod.stage(OPT_SEARCH_STAGE):
        if config.strategy == "anneal":
            _run_anneal(state, rng)
        elif config.strategy == "evolution":
            _run_evolution(state, rng)
        else:
            _run_sweep(state, candidates or [])
    elapsed = time.perf_counter() - started

    return SearchResult(
        design=record.name,
        ranking=tuple(state.ranking),
        config=config,
        baseline=state.baseline,
        front=state.front,
        trajectory=state.trajectory,
        accounting=state.accounting_dict(),
        period=state.period,
        estimates=evaluator.estimates,
        elapsed_seconds=elapsed,
    )
