"""The search space over :class:`~repro.synth.optimizer.SynthesisOptions`.

The optimizer does not mutate ``SynthesisOptions`` objects directly — they
are mutable, carry whole signal lists and compare by identity.  Instead the
genome is a frozen :class:`CandidateSpec`: the group-fraction split, the
retime fraction and a sparse set of per-signal group overrides.  A spec is
*realized* against a criticality ranking into concrete options, which keeps
every candidate valid by construction (every signal lands in exactly one
group, groups stay ordered most-critical-first) and keeps the trajectory
log small enough to replay.

Two identity helpers live here as well:

* :func:`canonical_option_key` — content digest of one realized option set.
  The candidate generator and the search engine both dedupe on it, so a
  sweep/search budget is never spent scoring the same options twice.
* :func:`synthesis_key` / :func:`cached_synthesize` — the content address
  of one *full synthesis run* (the scheme ``run_optimization_sweep`` has
  always used), shared by the re-anchoring step of the search engine.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import DEFAULT_GROUP_FRACTIONS, group_boundaries
from repro.runtime.cache import ArtifactCache, code_fingerprint
from repro.sta.constraints import ClockConstraint
from repro.synth.flow import SynthesisResult, synthesize_bog
from repro.synth.optimizer import PathGroup, SynthesisOptions


def options_from_ranking(
    ranked_signals: Sequence[str],
    group_fractions: Sequence[float] = DEFAULT_GROUP_FRACTIONS,
    retime_fraction: float = 0.05,
    seed: int = 1,
) -> SynthesisOptions:
    """Build ``group_path`` + ``retime`` synthesis options from a ranking.

    ``ranked_signals`` is ordered from most critical to least critical.  The
    group split uses :func:`repro.core.metrics.group_boundaries`, the same
    helper the annotation/metric grouping uses.
    """
    signals = list(ranked_signals)
    n = len(signals)
    if n == 0:
        return SynthesisOptions(seed=seed)

    boundaries = group_boundaries(n, group_fractions)
    groups: List[PathGroup] = []
    start = 0
    for index, boundary in enumerate(boundaries + [n]):
        members = signals[start:boundary]
        if members:
            groups.append(PathGroup(name=f"g{index + 1}", signals=members))
        start = boundary

    retime_count = max(1, int(round(retime_fraction * n)))
    return SynthesisOptions(
        path_groups=groups,
        retime_signals=signals[:retime_count],
        seed=seed,
    )


def canonical_option_key(options: SynthesisOptions) -> str:
    """Content digest of one option set (dedupe key for sweeps and search).

    Two option sets with the same digest drive the synthesis flow and the
    what-if projection identically; grid points / mutations that collapse
    onto an already-seen key are duplicates, not new candidates.
    """
    payload = "\n".join(
        [
            "synthesis-options/v1",
            f"effort={options.effort_passes}",
            f"critical={options.critical_fraction!r}",
            f"groups={[(g.name, tuple(g.signals), g.weight) for g in options.path_groups or []]!r}",
            f"group_effort={options.group_effort_passes}",
            f"retime={tuple(options.retime_signals or ())!r}",
            f"area_recovery={options.area_recovery}",
            f"area_slack={options.area_recovery_slack_fraction!r}",
            f"seed={options.seed}",
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Candidate genome
# ---------------------------------------------------------------------------

#: Fraction nudges tried by the mutation operator (grid-aligned so float
#: round-off can never make two runs of the same seed diverge).
_FRACTION_STEPS: Tuple[float, ...] = (-0.04, -0.02, 0.02, 0.04)
_RETIME_STEPS: Tuple[float, ...] = (-0.02, -0.01, 0.01, 0.02, 0.05)


@dataclass(frozen=True)
class CandidateSpec:
    """One point of the search space, independent of any concrete design.

    ``moves`` is a sparse per-signal override: ``(signal, group_index)``
    pairs (1-based, most critical group first) applied after the fractional
    split.  Kept sorted so equal genomes hash and serialize identically.
    """

    group_fractions: Tuple[float, ...] = tuple(DEFAULT_GROUP_FRACTIONS)
    retime_fraction: float = 0.05
    moves: Tuple[Tuple[str, int], ...] = ()

    @property
    def n_groups(self) -> int:
        return len(self.group_fractions) + 1

    def realize(self, ranked_signals: Sequence[str], seed: int = 1) -> SynthesisOptions:
        """Concrete options for one design's ranking.

        With no ``moves`` this reproduces :func:`options_from_ranking`
        exactly (same boundaries, same ``g{i}`` names, same retime list).
        """
        signals = list(ranked_signals)
        n = len(signals)
        if n == 0:
            return SynthesisOptions(seed=seed)

        boundaries = group_boundaries(n, self.group_fractions)
        assignment: Dict[str, int] = {}
        start = 0
        for index, boundary in enumerate(boundaries + [n]):
            for signal in signals[start:boundary]:
                assignment[signal] = index + 1
            start = boundary

        n_groups = len(boundaries) + 1
        for signal, group_index in self.moves:
            if signal in assignment:
                assignment[signal] = min(max(1, group_index), n_groups)

        buckets: Dict[int, List[str]] = {index: [] for index in range(1, n_groups + 1)}
        for signal in signals:  # ranking order is preserved inside each group
            buckets[assignment[signal]].append(signal)
        groups = [
            PathGroup(name=f"g{index}", signals=members)
            for index, members in buckets.items()
            if members
        ]

        retime_count = max(1, int(round(self.retime_fraction * n)))
        return SynthesisOptions(
            path_groups=groups,
            retime_signals=signals[:retime_count],
            seed=seed,
        )

    def to_dict(self) -> dict:
        return {
            "group_fractions": list(self.group_fractions),
            "retime_fraction": self.retime_fraction,
            "moves": [[signal, group] for signal, group in self.moves],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateSpec":
        return cls(
            group_fractions=tuple(float(f) for f in payload["group_fractions"]),
            retime_fraction=float(payload["retime_fraction"]),
            moves=tuple((str(signal), int(group)) for signal, group in payload["moves"]),
        )


def default_spec() -> CandidateSpec:
    """The paper's configuration — the search always starts here."""
    return CandidateSpec()


def mutate_spec(
    spec: CandidateSpec,
    ranked_signals: Sequence[str],
    rng: random.Random,
) -> CandidateSpec:
    """One seeded mutation: nudge a fraction, nudge retime, move or un-move
    a signal.  All values stay on a fixed 2-decimal grid inside their valid
    ranges, so mutation chains are replayable bit for bit.
    """
    kinds = ["fractions", "retime"]
    if ranked_signals:
        kinds.append("move")
    if spec.moves:
        kinds.append("unmove")
    kind = rng.choice(kinds)

    if kind == "fractions":
        fractions = list(spec.group_fractions)
        index = rng.randrange(len(fractions))
        nudged = round(fractions[index] + rng.choice(_FRACTION_STEPS), 2)
        fractions[index] = min(0.95, max(0.01, nudged))
        return replace(spec, group_fractions=tuple(sorted(fractions)))
    if kind == "retime":
        nudged = round(spec.retime_fraction + rng.choice(_RETIME_STEPS), 2)
        return replace(spec, retime_fraction=min(0.25, max(0.01, nudged)))
    if kind == "move":
        signal = ranked_signals[rng.randrange(len(ranked_signals))]
        moves = dict(spec.moves)
        moves[signal] = rng.randint(1, spec.n_groups)
        return replace(spec, moves=tuple(sorted(moves.items())))
    # unmove: drop one override
    moves = dict(spec.moves)
    del moves[sorted(moves)[rng.randrange(len(moves))]]
    return replace(spec, moves=tuple(sorted(moves.items())))


# ---------------------------------------------------------------------------
# Synthesis identity (shared with core.optimize and the re-anchoring step)
# ---------------------------------------------------------------------------


def synthesis_key(record, clock: ClockConstraint, options: SynthesisOptions, seed: int) -> str:
    """Content-address of one synthesis run (same scheme as the dataset cache).

    The key covers the design source, the clock, the full option set, the
    seed and every build-relevant source file (via ``code_fingerprint``), so
    an edit to the synthesis/STA code silently invalidates stale entries.
    """
    payload = "\n".join(
        [
            "synthesis-result/v1",
            f"code={code_fingerprint()}",
            f"source={record.source}",
            f"clock={clock!r}",
            f"options={options!r}",
            f"seed={seed}",
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def cached_synthesize(
    record,
    clock: ClockConstraint,
    options: SynthesisOptions,
    seed: int,
    cache: Optional[ArtifactCache],
) -> SynthesisResult:
    """One full synthesis run through the content-addressed artifact cache."""

    def builder() -> SynthesisResult:
        return synthesize_bog(record.bogs["sog"], clock, options, seed=seed)

    if cache is None:
        return builder()
    return cache.load_or_build(synthesis_key(record, clock, options, seed), builder)
