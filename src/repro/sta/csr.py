"""Compiled array-native view of a :class:`~repro.sta.network.TimingNetwork`.

The object-graph representation (``TimingVertex`` dataclasses holding Python
``fanins`` lists) is convenient to build and edit, but every hot kernel —
full STA, the incremental dirty-cone sweep, load computation — used to walk
it one Python object at a time.  :class:`CSRTimingGraph` is the compiled
counterpart: int32 CSR fanin/fanout adjacency, a levelization pass
(``level = 1 + max fanin level``) and a level-major vertex order, over which
the NLDM timing recurrence runs as whole-level numpy sweeps.

Two invariants make the array kernel a drop-in replacement for the
per-vertex reference kernel (:func:`repro.sta.engine.propagate_vertex`):

* **Structure vs attributes.**  The compiled CSR arrays depend only on the
  graph *structure* (fanins, kinds) and are invalidated exactly when the
  network's adjacency caches are (``TimingNetwork.invalidate``).  Mutable
  per-vertex *attributes* (``derate``, ``extra_load``, the cell) are
  re-gathered into :class:`AttributeColumns` per analysis, because value
  patches edit them in place without a structural invalidation.
* **Bit-identical math.**  Each numpy expression applies the same float64
  operations in the same per-element order as the scalar reference
  (``d = (intrinsic + resistance*load) + slew_factor*slew``;
  ``cand = arrival + derate*d``; the fanin max is an exact reduction), so
  the two kernels agree bit for bit, not merely to a tolerance — asserted
  by ``tests/test_sta_kernels.py`` and fuzzed by the
  ``array_vs_reference_sta`` oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.faults import fault_active

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports nothing here)
    from repro.sta.constraints import ClockConstraint
    from repro.sta.network import TimingNetwork

#: Integer codes of :class:`~repro.sta.network.VertexKind`, in declaration order.
KIND_CONST = 0
KIND_INPUT = 1
KIND_REGISTER = 2
KIND_GATE = 3

_KIND_CODE = {"const": KIND_CONST, "input": KIND_INPUT, "register": KIND_REGISTER, "gate": KIND_GATE}

#: Cell-parameter columns gathered per cell (row 0 is the "no cell" sentinel).
_CELL_PARAMS = (
    "input_cap",
    "intrinsic_delay",
    "resistance",
    "slew_factor",
    "slew_intrinsic",
    "slew_resistance",
    "clk_to_q",
)


def build_fanin_csr(fanins_of: List[List[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, indices) of per-vertex fanin lists, preserving list order."""
    n = len(fanins_of)
    indptr = np.zeros(n + 1, dtype=np.int32)
    for i, fanins in enumerate(fanins_of):
        indptr[i + 1] = len(fanins)
    np.cumsum(indptr, out=indptr)
    flat: List[int] = []
    for fanins in fanins_of:
        flat.extend(fanins)
    indices = np.asarray(flat, dtype=np.int32) if flat else np.empty(0, dtype=np.int32)
    return indptr, indices


def invert_csr(n: int, indptr: np.ndarray, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Fanout CSR from a fanin CSR.

    Row ``v`` of the result lists the consumers of ``v`` in ascending
    consumer id (ties in fanin-position order), which is exactly the order
    the list-of-lists ``TimingNetwork.fanouts()`` view historically produced.
    """
    counts = np.bincount(indices, minlength=n) if indices.size else np.zeros(n, dtype=np.int64)
    out_ptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(counts, out=out_ptr[1:])
    if indices.size == 0:
        return out_ptr, np.empty(0, dtype=np.int32)
    consumers = np.repeat(
        np.arange(n, dtype=np.int32), np.diff(indptr).astype(np.int64)
    )
    grouping = np.argsort(indices, kind="stable")
    return out_ptr, consumers[grouping]


def gather_edges(indptr: np.ndarray, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Positions (into the CSR ``indices`` array) of all edges of ``ids``.

    Returns ``(positions, counts)`` where ``counts[k]`` is the edge count of
    ``ids[k]`` and ``positions`` concatenates each id's contiguous CSR slice
    in order.  This is the standard repeat/arange gather that turns a dynamic
    vertex subset into one flat edge array without a Python loop.
    """
    counts = (indptr[ids + 1] - indptr[ids]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    starts = indptr[ids].astype(np.int64)
    excl = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=excl[1:])
    positions = np.arange(total, dtype=np.int64) + np.repeat(starts - excl, counts)
    return positions, counts


def levelize(
    n: int,
    fanin_indptr: np.ndarray,
    fanin_indices: np.ndarray,
    fanout_indptr: np.ndarray,
    fanout_indices: np.ndarray,
    name: str = "<graph>",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Frontier-style Kahn levelization over a CSR graph.

    Returns ``(level, order, level_ptr)``: per-vertex logic level
    (``level = 1 + max fanin level``, sources at 0), the level-major vertex
    order (ascending id within each level), and the indptr of level slices
    into ``order``.  Raises ``ValueError`` when the graph has a cycle, with
    the same message the object-graph Kahn traversal used to raise.
    """
    level = np.zeros(n, dtype=np.int32)
    order = np.empty(n, dtype=np.int32)
    indegree = np.diff(fanin_indptr).astype(np.int64)
    frontier = np.flatnonzero(indegree == 0).astype(np.int32)
    level_ptr: List[int] = [0]
    placed = 0
    current = 0
    while frontier.size:
        order[placed : placed + frontier.size] = frontier
        level[frontier] = current
        placed += frontier.size
        level_ptr.append(placed)
        positions, _ = gather_edges(fanout_indptr, frontier)
        if positions.size == 0:
            break
        consumers = fanout_indices[positions]
        indegree -= np.bincount(consumers, minlength=n)
        candidates = np.unique(consumers)
        frontier = candidates[indegree[candidates] == 0].astype(np.int32)
        current += 1
    if placed != n:
        raise ValueError(f"timing network {name!r} contains a combinational cycle")
    return level, order, np.asarray(level_ptr, dtype=np.int32)


class AttributeColumns:
    """Columnar per-vertex attributes, re-gathered from the object graph.

    Cell parameters are stored as a small table of distinct cells plus a
    per-vertex row index (row 0 = no cell, all parameters zero), so the
    per-analysis gather touches one attribute per vertex instead of seven.
    """

    __slots__ = ("n", "derate", "extra_load", "cell_row", "_cell_rows", "_cells", "_params")

    def __init__(self, network: "TimingNetwork"):
        vertices = network.vertices
        self.n = len(vertices)
        self._params: Dict[str, np.ndarray] = {}
        # This full gather runs once per analysis, so it is kept on C-speed
        # iteration paths: fromiter for the float columns, and one id() pass
        # plus np.unique for the (few distinct) cells — row numbering is
        # arbitrary but self-consistent, and only the parameter *values* the
        # rows index reach the timing math.
        self.derate = np.fromiter((v.derate for v in vertices), dtype=np.float64, count=self.n)
        self.extra_load = np.fromiter(
            (v.extra_load for v in vertices), dtype=np.float64, count=self.n
        )
        cell_ids = np.fromiter((id(v.cell) for v in vertices), dtype=np.int64, count=self.n)
        cells: List[object] = [None]
        rows: Dict[int, int] = {id(None): 0}
        if self.n:
            unique, first, inverse = np.unique(
                cell_ids, return_index=True, return_inverse=True
            )
            unique_rows = np.zeros(len(unique), dtype=np.int32)
            for position, ident in enumerate(unique.tolist()):
                if ident in rows:
                    continue
                rows[ident] = len(cells)
                unique_rows[position] = len(cells)
                cells.append(vertices[int(first[position])].cell)
            self.cell_row = unique_rows[inverse]
        else:
            self.cell_row = np.empty(0, dtype=np.int32)
        self._cells = cells
        self._cell_rows = rows

    def _row_of(self, cell) -> int:
        if cell is None:
            return 0
        row = self._cell_rows.get(id(cell))
        if row is None:
            row = len(self._cells)
            self._cell_rows[id(cell)] = row
            self._cells.append(cell)
            self._params.clear()  # table grew; parameter columns are stale
        return row

    def _gather(self, network: "TimingNetwork", ids) -> None:
        derate = self.derate
        extra = self.extra_load
        rows = self.cell_row
        for i in ids:
            vertex = network.vertices[i]
            derate[i] = vertex.derate
            extra[i] = vertex.extra_load
            rows[i] = self._row_of(vertex.cell)

    def refresh(self, network: "TimingNetwork", ids) -> None:
        """Re-gather the columns of ``ids`` after in-place attribute edits."""
        self._gather(network, ids)
        # Derived parameter columns are views of cell_row; rebuild lazily.
        self._params.clear()

    def param(self, name: str) -> np.ndarray:
        """Per-vertex cell parameter column (0.0 where the vertex has no cell)."""
        column = self._params.get(name)
        if column is None:
            table = np.array(
                [0.0] + [getattr(cell, name) for cell in self._cells[1:]], dtype=np.float64
            )
            column = table[self.cell_row]
            self._params[name] = column
        return column

    def has_cell(self) -> np.ndarray:
        return self.cell_row != 0


class _SweepPlan:
    """Precomputed structural layout of one full level sweep.

    Everything here is a pure function of the compiled structure (kinds,
    fanins, levels), so it is built once per compilation and reused by every
    :meth:`CSRTimingGraph.sweep_all` call: per-kind vertex id arrays for the
    level-independent updates, and the gate/edge arrays of the level loop in
    level-major order so each level is a contiguous slice.
    """

    __slots__ = (
        "inputs",
        "consts",
        "registers",
        "gates",
        "gates_no_fanin",
        "gate_seq",
        "edge_src",
        "edge_owner",
        "level_gate_ptr",
        "level_edge_ptr",
        "seg_starts",
    )

    def __init__(self, graph: "CSRTimingGraph"):
        kind = graph.kind
        self.inputs = np.flatnonzero(kind == KIND_INPUT)
        self.consts = np.flatnonzero(kind == KIND_CONST)
        self.registers = np.flatnonzero(kind == KIND_REGISTER)
        self.gates = np.flatnonzero(kind == KIND_GATE)
        fanin_counts = np.diff(graph.fanin_indptr).astype(np.int64)
        self.gates_no_fanin = self.gates[fanin_counts[self.gates] == 0]

        gate_parts: List[np.ndarray] = []
        edge_parts: List[np.ndarray] = []
        owner_parts: List[np.ndarray] = []
        self.seg_starts: List[np.ndarray] = []
        gate_ptr = [0]
        edge_ptr = [0]
        offset = 0
        for lvl in range(graph.n_levels):
            ids = graph.level_slice(lvl)
            gates = ids[kind[ids] == KIND_GATE].astype(np.int64)
            gates = gates[fanin_counts[gates] > 0]
            positions, counts = gather_edges(graph.fanin_indptr, gates)
            gate_parts.append(gates)
            edge_parts.append(graph.fanin_indices[positions].astype(np.int64))
            owner_parts.append(offset + np.repeat(np.arange(len(gates), dtype=np.int64), counts))
            starts = np.zeros(len(gates), dtype=np.int64)
            if len(gates) > 1:
                np.cumsum(counts[:-1], out=starts[1:])
            self.seg_starts.append(starts)
            offset += len(gates)
            gate_ptr.append(offset)
            edge_ptr.append(edge_ptr[-1] + int(counts.sum()))
        self.gate_seq = (
            np.concatenate(gate_parts) if gate_parts else np.empty(0, dtype=np.int64)
        )
        self.edge_src = (
            np.concatenate(edge_parts) if edge_parts else np.empty(0, dtype=np.int64)
        )
        self.edge_owner = (
            np.concatenate(owner_parts) if owner_parts else np.empty(0, dtype=np.int64)
        )
        self.level_gate_ptr = gate_ptr
        self.level_edge_ptr = edge_ptr


class CSRTimingGraph:
    """Compiled structure of one :class:`~repro.sta.network.TimingNetwork`.

    Holds only *structural* state (adjacency, kinds, levels); mutable vertex
    attributes travel separately as :class:`AttributeColumns`.
    """

    __slots__ = (
        "name",
        "n",
        "fanin_indptr",
        "fanin_indices",
        "fanout_indptr",
        "fanout_indices",
        "kind",
        "level",
        "order",
        "level_ptr",
        "_plan",
    )

    def __init__(self, network: "TimingNetwork"):
        self.name = network.name
        self.n = len(network.vertices)
        self.fanin_indptr, self.fanin_indices = build_fanin_csr(
            [v.fanins for v in network.vertices]
        )
        self.fanout_indptr, self.fanout_indices = invert_csr(
            self.n, self.fanin_indptr, self.fanin_indices
        )
        self.kind = np.fromiter(
            (_KIND_CODE[v.kind.value] for v in network.vertices), dtype=np.int8, count=self.n
        )
        self.level, self.order, self.level_ptr = levelize(
            self.n,
            self.fanin_indptr,
            self.fanin_indices,
            self.fanout_indptr,
            self.fanout_indices,
            name=self.name,
        )
        self._plan: Optional[_SweepPlan] = None

    # -- views ---------------------------------------------------------------

    @property
    def n_levels(self) -> int:
        return len(self.level_ptr) - 1

    def level_slice(self, level: int) -> np.ndarray:
        """Vertex ids of one level, ascending."""
        return self.order[self.level_ptr[level] : self.level_ptr[level + 1]]

    def topological_list(self) -> List[int]:
        """The level-major order as a plain Python list (thin-view adapter)."""
        return self.order.tolist()

    def fanout_lists(self) -> List[List[int]]:
        """List-of-lists fanout view, identical to the historical layout."""
        indptr = self.fanout_indptr
        indices = self.fanout_indices.tolist()
        return [indices[indptr[v] : indptr[v + 1]] for v in range(self.n)]

    def fanouts_of(self, vertex_id: int) -> np.ndarray:
        return self.fanout_indices[self.fanout_indptr[vertex_id] : self.fanout_indptr[vertex_id + 1]]

    def columns(self, network: "TimingNetwork") -> AttributeColumns:
        """Fresh attribute columns for the network's current values."""
        return AttributeColumns(network)

    # -- kernels -------------------------------------------------------------

    def compute_loads(self, network: "TimingNetwork", cols: AttributeColumns) -> np.ndarray:
        """Vectorized output loads, bit-identical to ``engine.compute_loads``.

        ``np.add.at`` is unbuffered and applies the additions in index order,
        so each vertex's load accumulates its terms in exactly the reference
        sequence: consumer pin caps in (consumer id, fanin position) order,
        then endpoint pin caps in endpoint-list order, then the wire load.
        Vertices without a cell contribute a 0.0 pin cap, which is an exact
        no-op on the running sums.
        """
        loads = np.zeros(self.n, dtype=np.float64)
        if self.fanin_indices.size:
            pin_caps = np.repeat(
                cols.param("input_cap"), np.diff(self.fanin_indptr).astype(np.int64)
            )
            np.add.at(loads, self.fanin_indices, pin_caps)
        endpoints = network.endpoints
        if endpoints:
            drivers = np.fromiter((e.driver for e in endpoints), dtype=np.int64, count=len(endpoints))
            caps = np.fromiter(
                (e.pin_capacitance for e in endpoints), dtype=np.float64, count=len(endpoints)
            )
            np.add.at(loads, drivers, caps)
        loads += cols.extra_load
        return loads

    def sweep(
        self,
        ids: np.ndarray,
        cols: AttributeColumns,
        clock: "ClockConstraint",
        arrivals: np.ndarray,
        slews: np.ndarray,
        loads: np.ndarray,
    ) -> None:
        """Apply the NLDM update rule to ``ids`` (one level, ascending), in place.

        This is the single array kernel shared by the full level sweep and
        the incremental dirty-slice re-sweep: all of ``ids`` must live on one
        level, so their fanin values are final before the call.
        """
        kinds = self.kind[ids]

        inputs = ids[kinds == KIND_INPUT]
        if inputs.size:
            arrivals[inputs] = clock.input_delay
            slews[inputs] = clock.input_slew

        consts = ids[kinds == KIND_CONST]
        if consts.size:
            arrivals[consts] = 0.0
            slews[consts] = clock.input_slew

        registers = ids[kinds == KIND_REGISTER]
        if registers.size:
            load = loads[registers]
            arrivals[registers] = cols.param("clk_to_q")[registers] + cols.param("resistance")[registers] * load
            slews[registers] = np.where(
                cols.has_cell()[registers],
                cols.param("slew_intrinsic")[registers] + cols.param("slew_resistance")[registers] * load,
                clock.input_slew,
            )

        gates = ids[kinds == KIND_GATE]
        if not gates.size:
            return
        load = loads[gates]
        # Per-gate constants of the per-edge delay expression
        #   d    = (intrinsic + resistance*load) + slew_factor*slew_of_fanin
        #   cand = arrival_of_fanin + derate*d
        # evaluated in the reference kernel's float64 operation order.
        base = cols.param("intrinsic_delay")[gates] + cols.param("resistance")[gates] * load
        slew_factor = cols.param("slew_factor")[gates]
        derate = cols.derate[gates]

        positions, counts = gather_edges(self.fanin_indptr, gates)
        with_fanins = counts > 0
        if positions.size:
            sources = self.fanin_indices[positions]
            owner = np.repeat(np.arange(len(gates), dtype=np.int64), counts)
            cand = arrivals[sources] + derate[owner] * (base[owner] + slew_factor[owner] * slews[sources])
            if fault_active("sta.array_delay"):
                # Debug fault point: a small uniform perturbation of the
                # candidate arrivals makes the array kernel diverge from the
                # reference, which the array_vs_reference_sta oracle must
                # catch (see repro.faults).
                cand = cand + 1e-6
            seg_starts = np.zeros(int(with_fanins.sum()), dtype=np.int64)
            np.cumsum(counts[with_fanins][:-1], out=seg_starts[1:])
            seg_max = np.maximum.reduceat(cand, seg_starts)
            # The reference starts its max at 0.0, so clamp exactly likewise.
            arrivals[gates[with_fanins]] = np.maximum(seg_max, 0.0)
        if not with_fanins.all():
            arrivals[gates[~with_fanins]] = 0.0
        slews[gates] = cols.param("slew_intrinsic")[gates] + cols.param("slew_resistance")[gates] * load

    def sweep_all(
        self,
        cols: AttributeColumns,
        clock: "ClockConstraint",
        arrivals: np.ndarray,
        slews: np.ndarray,
        loads: np.ndarray,
    ) -> None:
        """Full level sweep over the whole graph, in place.

        Same recurrence as :meth:`sweep`, restructured around the cached
        :class:`_SweepPlan`: everything that does not depend on fanin values
        — every slew, source/register arrivals, the per-edge delay term —
        is computed in whole-graph vectorized passes up front, and the
        level-sequential remainder (gate arrival maxima) runs on contiguous
        slices of the precomputed level-major edge arrays.
        """
        plan = self._plan
        if plan is None:
            plan = self._plan = _SweepPlan(self)

        if plan.inputs.size:
            arrivals[plan.inputs] = clock.input_delay
            slews[plan.inputs] = clock.input_slew
        if plan.consts.size:
            arrivals[plan.consts] = 0.0
            slews[plan.consts] = clock.input_slew
        registers = plan.registers
        if registers.size:
            load = loads[registers]
            arrivals[registers] = (
                cols.param("clk_to_q")[registers] + cols.param("resistance")[registers] * load
            )
            slews[registers] = np.where(
                cols.has_cell()[registers],
                cols.param("slew_intrinsic")[registers]
                + cols.param("slew_resistance")[registers] * load,
                clock.input_slew,
            )
        gates = plan.gates
        if not gates.size:
            return
        # Gate slews depend only on the gate's own load, never on fanin
        # values, so all of them are final before the level loop starts.
        load = loads[gates]
        slews[gates] = cols.param("slew_intrinsic")[gates] + cols.param("slew_resistance")[gates] * load
        if plan.gates_no_fanin.size:
            # max over no candidates, clamped at the reference's 0.0 start.
            arrivals[plan.gates_no_fanin] = 0.0
        seq = plan.gate_seq
        if not seq.size:
            return
        seq_load = loads[seq]
        base = cols.param("intrinsic_delay")[seq] + cols.param("resistance")[seq] * seq_load
        slew_factor = cols.param("slew_factor")[seq]
        derate = cols.derate[seq]
        owner = plan.edge_owner
        # The arrival-independent half of every edge's candidate term,
        # element-for-element the reference expression derate*(base + sf*slew).
        contrib = derate[owner] * (base[owner] + slew_factor[owner] * slews[plan.edge_src])
        if fault_active("sta.array_delay"):
            # Debug fault point, mirrored from :meth:`sweep` (see repro.faults).
            contrib = contrib + 1e-6

        edge_src = plan.edge_src
        gate_ptr = plan.level_gate_ptr
        edge_ptr = plan.level_edge_ptr
        seg_starts = plan.seg_starts
        for lvl in range(len(gate_ptr) - 1):
            g0, g1 = gate_ptr[lvl], gate_ptr[lvl + 1]
            if g0 == g1:
                continue
            e0, e1 = edge_ptr[lvl], edge_ptr[lvl + 1]
            cand = arrivals[edge_src[e0:e1]] + contrib[e0:e1]
            seg_max = np.maximum.reduceat(cand, seg_starts[lvl])
            arrivals[seq[g0:g1]] = np.maximum(seg_max, 0.0)
