"""Timing constraints (SDC-lite).

The paper assumes a single clock with a fixed period; slack at an endpoint is
therefore determined entirely by the data arrival time.  This module models
exactly that: one :class:`ClockConstraint` describing the clock period plus
the launch/capture margins that STA subtracts from it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockConstraint:
    """Single-clock timing constraint.

    Attributes
    ----------
    period:
        Clock period in picoseconds.
    uncertainty:
        Clock uncertainty (jitter/skew margin) subtracted from the period.
    input_delay:
        Arrival time assumed at primary inputs.
    input_slew:
        Transition time assumed at primary inputs and register outputs.
    """

    period: float
    uncertainty: float = 0.0
    input_delay: float = 0.0
    input_slew: float = 20.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("clock period must be positive")
        if self.uncertainty < 0:
            raise ValueError("clock uncertainty cannot be negative")

    def required_time(self, setup_time: float) -> float:
        """Data required time at an endpoint with the given setup time."""
        return self.period - self.uncertainty - setup_time

    def scaled(self, factor: float) -> "ClockConstraint":
        """Return a new constraint with the period scaled by ``factor``."""
        return ClockConstraint(
            period=self.period * factor,
            uncertainty=self.uncertainty,
            input_delay=self.input_delay,
            input_slew=self.input_slew,
        )
