"""Static timing analysis engine.

A single-corner, setup-only STA over :class:`~repro.sta.network.TimingNetwork`
graphs.  It propagates arrival times and transition times (slews) in
topological order using the NLDM-style cell delay model of
:mod:`repro.synth.library`, computes per-endpoint slack against a
:class:`~repro.sta.constraints.ClockConstraint`, and reports WNS / TNS —
the quantities PrimeTime provides in the paper's flow.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.faults import fault_fires
from repro.sta.constraints import ClockConstraint
from repro.sta.network import TimingNetwork, VertexKind

#: Environment knob selecting the STA kernel backend: ``array`` (default,
#: level-sweep numpy kernel over the compiled CSR graph) or ``reference``
#: (the per-vertex Python loop).  The two are bit-identical by contract.
STA_KERNEL_ENV_VAR = "REPRO_STA_KERNEL"

_KERNELS = ("array", "reference")

# Thread-local forced override, installed by the serving layer's kernel
# circuit breaker.  It outranks both the explicit argument and the env var:
# a degraded retry must not re-enter the failing array path just because a
# caller deep in the stack hard-codes kernel="array".
_FORCED = threading.local()


@contextlib.contextmanager
def kernel_forced(kernel: str) -> Iterator[None]:
    """Force every :func:`analyze` call on this thread onto ``kernel``.

    Used by :func:`repro.serve.resilience.run_with_kernel_fallback` to pin a
    degraded retry to the ``reference`` kernel.  Thread-local so concurrent
    healthy requests keep the array path.
    """
    if kernel not in _KERNELS:
        raise ValueError(f"unknown STA kernel {kernel!r}; choose one of {_KERNELS}")
    previous = getattr(_FORCED, "kernel", None)
    _FORCED.kernel = kernel
    try:
        yield
    finally:
        _FORCED.kernel = previous


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """The kernel backend to use: forced override, else argument, else env var."""
    forced = getattr(_FORCED, "kernel", None)
    if forced is not None:
        return forced
    value = kernel if kernel is not None else os.environ.get(STA_KERNEL_ENV_VAR) or "array"
    if value not in _KERNELS:
        raise ValueError(
            f"unknown STA kernel {value!r} (from ${STA_KERNEL_ENV_VAR}); "
            f"choose one of {_KERNELS}"
        )
    return value


@dataclass(slots=True)
class EndpointTiming:
    """Timing result at one endpoint."""

    name: str
    signal: str
    bit: int
    kind: str
    arrival: float
    slack: float
    driver: int

    @property
    def is_violated(self) -> bool:
        return self.slack < 0.0


@dataclass
class STAReport:
    """Complete result of one STA run."""

    design: str
    clock: ClockConstraint
    arrivals: np.ndarray
    slews: np.ndarray
    loads: np.ndarray
    endpoints: List[EndpointTiming]
    wns: float
    tns: float

    _by_name: Dict[str, EndpointTiming] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {e.name: e for e in self.endpoints}

    def endpoint(self, name: str) -> EndpointTiming:
        """Look up one endpoint's timing by bit-level name."""
        return self._by_name[name]

    def register_endpoints(self) -> List[EndpointTiming]:
        return [e for e in self.endpoints if e.kind == "register"]

    def endpoint_arrivals(self) -> Dict[str, float]:
        """Bit-level endpoint name -> arrival time."""
        return {e.name: e.arrival for e in self.endpoints}

    def endpoint_slacks(self) -> Dict[str, float]:
        """Bit-level endpoint name -> slack."""
        return {e.name: e.slack for e in self.endpoints}

    def signal_arrivals(self) -> Dict[str, float]:
        """Word-level signal name -> max arrival time over its bits."""
        arrivals: Dict[str, float] = {}
        for endpoint in self.endpoints:
            current = arrivals.get(endpoint.signal)
            if current is None or endpoint.arrival > current:
                arrivals[endpoint.signal] = endpoint.arrival
        return arrivals

    def signal_slacks(self) -> Dict[str, float]:
        """Word-level signal name -> worst slack over its bits."""
        slacks: Dict[str, float] = {}
        for endpoint in self.endpoints:
            current = slacks.get(endpoint.signal)
            if current is None or endpoint.slack < current:
                slacks[endpoint.signal] = endpoint.slack
        return slacks

    def violated_endpoints(self) -> List[EndpointTiming]:
        return [e for e in self.endpoints if e.is_violated]

    def summary(self) -> Dict[str, float]:
        return {
            "wns": self.wns,
            "tns": self.tns,
            "n_endpoints": float(len(self.endpoints)),
            "n_violated": float(len(self.violated_endpoints())),
            "max_arrival": float(max((e.arrival for e in self.endpoints), default=0.0)),
        }


def compute_loads(network: TimingNetwork) -> np.ndarray:
    """Output load of every vertex: fanin pin caps of consumers plus wire load."""
    loads = np.zeros(len(network.vertices))
    for vertex in network.vertices:
        if vertex.cell is None:
            continue
        for fanin in vertex.fanins:
            loads[fanin] += vertex.cell.input_cap
    for endpoint in network.endpoints:
        loads[endpoint.driver] += endpoint.pin_capacitance
    for vertex in network.vertices:
        loads[vertex.id] += vertex.extra_load
    return loads


def propagate_vertex(vertex, clock: ClockConstraint, arrivals, slews, load) -> tuple:
    """The per-vertex NLDM update rule: (arrival, slew) given fanin state.

    This is the single source of truth for the timing recurrence; both the
    full :func:`analyze` sweep and the dirty-cone re-propagation of
    :mod:`repro.incremental` call it, so the two paths agree bit for bit on
    every vertex they both visit.
    """
    if vertex.kind is VertexKind.CONST:
        return 0.0, clock.input_slew
    if vertex.kind is VertexKind.INPUT:
        return clock.input_delay, clock.input_slew
    if vertex.kind is VertexKind.REGISTER:
        cell = vertex.cell
        clk_to_q = cell.clk_to_q if cell is not None else 0.0
        resistance = cell.resistance if cell is not None else 0.0
        arrival = clk_to_q + resistance * load
        slew = cell.output_slew(load) if cell is not None else clock.input_slew
        return arrival, slew
    # Combinational gate.
    cell = vertex.cell
    assert cell is not None
    best = 0.0
    for fanin in vertex.fanins:
        candidate = arrivals[fanin] + vertex.derate * cell.delay(slews[fanin], load)
        if candidate > best:
            best = candidate
    return best, cell.output_slew(load)


def endpoint_timing(endpoint, clock: ClockConstraint, arrivals) -> EndpointTiming:
    """Slack of one endpoint under the given arrival state."""
    arrival = float(arrivals[endpoint.driver])
    required = clock.required_time(endpoint.setup_time)
    return EndpointTiming(
        name=endpoint.name,
        signal=endpoint.signal,
        bit=endpoint.bit,
        kind=endpoint.kind,
        arrival=arrival,
        slack=required - arrival,
        driver=endpoint.driver,
    )


def summarize_slacks(endpoints: Sequence[EndpointTiming]) -> tuple:
    """(WNS, TNS) over a list of endpoint timings."""
    negative = [e.slack for e in endpoints if e.slack < 0.0]
    wns = float(min(negative)) if negative else 0.0
    tns = float(sum(negative)) if negative else 0.0
    return wns, tns


def analyze(
    network: TimingNetwork,
    clock: ClockConstraint,
    loads: Optional[np.ndarray] = None,
    kernel: Optional[str] = None,
) -> STAReport:
    """Run setup STA on ``network`` against ``clock``.

    ``kernel`` selects the backend (``array``/``reference``; default from
    ``$REPRO_STA_KERNEL``, else the array kernel).  Both backends produce
    bit-identical reports: the array path evaluates the same NLDM recurrence
    as :func:`propagate_vertex`, one whole level per numpy sweep.
    """
    n = len(network.vertices)
    arrivals = np.zeros(n)
    slews = np.full(n, clock.input_slew)

    if resolve_kernel(kernel) == "array":
        if fault_fires("kernel.exception"):
            raise RuntimeError("injected fault: kernel.exception")
        compiled = network.compiled()
        cols = compiled.columns(network)
        if loads is None:
            loads = compiled.compute_loads(network, cols)
        compiled.sweep_all(cols, clock, arrivals, slews, loads)
    else:
        if loads is None:
            loads = compute_loads(network)
        for vertex_id in network.topological_order():
            vertex = network.vertices[vertex_id]
            arrivals[vertex_id], slews[vertex_id] = propagate_vertex(
                vertex, clock, arrivals, slews, loads[vertex_id]
            )

    endpoints: List[EndpointTiming] = [
        endpoint_timing(endpoint, clock, arrivals) for endpoint in network.endpoints
    ]
    wns, tns = summarize_slacks(endpoints)

    return STAReport(
        design=network.name,
        clock=clock,
        arrivals=arrivals,
        slews=slews,
        loads=loads,
        endpoints=endpoints,
        wns=wns,
        tns=tns,
    )


def arrival_delay_of(
    network: TimingNetwork, report: STAReport, vertex_id: int, fanin: int
) -> float:
    """Delay contribution of edge ``fanin -> vertex`` under the analyzed state."""
    vertex = network.vertices[vertex_id]
    if vertex.cell is None:
        return 0.0
    return vertex.derate * vertex.cell.delay(report.slews[fanin], report.loads[vertex_id])
