"""Static timing analysis substrate (PrimeTime stand-in plus pseudo-STA)."""

from repro.sta.constraints import ClockConstraint
from repro.sta.network import (
    TimingEndpoint,
    TimingNetwork,
    TimingVertex,
    VertexKind,
    from_bog,
)
from repro.sta.csr import AttributeColumns, CSRTimingGraph
from repro.sta.engine import (
    STA_KERNEL_ENV_VAR,
    EndpointTiming,
    STAReport,
    analyze,
    compute_loads,
    resolve_kernel,
)
from repro.sta.paths import (
    TimingPath,
    driving_launch_points,
    input_cone,
    path_arrival,
    path_cells,
    sample_random_path,
    trace_critical_path,
)

__all__ = [
    "ClockConstraint",
    "TimingEndpoint",
    "TimingNetwork",
    "TimingVertex",
    "VertexKind",
    "from_bog",
    "AttributeColumns",
    "CSRTimingGraph",
    "STA_KERNEL_ENV_VAR",
    "EndpointTiming",
    "STAReport",
    "analyze",
    "compute_loads",
    "resolve_kernel",
    "TimingPath",
    "driving_launch_points",
    "input_cone",
    "path_arrival",
    "path_cells",
    "sample_random_path",
    "trace_critical_path",
]
