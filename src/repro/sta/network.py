"""Generic timing network: the structure the STA engine analyzes.

Both the BOG "pseudo netlist" (via :func:`from_bog`) and the synthesized
gate-level netlist (via :meth:`repro.synth.netlist.Netlist.to_timing_network`)
are lowered into this representation, so a single STA engine serves the whole
flow — exactly the role PrimeTime plays in the paper, plus the pseudo-STA the
paper runs directly on the RTL representation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bog.graph import BOG, NodeType
from repro.liberty import Cell, Library, PSEUDO_FUNCTION_OF_NODE, pseudo_library
from repro.sta.csr import CSRTimingGraph


class VertexKind(enum.Enum):
    """Role of a vertex in the timing graph."""

    CONST = "const"
    INPUT = "input"  # primary input (launch point)
    REGISTER = "register"  # register output (launch point)
    GATE = "gate"  # combinational cell


@dataclass(slots=True)
class TimingVertex:
    """One vertex of the timing graph."""

    id: int
    kind: VertexKind
    fanins: List[int] = field(default_factory=list)
    cell: Optional[Cell] = None
    name: Optional[str] = None
    extra_load: float = 0.0  # wire load added by placement (fF)
    derate: float = 1.0  # delay multiplier capturing local optimization effort

    @property
    def is_launch_point(self) -> bool:
        return self.kind in (VertexKind.INPUT, VertexKind.REGISTER)


@dataclass(slots=True)
class TimingEndpoint:
    """A timing endpoint: register data pin or primary output pin."""

    name: str  # bit-level name, e.g. "R1[3]"
    signal: str  # word-level signal, e.g. "R1"
    bit: int
    driver: int  # vertex id driving the endpoint
    kind: str = "register"  # "register" or "output"
    capture_cell: Optional[Cell] = None  # DFF capturing the data (for setup/cap)

    @property
    def setup_time(self) -> float:
        return self.capture_cell.setup_time if self.capture_cell else 0.0

    @property
    def pin_capacitance(self) -> float:
        return self.capture_cell.input_cap if self.capture_cell else 1.0


class TimingNetwork:
    """A flat, topologically ordered timing graph."""

    def __init__(self, name: str):
        self.name = name
        self.vertices: List[TimingVertex] = []
        self.endpoints: List[TimingEndpoint] = []
        self._fanouts: Optional[List[List[int]]] = None
        self._topo: Optional[List[int]] = None
        self._csr: Optional[CSRTimingGraph] = None

    def __getstate__(self) -> dict:
        # The compiled CSR view (and the thin views derived from it) is a pure
        # function of the structure, rebuilt lazily on demand.  Dropping it
        # from pickles keeps record fingerprints independent of whether an
        # analysis has run on this network instance yet.
        state = self.__dict__.copy()
        state["_fanouts"] = None
        state["_topo"] = None
        state["_csr"] = None
        return state

    # -- construction --------------------------------------------------------

    def add_vertex(
        self,
        kind: VertexKind,
        fanins: Optional[List[int]] = None,
        cell: Optional[Cell] = None,
        name: Optional[str] = None,
    ) -> int:
        vertex = TimingVertex(
            id=len(self.vertices),
            kind=kind,
            fanins=list(fanins or []),
            cell=cell,
            name=name,
        )
        self.vertices.append(vertex)
        self._fanouts = None
        self._topo = None
        self._csr = None
        return vertex.id

    def add_endpoint(self, endpoint: TimingEndpoint) -> None:
        self.endpoints.append(endpoint)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.vertices)

    def compiled(self) -> CSRTimingGraph:
        """The compiled CSR/levelized view of the current structure, cached.

        Compilation is lazy: the first structural query after a change
        (``add_vertex`` or :meth:`invalidate`) rebuilds it; value edits
        (``derate``, ``extra_load``, cell swaps) do not require one because
        attribute columns are gathered separately per analysis.  Raises
        ``ValueError`` when the graph has a combinational cycle.
        """
        if self._csr is None:
            self._csr = CSRTimingGraph(self)
        return self._csr

    def fanouts(self) -> List[List[int]]:
        """Fanout adjacency (thin view over the compiled CSR arrays), cached."""
        if self._fanouts is None:
            self._fanouts = self.compiled().fanout_lists()
        return self._fanouts

    def invalidate(self) -> None:
        """Drop cached adjacency after in-place edits (sizing, retiming)."""
        self._fanouts = None
        self._topo = None
        self._csr = None

    def topological_order(self) -> List[int]:
        """Vertex ids in topological order (thin view over the compiled graph).

        Structural edits such as retiming may append vertices whose ids are
        larger than their consumers', so the id order is not necessarily
        topological; this method returns the compiled levelized order.

        Determinism contract: the order is *level-major* — vertices sorted by
        logic level (``level = 1 + max fanin level``), ascending id within a
        level.  It is therefore a pure function of the graph structure:
        recompiling after :meth:`invalidate` (or rebuilding an identical
        network) reproduces the identical order, independent of insertion
        history.  Historically this method used a LIFO Kahn worklist whose
        order depended on insertion details; every consumer is an
        order-insensitive topological DP, but the compiled order is the one
        now guaranteed stable.
        """
        if self._topo is None:
            self._topo = self.compiled().topological_list()
        return self._topo

    def levels(self) -> List[int]:
        """Logic level of each vertex (sources at level 0)."""
        return self.compiled().level.tolist()

    def launch_points(self) -> List[TimingVertex]:
        return [v for v in self.vertices if v.is_launch_point]

    def gate_count(self) -> int:
        return sum(1 for v in self.vertices if v.kind is VertexKind.GATE)

    def register_count(self) -> int:
        return sum(1 for v in self.vertices if v.kind is VertexKind.REGISTER)

    def validate(self) -> None:
        """Check acyclicity and endpoint consistency."""
        self.topological_order()  # raises on cycles
        for vertex in self.vertices:
            for fanin in vertex.fanins:
                if fanin < 0 or fanin >= len(self.vertices):
                    raise ValueError(f"vertex {vertex.id} has out-of-range fanin {fanin}")
            if vertex.kind is VertexKind.GATE and vertex.cell is None:
                raise ValueError(f"gate vertex {vertex.id} has no cell")
        for endpoint in self.endpoints:
            if endpoint.driver < 0 or endpoint.driver >= len(self.vertices):
                raise ValueError(f"endpoint {endpoint.name} has an invalid driver")

    def __repr__(self) -> str:
        return (
            f"TimingNetwork({self.name!r}, vertices={len(self.vertices)}, "
            f"endpoints={len(self.endpoints)})"
        )


# ---------------------------------------------------------------------------
# BOG adapter (pseudo netlist)
# ---------------------------------------------------------------------------


def from_bog(bog: BOG, library: Optional[Library] = None) -> TimingNetwork:
    """Lower a BOG into a timing network using pseudo standard cells."""
    library = library or pseudo_library()
    network = TimingNetwork(f"{bog.name}.{bog.variant}")
    reg_cell = library.pick("REG")
    mapping: Dict[int, int] = {}

    for node in bog.nodes:
        if node.type in (NodeType.CONST0, NodeType.CONST1):
            mapping[node.id] = network.add_vertex(VertexKind.CONST, name=node.type.value)
        elif node.type is NodeType.INPUT:
            mapping[node.id] = network.add_vertex(VertexKind.INPUT, name=node.name)
        elif node.type is NodeType.REG:
            mapping[node.id] = network.add_vertex(
                VertexKind.REGISTER, cell=reg_cell, name=node.name
            )
        else:
            function = PSEUDO_FUNCTION_OF_NODE[node.type.value]
            cell = library.pick(function)
            mapping[node.id] = network.add_vertex(
                VertexKind.GATE,
                fanins=[mapping[f] for f in node.fanins],
                cell=cell,
                name=None,
            )

    for endpoint in bog.endpoints:
        network.add_endpoint(
            TimingEndpoint(
                name=endpoint.name,
                signal=endpoint.signal,
                bit=endpoint.bit,
                driver=mapping[endpoint.driver],
                kind=endpoint.kind,
                capture_cell=reg_cell if endpoint.kind == "register" else None,
            )
        )

    network.validate()
    return network
