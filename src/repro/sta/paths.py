"""Timing path extraction.

Provides the "slowest path" tracing the paper's register-oriented RTL
processing relies on (Section 3.2): starting from an endpoint, walk backwards
always choosing the fanin that determined the max arrival, until a launch
point (register output or primary input) is reached.  Also provides random
path sampling within an endpoint's input cone, used to generate the
additional ``K`` paths per endpoint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.sta.engine import STAReport, arrival_delay_of
from repro.sta.network import TimingNetwork, VertexKind


@dataclass
class TimingPath:
    """A single timing path from a launch point to an endpoint driver.

    ``vertices`` is ordered from the launch point to the endpoint driver.
    """

    endpoint: str
    vertices: List[int]
    arrival: float

    @property
    def length(self) -> int:
        return len(self.vertices)

    @property
    def launch(self) -> int:
        return self.vertices[0]


def trace_critical_path(
    network: TimingNetwork, report: STAReport, endpoint_name: str
) -> TimingPath:
    """Trace the slowest path ending at ``endpoint_name``."""
    endpoint = next(e for e in network.endpoints if e.name == endpoint_name)
    vertices: List[int] = []
    current = endpoint.driver
    vertices.append(current)
    while True:
        vertex = network.vertices[current]
        if vertex.kind is not VertexKind.GATE or not vertex.fanins:
            break
        best_fanin = max(
            vertex.fanins,
            key=lambda f: report.arrivals[f] + arrival_delay_of(network, report, current, f),
        )
        vertices.append(best_fanin)
        current = best_fanin
    vertices.reverse()
    return TimingPath(
        endpoint=endpoint_name,
        vertices=vertices,
        arrival=float(report.arrivals[endpoint.driver]),
    )


def input_cone(network: TimingNetwork, driver: int) -> Set[int]:
    """All vertices in the transitive fanin of ``driver`` (inclusive)."""
    seen: Set[int] = set()
    stack = [driver]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(network.vertices[current].fanins)
    return seen


def driving_launch_points(network: TimingNetwork, driver: int) -> List[int]:
    """Launch points (registers / primary inputs) in the cone of ``driver``."""
    cone = input_cone(network, driver)
    return [v for v in cone if network.vertices[v].is_launch_point]


def sample_random_path(
    network: TimingNetwork,
    driver: int,
    rng: random.Random,
) -> List[int]:
    """Sample one path from a random launch point to ``driver``.

    The path is built by walking backwards from the endpoint driver, choosing
    a random fanin at every step, which matches the paper's random path
    sampling within the endpoint input cone.
    """
    vertices = [driver]
    current = driver
    while True:
        vertex = network.vertices[current]
        if vertex.kind is not VertexKind.GATE or not vertex.fanins:
            break
        current = rng.choice(vertex.fanins)
        vertices.append(current)
    vertices.reverse()
    return vertices


def path_arrival(network: TimingNetwork, report: STAReport, vertices: Sequence[int]) -> float:
    """Arrival time accumulated along an explicit path under ``report``."""
    if not vertices:
        return 0.0
    arrival = float(report.arrivals[vertices[0]])
    for previous, current in zip(vertices, vertices[1:]):
        arrival += arrival_delay_of(network, report, current, previous)
    return arrival


def path_cells(network: TimingNetwork, vertices: Sequence[int]) -> List[str]:
    """Cell function names along a path (launch point and gates)."""
    names = []
    for vertex_id in vertices:
        vertex = network.vertices[vertex_id]
        if vertex.cell is not None:
            names.append(vertex.cell.function)
        else:
            names.append(vertex.kind.value)
    return names
