"""Liberty-like standard cell library.

Stands in for the NanGate 45 nm PDK used by the paper.  Each cell carries a
simplified NLDM-style timing model::

    delay(cell, input_slew, load) = intrinsic + resistance * load
                                    + slew_factor * input_slew
    output_slew(cell, load)       = slew_intrinsic + slew_resistance * load

plus per-pin input capacitance, area and leakage power.  The absolute numbers
are loosely calibrated to a 45 nm class library (picoseconds, femtofarads,
square microns, nanowatts); what matters for the reproduction is that they
are internally consistent so synthesis, STA and the ML labels agree.

Two libraries are exposed:

* :func:`nangate45_like` — the target library used for technology mapping and
  netlist STA (multiple drive strengths per function).
* :func:`pseudo_library` — single-size "pseudo cells" for the BOG operator
  types, used by the pseudo-STA pass the paper runs directly on the RTL
  representation (Section 3.2: the BOG is treated as a pseudo netlist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Cell:
    """One standard cell with a simplified NLDM timing model."""

    name: str
    function: str  # e.g. "NAND2", "INV", "DFF"
    n_inputs: int
    area: float  # um^2
    input_cap: float  # fF per input pin
    intrinsic_delay: float  # ps
    resistance: float  # ps per fF of load
    slew_factor: float  # ps of delay per ps of input slew
    slew_intrinsic: float  # ps
    slew_resistance: float  # ps per fF of load
    leakage: float  # nW
    drive: int = 1  # drive strength index (X1, X2, X4 ...)
    is_sequential: bool = False
    clk_to_q: float = 0.0  # ps (sequential cells only)
    setup_time: float = 0.0  # ps (sequential cells only)

    def delay(self, input_slew: float, load: float) -> float:
        """Pin-to-pin delay for the given input slew and output load."""
        return self.intrinsic_delay + self.resistance * load + self.slew_factor * input_slew

    def output_slew(self, load: float) -> float:
        """Output transition time for the given output load."""
        return self.slew_intrinsic + self.slew_resistance * load

    def dynamic_energy(self, load: float) -> float:
        """Switching energy proxy (fJ) per output transition."""
        return 0.5 * (load + self.n_inputs * self.input_cap)


class Library:
    """A collection of cells indexed by logic function and drive strength."""

    def __init__(self, name: str, cells: List[Cell]):
        self.name = name
        self.cells: Dict[str, Cell] = {cell.name: cell for cell in cells}
        self._by_function: Dict[str, List[Cell]] = {}
        for cell in cells:
            self._by_function.setdefault(cell.function, []).append(cell)
        for variants in self._by_function.values():
            variants.sort(key=lambda c: c.drive)

    def cell(self, name: str) -> Cell:
        """Look up a cell by its full name (e.g. ``"NAND2_X2"``)."""
        return self.cells[name]

    def functions(self) -> List[str]:
        return sorted(self._by_function)

    def variants(self, function: str) -> List[Cell]:
        """All drive strengths implementing ``function`` (weakest first)."""
        try:
            return list(self._by_function[function])
        except KeyError as exc:
            raise KeyError(f"library {self.name!r} has no cell for {function!r}") from exc

    def pick(self, function: str, drive: int = 1) -> Cell:
        """Cell implementing ``function`` with drive closest to ``drive``."""
        variants = self.variants(function)
        best = min(variants, key=lambda c: abs(c.drive - drive))
        return best

    def upsize(self, cell: Cell) -> Optional[Cell]:
        """Next stronger drive strength of the same function, if any."""
        variants = self.variants(cell.function)
        stronger = [c for c in variants if c.drive > cell.drive]
        return stronger[0] if stronger else None

    def downsize(self, cell: Cell) -> Optional[Cell]:
        """Next weaker drive strength of the same function, if any."""
        variants = self.variants(cell.function)
        weaker = [c for c in variants if c.drive < cell.drive]
        return weaker[-1] if weaker else None

    def __contains__(self, function: str) -> bool:
        return function in self._by_function

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"


# ---------------------------------------------------------------------------
# Library construction
# ---------------------------------------------------------------------------


def _drive_variants(
    name: str,
    function: str,
    n_inputs: int,
    area: float,
    input_cap: float,
    intrinsic: float,
    resistance: float,
    slew_factor: float,
    leakage: float,
    drives: Tuple[int, ...] = (1, 2, 4),
) -> List[Cell]:
    """Build X1/X2/X4 variants: stronger cells are faster driving loads but
    bigger, more capacitive and leakier."""
    cells = []
    for drive in drives:
        cells.append(
            Cell(
                name=f"{name}_X{drive}",
                function=function,
                n_inputs=n_inputs,
                area=area * (0.7 + 0.35 * drive),
                input_cap=input_cap * (0.8 + 0.25 * drive),
                intrinsic_delay=intrinsic * (1.05 - 0.05 * drive),
                resistance=resistance / drive,
                slew_factor=slew_factor,
                slew_intrinsic=8.0 + intrinsic * 0.3,
                slew_resistance=1.2 / drive,
                leakage=leakage * drive,
                drive=drive,
            )
        )
    return cells


def nangate45_like() -> Library:
    """The target standard-cell library used for mapping and netlist STA."""
    cells: List[Cell] = []
    # name, function, inputs, area, cap, intrinsic, resistance, slew_factor, leakage
    #
    # The delay gap between alternative decompositions of the same operator
    # (e.g. AND2 vs NAND2+INV) is intentionally pronounced: the mapper picks
    # between them pseudo-randomly, which is the structured mapping noise
    # that separates RTL-stage estimates from post-synthesis timing.
    combinational = [
        ("INV", "INV", 1, 0.53, 1.6, 7.0, 2.0, 0.08, 1.0),
        ("BUF", "BUF", 1, 0.80, 1.7, 14.0, 1.9, 0.07, 1.3),
        ("NAND2", "NAND2", 2, 0.80, 1.8, 10.0, 2.4, 0.09, 1.5),
        ("NOR2", "NOR2", 2, 0.80, 1.9, 12.0, 2.7, 0.10, 1.5),
        ("AND2", "AND2", 2, 1.06, 1.8, 25.0, 2.6, 0.09, 1.8),
        ("OR2", "OR2", 2, 1.06, 1.9, 28.0, 2.8, 0.10, 1.8),
        ("XOR2", "XOR2", 2, 1.60, 2.4, 26.0, 2.9, 0.12, 2.6),
        ("XNOR2", "XNOR2", 2, 1.60, 2.4, 30.0, 3.1, 0.12, 2.6),
        ("MUX2", "MUX2", 3, 1.86, 2.2, 24.0, 2.7, 0.11, 2.9),
        ("AOI21", "AOI21", 3, 1.33, 2.0, 15.0, 2.7, 0.10, 2.1),
        ("OAI21", "OAI21", 3, 1.33, 2.0, 16.0, 2.7, 0.10, 2.1),
    ]
    for row in combinational:
        cells.extend(_drive_variants(*row))

    # Sequential cells: one D flip-flop in two drive strengths.
    for drive in (1, 2):
        cells.append(
            Cell(
                name=f"DFF_X{drive}",
                function="DFF",
                n_inputs=1,
                area=4.52 * (0.8 + 0.2 * drive),
                input_cap=1.9,
                intrinsic_delay=0.0,
                resistance=2.0 / drive,
                slew_factor=0.0,
                slew_intrinsic=14.0,
                slew_resistance=1.1 / drive,
                leakage=4.0 * drive,
                drive=drive,
                is_sequential=True,
                clk_to_q=78.0 - 6.0 * drive,
                setup_time=42.0,
            )
        )
    return Library("nangate45_like", cells)


def pseudo_library() -> Library:
    """Pseudo standard cells for BOG operator nodes (pseudo-STA).

    One cell per Boolean operator type; delays roughly track the relative
    complexity of the operators so the pseudo-STA arrival times correlate
    with (but do not equal) the post-synthesis arrival times, exactly the
    situation the paper's feature table describes (``Avg. R`` ~ 0.4-0.6).
    """
    rows = [
        # name, function, inputs, area, cap, intrinsic, resistance, slew, leak
        ("PSEUDO_NOT", "NOT", 1, 0.5, 1.5, 9.0, 2.0, 0.08, 1.0),
        ("PSEUDO_AND", "AND", 2, 1.0, 1.8, 18.0, 2.4, 0.09, 1.7),
        ("PSEUDO_OR", "OR", 2, 1.0, 1.9, 20.0, 2.5, 0.10, 1.7),
        ("PSEUDO_XOR", "XOR", 2, 1.6, 2.4, 27.0, 2.9, 0.12, 2.5),
        ("PSEUDO_MUX", "MUX", 3, 1.8, 2.2, 25.0, 2.7, 0.11, 2.8),
    ]
    cells: List[Cell] = []
    for name, function, n_in, area, cap, intrinsic, res, slew, leak in rows:
        cells.append(
            Cell(
                name=name,
                function=function,
                n_inputs=n_in,
                area=area,
                input_cap=cap,
                intrinsic_delay=intrinsic,
                resistance=res,
                slew_factor=slew,
                slew_intrinsic=10.0,
                slew_resistance=1.2,
                leakage=leak,
            )
        )
    cells.append(
        Cell(
            name="PSEUDO_REG",
            function="REG",
            n_inputs=1,
            area=4.5,
            input_cap=1.9,
            intrinsic_delay=0.0,
            resistance=2.0,
            slew_factor=0.0,
            slew_intrinsic=14.0,
            slew_resistance=1.1,
            leakage=4.0,
            is_sequential=True,
            clk_to_q=75.0,
            setup_time=42.0,
        )
    )
    return Library("pseudo_bog", cells)


#: Mapping from BOG node types to pseudo-cell functions.
PSEUDO_FUNCTION_OF_NODE = {
    "and": "AND",
    "or": "OR",
    "xor": "XOR",
    "not": "NOT",
    "mux": "MUX",
    "reg": "REG",
}
