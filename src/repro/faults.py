"""Fault injection: the ``REPRO_FAULT_INJECT`` registry.

Two subsystems prove themselves against injected faults:

* the **differential-fuzz oracles** (:mod:`repro.fuzz.oracles`) are only
  trustworthy if a real divergence between two implementations of the same
  contract is actually *caught*.  Deterministic faults (probability 1.0)
  flip a tiny, targeted perturbation inside exactly one of the redundant
  implementations, which the corresponding oracle must then detect and
  shrink;
* the **resilient serving runtime** (:mod:`repro.serve.supervisor` /
  :mod:`repro.serve.resilience`) claims availability under component loss.
  Probabilistic faults (worker crash/hang, slow IO, cache corruption,
  kernel exceptions) let the chaos harness (``python -m repro chaos``)
  drive real traffic through a service whose components keep failing, and
  assert the recovery invariants.

Syntax
------

``REPRO_FAULT_INJECT`` holds comma-separated fault entries::

    REPRO_FAULT_INJECT="interpret.add"                       # always fires
    REPRO_FAULT_INJECT="worker.crash:p=0.05"                 # fires ~5% of draws
    REPRO_FAULT_INJECT="worker.crash:p=0.05:seed=3,cache.corrupt_entry:p=0.1"

A bare name is equivalent to ``p=1`` (the pre-existing behaviour: the fault
is simply *on*).  ``seed`` makes the per-draw decisions deterministic for a
given draw sequence, so chaos campaigns are seed-replayable the same way
fuzz campaigns are.

Known fault points
------------------

Differential (silent wrong answers, each caught by a fuzz oracle):

* ``incremental.extra_load`` — :meth:`IncrementalSTA._recompute_load` drops
  the ``extra_load`` term from the dirty-vertex load sum, so the incremental
  engine disagrees with a full :func:`repro.sta.engine.analyze` re-run
  whenever a patch touches a loaded vertex.
* ``interpret.add`` — the word-level interpreter computes ``a + b + 1``,
  diverging from the bit-blasted ripple-carry adder.
* ``gbm.hist_threshold`` — the histogram splitter nudges every chosen cut
  threshold upward, diverging from the exact splitter's partitions.
* ``sta.array_delay`` — the array STA kernel perturbs every gate's candidate
  arrival by 1e-6, diverging from the per-vertex reference kernel (caught by
  ``array_vs_reference_sta``).
* ``simulate.packed_and`` — the bit-packed simulator evaluates AND nodes as
  OR, diverging from the scalar evaluator (caught by
  ``packed_vs_scalar_sim``).
* ``optimize.dominance`` — :meth:`repro.optimize.pareto.ParetoFront.insert`
  stops filtering dominated points, so the search returns fronts containing
  points beaten by the default-options baseline or by each other (caught by
  ``optimize_search``).

Availability (crashes and slowdowns, each survived by the serving runtime):

* ``worker.crash`` — a pool worker calls ``os._exit`` mid-request; the
  supervisor restarts it and the request is retried on a sibling.
* ``worker.hang`` — a pool worker sleeps forever inside a request; the
  supervisor detects the stuck request via the heartbeat's busy timestamp,
  kills and restarts the worker, and the request is retried on a sibling.
* ``worker.slow_io`` — a pool worker sleeps briefly before answering,
  inflating tail latency without failing anything.
* ``cache.corrupt_entry`` — an :class:`~repro.runtime.cache.ArtifactCache`
  read returns bit-flipped bytes; the cache treats the entry as corrupt
  (counted, deleted, rebuilt) and the caller recomputes.
* ``kernel.exception`` — the array STA kernel raises instead of sweeping;
  the serving layer's kernel circuit breaker falls back to the bit-identical
  ``reference`` kernel.
* ``serve.batch_fail`` — a multi-request micro-batch raises before the
  model pass; the service degrades to serial per-request predicts
  (bit-identical, only slower).
* ``parallel.worker_crash`` — a dataset-build pool worker exits hard; the
  engine retries the unfinished specs on the serial path.

The hooks read the environment on every call so tests can flip them with
``monkeypatch.setenv`` without import-order concerns.  Production code never
sets the variable, so every fault defaults to off.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional

#: Comma-separated list of active fault entries (debug/chaos only).
FAULT_ENV_VAR = "REPRO_FAULT_INJECT"

#: Every known fault point -> one-line description.  Unknown names still
#: parse (a hook may live in an experiment branch), but the chaos CLI
#: validates its ``--faults`` argument against this registry.
FAULT_REGISTRY: Dict[str, str] = {
    "incremental.extra_load": "incremental STA drops extra_load from dirty-vertex loads",
    "interpret.add": "word-level interpreter computes a + b + 1",
    "gbm.hist_threshold": "histogram splitter nudges chosen cut thresholds upward",
    "sta.array_delay": "array STA kernel perturbs gate arrivals by 1e-6",
    "simulate.packed_and": "bit-packed simulator evaluates AND as OR",
    "optimize.dominance": "Pareto front keeps dominated points (filter disabled)",
    "worker.crash": "serve pool worker os._exit()s mid-request",
    "worker.hang": "serve pool worker sleeps forever inside a request",
    "worker.slow_io": "serve pool worker sleeps briefly before answering",
    "cache.corrupt_entry": "ArtifactCache read returns bit-flipped bytes",
    "kernel.exception": "array STA kernel raises instead of sweeping",
    "serve.batch_fail": "multi-request micro-batch raises before the model pass",
    "parallel.worker_crash": "dataset-build pool worker exits hard",
}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_FAULT_INJECT`` entry."""

    name: str
    probability: float = 1.0
    seed: int = 0


def _parse_entry(entry: str) -> Optional[FaultSpec]:
    parts = [part.strip() for part in entry.split(":") if part.strip()]
    if not parts:
        return None
    name = parts[0]
    if name not in FAULT_REGISTRY:
        # A typo'd fault name silently never firing would make a chaos
        # campaign vacuously green — reject it loudly instead.
        raise ValueError(
            f"unknown fault {name!r}; registered: {', '.join(sorted(FAULT_REGISTRY))}"
        )
    probability = 1.0
    seed = 0
    for part in parts[1:]:
        key, _, value = part.partition("=")
        try:
            if key == "p":
                probability = float(value)
            elif key == "seed":
                seed = int(value)
        except ValueError:
            continue  # a malformed knob falls back to its default
    return FaultSpec(name=name, probability=probability, seed=seed)


def parse_faults(raw: Optional[str] = None) -> Dict[str, FaultSpec]:
    """Parse a ``REPRO_FAULT_INJECT`` value (default: the environment)."""
    if raw is None:
        raw = os.environ.get(FAULT_ENV_VAR, "")
    specs: Dict[str, FaultSpec] = {}
    for entry in raw.split(","):
        spec = _parse_entry(entry)
        if spec is not None:
            specs[spec.name] = spec
    return specs


def format_faults(specs: Dict[str, float], seed: int = 0) -> str:
    """Render name -> probability into a ``REPRO_FAULT_INJECT`` value."""
    return ",".join(
        name if probability >= 1.0 else f"{name}:p={probability}:seed={seed}"
        for name, probability in specs.items()
    )


def active_faults() -> frozenset:
    """The set of fault names currently enabled via the environment."""
    return frozenset(parse_faults())


def fault_active(name: str) -> bool:
    """Whether the named fault is enabled (always False outside debugging).

    Presence is activation: a probabilistic entry is *active* even though
    individual draws (:func:`fault_fires`) may not fire.  The deterministic
    differential faults use this predicate directly, exactly as before.
    """
    raw = os.environ.get(FAULT_ENV_VAR, "")
    if not raw:
        return False
    return name in parse_faults(raw)


# Per-process draw counters: each (fault, process) pair walks its own
# deterministic sequence, so a retry of a crashed request on a sibling
# worker does not deterministically re-crash.
_DRAW_COUNTERS: Dict[str, "itertools.count"] = {}
_DRAW_LOCK = threading.Lock()


def _next_draw(name: str) -> int:
    with _DRAW_LOCK:
        counter = _DRAW_COUNTERS.get(name)
        if counter is None:
            counter = _DRAW_COUNTERS[name] = itertools.count()
        return next(counter)


def fault_fires(name: str, token: Optional[str] = None) -> bool:
    """One probabilistic draw of the named fault.

    Returns False when the fault is not in ``REPRO_FAULT_INJECT``.  For an
    entry with ``p >= 1`` every draw fires (bare names behave like the old
    always-on switches).  Otherwise the decision hashes ``(seed, name,
    token)`` — with ``token`` defaulting to a per-process draw counter — so
    a fixed seed replays the same fault pattern for the same draw sequence.
    """
    raw = os.environ.get(FAULT_ENV_VAR, "")
    if not raw or name not in raw:  # cheap rejection before parsing
        return False
    spec = parse_faults(raw).get(name)
    if spec is None:
        return False
    if spec.probability >= 1.0:
        return True
    if spec.probability <= 0.0:
        return False
    if token is None:
        token = str(_next_draw(name))
    digest = hashlib.sha256(f"{spec.seed}/{name}/{token}".encode()).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return draw < spec.probability


def reset_draws() -> None:
    """Reset the per-process draw counters (test/chaos replay hygiene)."""
    with _DRAW_LOCK:
        _DRAW_COUNTERS.clear()
