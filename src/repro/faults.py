"""Debug-only fault injection for differential-fuzzing self-tests.

The cross-stack fuzz oracles (:mod:`repro.fuzz.oracles`) are only
trustworthy if a real divergence between two implementations of the same
contract is actually *caught*.  This module provides the hook the fuzz
campaign uses to prove that: naming a fault in the ``REPRO_FAULT_INJECT``
environment variable (comma-separated for several) flips a tiny, targeted
perturbation inside exactly one of the redundant implementations, which the
corresponding oracle must then detect and shrink.

Known fault points (each perturbs one side of a differential pair):

* ``incremental.extra_load`` — :meth:`IncrementalSTA._recompute_load` drops
  the ``extra_load`` term from the dirty-vertex load sum, so the incremental
  engine disagrees with a full :func:`repro.sta.engine.analyze` re-run
  whenever a patch touches a loaded vertex.
* ``interpret.add`` — the word-level interpreter computes ``a + b + 1``,
  diverging from the bit-blasted ripple-carry adder.
* ``gbm.hist_threshold`` — the histogram splitter nudges every chosen cut
  threshold upward, diverging from the exact splitter's partitions.
* ``sta.array_delay`` — the array STA kernel
  (:meth:`repro.sta.csr.CSRTimingGraph.sweep`) perturbs every gate's
  candidate arrival by 1e-6, so the array backend diverges from the
  per-vertex reference kernel on any design with a combinational gate
  (caught by the ``array_vs_reference_sta`` oracle).
* ``simulate.packed_and`` — the bit-packed simulator evaluates AND nodes as
  OR, diverging from the scalar :func:`repro.bog.simulate.evaluate_nodes`
  (caught by the ``packed_vs_scalar_sim`` oracle).

The hooks are read from the environment on every call so tests can flip
them with ``monkeypatch.setenv`` without import-order concerns; the lookup
is a dictionary get and two string operations, which is negligible next to
the work of the code paths that carry the hooks.  Production code never
sets the variable, so every fault defaults to off.
"""

from __future__ import annotations

import os

#: Comma-separated list of active fault names (debug/testing only).
FAULT_ENV_VAR = "REPRO_FAULT_INJECT"


def active_faults() -> frozenset:
    """The set of fault names currently enabled via the environment."""
    raw = os.environ.get(FAULT_ENV_VAR, "")
    if not raw:
        return frozenset()
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def fault_active(name: str) -> bool:
    """Whether the named fault is enabled (always False outside debugging)."""
    raw = os.environ.get(FAULT_ENV_VAR, "")
    if not raw:
        return False
    return any(part.strip() == name for part in raw.split(","))
