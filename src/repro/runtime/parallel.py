"""Parallel, cached dataset construction.

Each benchmark design is elaborated completely independently of the others
(generate → parse → bit-blast → pseudo-STA → label synthesis), so dataset
construction is embarrassingly parallel — the same property the LZ DAQ
exploits across digitizer channels.  :func:`build_dataset_parallel` fans the
cache-missing specs out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and reassembles results in spec order, so the output is element-wise
identical to a serial build (``repro.runtime.cache.record_fingerprint``
equality is covered by the determinism tests).

Worker count resolution: explicit ``jobs`` argument, else the ``REPRO_JOBS``
environment variable, else ``os.cpu_count()``; always clamped to the number
of tasks.  ``REPRO_JOBS=1`` forces the serial path, and any failure to stand
up the pool (sandboxed environments without fork, unpicklable config, a
worker crash taking down the pool) degrades gracefully to the same serial
path rather than failing the build.
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
import pickle
import sys
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, List, Optional, Sequence, Tuple

from repro.runtime import report as report_mod
from repro.runtime.cache import ArtifactCache, gc_paused, record_key

#: Environment variable fixing the worker count (``1`` = serial).
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(n_tasks: Optional[int] = None, jobs: Optional[int] = None) -> int:
    """Resolve the effective worker count (argument > env > cpu count)."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    if n_tasks is not None:
        jobs = min(jobs, max(1, n_tasks))
    return max(1, jobs)


def _reintern(value: Any) -> Any:
    """Re-intern the strings of a transported spec/config dataclass.

    Pool inputs arrive in the worker as pickle copies, so their short strings
    (``"sog"``, design names, ...) are *distinct* objects from the interned
    literals the worker's module code uses — whereas in an in-process build
    they are the very same objects.  Pickle encodes that sharing topology in
    its memo, so without re-interning, a worker-built record serializes to
    different bytes than a serially-built one even though the content is
    equal.  Interning restores the exact topology of the serial build.
    """
    if isinstance(value, str):
        # Raw Verilog sources also land here; interning only pays (and only
        # restores literal sharing) for short identifier-like strings.
        return sys.intern(value) if len(value) <= 256 else value
    if isinstance(value, tuple):
        return tuple(_reintern(item) for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        replacements = {
            field.name: _reintern(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if isinstance(getattr(value, field.name), (str, tuple))
        }
        return dataclasses.replace(value, **replacements) if replacements else value
    return value


def _build_record_task(payload: Tuple[int, Any, Any]) -> Tuple[int, Any]:
    """Worker entry point: build one DesignRecord (must be module-level)."""
    from repro.core.dataset import build_design_record
    from repro.faults import fault_fires

    index, spec, config = payload
    if fault_fires("parallel.worker_crash", token=getattr(spec, "name", str(index))):
        os._exit(13)  # hard exit: breaks the pool, exercising the retry path
    return index, build_design_record(_reintern(spec), _reintern(config))


def _make_executor(max_workers: int) -> ProcessPoolExecutor:
    # Prefer fork where available: workers inherit sys.path and the already
    # imported package, and the hash seed — keeping set/dict iteration order,
    # and therefore build output, identical to the parent process.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return ProcessPoolExecutor(max_workers=max_workers)
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)


def parallel_build_records(
    specs: Sequence[Any],
    config: Any = None,
    jobs: Optional[int] = None,
) -> List[Any]:
    """Build DesignRecords for ``specs``, fanning out across processes.

    Results are returned in spec order regardless of completion order.
    Falls back to the serial path when ``jobs`` resolves to 1 or the pool
    cannot be used.
    """
    from repro.core.dataset import DatasetConfig, build_design_record

    specs = list(specs)
    config = config or DatasetConfig()
    jobs = resolve_jobs(len(specs), jobs)

    def serial() -> List[Any]:
        with report_mod.stage("dataset.build_serial"):
            return [build_design_record(spec, config) for spec in specs]

    if jobs <= 1 or len(specs) <= 1:
        return serial()

    tasks = [(index, spec, config) for index, spec in enumerate(specs)]
    results: dict = {}
    failed: List[Tuple[int, Any, Any]] = []
    try:
        with report_mod.stage("dataset.build_parallel"):
            with _make_executor(jobs) as pool:
                futures = []
                for task in tasks:
                    try:
                        futures.append((task, pool.submit(_build_record_task, task)))
                    except (OSError, ValueError, BrokenExecutor, RuntimeError):
                        failed.append(task)
                for task, future in futures:
                    # One crashed worker breaks its own future — and, for a
                    # BrokenProcessPool, every future still queued — but the
                    # records already returned stay good.  Collect only the
                    # losses; never discard completed work.
                    try:
                        index, record = future.result()
                        results[index] = record
                    except (OSError, ValueError, BrokenExecutor, pickle.PicklingError):
                        failed.append(task)
    except (OSError, ValueError, BrokenExecutor, pickle.PicklingError):
        # Pool never stood up (sandbox without fork, unpicklable config):
        # degrade to the serial path instead of failing the build.
        report_mod.incr("parallel_fallbacks")
        return serial()
    if failed:
        # Retry exactly the failed specs serially in-process; a genuine
        # per-design build error reproduces here with a clean traceback.
        report_mod.incr("parallel_worker_retries", len(failed))
        with report_mod.stage("dataset.build_retry_serial"):
            for index, spec, _ in failed:
                results[index] = build_design_record(spec, config)
    return [results[index] for index in range(len(specs))]


def build_dataset_parallel(
    specs: Optional[Sequence[Any]] = None,
    config: Any = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
    report: Optional[report_mod.RuntimeReport] = None,
) -> List[Any]:
    """Cached, parallel equivalent of the seed's serial ``build_dataset``.

    Per-spec records are first looked up in the content-addressed artifact
    cache; only the misses are built (in parallel) and stored back.  Pass
    ``cache=ArtifactCache(enabled=False)`` — or set ``REPRO_CACHE=0`` — to
    force a full rebuild, and ``report=`` (or an outer
    :func:`repro.runtime.report.activate` block) to collect per-stage wall
    time and cache hit/miss counters.
    """
    from repro.core.dataset import DatasetConfig
    from repro.hdl.generate import BENCHMARK_SPECS

    specs = list(BENCHMARK_SPECS if specs is None else specs)
    config = config or DatasetConfig()
    if cache is None:
        cache = ArtifactCache()

    scope = report_mod.activate(report) if report is not None else contextlib.nullcontext()
    with scope:
        with report_mod.stage("dataset.build"):
            keys = [record_key(spec, config) for spec in specs]
            with report_mod.stage("dataset.cache_lookup"), gc_paused():
                # One GC pause across the whole loop: re-enabling between
                # entries makes the collector walk the ever-growing heap of
                # already-loaded records once per lookup.
                records: List[Any] = [cache.get(key) for key in keys]
            missing = [index for index, record in enumerate(records) if record is None]
            if missing:
                built = parallel_build_records([specs[i] for i in missing], config, jobs)
                with report_mod.stage("dataset.cache_store"):
                    for index, record in zip(missing, built):
                        records[index] = record
                        cache.put(keys[index], record)
                # New stores may have pushed the directory past its size
                # budget (old code generations leave unreachable entries).
                cache.prune()
            for record, key in zip(records, keys):
                # The build key is a full content identity for the record
                # (spec ⊕ config ⊕ build code); stash it so downstream caches
                # (path features) can address the record without re-pickling
                # it into a fingerprint.  Any fingerprint that rode along in a
                # cached pickle predates this session's key and is dropped.
                record.__dict__.pop("_feature_fingerprint", None)
                record.__dict__["_content_key"] = key
            report_mod.incr("designs", len(specs))
    return records
