"""Structured runtime instrumentation for the execution engine.

A :class:`RuntimeReport` accumulates per-stage wall time, call counts and
event counters across one run of the stack (dataset construction, training,
inference, benchmarks).  Any layer of the codebase can participate without
threading a report object through every signature: a report is *activated*
for the current context (:func:`activate`) and lower layers record into it
via the module-level :func:`stage` / :func:`incr` helpers, which are no-ops
when no report is active.

The serialized form (``BENCH_runtime.json``, see :meth:`RuntimeReport.write`)
is the machine-readable perf trajectory consumed by the CI benchmark-trend
job: per-stage seconds, cache hit/miss counts and designs/second, in the
spirit of coreblocks' per-commit ``benchmark.json``.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import platform
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

#: Environment variable overriding where :meth:`RuntimeReport.write` puts the report.
BENCH_ENV_VAR = "REPRO_BENCH_OUT"

#: Default report filename (relative to the current working directory).
DEFAULT_BENCH_PATH = "BENCH_runtime.json"

#: Version tag of the emitted JSON schema.
REPORT_SCHEMA = "repro-bench-runtime/1"

#: Stage names shared between the incremental benchmark harness and the
#: derived ``incremental_whatif_speedup`` metric — one constant, two users,
#: so a rename cannot silently drop the metric from the CI trend.
WHATIF_SWEEP_STAGE = "incremental.whatif_sweep"
FULL_RESYNTHESIS_STAGE = "incremental.full_resynthesis"

#: Stage names of the search-based optimizer (:mod:`repro.optimize`).
#: ``optimize.search`` wraps a whole campaign; ``optimize.score`` is the
#: pure incremental-scoring time (all evaluations), ``optimize.score_accepted``
#: the slice of it spent on accepted moves, ``optimize.anchor_synthesis`` the
#: re-anchoring ground-truth syntheses, and ``optimize.full_resynthesis`` is
#: recorded by the benchmark harness when it re-scores the same accepted
#: candidates by full synthesis to measure ``optimize_sweep_speedup``.
OPT_SEARCH_STAGE = "optimize.search"
OPT_SCORE_STAGE = "optimize.score"
OPT_SCORE_ACCEPTED_STAGE = "optimize.score_accepted"
OPT_ANCHOR_STAGE = "optimize.anchor_synthesis"
OPT_FULL_RESYNTHESIS_STAGE = "optimize.full_resynthesis"


@dataclass
class RuntimeReport:
    """Accumulated per-stage wall time and counters for one run.

    Recording (:meth:`add_stage` / :meth:`incr` / :meth:`merge`) and
    snapshotting (:meth:`to_dict`) are thread-safe: the serving layer
    records from HTTP handler threads and its batching worker into one
    shared report while ``/metrics`` scrapes it.
    """

    stages: Dict[str, float] = field(default_factory=dict)
    stage_calls: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)  # locks are process-local, not picklable
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- recording ----------------------------------------------------------

    def add_stage(self, name: str, seconds: float) -> None:
        """Add ``seconds`` of wall time to stage ``name``."""
        with self._lock:
            self.stages[name] = self.stages.get(name, 0.0) + float(seconds)
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    @contextlib.contextmanager
    def stage(self, name: str) -> Iterator["RuntimeReport"]:
        """Time the enclosed block under stage ``name``.

        Stages may nest; a nested stage's time is counted both in its own
        entry and in every enclosing stage (entries are independent timers,
        not a strict tree).
        """
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add_stage(name, time.perf_counter() - started)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment event counter ``name`` by ``amount``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(amount)

    def merge(self, other: "RuntimeReport") -> "RuntimeReport":
        """Fold another report's stages and counters into this one."""
        # Snapshot the source first so merging a *live* report (e.g. the
        # serving layer's) never iterates dicts its writers are resizing.
        with other._lock:
            stages = dict(other.stages)
            stage_calls = dict(other.stage_calls)
            counters = dict(other.counters)
            meta = dict(other.meta)
        with self._lock:
            for name, seconds in stages.items():
                self.stages[name] = self.stages.get(name, 0.0) + seconds
            for name, calls in stage_calls.items():
                self.stage_calls[name] = self.stage_calls.get(name, 0) + calls
            for name, amount in counters.items():
                self.counters[name] = self.counters.get(name, 0) + amount
            self.meta.update(meta)
        return self

    # -- derived ------------------------------------------------------------

    def stage_seconds(self, name: str, default: float = 0.0) -> float:
        return self.stages.get(name, default)

    def designs_per_second(self) -> Optional[float]:
        """Dataset throughput, when both the counter and the stage exist."""
        designs = self.counters.get("designs", 0)
        build = self.stages.get("dataset.build", 0.0)
        if designs <= 0 or build <= 0.0:
            return None
        return designs / build

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> Dict[str, object]:
        derived: Dict[str, object] = {}
        throughput = self.designs_per_second()
        if throughput is not None:
            derived["designs_per_second"] = round(throughput, 4)
        hits = self.counters.get("cache_hits", 0)
        misses = self.counters.get("cache_misses", 0)
        if hits + misses:
            derived["cache_hit_rate"] = round(hits / (hits + misses), 4)
        whatif = self.stages.get(WHATIF_SWEEP_STAGE, 0.0)
        full = self.stages.get(FULL_RESYNTHESIS_STAGE, 0.0)
        if whatif > 0.0 and full > 0.0:
            derived["incremental_whatif_speedup"] = round(full / whatif, 2)
        runs = self.counters.get("incremental_runs", 0)
        recomputed = self.counters.get("incremental_recomputed_vertices", 0)
        if runs:
            derived["incremental_vertices_per_run"] = round(recomputed / runs, 1)
        serve_requests = self.counters.get("serve_requests", 0)
        serve_batches = self.counters.get("serve_batches", 0)
        if serve_requests and serve_batches:
            # Realized micro-batch size of the serving layer (1.0 = no fusion).
            derived["serve_batch_size"] = round(serve_requests / serve_batches, 2)
        optimize_evals = self.counters.get("optimize_evals", 0)
        score_seconds = self.stages.get(OPT_SCORE_STAGE, 0.0)
        if optimize_evals and score_seconds > 0.0:
            derived["optimize_evals_per_second"] = round(optimize_evals / score_seconds, 2)
        accepted_seconds = self.stages.get(OPT_SCORE_ACCEPTED_STAGE, 0.0)
        full_seconds = self.stages.get(OPT_FULL_RESYNTHESIS_STAGE, 0.0)
        if accepted_seconds > 0.0 and full_seconds > 0.0:
            # Incremental scoring of accepted candidates vs synthesizing them.
            derived["optimize_sweep_speedup"] = round(full_seconds / accepted_seconds, 2)
        return {
            "schema": REPORT_SCHEMA,
            "generated_at": time.time(),
            "meta": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "argv": sys.argv[:4],
                **self.meta,
            },
            "stages": {name: round(seconds, 6) for name, seconds in sorted(self.stages.items())},
            "stage_calls": dict(sorted(self.stage_calls.items())),
            "counters": dict(sorted(self.counters.items())),
            "derived": derived,
        }

    def write(self, path: Optional[os.PathLike] = None) -> Path:
        """Write the report as JSON; returns the path written.

        The destination is, in order of precedence: the explicit ``path``
        argument, the ``REPRO_BENCH_OUT`` environment variable, or
        ``BENCH_runtime.json`` in the current directory.
        """
        if path is None:
            path = os.environ.get(BENCH_ENV_VAR) or DEFAULT_BENCH_PATH
        destination = Path(path)
        if destination.parent != Path("."):
            destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n")
        return destination


# ---------------------------------------------------------------------------
# Active-report plumbing
# ---------------------------------------------------------------------------

_ACTIVE: contextvars.ContextVar[Optional[RuntimeReport]] = contextvars.ContextVar(
    "repro_runtime_report", default=None
)


def active_report() -> Optional[RuntimeReport]:
    """The report currently collecting instrumentation, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(report: RuntimeReport) -> Iterator[RuntimeReport]:
    """Make ``report`` the active collector for the enclosed block."""
    token = _ACTIVE.set(report)
    try:
        yield report
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the enclosed block into the active report (no-op when inactive)."""
    report = _ACTIVE.get()
    if report is None:
        yield
        return
    with report.stage(name):
        yield


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter on the active report (no-op when inactive)."""
    report = _ACTIVE.get()
    if report is not None:
        report.incr(name, amount)


def write_bench_report(report: RuntimeReport, path: Optional[os.PathLike] = None) -> Path:
    """Convenience wrapper used by the benchmark harness."""
    return report.write(path)
