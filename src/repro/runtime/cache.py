"""Content-addressed on-disk artifact cache.

Elaborating a :class:`~repro.core.dataset.DesignRecord` (HDL generation →
parse/analyze → bit-blasting into four BOG variants → pseudo-STA → label
synthesis) is by far the most expensive step of the stack and is repeated
from scratch on every pytest session in the seed.  This module persists
those artifacts between sessions — and between CI runs, via ``actions/cache``
— keyed by *content*:

``key = sha256(generator spec ⊕ dataset config ⊕ build-relevant source files)``

so any edit to the generator, bit-blaster, STA or synthesis code silently
invalidates every stale entry.  Values are stored as individual pickle files
under two-level fan-out directories (``<dir>/<key[:2]>/<key>.pkl``) with
atomic writes, so concurrent writers (parallel workers, parallel CI jobs on
a shared cache volume) can never observe a torn entry.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default ``~/.cache/repro``),
* ``REPRO_CACHE=0`` — disable the cache entirely.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gc
import hashlib
import os
import pickle
import shutil
import sys
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterator, List, Optional, TypeVar

import numpy as np

from repro.faults import fault_fires
from repro.runtime import report as report_mod

T = TypeVar("T")

#: Environment variable naming the cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Set to ``0`` to disable the artifact cache.
CACHE_ENABLE_ENV_VAR = "REPRO_CACHE"

#: Size budget (in MiB) enforced by :meth:`ArtifactCache.prune`.
CACHE_MAX_MB_ENV_VAR = "REPRO_CACHE_MAX_MB"

#: Pickle protocol used for cached artifacts and fingerprints.
PICKLE_PROTOCOL = 5

#: Paths (relative to ``src/repro``) whose content participates in cache
#: keys: everything that can change the bytes of a built DesignRecord.
_CODE_SCOPE = ("hdl", "bog", "sta", "synth", "liberty.py", "core/dataset.py")


@contextlib.contextmanager
def gc_paused() -> Iterator[None]:
    """Suspend the cyclic GC around (de)serialization of huge object graphs.

    Unpickling a multi-megabyte DesignRecord allocates millions of container
    objects; with the collector enabled, the allocation-count heuristic fires
    repeatedly over an ever-growing live heap, making ``pickle.loads`` 3-5x
    slower.  Nothing created mid-load is garbage, so pausing the collector is
    pure win.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    env = os.environ.get(CACHE_DIR_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_enabled() -> bool:
    """Whether the on-disk cache is enabled (``REPRO_CACHE=0`` disables)."""
    return os.environ.get(CACHE_ENABLE_ENV_VAR, "1") != "0"


# ---------------------------------------------------------------------------
# Content keys
# ---------------------------------------------------------------------------


def _code_paths() -> List[Path]:
    root = Path(__file__).resolve().parent.parent  # src/repro
    paths: List[Path] = []
    for entry in _CODE_SCOPE:
        path = root / entry
        if path.is_dir():
            paths.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            paths.append(path)
    return paths


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every build-relevant source file plus interpreter versions.

    Cached per process: source files do not change under a running session,
    and hashing the tree costs a few milliseconds we do not want on every
    record lookup.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    digest.update(f"python={sys.version_info[:2]}".encode())
    digest.update(f"numpy={np.__version__}".encode())
    digest.update(f"pickle={PICKLE_PROTOCOL}".encode())
    for path in _code_paths():
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def record_key(spec_or_source: Any, config: Any = None, name: Optional[str] = None) -> str:
    """Content-address of one DesignRecord build.

    ``spec_or_source`` mirrors :func:`repro.core.dataset.build_design_record`:
    either a :class:`~repro.hdl.generate.DesignSpec` or raw Verilog text.
    Frozen-dataclass ``repr`` is stable and covers every field, so it is used
    verbatim as the spec/config payload.
    """
    from repro.core.dataset import DatasetConfig
    from repro.hdl.generate import DesignSpec

    config = config or DatasetConfig()
    parts = ["design-record/v1", f"code={code_fingerprint()}", f"config={config!r}"]
    if isinstance(spec_or_source, DesignSpec):
        parts.append(f"spec={spec_or_source!r}")
    else:
        parts.append(f"name={name or 'user_design'}")
        parts.append(f"source={spec_or_source}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def record_fingerprint(record: Any) -> str:
    """Canonical content hash of a DesignRecord.

    Two normalizations make fingerprints byte-identical wherever the record
    came from (built serially, shipped back from a pool worker, or reloaded
    from the on-disk cache):

    * ``synthesis.runtime_seconds`` — the only wall-clock field — is zeroed;
    * the record is passed through one ``pickle`` dump/load roundtrip before
      the hashed dump.  A freshly built record shares interned string
      constants (e.g. the ``"register"`` kind markers) with process-global
      enum values, which pickle's memoization encodes as back-references; a
      loaded record holds equal-but-distinct copies, so raw dumps of the two
      differ while their *content* is identical.  One roundtrip collapses
      both to the same fixed point (verified idempotent by the runtime
      tests), after which byte equality means content equality.
    """
    synthesis = dataclasses.replace(record.synthesis, runtime_seconds=0.0)
    normalized = dataclasses.replace(record, synthesis=synthesis)
    with gc_paused():
        canonical = pickle.loads(pickle.dumps(normalized, protocol=PICKLE_PROTOCOL))
        blob = pickle.dumps(canonical, protocol=PICKLE_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/store counts for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ArtifactCache:
    """Pickle-valued key/value store with atomic writes and hit/miss stats.

    ``counter_prefix`` names the runtime-report counters this instance
    increments (``<prefix>_hits`` / ``<prefix>_misses`` / ...), so secondary
    caches layered on this store (e.g. the path-feature cache) report their
    traffic separately from the DesignRecord artifact cache.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        enabled: Optional[bool] = None,
        counter_prefix: str = "cache",
    ):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else bool(enabled)
        self.counter_prefix = counter_prefix
        self.stats = CacheStats()
        # Optional circuit breaker (duck-typed: allows/record_failure/
        # record_success), installed by the serving layer so a corrupt or
        # failing disk degrades to in-memory recompute instead of being
        # re-probed on every request.  None outside serving.
        self.breaker = None

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str, default: Optional[T] = None) -> Optional[T]:
        """Load the value stored under ``key``; ``default`` on any miss.

        A corrupt or unreadable entry (torn write from an old crash, pickle
        from an incompatible class layout) counts as a miss and is deleted so
        it cannot fail again.
        """
        if not self.enabled:
            self._miss()
            return default
        if self.breaker is not None and not self.breaker.allows():
            # Disk dependency is tripped: degrade straight to recompute.
            report_mod.incr(f"{self.counter_prefix}_breaker_skips")
            report_mod.incr("serve_degraded_cache_recompute")
            self._miss()
            return default
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
            if fault_fires("cache.corrupt_entry"):
                # Chaos: the read came back bit-flipped and truncated.
                blob = bytes([blob[0] ^ 0xFF]) + blob[1 : max(len(blob) // 2, 1)]
            with gc_paused():
                value = pickle.loads(blob)
        except FileNotFoundError:
            self._miss()
            return default
        except Exception:
            report_mod.incr(f"{self.counter_prefix}_corrupt")
            if self.breaker is not None:
                self.breaker.record_failure()
                report_mod.incr("serve_degraded_cache_recompute")
            try:
                path.unlink()
            except OSError:
                pass
            self._miss()
            return default
        self.stats.hits += 1
        report_mod.incr(f"{self.counter_prefix}_hits")
        if self.breaker is not None:
            self.breaker.record_success()
        return value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key`` atomically; False if storing failed.

        The cache is best-effort: a full disk or read-only directory must
        never break the build, so OS errors are swallowed.
        """
        if not self.enabled:
            return False
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle, gc_paused():
                    pickle.dump(value, handle, protocol=PICKLE_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            # Full disk, read-only directory, unpicklable value, recursion
            # limit on a pathological graph: none of these may break a build
            # that already succeeded.
            return False
        self.stats.stores += 1
        report_mod.incr(f"{self.counter_prefix}_stores")
        return True

    def load_or_build(self, key: str, builder: Callable[[], T]) -> T:
        """Return the cached value for ``key``, building and storing on miss."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = builder()
            self.put(key, value)
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        """Delete the entire cache directory."""
        shutil.rmtree(self.directory, ignore_errors=True)

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the cache fits ``max_bytes``.

        Every edit to a file in the key scope orphans the previous generation
        of entries (their keys become unreachable), so without eviction the
        directory grows by tens of megabytes per generation.  The engine calls
        this after storing new entries; entries just written or recently hit
        have fresh mtimes and survive.  ``max_bytes`` defaults to the
        ``REPRO_CACHE_MAX_MB`` environment variable (2048 MiB).  Returns the
        number of files deleted.
        """
        if not self.enabled:
            # A disabled cache (REPRO_CACHE=0 rebuild) must not mutate the
            # on-disk state it was told not to touch.
            return 0
        if max_bytes is None:
            try:
                max_bytes = int(os.environ.get(CACHE_MAX_MB_ENV_VAR, "2048")) * 1024 * 1024
            except ValueError:
                max_bytes = 2048 * 1024 * 1024
        entries = []
        total = 0
        try:
            # Only this cache's own two-level fan-out layout (<xx>/<key>.pkl):
            # nested sibling caches (e.g. the path-feature cache under
            # features/) manage their own budget and must not have their
            # entries charged against — or evicted by — this one.
            for path in self.directory.glob("[0-9a-f][0-9a-f]/*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        except OSError:
            return 0
        deleted = 0
        entries.sort()  # oldest first
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            deleted += 1
        if deleted:
            report_mod.incr(f"{self.counter_prefix}_evictions", deleted)
        return deleted

    def _miss(self) -> None:
        self.stats.misses += 1
        report_mod.incr(f"{self.counter_prefix}_misses")
