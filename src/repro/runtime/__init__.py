"""Execution engine: parallel builds, artifact caching, runtime reporting.

The three submodules compose into one engine for the whole stack:

* :mod:`repro.runtime.report` — structured per-stage wall-time / counter
  instrumentation (``RuntimeReport``) and the ``BENCH_runtime.json`` emitter
  consumed by the CI benchmark-trend job,
* :mod:`repro.runtime.cache` — a content-addressed on-disk artifact cache
  that persists elaborated ``DesignRecord`` objects between sessions and CI
  runs,
* :mod:`repro.runtime.parallel` — ``ProcessPoolExecutor`` fan-out for
  dataset construction with deterministic ordering and graceful serial
  fallback (``REPRO_JOBS=1``).

Submodules are imported lazily (PEP 562): low-level modules such as
:mod:`repro.hdl.generate` import ``repro.runtime.report`` for
instrumentation hooks, while :mod:`repro.runtime.parallel` imports
:mod:`repro.core.dataset` for the worker function — eager package imports
would tie those into a cycle.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    # report
    "RuntimeReport": "repro.runtime.report",
    "activate": "repro.runtime.report",
    "active_report": "repro.runtime.report",
    "stage": "repro.runtime.report",
    "incr": "repro.runtime.report",
    "write_bench_report": "repro.runtime.report",
    "BENCH_ENV_VAR": "repro.runtime.report",
    "DEFAULT_BENCH_PATH": "repro.runtime.report",
    # cache
    "ArtifactCache": "repro.runtime.cache",
    "CacheStats": "repro.runtime.cache",
    "cache_enabled": "repro.runtime.cache",
    "code_fingerprint": "repro.runtime.cache",
    "default_cache_dir": "repro.runtime.cache",
    "record_fingerprint": "repro.runtime.cache",
    "record_key": "repro.runtime.cache",
    "CACHE_DIR_ENV_VAR": "repro.runtime.cache",
    "CACHE_ENABLE_ENV_VAR": "repro.runtime.cache",
    "CACHE_MAX_MB_ENV_VAR": "repro.runtime.cache",
    # parallel
    "build_dataset_parallel": "repro.runtime.parallel",
    "parallel_build_records": "repro.runtime.parallel",
    "resolve_jobs": "repro.runtime.parallel",
    "JOBS_ENV_VAR": "repro.runtime.parallel",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
