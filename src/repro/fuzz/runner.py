"""Bounded differential-fuzz campaigns with shrinking and seed bundles.

A campaign walks a deterministic sequence of ``(seed, size_class)`` corpus
members, runs the configured oracles on each, and — on the first violation
for a design — *shrinks* the failing spec (dropping pipeline stages,
registers and data bits while the same oracle keeps failing) before writing
a self-contained JSON bundle to the artifacts directory.  Replaying a
bundle (``python -m repro.fuzz --replay bundle.json``) regenerates the
exact design and re-runs the failing oracle.

Stage timings are recorded into the active
:class:`~repro.runtime.report.RuntimeReport` under ``fuzz.*`` (the CLI
activates one and writes ``BENCH_runtime.json``), so CI fuzz lanes leave
the same perf trail as the benchmark harness.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults import FAULT_ENV_VAR
from repro.fuzz.corpus import (
    SIZE_CLASSES,
    FuzzDesign,
    construct_profile,
    generate_fuzz_design,
)
from repro.fuzz.oracles import DEFAULT_CADENCE, ORACLES, FuzzContext, OracleViolation
from repro.hdl.generate import DesignSpec, GeneratorConfig
from repro.runtime import report as report_mod

#: Version tag of the failing-seed bundle JSON schema.
BUNDLE_SCHEMA = "repro-fuzz-bundle/1"

#: Default directory for failing-seed bundles.
DEFAULT_ARTIFACTS_DIR = "fuzz_artifacts"

#: Spec fields the shrinker reduces, with their lower bounds, in the order
#: tried (structure first, then widths, then expression shape).
_SHRINK_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("stages", 1),
    ("regs_per_stage", 1),
    ("data_width", 1),
    ("expr_depth", 0),
    ("control_regs", 0),
)


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one bounded fuzz campaign."""

    seed: int = 0
    iterations: int = 25
    size_classes: Tuple[str, ...] = ("tiny", "small", "medium")
    checks: Tuple[str, ...] = tuple(ORACLES)
    cadence: Optional[Dict[str, int]] = None
    shrink: bool = True
    max_shrink_trials: int = 48
    artifacts_dir: Optional[str] = DEFAULT_ARTIFACTS_DIR
    stop_on_first: bool = False
    #: Wall-clock budget: no new design is started once this many seconds
    #: have elapsed (designs already started always finish, so violations
    #: are never half-reported).  ``None`` means unbounded.  Lets CI lanes
    #: include expensive size classes (``large``) at a flat time cost.
    max_seconds: Optional[float] = None

    def effective_cadence(self, check: str) -> int:
        cadence = self.cadence if self.cadence is not None else DEFAULT_CADENCE
        return max(1, int(cadence.get(check, 1)))


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    config: CampaignConfig
    n_designs: int = 0
    oracle_runs: Dict[str, int] = field(default_factory=dict)
    violations: List[OracleViolation] = field(default_factory=list)
    bundle_paths: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: True when ``max_seconds`` cut the campaign short of ``iterations``.
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "CLEAN" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        runs = ", ".join(f"{name}×{count}" for name, count in sorted(self.oracle_runs.items()))
        budget = " (budget exhausted)" if self.budget_exhausted else ""
        return (
            f"fuzz campaign seed={self.config.seed} designs={self.n_designs} "
            f"[{runs}] in {self.elapsed_seconds:.1f}s{budget}: {status}"
        )


def design_seed_for(campaign_seed: int, iteration: int) -> int:
    """The replayable per-design seed of one campaign iteration."""
    return campaign_seed * 1_000_003 + iteration


def _oracle_rng(design_seed: int, check: str) -> random.Random:
    # String seeding hashes through SHA-512, so this is stable across
    # processes regardless of PYTHONHASHSEED.
    return random.Random(f"repro-fuzz-oracle/{design_seed}/{check}")


def _run_oracle(fuzz: FuzzDesign, check: str, design_seed: int) -> List[str]:
    """One oracle on one design; crashes count as (reported) failures."""
    ctx = FuzzContext(fuzz)
    try:
        return ORACLES[check](ctx, _oracle_rng(design_seed, check))
    except Exception as exc:  # a stack crash on generated RTL is a finding
        return [f"oracle crashed: {type(exc).__name__}: {exc}"]


def shrink_design(
    fuzz: FuzzDesign,
    check: str,
    design_seed: int,
    max_trials: int = 48,
    messages: Optional[List[str]] = None,
) -> Tuple[FuzzDesign, List[str], int]:
    """Greedily reduce the failing spec while the oracle keeps failing.

    Tries, per spec field, the minimum first (one-shot collapse), then a
    halving step, then a decrement; repeats passes until no field shrinks or
    the trial budget runs out.  Returns the smallest still-failing design,
    its messages, and the number of regeneration trials spent.
    ``messages`` carries the already-observed failure so the unshrunk design
    is not rebuilt and re-checked a second time.
    """
    current = fuzz
    current_messages = (
        messages if messages is not None else _run_oracle(current, check, design_seed)
    )
    trials = 0
    progressed = True
    while progressed and trials < max_trials:
        progressed = False
        for field_name, minimum in _SHRINK_FIELDS:
            value = getattr(current.spec, field_name)
            candidates = [c for c in dict.fromkeys((minimum, value // 2, value - 1)) if minimum <= c < value]
            for candidate in candidates:
                if trials >= max_trials:
                    break
                trials += 1
                spec = dataclasses.replace(current.spec, **{field_name: candidate})
                reduced = generate_fuzz_design(
                    current.seed, current.size_class, spec=spec, config=current.config
                )
                messages = _run_oracle(reduced, check, design_seed)
                if messages:
                    current = reduced
                    current_messages = messages
                    progressed = True
                    break
        if current.spec.use_multiplier and trials < max_trials:
            trials += 1
            spec = dataclasses.replace(current.spec, use_multiplier=False)
            reduced = generate_fuzz_design(
                current.seed, current.size_class, spec=spec, config=current.config
            )
            messages = _run_oracle(reduced, check, design_seed)
            if messages:
                current = reduced
                current_messages = messages
                progressed = True
    return current, current_messages, trials


def write_bundle(
    directory: Path,
    fuzz: FuzzDesign,
    violation: OracleViolation,
    messages: List[str],
    shrunk: Optional[Tuple[FuzzDesign, List[str], int]] = None,
) -> Path:
    """Write one self-contained failing-seed bundle as JSON."""
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": BUNDLE_SCHEMA,
        "seed": fuzz.seed,
        "size_class": fuzz.size_class,
        "oracle": violation.oracle,
        "design": fuzz.name,
        "messages": messages,
        "spec": dataclasses.asdict(fuzz.spec),
        "config": dataclasses.asdict(fuzz.config),
        "constructs": sorted(construct_profile(fuzz.source)),
        "source": fuzz.source,
        "environment": {"fault_inject": os.environ.get(FAULT_ENV_VAR, "")},
        "replay": f"python -m repro.fuzz --replay {directory.name}/<this file>",
    }
    if shrunk is not None:
        reduced, reduced_messages, trials = shrunk
        payload["shrunk"] = {
            "spec": dataclasses.asdict(reduced.spec),
            "source": reduced.source,
            "messages": reduced_messages,
            "register_bits": reduced.spec.approx_register_bits,
            "trials": trials,
        }
    path = directory / f"bundle_seed{fuzz.seed}_{violation.oracle}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_bundle_design(path: os.PathLike) -> Tuple[FuzzDesign, str, Optional[str]]:
    """Regenerate the (shrunk, if available) design of a bundle.

    Returns the design, the oracle name to re-run, and the source text the
    bundle recorded for that design.  The design is rebuilt from the
    bundle's spec/config — not its stored source — so a replay exercises the
    current generator; callers compare the regenerated source against the
    recorded one to detect generator drift.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(f"unsupported bundle schema {payload.get('schema')!r}")
    section = payload.get("shrunk") or payload
    spec = DesignSpec(**section["spec"])
    config = GeneratorConfig(**payload["config"])
    fuzz = generate_fuzz_design(
        payload["seed"], payload["size_class"], spec=spec, config=config
    )
    return fuzz, payload["oracle"], section.get("source")


def replay_bundle(path: os.PathLike) -> List[str]:
    """Re-run a bundle's failing oracle; returns its (hopefully empty) messages.

    A non-empty result means the bundle still fails — or can no longer be
    replayed faithfully: if the current generator no longer reproduces the
    bundle's recorded source from its ``(seed, spec, config)``, the drift is
    reported as a message instead of silently checking different RTL.
    """
    fuzz, oracle, recorded_source = load_bundle_design(path)
    messages = []
    if recorded_source is not None and recorded_source != fuzz.source:
        messages.append(
            "generator drift: regenerated source differs from the bundle's recorded "
            "source; the oracle result below is for the *regenerated* design"
        )
    messages.extend(_run_oracle(fuzz, oracle, design_seed=fuzz.seed))
    return messages


def run_campaign(config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Run one bounded fuzz campaign."""
    config = config or CampaignConfig()
    unknown_classes = [c for c in config.size_classes if c not in SIZE_CLASSES]
    if unknown_classes or not config.size_classes:
        raise ValueError(
            f"unknown size classes {unknown_classes!r}; choose from {sorted(SIZE_CLASSES)}"
        )
    unknown_checks = [c for c in config.checks if c not in ORACLES]
    if unknown_checks:
        raise ValueError(
            f"unknown checks {unknown_checks!r}; choose from {sorted(ORACLES)}"
        )
    result = CampaignResult(config=config)
    artifacts = Path(config.artifacts_dir) if config.artifacts_dir else None
    started = time.perf_counter()
    with report_mod.stage("fuzz.campaign"):
        for iteration in range(config.iterations):
            if (
                config.max_seconds is not None
                and time.perf_counter() - started >= config.max_seconds
            ):
                result.budget_exhausted = True
                break
            size_class = config.size_classes[iteration % len(config.size_classes)]
            seed = design_seed_for(config.seed, iteration)
            with report_mod.stage("fuzz.generate"):
                fuzz = generate_fuzz_design(seed, size_class)
            result.n_designs += 1
            report_mod.incr("fuzz_designs")
            for check in config.checks:
                if iteration % config.effective_cadence(check) != 0:
                    continue
                with report_mod.stage(f"fuzz.oracle.{check}"):
                    messages = _run_oracle(fuzz, check, seed)
                result.oracle_runs[check] = result.oracle_runs.get(check, 0) + 1
                report_mod.incr("fuzz_oracle_runs")
                if not messages:
                    continue
                report_mod.incr("fuzz_violations")
                violation = OracleViolation(
                    oracle=check,
                    design=fuzz.name,
                    seed=seed,
                    size_class=size_class,
                    message="; ".join(messages),
                )
                result.violations.append(violation)
                shrunk = None
                if config.shrink:
                    with report_mod.stage("fuzz.shrink"):
                        shrunk = shrink_design(
                            fuzz,
                            check,
                            seed,
                            max_trials=config.max_shrink_trials,
                            messages=messages,
                        )
                if artifacts is not None:
                    bundle = write_bundle(artifacts, fuzz, violation, messages, shrunk)
                    result.bundle_paths.append(str(bundle))
                if config.stop_on_first:
                    result.elapsed_seconds = time.perf_counter() - started
                    return result
    result.elapsed_seconds = time.perf_counter() - started
    return result


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Cross-stack differential fuzzing over random RTL designs.",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    parser.add_argument(
        "--iterations", type=int, default=25, help="number of designs (default 25)"
    )
    parser.add_argument(
        "--size-classes",
        default="tiny,small,medium",
        help=f"comma list cycled per iteration, from {sorted(SIZE_CLASSES)}",
    )
    parser.add_argument(
        "--checks",
        default=",".join(ORACLES),
        help="comma list of oracles to run (default: all)",
    )
    parser.add_argument(
        "--artifacts-dir",
        default=DEFAULT_ARTIFACTS_DIR,
        help="where failing-seed bundles are written",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking failing designs"
    )
    parser.add_argument(
        "--max-shrink-trials", type=int, default=48, help="shrink regeneration budget"
    )
    parser.add_argument(
        "--stop-on-first", action="store_true", help="stop at the first violation"
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget; no new design starts after this (default: unbounded)",
    )
    parser.add_argument(
        "--bench-out",
        default=None,
        help="runtime-report path (default: $REPRO_BENCH_OUT or BENCH_runtime.json)",
    )
    parser.add_argument(
        "--replay", default=None, metavar="BUNDLE", help="re-run one failing-seed bundle"
    )
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    if args.replay:
        messages = replay_bundle(args.replay)
        if messages:
            print(f"bundle still fails ({len(messages)} message(s)):")
            for message in messages:
                print(f"  - {message}")
            return 1
        print("bundle no longer reproduces (fixed or environment-dependent)")
        return 0

    unknown = [c for c in args.checks.split(",") if c and c not in ORACLES]
    if unknown:
        print(f"unknown checks: {', '.join(unknown)}; available: {', '.join(ORACLES)}")
        return 2
    bad_classes = [s for s in args.size_classes.split(",") if s and s not in SIZE_CLASSES]
    if bad_classes:
        print(
            f"unknown size classes: {', '.join(bad_classes)}; "
            f"available: {', '.join(sorted(SIZE_CLASSES))}"
        )
        return 2
    config = CampaignConfig(
        seed=args.seed,
        iterations=args.iterations,
        size_classes=tuple(s for s in args.size_classes.split(",") if s),
        checks=tuple(c for c in args.checks.split(",") if c),
        shrink=not args.no_shrink,
        max_shrink_trials=args.max_shrink_trials,
        artifacts_dir=args.artifacts_dir,
        stop_on_first=args.stop_on_first,
        max_seconds=args.max_seconds,
    )
    report = report_mod.RuntimeReport(meta={"fuzz_seed": config.seed})
    with report_mod.activate(report):
        result = run_campaign(config)
    print(result.summary())
    for violation in result.violations:
        print(f"  [{violation.oracle}] seed={violation.seed} {violation.design}: {violation.message}")
    for bundle in result.bundle_paths:
        print(f"  bundle: {bundle}")
    destination = report.write(args.bench_out)
    print(f"runtime report: {destination}")
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
