"""``python -m repro.fuzz`` entry point."""

import sys

from repro.fuzz.runner import main

sys.exit(main())
