"""Differential equivalence oracles run on every fuzz design.

Each oracle pits two independent implementations of the same contract
against each other on randomized inputs and reports human-readable
violation messages (empty list == clean):

* ``interpret_vs_simulate`` — the word-level interpreter against bit-blasted
  simulation of all four BOG variants, bit for bit, under random stimulus;
* ``incremental_vs_full`` — the dirty-cone incremental STA against a full
  re-analysis after random patch sequences (1e-9, bit-identical in practice);
* ``hist_vs_exact_gbm`` — the histogram GBM splitter against the exact
  reference splitter on the design's extracted path features, plus flattened
  (``FlatTree``) against recursive prediction;
* ``build_determinism`` — a from-scratch rebuild and an artifact-cache
  round-trip must reproduce the record byte-for-byte
  (:func:`~repro.runtime.cache.record_fingerprint`);
* ``parallel_vs_serial`` — pool-worker record builds must be byte-identical
  to in-process builds;
* ``array_vs_reference_sta`` — the level-sweep array STA kernel against the
  per-vertex reference kernel, bit for bit, on pseudo networks with
  randomized derates and wire loads;
* ``packed_vs_scalar_sim`` — uint64 bit-packed batch simulation against the
  scalar evaluator, lane by lane, on every BOG variant;
* ``optimize_search`` — the search-based optimizer: replay determinism of a
  random short campaign, accepted-candidate scores against a from-scratch
  re-analysis, and Pareto-front dominance integrity through the pure
  predicate (catches the ``optimize.dominance`` fault).

A :class:`FuzzContext` lazily shares the expensive artifacts (analyzed
design, BOG variants, full DesignRecord) between the oracles of one design.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.bog.builder import bit_name
from repro.bog.simulate import (
    PACKED_LANES,
    evaluate_nodes,
    evaluate_nodes_packed,
    evaluate_signal_words,
    pack_source_vectors,
    unpack_lane,
)
from repro.bog.transforms import build_variants
from repro.core.dataset import DesignRecord, build_design_record
from repro.core.features import extract_path_dataset
from repro.core.optimize import ranking_from_labels
from repro.fuzz.corpus import FuzzDesign
from repro.hdl.design import Design
from repro.hdl.interpret import Interpreter
from repro.incremental.engine import IncrementalSTA
from repro.incremental.patches import AddExtraLoad, RewireFanins, SetDerate, SwapCell
from repro.incremental.whatif import WhatIfConfig, patches_for_options
from repro.ml.tree import DecisionTreeRegressor, NewtonTreeRegressor, resolve_max_bins
from repro.optimize.artifact import canonical_payload
from repro.optimize.pareto import dominates
from repro.optimize.search import SearchConfig, run_search
from repro.optimize.space import CandidateSpec
from repro.runtime.cache import ArtifactCache, record_fingerprint
from repro.runtime.parallel import parallel_build_records
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import analyze as sta_analyze
from repro.sta.network import VertexKind, from_bog

#: Numeric tolerance of the incremental-vs-full oracle (matches the
#: property tests in ``tests/test_incremental.py``; both paths share
#: ``propagate_vertex`` so agreement is bit-for-bit in practice).
STA_TOLERANCE = 1e-9

def _gbm_row_cap() -> int:
    """Row cap for the splitter-equivalence fit.

    At most as many rows as the *effective* histogram bin budget
    (``REPRO_GBM_BINS``-aware) keeps every feature column's distinct-value
    count within the budget, the regime where histogram and exact splits are
    defined to coincide.
    """
    return resolve_max_bins()


@dataclass(frozen=True)
class OracleViolation:
    """One confirmed disagreement between two stack implementations."""

    oracle: str
    design: str
    seed: int
    size_class: str
    message: str


class FuzzContext:
    """Lazily shared per-design artifacts for one oracle pass."""

    def __init__(self, fuzz: FuzzDesign):
        self.fuzz = fuzz
        self._design: Optional[Design] = None
        self._variants = None
        self._record: Optional[DesignRecord] = None

    @property
    def design(self) -> Design:
        if self._design is None:
            self._design = self.fuzz.analyzed()
        return self._design

    @property
    def variants(self):
        if self._variants is None:
            self._variants = build_variants(self.design)
        return self._variants

    @property
    def record(self) -> DesignRecord:
        # Built with default naming so determinism oracles can compare against
        # pool-worker builds (which cannot pass a name for raw sources).
        if self._record is None:
            self._record = build_design_record(self.fuzz.source)
        return self._record


OracleFn = Callable[[FuzzContext, random.Random], List[str]]


def interpret_vs_simulate(
    ctx: FuzzContext, rng: random.Random, n_vectors: int = 4
) -> List[str]:
    """hdl.interpret vs bog.simulate, bit for bit, on every variant."""
    design = ctx.design
    interpreter = Interpreter(design)
    problems: List[str] = []
    driven = design.inputs + design.register_signals
    max_problems = 4  # one mismatch usually repeats across variants/vectors
    for vector in range(n_vectors):
        if len(problems) >= max_problems:
            break
        values = {signal.name: rng.getrandbits(signal.width) for signal in driven}
        reference = interpreter.evaluate_step(values)
        source_bits = {
            bit_name(signal.name, i): (values[signal.name] >> i) & 1
            for signal in driven
            for i in range(signal.width)
        }
        for variant, graph in ctx.variants.items():
            words = evaluate_signal_words(graph, source_bits)
            for signal in design.register_signals + design.outputs:
                if signal.name not in words:
                    continue
                if words[signal.name] != reference[signal.name]:
                    problems.append(
                        f"vector {vector}: {variant} computes "
                        f"{signal.name}={words[signal.name]:#x}, interpreter says "
                        f"{reference[signal.name]:#x} (stimulus {values!r})"
                    )
                    if len(problems) >= max_problems:
                        return problems
    return problems


def _random_patches(network, rng: random.Random, count: int):
    """A random acyclic patch mix, guaranteed to include one load patch."""
    gates = [v.id for v in network.vertices if v.kind is VertexKind.GATE]
    loadable = [
        v.id for v in network.vertices if v.kind in (VertexKind.GATE, VertexKind.REGISTER)
    ]
    if not loadable:
        return []
    position = {v: i for i, v in enumerate(network.topological_order())}
    patches = [AddExtraLoad(rng.choice(loadable), rng.uniform(0.5, 8.0))]
    attempts = 0
    while len(patches) < count and attempts < count * 4:
        attempts += 1
        kind = rng.choice(("derate", "swap", "load", "rewire"))
        if kind == "load":
            patches.append(AddExtraLoad(rng.choice(loadable), rng.uniform(0.1, 8.0)))
            continue
        if not gates:
            continue
        vertex = rng.choice(gates)
        if kind == "derate":
            patches.append(SetDerate(vertex, rng.uniform(0.4, 1.6)))
        elif kind == "swap":
            cell = network.vertices[vertex].cell
            alternative = network.library.upsize(cell) or network.library.downsize(cell)
            if alternative is not None:
                patches.append(SwapCell(vertex, alternative))
        else:
            fanins = network.vertices[vertex].fanins
            upstream = [
                u for u in position if position[u] < position[vertex] and u not in fanins
            ]
            if fanins and upstream:
                rewired = list(fanins)
                rewired[rng.randrange(len(rewired))] = rng.choice(upstream)
                patches.append(RewireFanins(vertex, rewired))
    return patches


def incremental_vs_full(
    ctx: FuzzContext, rng: random.Random, n_rounds: int = 3
) -> List[str]:
    """Dirty-cone incremental STA vs full re-analysis over random patches."""
    record = ctx.record
    network = record.synthesis.netlist
    engine = IncrementalSTA(network, record.clock, baseline=record.synthesis.report)
    problems: List[str] = []
    for round_index in range(n_rounds):
        patches = _random_patches(network, rng, rng.randint(1, 8))
        if not patches:
            return problems
        with engine.what_if(patches) as incremental:
            full = sta_analyze(network, record.clock)
            for label, inc_array, full_array in (
                ("arrivals", incremental.arrivals, full.arrivals),
                ("slews", incremental.slews, full.slews),
                ("loads", incremental.loads, full.loads),
            ):
                worst = float(np.max(np.abs(inc_array - full_array), initial=0.0))
                if worst > STA_TOLERANCE:
                    problems.append(
                        f"round {round_index}: incremental {label} diverge from full "
                        f"re-analysis by {worst:.3e} (> {STA_TOLERANCE}) after "
                        f"{len(patches)} patches"
                    )
            if (
                abs(incremental.wns - full.wns) > STA_TOLERANCE
                or abs(incremental.tns - full.tns) > STA_TOLERANCE
            ):
                problems.append(
                    f"round {round_index}: WNS/TNS mismatch "
                    f"({incremental.wns:.9f}/{incremental.tns:.9f} vs "
                    f"{full.wns:.9f}/{full.tns:.9f})"
                )
        if problems:
            return problems
    return problems


def _dyadic(values: np.ndarray) -> np.ndarray:
    """Quantize to multiples of 1/64 so sums/products are exact in float64.

    The hist splitter derives sibling histograms by parent-minus-child
    subtraction, so on arbitrary floats its per-node sums can drift from the
    exact splitter's sorted cumulative sums by accumulated rounding — enough
    to flip gain ties between correlated features at deep nodes (found by
    this very fuzzer).  On dyadic inputs every histogram/cumsum/subtraction
    is exact, the two splitters' gains agree bit for bit at any depth, and
    the oracle tests the algorithmic contract (candidate cuts, partitions,
    tie-breaking, leaf constraints) instead of float-summation association.
    """
    return np.round(np.asarray(values, dtype=float) * 64.0) / 64.0


def hist_vs_exact_gbm(ctx: FuzzContext, rng: random.Random) -> List[str]:
    """Histogram vs exact splitter (and flat vs recursive predict)."""
    dataset = extract_path_dataset(ctx.record, variant="sog")
    X = np.asarray(dataset.features, dtype=float)
    if len(X) < 2:
        return []
    row_cap = _gbm_row_cap()
    if len(X) > row_cap:
        X = X[:row_cap]
        groups = dataset.groups[:row_cap]
    else:
        groups = dataset.groups
    X = _dyadic(X)
    y = _dyadic(np.asarray(dataset.endpoint_labels, dtype=float)[groups])
    problems: List[str] = []
    depth = rng.choice((2, 4, 6))
    for label, exact_tree, hist_tree in (
        (
            "variance",
            DecisionTreeRegressor(splitter="exact", max_depth=depth, min_samples_leaf=1),
            DecisionTreeRegressor(splitter="hist", max_depth=depth, min_samples_leaf=1),
        ),
        (
            "newton",
            NewtonTreeRegressor(splitter="exact", max_depth=depth),
            NewtonTreeRegressor(splitter="hist", max_depth=depth),
        ),
    ):
        exact_tree.fit(X, y)
        hist_tree.fit(X, y)
        exact_pred = exact_tree.predict(X)
        hist_pred = hist_tree.predict(X)
        if not np.array_equal(exact_pred, hist_pred):
            worst = float(np.max(np.abs(exact_pred - hist_pred)))
            problems.append(
                f"{label} tree (depth {depth}, {len(X)} paths): hist splitter "
                f"diverges from exact splitter by {worst:.3e}"
            )
        for name, tree in (("exact", exact_tree), ("hist", hist_tree)):
            flat = tree.predict(X)
            recursive = tree.predict_recursive(X)
            if not np.array_equal(flat, recursive):
                problems.append(
                    f"{label}/{name} tree: FlatTree predict diverges from "
                    f"predict_recursive"
                )
    return problems


def build_determinism(ctx: FuzzContext, rng: random.Random) -> List[str]:
    """Rebuild + cache round-trip must reproduce the record byte-for-byte."""
    first = record_fingerprint(ctx.record)
    rebuilt = build_design_record(ctx.fuzz.source)
    problems: List[str] = []
    if record_fingerprint(rebuilt) != first:
        problems.append("cache-off rebuild produced a different record fingerprint")
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
        cache = ArtifactCache(tmp, enabled=True)
        cache.put("fuzz-roundtrip", ctx.record)
        loaded = cache.get("fuzz-roundtrip")
        if loaded is None:
            problems.append("artifact cache lost the stored record")
        elif record_fingerprint(loaded) != first:
            problems.append("artifact-cache round-trip changed the record fingerprint")
    return problems


def parallel_vs_serial(ctx: FuzzContext, rng: random.Random) -> List[str]:
    """Pool-worker builds must be byte-identical to in-process builds."""
    serial = record_fingerprint(ctx.record)
    built = parallel_build_records([ctx.fuzz.source, ctx.fuzz.source], jobs=2)
    problems: List[str] = []
    for index, record in enumerate(built):
        fingerprint = record_fingerprint(record)
        if fingerprint != serial:
            problems.append(
                f"parallel worker build {index} fingerprint {fingerprint[:12]} != "
                f"serial {serial[:12]}"
            )
    return problems


def array_vs_reference_sta(ctx: FuzzContext, rng: random.Random) -> List[str]:
    """Array level-sweep STA kernel vs the per-vertex reference, bit for bit.

    Runs on pseudo networks lowered from two BOG variants (no synthesis, so
    the oracle stays cheap enough for the ``large`` size class) with
    randomized derates and wire loads thrown in to exercise the attribute
    columns, not just the compiled structure.
    """
    clock = ClockConstraint(period=1000.0)
    problems: List[str] = []
    for variant in ("sog", "xag"):
        network = from_bog(ctx.variants[variant])
        n = len(network.vertices)
        for _ in range(min(16, n)):
            vertex = network.vertices[rng.randrange(n)]
            vertex.derate = rng.uniform(0.4, 1.6)
            vertex.extra_load = rng.uniform(0.0, 6.0)
        reference = sta_analyze(network, clock, kernel="reference")
        array = sta_analyze(network, clock, kernel="array")
        for label, ref_values, array_values in (
            ("loads", reference.loads, array.loads),
            ("arrivals", reference.arrivals, array.arrivals),
            ("slews", reference.slews, array.slews),
        ):
            if not np.array_equal(ref_values, array_values):
                worst = float(np.max(np.abs(ref_values - array_values)))
                problems.append(
                    f"{variant}: array kernel {label} diverge from the reference "
                    f"kernel by {worst:.3e} (bit-identical required)"
                )
        if reference.wns != array.wns or reference.tns != array.tns:
            problems.append(
                f"{variant}: WNS/TNS mismatch between kernels "
                f"({array.wns:.9f}/{array.tns:.9f} vs "
                f"{reference.wns:.9f}/{reference.tns:.9f})"
            )
        if problems:
            return problems
    return problems


def packed_vs_scalar_sim(
    ctx: FuzzContext, rng: random.Random, n_check_lanes: int = 6
) -> List[str]:
    """uint64 bit-packed batch simulation vs the scalar evaluator, per lane.

    Packs 64 random stimulus vectors per variant, then cross-checks a random
    sample of lanes (plus lane 0 and 63, the word boundaries) against the
    scalar reference evaluator on the identical assignment.
    """
    problems: List[str] = []
    for variant, graph in ctx.variants.items():
        names = list(graph.sources)
        vectors = [
            {name: rng.getrandbits(1) for name in names} for _ in range(PACKED_LANES)
        ]
        packed_values = evaluate_nodes_packed(graph, pack_source_vectors(vectors))
        lanes = {0, PACKED_LANES - 1}
        lanes.update(rng.sample(range(PACKED_LANES), n_check_lanes))
        for lane in sorted(lanes):
            scalar = evaluate_nodes(graph, vectors[lane])
            lane_values = unpack_lane(packed_values, lane)
            if lane_values != scalar:
                first = next(
                    i for i, (a, b) in enumerate(zip(lane_values, scalar)) if a != b
                )
                problems.append(
                    f"{variant}: packed lane {lane} diverges from scalar "
                    f"evaluation, first at node {first} "
                    f"({graph.nodes[first].type.value}: packed "
                    f"{lane_values[first]}, scalar {scalar[first]})"
                )
                break
        if problems:
            return problems
    return problems


def optimize_search(ctx: FuzzContext, rng: random.Random) -> List[str]:
    """Search-based optimizer: determinism, score honesty, front integrity.

    Three contracts on one short random campaign:

    * two runs of the same ``(seed, strategy, budget)`` serialize
      byte-identical canonical payloads (replay determinism);
    * every accepted candidate's logged incremental score is reproduced by a
      fresh engine *and* agrees with a from-scratch full re-analysis of the
      same patched netlist to ``STA_TOLERANCE`` (the incremental-vs-full
      contract the search budget rests on);
    * the returned Pareto front, audited through the *pure*
      :func:`repro.optimize.pareto.dominates`, contains no point beaten by
      the default-options baseline and no dominated pair — this is the check
      that catches the ``optimize.dominance`` fault.
    """
    record = ctx.record
    ranking = ranking_from_labels(record)
    if not ranking:
        return []
    strategy = rng.choice(("anneal", "evolution"))
    config = SearchConfig(
        strategy=strategy, budget=8, seed=rng.randrange(1 << 16), reanchor_every=4
    )
    cache = ArtifactCache(enabled=False)
    first = run_search(record, ranking, config, cache=cache)
    second = run_search(record, ranking, config, cache=cache)
    problems: List[str] = []
    if canonical_payload(first) != canonical_payload(second):
        problems.append(
            f"{strategy} campaign (seed {config.seed}, budget {config.budget}): "
            f"two runs of the same (seed, strategy, budget) produce different "
            f"canonical payloads — search is not replay-deterministic"
        )
        return problems

    # Score honesty: re-derive up to four accepted moves from their logged
    # specs and re-time them both incrementally and from scratch.
    netlist = record.synthesis.netlist
    baseline_report = record.synthesis.report
    whatif_config = WhatIfConfig()
    checked = 0
    for entry in first.trajectory:
        if entry.kind != "eval" or not entry.accepted or entry.spec is None:
            continue
        spec = CandidateSpec.from_dict(entry.spec)
        options = spec.realize(ranking, seed=config.seed)
        patches = patches_for_options(netlist, baseline_report, options, whatif_config)
        if patches:
            engine = IncrementalSTA(netlist, record.clock, baseline=baseline_report)
            with engine.what_if(patches) as incremental:
                full = sta_analyze(netlist, record.clock)
                worst = float(
                    np.max(np.abs(incremental.arrivals - full.arrivals), initial=0.0)
                )
                worst = max(
                    worst,
                    abs(incremental.wns - full.wns),
                    abs(incremental.tns - full.tns),
                )
                wns, tns = float(incremental.wns), float(incremental.tns)
            if worst > STA_TOLERANCE:
                problems.append(
                    f"accepted candidate at step {entry.step}: incremental score "
                    f"diverges from full re-analysis by {worst:.3e} "
                    f"(> {STA_TOLERANCE}) over {len(patches)} patches"
                )
        else:
            wns = float(baseline_report.wns)
            tns = float(baseline_report.tns)
        if abs(wns - entry.wns) > STA_TOLERANCE or abs(tns - entry.tns) > STA_TOLERANCE:
            problems.append(
                f"accepted candidate at step {entry.step}: logged score "
                f"({entry.wns:.9f}/{entry.tns:.9f}) does not match the re-derived "
                f"score ({wns:.9f}/{tns:.9f})"
            )
        checked += 1
        if checked >= 4 or problems:
            break
    if problems:
        return problems

    # Front integrity via the pure dominance predicate (the fault tooth only
    # disables filtering inside ``ParetoFront.insert``, never this check).
    points = first.front.points
    for point in points:
        if point.key != first.baseline.key and dominates(first.baseline, point):
            problems.append(
                f"front point {point.key[:12]} (wns={point.wns:.4f}, "
                f"area={point.area:.2f}) is dominated by the default-options "
                f"baseline (wns={first.baseline.wns:.4f}, "
                f"area={first.baseline.area:.2f})"
            )
    for i, a in enumerate(points):
        for b in points[i + 1 :]:
            if dominates(a, b) or dominates(b, a):
                problems.append(
                    f"front keeps a dominated pair: {a.key[:12]} "
                    f"(wns={a.wns:.4f}, area={a.area:.2f}) vs {b.key[:12]} "
                    f"(wns={b.wns:.4f}, area={b.area:.2f})"
                )
        if problems:
            break
    return problems


#: Registry: oracle name -> callable.  ``DEFAULT_CADENCE`` spaces out the
#: oracles whose cost is a full extra record build.
ORACLES: Dict[str, OracleFn] = {
    "interpret_vs_simulate": interpret_vs_simulate,
    "incremental_vs_full": incremental_vs_full,
    "hist_vs_exact_gbm": hist_vs_exact_gbm,
    "build_determinism": build_determinism,
    "parallel_vs_serial": parallel_vs_serial,
    "array_vs_reference_sta": array_vs_reference_sta,
    "packed_vs_scalar_sim": packed_vs_scalar_sim,
    "optimize_search": optimize_search,
}

DEFAULT_CADENCE: Dict[str, int] = {
    "interpret_vs_simulate": 1,
    "incremental_vs_full": 1,
    "hist_vs_exact_gbm": 1,
    "build_determinism": 5,
    "parallel_vs_serial": 12,
    "array_vs_reference_sta": 1,
    "packed_vs_scalar_sim": 1,
    "optimize_search": 3,
}
