"""Cross-stack differential fuzzing.

A seed-replayable random-RTL corpus (:mod:`repro.fuzz.corpus`), differential
equivalence oracles spanning every stage of the stack
(:mod:`repro.fuzz.oracles`), and a bounded campaign runner with shrinking and
failing-seed bundles (:mod:`repro.fuzz.runner`), exposed as
``python -m repro.fuzz``.
"""

from repro.fuzz.corpus import (
    SIZE_CLASSES,
    FuzzDesign,
    construct_profile,
    fixed_suite_constructs,
    generate_fuzz_design,
)
from repro.fuzz.oracles import ORACLES, FuzzContext, OracleViolation
from repro.fuzz.runner import CampaignConfig, CampaignResult, main, run_campaign

__all__ = [
    "SIZE_CLASSES",
    "FuzzDesign",
    "construct_profile",
    "fixed_suite_constructs",
    "generate_fuzz_design",
    "ORACLES",
    "FuzzContext",
    "OracleViolation",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "main",
]
