"""Compositional random-RTL corpus for differential fuzzing.

Every fuzz design is a pure function of a ``(seed, size_class)`` pair: the
seed drives one explicit ``random.Random`` that samples a
:class:`~repro.hdl.generate.DesignSpec` (module shape) and a
:class:`~repro.hdl.generate.GeneratorConfig` (construct mix), and a second
derived stream drives the statement-level generator itself.  Replaying the
pair regenerates the identical Verilog source, which is what makes failing
seeds shippable as JSON bundles.

The corpus deliberately reaches beyond the 21 fixed benchmark designs:

* the full construct grammar the parser supports — nested ``if``/``else``
  trees, replication ``{N{...}}``, reduction operators, split part-select
  assigns, the complete comparison/logical alphabet, concat/slice, variable
  shifts and rotates, mixed-width arithmetic;
* degenerate shapes the fixed suite never produces — 1-bit datapaths,
  single-register single-stage modules, zero control registers;
* deep pipelines and fan-in-heavy mux cones at the top of each size class.

:func:`construct_profile` classifies a source by the AST constructs it
contains; the corpus-coverage test asserts that the fuzz corpus exercises
constructs absent from every fixed design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Optional, Tuple

from repro.hdl.ast_nodes import (
    BinaryOp,
    Concat,
    Expression,
    IfStatement,
    Module,
    PartSelect,
    Repeat,
    Statement,
    Ternary,
    UnaryOp,
)
from repro.hdl.design import Design, analyze
from repro.hdl.generate import (
    BENCHMARK_SPECS,
    DesignSpec,
    GeneratorConfig,
    generate_design,
)
from repro.hdl.parser import parse_source

_FAMILIES = ("itc99", "opencores", "chipyard", "vexriscv")

#: Reduction operators (1-bit result over a word operand).
_REDUCTION_OPS = frozenset({"&", "|", "^", "~&", "~|", "~^", "^~", "!"})

#: Comparison/logical binary operators outside the fixed designs' alphabet.
_RICH_COMPARE_OPS = frozenset({"!=", ">", ">=", "<=", "&&", "||"})


@dataclass(frozen=True)
class SizeClass:
    """Inclusive sampling ranges for one corpus size class."""

    name: str
    data_width: Tuple[int, int]
    stages: Tuple[int, int]
    regs_per_stage: Tuple[int, int]
    control_regs: Tuple[int, int]
    expr_depth: Tuple[int, int]
    #: Probability that the design collapses to a degenerate shape
    #: (1-bit datapath and/or a single register).
    degenerate_probability: float = 0.15


SIZE_CLASSES: Dict[str, SizeClass] = {
    "tiny": SizeClass("tiny", (1, 6), (1, 2), (1, 3), (0, 3), (1, 3), 0.25),
    "small": SizeClass("small", (2, 10), (2, 4), (2, 4), (0, 4), (2, 4), 0.1),
    "medium": SizeClass("medium", (6, 16), (3, 6), (3, 6), (2, 6), (2, 5), 0.0),
    # 1k+ node designs for the array/packed kernel oracles; too slow for
    # synthesis-heavy oracles, so campaigns pair it with a check subset and
    # a wall-clock budget (``CampaignConfig.max_seconds``).
    "large": SizeClass("large", (16, 32), (6, 10), (6, 10), (4, 8), (3, 6), 0.0),
}


@dataclass(frozen=True)
class FuzzDesign:
    """One replayable corpus member: ``(seed, size_class)`` plus its expansion."""

    seed: int
    size_class: str
    spec: DesignSpec
    config: GeneratorConfig
    source: str

    @property
    def name(self) -> str:
        return self.spec.name

    def analyzed(self) -> Design:
        """Parse and analyze the source (not cached; callers hold the result)."""
        return analyze(parse_source(self.source), source=self.source)


def _draw(rng: random.Random, bounds: Tuple[int, int]) -> int:
    return rng.randint(bounds[0], bounds[1])


def sample_spec(
    seed: int, size_class: str = "small"
) -> Tuple[DesignSpec, GeneratorConfig]:
    """Sample the ``(spec, config)`` pair for one fuzz design.

    Deterministic in ``(seed, size_class)``; the statement-level generator
    stream is derived from the same seed (see :func:`generate_fuzz_design`).
    """
    klass = SIZE_CLASSES[size_class]
    rng = random.Random(f"repro-fuzz/{size_class}/{seed}")
    data_width = _draw(rng, klass.data_width)
    stages = _draw(rng, klass.stages)
    regs_per_stage = _draw(rng, klass.regs_per_stage)
    control_regs = _draw(rng, klass.control_regs)
    expr_depth = _draw(rng, klass.expr_depth)
    if rng.random() < klass.degenerate_probability:
        # Degenerate corner: a 1-bit and/or single-register design.
        if rng.random() < 0.5:
            data_width = 1
        if rng.random() < 0.5:
            stages, regs_per_stage = 1, 1
    spec = DesignSpec(
        name=f"fuzz_{size_class}_{seed}",
        family=rng.choice(_FAMILIES),
        hdl_type="Verilog",
        seed=rng.randrange(1 << 31),
        data_width=data_width,
        stages=stages,
        regs_per_stage=regs_per_stage,
        control_regs=control_regs,
        expr_depth=expr_depth,
        use_multiplier=rng.random() < 0.2,
    )
    config = GeneratorConfig(
        max_expr_depth=expr_depth,
        enable_probability=rng.uniform(0.3, 0.7),
        feedback_probability=rng.uniform(0.1, 0.5),
        output_fraction=rng.uniform(0.15, 0.5),
        reduction_probability=rng.uniform(0.1, 0.3),
        replicate_probability=rng.uniform(0.08, 0.25),
        nested_if_probability=rng.uniform(0.2, 0.5),
        partselect_assign_probability=rng.uniform(0.15, 0.4),
        rich_compare_probability=rng.uniform(0.1, 0.3),
        width_jitter_probability=rng.uniform(0.1, 0.4),
    )
    return spec, config


def generate_fuzz_design(
    seed: int,
    size_class: str = "small",
    spec: Optional[DesignSpec] = None,
    config: Optional[GeneratorConfig] = None,
) -> FuzzDesign:
    """Expand a ``(seed, size_class)`` pair into a full corpus member.

    ``spec``/``config`` override the sampled pair (used by the shrinker to
    regenerate with a reduced spec while keeping the seed's RNG streams).
    """
    sampled_spec, sampled_config = sample_spec(seed, size_class)
    spec = sampled_spec if spec is None else spec
    config = sampled_config if config is None else config
    body_rng = random.Random(f"repro-fuzz-body/{size_class}/{seed}")
    source = generate_design(spec, config, rng=body_rng)
    return FuzzDesign(
        seed=seed, size_class=size_class, spec=spec, config=config, source=source
    )


# ---------------------------------------------------------------------------
# Construct coverage
# ---------------------------------------------------------------------------


def construct_profile(source: str) -> FrozenSet[str]:
    """The set of construct tags present in a Verilog source.

    Classification walks the parsed AST (not the text), so formatting cannot
    fake coverage.  Tags are stable strings used by the corpus-coverage test
    and by failing-seed bundles.
    """
    module = parse_source(source)
    tags = set()

    def walk_expr(expr: Expression) -> None:
        if isinstance(expr, UnaryOp):
            if expr.op in _REDUCTION_OPS and expr.op != "~":
                tags.add("reduction-op")
            if expr.op == "-":
                tags.add("unary-minus")
            walk_expr(expr.operand)
        elif isinstance(expr, BinaryOp):
            if expr.op in _RICH_COMPARE_OPS:
                tags.add("rich-compare")
            if expr.op == "*":
                tags.add("multiplier")
            if expr.op in ("<<", ">>"):
                tags.add("shift")
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, Ternary):
            tags.add("mux")
            walk_expr(expr.cond)
            walk_expr(expr.if_true)
            walk_expr(expr.if_false)
        elif isinstance(expr, Concat):
            tags.add("concat")
            for part in expr.parts:
                walk_expr(part)
        elif isinstance(expr, Repeat):
            tags.add("replication")
            walk_expr(expr.expr)

    def walk_stmt(stmt: Statement, in_if: bool) -> None:
        if isinstance(stmt, IfStatement):
            if in_if:
                tags.add("nested-if")
            if stmt.else_body:
                tags.add("else-branch")
            walk_expr(stmt.cond)
            for inner in stmt.then_body:
                walk_stmt(inner, True)
            for inner in stmt.else_body:
                walk_stmt(inner, True)
        else:
            walk_expr(stmt.value)

    for assign in module.assigns:
        if isinstance(assign.target, PartSelect):
            tags.add("partselect-assign")
        walk_expr(assign.value)
    for block in module.always_blocks:
        for stmt in block.body:
            walk_stmt(stmt, False)

    widths = {_port_width(module, port.name) for port in module.ports}
    if 1 in {w for w in widths if w is not None} or _has_one_bit_reg(module):
        tags.add("one-bit-signal")
    return frozenset(tags)


def _port_width(module: Module, name: str):
    for port in module.ports:
        if port.name == name:
            return port.width
    return None


def _has_one_bit_reg(module: Module) -> bool:
    return any(net.kind == "reg" and net.width == 1 for net in module.nets)


@lru_cache(maxsize=1)
def fixed_suite_constructs() -> FrozenSet[str]:
    """Union of construct tags over the 21 fixed benchmark designs."""
    tags = set()
    for spec in BENCHMARK_SPECS:
        tags |= construct_profile(generate_design(spec))
    return frozenset(tags)
