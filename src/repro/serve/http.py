"""Stdlib JSON-over-HTTP front end for :class:`TimingService`.

No web framework is available in this environment, so the server is built
on :mod:`http.server`'s ``ThreadingHTTPServer`` — one thread per connection,
which is exactly what feeds the service's micro-batching queue.  Endpoints:

``POST /predict``
    ``{"source": <verilog>, "name": <design name>}`` → the full fine-grained
    prediction (overall WNS/TNS, per-signal slack/ranking/groups) plus
    per-request serving stats.  Pre-built records can be referenced by
    registering them on the server (used by the benchmark harness).

``POST /whatif``
    Same payload plus optional ``"k"`` → incremental what-if projections of
    candidate synthesis option sets (no re-synthesis).

``GET /health``
    Liveness + the manifest of the served model bundle, with the active
    bundle id and promotion eval digest surfaced at the top level (so a
    canary promotion is observable with one probe).

``GET /metrics``
    The service's :class:`~repro.runtime.report.RuntimeReport` snapshot with
    latency percentiles and realized batch size.

Responses are always JSON; errors use conventional status codes with an
``{"error": ...}`` body.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.core.pipeline import RTLTimerPrediction
from repro.serve.resilience import DeadlineExceeded, RejectedError, WorkerUnavailable
from repro.serve.service import TimingService

#: Maximum accepted request body (a Verilog source payload), in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024


def prediction_to_json(prediction: RTLTimerPrediction) -> Dict[str, Any]:
    """The JSON shape of one prediction (stable across server and client)."""
    return {
        "design": prediction.design,
        "overall": {key: float(value) for key, value in prediction.overall.items()},
        "signal_arrival": {k: float(v) for k, v in prediction.signal_arrival.items()},
        "signal_slack": {k: float(v) for k, v in prediction.signal_slack.items()},
        "signal_ranking": {k: float(v) for k, v in prediction.signal_ranking.items()},
        "rank_group": {k: int(v) for k, v in prediction.rank_group.items()},
        "ranked_signals": prediction.ranked_signals(),
        "runtime_seconds": float(prediction.runtime_seconds),
    }


class TimingRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the server's :class:`TimingService`."""

    server: "TimingHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        payload: Dict[str, Any],
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send_json({"error": message}, status=status, headers=headers)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        if "chunked" in (self.headers.get("Transfer-Encoding") or "").lower():
            # No Content-Length means no upfront bound; accepting the frames
            # would mean reading unbounded input into memory.
            self.close_connection = True
            self._send_error_json(413, "chunked request bodies are not accepted")
            return None
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            # The body was never read, so this keep-alive connection is
            # desynced — close it instead of parsing body bytes as the next
            # request line.
            self.close_connection = True
            self._send_error_json(400, "bad Content-Length header")
            return None
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(
                413, f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} byte cap"
            )
            return None
        if length <= 0:
            self.close_connection = True
            self._send_error_json(400, "request body must not be empty")
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except (OSError, json.JSONDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    def _record_from(self, payload: Dict[str, Any]):
        """Resolve the design a request refers to (source text or registered name)."""
        service = self.server.service
        name = payload.get("name")
        source = payload.get("source")
        if source is not None:
            if not isinstance(source, str):
                self._send_error_json(400, "'source' must be a Verilog source string")
                return None
            return service.record_for_source(source, name=name)
        if name is not None:
            record = self.server.registered_records.get(name)
            if record is not None:
                return record
            self._send_error_json(404, f"no registered design named {name!r}")
            return None
        self._send_error_json(400, "request must carry 'source' (and optionally 'name')")
        return None

    # -- endpoints ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/health":
                service = self.server.service
                self._send_json(
                    {
                        "status": "ok",
                        "model": service.manifest or {},
                        "active_bundle_id": service.active_bundle_id,
                        "eval_digest": service.eval_digest,
                        "uptime_seconds": round(
                            service.metrics()["serving"]["uptime_seconds"], 3
                        ),
                    }
                )
            elif self.path == "/metrics":
                self._send_json(self.server.service.metrics())
            else:
                self._send_error_json(404, f"unknown endpoint {self.path!r}")
        except Exception as exc:  # a racing scrape must get JSON, not a reset
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path not in ("/predict", "/whatif"):
            # The unread body would desync this keep-alive connection.
            self.close_connection = True
            self._send_error_json(404, f"unknown endpoint {self.path!r}")
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            record = self._record_from(payload)
            if record is None:
                return
            if self.path == "/predict":
                prediction, stats = self.server.service.predict_with_stats(record)
                response = prediction_to_json(prediction)
                response["serve"] = stats
            else:
                k = payload.get("k")
                if k is not None and (not isinstance(k, int) or k < 1):
                    self._send_error_json(400, "'k' must be a positive integer")
                    return
                estimates = self.server.service.what_if(record, k=k)
                response = {
                    "design": record.name,
                    "candidates": [
                        {
                            "index": index,
                            "wns": float(estimate.wns),
                            "tns": float(estimate.tns),
                            "n_patches": int(estimate.n_patches),
                            "uses_grouping": bool(estimate.options.uses_grouping),
                            "uses_retiming": bool(estimate.options.uses_retiming),
                            "retime_signals": list(estimate.options.retime_signals or []),
                        }
                        for index, estimate in enumerate(estimates)
                    ],
                }
            self._send_json(response)
        except RejectedError as exc:  # load shed: bounded queue said no
            self._send_error_json(
                429, str(exc), headers={"Retry-After": f"{exc.retry_after_s:g}"}
            )
        except DeadlineExceeded as exc:
            self._send_error_json(504, str(exc) or "request deadline expired")
        except WorkerUnavailable as exc:
            self._send_error_json(503, str(exc) or "no serving worker available")
        except Exception as exc:  # a broken request must not kill the thread
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")


class TimingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`TimingService`."""

    daemon_threads = True

    def __init__(
        self,
        service: TimingService,
        host: str = "127.0.0.1",
        port: int = 8421,
        verbose: bool = False,
    ):
        super().__init__((host, port), TimingRequestHandler)
        self.service = service
        self.verbose = verbose
        #: Pre-elaborated records addressable by name in request payloads
        #: (lets benchmarks and tests skip per-request elaboration).
        self.registered_records: Dict[str, Any] = {}

    def register_record(self, record) -> None:
        """Make a pre-built DesignRecord addressable as ``{"name": ...}``."""
        self.registered_records[record.name] = record


def start_server(
    service: TimingService,
    host: str = "127.0.0.1",
    port: int = 8421,
    verbose: bool = False,
):
    """Start a :class:`TimingHTTPServer` on a daemon thread; returns it.

    Use ``server.server_address`` for the bound ``(host, port)`` (pass
    ``port=0`` for an OS-assigned free port) and ``server.shutdown()`` to
    stop it.
    """
    server = TimingHTTPServer(service, host=host, port=port, verbose=verbose)
    thread = threading.Thread(target=server.serve_forever, name="timing-http", daemon=True)
    thread.start()
    return server
