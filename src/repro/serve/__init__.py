"""Serving layer: model registry, batched inference service, HTTP server.

This package is the repo's train-once/serve-many boundary:

* :mod:`repro.serve.registry` — versioned, content-addressed model bundles
  (``save_model`` / ``load_model`` / :class:`ModelRegistry`) layered on the
  :mod:`repro.runtime` artifact cache; reloaded models predict
  bit-identically to the fitted originals,
* :mod:`repro.serve.service` — :class:`TimingService`, a load-once,
  thread-safe facade over :class:`~repro.core.pipeline.RTLTimer` that
  micro-batches concurrent predict calls into single ``predict_batch``
  passes and records ``serve.*`` runtime stages,
* :mod:`repro.serve.http` — a stdlib JSON-over-HTTP server exposing
  ``/predict``, ``/whatif``, ``/health`` and ``/metrics``,
* :mod:`repro.serve.resilience` — admission control, per-dependency
  circuit breakers, deadlines, and the bit-identical degradation ladder,
* :mod:`repro.serve.supervisor` — the supervised pre-forked worker pool
  behind :class:`~repro.serve.service.PooledTimingService`,
* :mod:`repro.serve.chaos` — the seed-replayable fault-injection campaign
  behind ``python -m repro chaos``.

The ``python -m repro`` CLI (:mod:`repro.cli`) wires these together:
``train`` saves into the registry, ``serve`` loads from it and binds the
HTTP server, and ``retrain`` (:mod:`repro.lifecycle`) moves the
``name@promoted`` deployment pointer that a refreshing server follows.
"""

from repro.serve.registry import (
    MODEL_BUNDLE_SCHEMA,
    PROMOTED_ALIAS,
    ModelRegistry,
    RegistryError,
    default_model_dir,
    load_model,
    save_model,
)
from repro.serve.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RejectedError,
    WorkerUnavailable,
)
from repro.serve.service import PooledTimingService, ServeConfig, TimingService
from repro.serve.supervisor import PoolConfig, WorkerPool
from repro.serve.http import TimingHTTPServer, prediction_to_json, start_server

__all__ = [
    "MODEL_BUNDLE_SCHEMA",
    "PROMOTED_ALIAS",
    "ModelRegistry",
    "RegistryError",
    "default_model_dir",
    "load_model",
    "save_model",
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "RejectedError",
    "WorkerUnavailable",
    "PooledTimingService",
    "ServeConfig",
    "TimingService",
    "PoolConfig",
    "WorkerPool",
    "TimingHTTPServer",
    "prediction_to_json",
    "start_server",
]
